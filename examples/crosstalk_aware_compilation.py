"""Crosstalk-aware post-compilation pass (Section VI, "Crosstalk").

The paper proposes adding a sequentialisation step after compilation to
serialise parallel operations on the (few) crosstalk-prone coupling pairs,
following Murali et al. (ASPLOS'20), who found only 5 of 221 couplings on
IBM Poughkeepsie to be high-crosstalk.

This example compiles an aggressively parallelised circuit with IP, declares
a small set of conflicting coupling pairs on ibmq_20_tokyo, and shows:

* how many conflicting co-schedules the IP-compiled circuit contains,
* the depth cost of serialising exactly those conflicts (and nothing else).

Run:  python examples/crosstalk_aware_compilation.py
"""

import numpy as np

from repro import (
    MaxCutProblem,
    compile_with_method,
    ibmq_20_tokyo,
    sequentialize_crosstalk,
)
from repro.compiler import count_conflicts
from repro.experiments.reporting import format_table
from repro.qaoa import random_regular_graph


def main():
    rng = np.random.default_rng(99)
    device = ibmq_20_tokyo()

    # A dense problem so IP really packs the layers.
    problem = MaxCutProblem.from_graph(random_regular_graph(14, 6, rng))
    program = problem.to_program([0.7], [0.35])
    compiled = compile_with_method(program, device, "ip", rng=rng)

    # Murali et al. found the high-crosstalk pairs by device characterisation;
    # we stand that in by flagging a handful of coupling pairs that the
    # IP-compiled circuit actually co-schedules (spatially adjacent parallel
    # couplings are exactly the geometry that crosstalks).
    from repro.circuits import asap_layers

    co_scheduled = set()
    for layer in asap_layers(compiled.circuit):
        edges = sorted(
            tuple(sorted(i.qubits)) for i in layer if i.is_two_qubit
        )
        for i in range(len(edges)):
            for j in range(i + 1, len(edges)):
                co_scheduled.add((edges[i], edges[j]))
    conflicts = sorted(co_scheduled)[:5]
    n_conflicts = count_conflicts(compiled.circuit, conflicts)
    fixed = sequentialize_crosstalk(compiled.circuit, conflicts)

    rows = [
        [
            "IP (as compiled)",
            compiled.circuit.depth(),
            n_conflicts,
        ],
        [
            "IP + crosstalk pass",
            fixed.depth(),
            count_conflicts(fixed, conflicts),
        ],
    ]
    print(
        f"{problem} compiled with IP(+QAIM) on {device.name}; "
        f"{len(conflicts)} crosstalk-prone coupling pairs declared\n"
    )
    print(
        format_table(
            ["circuit", "high-level depth", "conflicting co-schedules"],
            rows,
        )
    )
    overhead = fixed.depth() - compiled.circuit.depth()
    print(
        f"\nserialising only the flagged pairs removed every conflict at a "
        f"cost of {overhead} layer(s) — targeted sequentialisation, not "
        f"global de-parallelisation."
    )


if __name__ == "__main__":
    main()
