"""Noise flattens the QAOA landscape (Section I's motivation, visualised).

The paper's premise for reliability-aware compilation: "recent studies claim
that various sources of noise flatten the solution space of QAOA.
Therefore, finding a mapping with higher reliability ... is important."
This example computes the p=1 expectation landscape of one MaxCut instance

* exactly (closed form),
* as sampled through a compiled circuit on a *mildly* noisy device,
* on a *heavily* noisy device,

and prints ASCII heatmaps plus contrast statistics — the flattening is
directly visible, and with it the reason a compiled circuit's noise exposure
feeds back into optimiser convergence.

Run:  python examples/landscape_flattening.py
"""

import numpy as np

from repro import MaxCutProblem, NoiseModel, NoisySimulator, ring_device
from repro.hardware import uniform_calibration
from repro.qaoa.landscape import (
    expectation_grid,
    landscape_statistics,
    noisy_expectation_grid,
)

_SHADES = " .:-=+*#%@"


def ascii_heatmap(grid, lo=None, hi=None):
    """Render a landscape as an ASCII intensity map (gamma rows, beta cols)."""
    values = grid.values
    lo = values.min() if lo is None else lo
    hi = values.max() if hi is None else hi
    span = max(hi - lo, 1e-12)
    lines = []
    for row in values:
        cells = [
            _SHADES[min(int((v - lo) / span * (len(_SHADES) - 1)), len(_SHADES) - 1)]
            for v in row
        ]
        lines.append("".join(cells))
    return "\n".join(lines)


def main():
    rng = np.random.default_rng(55)
    problem = MaxCutProblem(5, [(0, 1), (1, 2), (2, 3), (3, 4), (0, 4)])
    device = ring_device(6)
    resolution = 12

    exact = expectation_grid(problem, resolution=resolution)
    lo, hi = exact.values.min(), exact.values.max()
    print("exact p=1 landscape (C5 MaxCut; rows = gamma, cols = beta):\n")
    print(ascii_heatmap(exact, lo, hi))
    stats = landscape_statistics(exact)
    print(f"\ncontrast = {stats.contrast:.3f}, peak = {stats.max_value:.3f}")

    for label, error in (("mild noise (1% CNOT)", 0.01), ("heavy noise (12% CNOT)", 0.12)):
        cal = uniform_calibration(device, cnot_error=error)
        noisy = NoisySimulator(
            NoiseModel.from_calibration(cal), trajectories=24
        )
        grid = noisy_expectation_grid(
            problem,
            device,
            "ic",
            noisy,
            resolution=resolution,
            shots=768,
            rng=rng,
        )
        stats = landscape_statistics(grid)
        print(f"\n{label}:\n")
        print(ascii_heatmap(grid, lo, hi))
        print(
            f"\ncontrast = {stats.contrast:.3f} "
            f"(peak {stats.max_value:.3f}, mean {stats.mean:.3f})"
        )

    print(
        "\nAs the error rate grows, the measured surface compresses toward "
        "its mean — exactly the flattening that makes low-gate-count, "
        "reliability-aware compilation (IC/VIC) matter."
    )


if __name__ == "__main__":
    main()
