"""Variation-aware compilation on ibmq_16_melbourne (Sections IV-D, V-E, V-G).

Demonstrates VIC on the real device model the paper validated on:

1. load the melbourne coupling graph and the 4/8/2020 CNOT-error
   calibration printed in Figure 10(a),
2. compile a 12-node QAOA-MaxCut instance with IC (variation-unaware) and
   VIC (variation-aware),
3. compare the product-of-gate-success metric and then the actual
   Approximation Ratio Gap under the Monte-Carlo hardware noise model —
   showing that routing around unreliable couplings pays off end to end.

Run:  python examples/melbourne_variation_aware.py
"""

import numpy as np

from repro import (
    MaxCutProblem,
    NoiseModel,
    NoisySimulator,
    StatevectorSimulator,
    compile_with_method,
    evaluate_arg,
    ibmq_16_melbourne,
    melbourne_calibration,
    optimize_qaoa,
)
from repro.experiments.reporting import format_table
from repro.qaoa import erdos_renyi_graph


def main():
    rng = np.random.default_rng(48)
    device = ibmq_16_melbourne()
    calibration = melbourne_calibration()
    print(f"device: {device}")
    print(
        f"calibration {calibration.timestamp}: mean CNOT error "
        f"{calibration.mean_cnot_error():.4f}, best edge "
        f"{calibration.best_edge()}, worst edge {calibration.worst_edge()}"
    )

    ideal = StatevectorSimulator()
    noisy = NoisySimulator(
        NoiseModel.from_calibration(calibration), trajectories=32
    )

    # Average over several instances — per-instance ARG is noisy (VIC's
    # reliable-path detours cost a few gates, which may or may not pay off
    # on one particular graph), but on average reliability wins.
    num_instances = 4
    rows = []
    means = {"ic": [], "vic": []}
    sps = {"ic": [], "vic": []}
    for i in range(num_instances):
        graph = erdos_renyi_graph(10, 0.5, rng)
        problem = MaxCutProblem.from_graph(graph)
        opt = optimize_qaoa(problem, p=1)
        program = problem.to_program(opt.gammas, opt.betas)
        for method in ("ic", "vic"):
            compiled = compile_with_method(
                program, device, method, calibration=calibration, rng=rng
            )
            arg = evaluate_arg(
                compiled, problem, ideal, noisy, shots=8192, rng=rng
            )
            sp = compiled.success_probability(calibration)
            means[method].append(arg.arg)
            sps[method].append(sp)
            rows.append(
                [
                    i,
                    method.upper(),
                    compiled.depth(),
                    compiled.gate_count(),
                    f"{sp:.2e}",
                    f"{arg.r0:.3f}",
                    f"{arg.rh:.3f}",
                    f"{arg.arg:.2f}%",
                ]
            )

    print()
    print(
        format_table(
            ["inst", "method", "depth", "gates", "success prob", "r0", "rh", "ARG"],
            rows,
        )
    )
    sp_ratio = float(np.mean(sps["vic"])) / float(np.mean(sps["ic"]))
    print(
        f"\nmean ARG:  IC {np.mean(means['ic']):.2f}%   "
        f"VIC {np.mean(means['vic']):.2f}%"
    )
    print(
        f"mean success-probability ratio VIC/IC = {sp_ratio:.2f} "
        "(Figure 10 reports 1.4-2.6x on this device)"
    )


if __name__ == "__main__":
    main()
