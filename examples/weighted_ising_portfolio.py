"""Beyond unweighted MaxCut: a weighted Ising workload (Section VI).

The paper notes that "the cost Hamiltonian of any arbitrary NP-hard problem
can be formulated in the Ising format consisting of ZZ-interactions", so the
methodologies apply beyond QAOA-MaxCut.  This example exercises that path
with a *weighted* MaxCut instance modelling a toy portfolio-diversification
task: assets are nodes, edge weights are return correlations, and splitting
the assets into two books so that strongly correlated pairs are separated is
exactly weighted MaxCut.

The weighted edges flow through the whole stack: CPHASE angles become
``-gamma * w_ij``, the hybrid loop optimises over the simulator (the
closed-form p=1 expectation only covers unit weights), and IC compiles the
circuit for the melbourne device.

Run:  python examples/weighted_ising_portfolio.py
"""

import numpy as np

from repro import (
    MaxCutProblem,
    StatevectorSimulator,
    compile_with_method,
    decode_physical_counts,
    ibmq_16_melbourne,
    optimize_qaoa,
)
from repro.experiments.reporting import format_table
from repro.sim.sampler import expectation_from_counts


def correlation_graph(num_assets: int, rng: np.random.Generator):
    """Random symmetric correlation weights in (0, 1] between assets."""
    edges = []
    for a in range(num_assets):
        for b in range(a + 1, num_assets):
            corr = float(rng.uniform(0.05, 1.0))
            if corr > 0.35:  # keep only meaningful correlations
                edges.append((a, b, round(corr, 2)))
    return edges


def main():
    rng = np.random.default_rng(13)
    num_assets = 10
    edges = correlation_graph(num_assets, rng)
    problem = MaxCutProblem(num_assets, edges)
    print(
        f"portfolio of {num_assets} assets, {len(edges)} correlated pairs, "
        f"total correlation weight {problem.total_weight():.2f}"
    )
    print(f"optimal diversification score (max cut) = {problem.max_cut_value():.2f}")

    # p = 2 hybrid loop on the simulator (weighted problem -> no closed form).
    opt = optimize_qaoa(problem, p=2, rng=rng, restarts=4)
    print(
        f"\nQAOA p=2: <C> = {opt.expectation:.3f}, approximation ratio = "
        f"{opt.approximation_ratio:.3f} ({opt.evaluations} objective evals)"
    )

    program = problem.to_program(opt.gammas, opt.betas)
    compiled = compile_with_method(
        program, ibmq_16_melbourne(), "ic", rng=rng
    )
    print(
        f"compiled with IC(+QAIM) for {compiled.coupling.name}: depth "
        f"{compiled.depth()}, gates {compiled.gate_count()}, swaps "
        f"{compiled.swap_count}"
    )

    # Sample the compiled circuit, decode, and read off the best split.
    sim = StatevectorSimulator()
    counts = decode_physical_counts(
        sim.sample_counts(compiled.circuit, 8192, rng),
        compiled.final_mapping,
        problem.num_nodes,
    )
    sampled_score = expectation_from_counts(counts, problem.cut_value)
    best_bits = max(counts, key=lambda b: problem.cut_value(b))
    book_a = [i for i in range(num_assets) if best_bits[num_assets - 1 - i] == "0"]
    book_b = [i for i in range(num_assets) if best_bits[num_assets - 1 - i] == "1"]

    print(f"\nsampled mean diversification score: {sampled_score:.3f}")
    print(
        format_table(
            ["book", "assets", "best-sample score"],
            [
                ["A", str(book_a), f"{problem.cut_value(best_bits):.2f}"],
                ["B", str(book_b), ""],
            ],
        )
    )
    ratio = problem.cut_value(best_bits) / problem.max_cut_value()
    print(f"best sampled split reaches {100 * ratio:.1f}% of the optimum")


if __name__ == "__main__":
    main()
