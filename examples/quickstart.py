"""Quickstart: compile one QAOA-MaxCut instance with every methodology.

Walks the full pipeline of the paper on the Figure 1 problem (MaxCut of the
4-node 3-regular graph = K4):

1. find optimal p=1 parameters with the hybrid loop (analytic fast path),
2. compile the circuit with NAIVE / GreedyV / QAIM / IP / IC / VIC for
   ibmq_20_tokyo,
3. report depth, gate count, SWAP count and compile time per method,
4. draw the best compiled circuit.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro import (
    MaxCutProblem,
    compile_with_method,
    draw_circuit,
    ibmq_20_tokyo,
    optimize_qaoa,
    random_calibration,
)
from repro.experiments.reporting import format_table


def main():
    rng = np.random.default_rng(2020)

    # The Figure 1(a) problem graph: 4 nodes, 3-regular (K4).
    problem = MaxCutProblem(
        4, [(0, 1), (0, 2), (0, 3), (1, 2), (1, 3), (2, 3)]
    )
    print(f"problem: {problem}, max cut = {problem.max_cut_value():.0f}")

    # Hybrid optimisation loop (p = 1; closed-form objective).
    opt = optimize_qaoa(problem, p=1)
    print(
        f"optimal parameters: gamma={opt.gammas[0]:+.4f} "
        f"beta={opt.betas[0]:+.4f}  <C>={opt.expectation:.4f} "
        f"(approximation ratio {opt.approximation_ratio:.3f})"
    )

    # Compile with every methodology for the 20-qubit tokyo device.
    device = ibmq_20_tokyo()
    calibration = random_calibration(device, rng=rng)
    program = problem.to_program(opt.gammas, opt.betas)

    rows = []
    best = None
    for method in ("naive", "greedy_v", "qaim", "ip", "ic", "vic"):
        compiled = compile_with_method(
            program, device, method, calibration=calibration, rng=rng
        )
        rows.append(
            [
                method.upper(),
                compiled.depth(),
                compiled.gate_count(),
                compiled.swap_count,
                f"{compiled.compile_time * 1e3:.2f} ms",
                f"{compiled.success_probability(calibration):.4f}",
            ]
        )
        if best is None or compiled.depth() < best.depth():
            best = compiled

    print()
    print(
        format_table(
            ["method", "depth", "gates", "swaps", "compile", "success prob"],
            rows,
        )
    )

    # Draw only the physical qubits the best circuit actually uses.
    active = best.circuit.active_qubits()
    compact = best.circuit.remap(
        {q: i for i, q in enumerate(active)}, num_qubits=len(active)
    )
    print(
        f"\nbest compiled circuit ({best.method}), physical qubits "
        f"{list(active)} relabelled 0..{len(active) - 1}:\n"
    )
    print(draw_circuit(compact))


if __name__ == "__main__":
    main()
