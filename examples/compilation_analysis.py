"""Structural comparison of the methodologies on one instance.

Runs NAIVE / QAIM / IP / IC on the same 16-node problem and breaks each
compiled circuit down with :func:`repro.compiler.analyze_compiled`:

* routing overhead (fraction of native gates that only move qubits),
* mean layer concurrency (what IP maximises),
* total logical-qubit displacement (what IC exploits),
* hottest coupling (crosstalk planning input).

The table makes each method's mechanism visible: QAIM cuts routing overhead
via placement, IP raises concurrency, IC does both by re-sorting against
the drifting mapping.

Run:  python examples/compilation_analysis.py
"""

import numpy as np

from repro import MaxCutProblem, compile_with_method, ibmq_20_tokyo
from repro.compiler.analysis import analyze_compiled
from repro.experiments.reporting import format_table
from repro.qaoa import erdos_renyi_graph


def main():
    rng = np.random.default_rng(21)
    device = ibmq_20_tokyo()
    problem = MaxCutProblem.from_graph(erdos_renyi_graph(16, 0.35, rng))
    program = problem.to_program([0.7], [0.35])
    print(f"{problem} on {device.name}\n")

    rows = []
    for method in ("naive", "qaim", "ip", "ic"):
        compiled = compile_with_method(
            program, device, method, rng=np.random.default_rng(5)
        )
        analysis = analyze_compiled(compiled)
        hot_edge, hot_count = analysis.hottest_edges(top=1)[0]
        rows.append(
            [
                method.upper(),
                compiled.depth(),
                analysis.total_native_gates,
                f"{100 * analysis.routing_overhead:.1f}%",
                f"{analysis.mean_concurrency:.2f}",
                sum(analysis.displacement.values()),
                f"{hot_edge[0]}-{hot_edge[1]} ({hot_count})",
            ]
        )

    print(
        format_table(
            [
                "method",
                "depth",
                "native gates",
                "routing overhead",
                "concurrency",
                "total displacement",
                "hottest coupling",
            ],
            rows,
        )
    )
    print(
        "\nReading: QAIM lowers routing overhead (better start), IP lifts "
        "concurrency (better order), IC lowers both depth and overhead by "
        "re-sorting gates as SWAPs drift the mapping."
    )


if __name__ == "__main__":
    main()
