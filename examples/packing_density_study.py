"""Packing-density study on a 36-qubit grid (Section V-H / Figure 12).

Sweeps the maximum allowed CPHASE gates per layer in IC(+QAIM) on the
hypothetical 6x6-grid architecture and prints the depth / gate-count /
compile-time trade-off the paper plots in Figure 12, plus the usage
directives of Section VI ("if compilation time is of concern, packing the
layers to the fullest may provide the best performance ...").

Run:  python examples/packing_density_study.py  [--nodes N] [--instances K]
"""

import argparse

import numpy as np

from repro import MaxCutProblem, compile_qaoa, grid_device
from repro.experiments.reporting import format_table
from repro.qaoa import erdos_renyi_graph


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--nodes", type=int, default=25)
    parser.add_argument("--instances", type=int, default=5)
    parser.add_argument(
        "--limits", type=int, nargs="+", default=[1, 3, 5, 7, 9, 11, 13]
    )
    args = parser.parse_args()

    device = grid_device(6, 6)
    rng = np.random.default_rng(7)
    problems = [
        MaxCutProblem.from_graph(erdos_renyi_graph(args.nodes, 0.5, rng))
        for _ in range(args.instances)
    ]
    programs = [p.to_program([0.7], [0.35]) for p in problems]

    rows = []
    series = {}
    for limit in args.limits:
        depths, gates, times = [], [], []
        for program in programs:
            compiled = compile_qaoa(
                program,
                device,
                ordering="ic",
                packing_limit=limit,
                rng=np.random.default_rng(limit),
            )
            depths.append(compiled.depth())
            gates.append(compiled.gate_count())
            times.append(compiled.compile_time)
        series[limit] = (
            float(np.mean(depths)),
            float(np.mean(gates)),
            float(np.mean(times)),
        )
        rows.append(
            [
                limit,
                f"{series[limit][0]:.1f}",
                f"{series[limit][1]:.1f}",
                f"{series[limit][2] * 1e3:.2f} ms",
            ]
        )

    print(
        f"IC(+QAIM) on {device.name}, {args.nodes}-node ER graphs "
        f"(p_edge = 0.5), {args.instances} instances per point\n"
    )
    print(
        format_table(
            ["packing limit", "mean depth", "mean gates", "mean compile"],
            rows,
        )
    )

    best_depth = min(series, key=lambda k: series[k][0])
    best_gates = min(series, key=lambda k: series[k][1])
    best_time = min(series, key=lambda k: series[k][2])
    print(
        f"\ndirectives: depth-optimal limit = {best_depth}, "
        f"gate-optimal limit = {best_gates}, "
        f"compile-time-optimal limit = {best_time}"
    )
    print(
        "Compiling multiple times with different packing limits and keeping "
        "the best circuit (as the paper suggests) is cheap at this scale."
    )


if __name__ == "__main__":
    main()
