"""Parameter transfer: skip the hybrid loop on new instances (Section I).

The paper points out that QAOA parameters "can be found (without the
optimization routines) by exploiting their relationship among similar
instances [44] or analytically [45]".  This example demonstrates the
instance-transfer route and quantifies what it costs:

1. optimise a few small 3-regular donor instances (p = 1),
2. aggregate their angles into family-level parameters,
3. apply the family angles to larger unseen 3-regular instances with NO
   optimisation, and compare against each instance's own optimum,
4. compile the transferred circuit — showing a full QAOA deployment without
   a single recipient-side optimisation step.

Run:  python examples/parameter_transfer.py
"""

import numpy as np

from repro import MaxCutProblem, compile_with_method, ibmq_20_tokyo
from repro.experiments.reporting import format_table
from repro.qaoa import (
    learn_parameters,
    optimize_qaoa,
    random_regular_graph,
    transfer_quality,
)


def main():
    rng = np.random.default_rng(1234)

    # 1. donors: small 3-regular instances.
    donors = [
        MaxCutProblem.from_graph(random_regular_graph(10, 3, rng))
        for _ in range(5)
    ]
    params = learn_parameters(donors, p=1, rng=rng)
    print(
        f"learned family angles from {len(donors)} donors: "
        f"gamma={params.gammas[0]:+.4f} beta={params.betas[0]:+.4f}"
    )
    print(
        "donor self-optimised ratios: "
        + ", ".join(f"{r:.3f}" for r in params.donor_ratios)
    )

    # 2-3. recipients: larger instances, no optimisation.
    rows = []
    qualities = []
    for n in (12, 14, 16):
        problem = MaxCutProblem.from_graph(random_regular_graph(n, 3, rng))
        quality = transfer_quality(problem, params, rng=rng)
        own = optimize_qaoa(problem, p=1)
        qualities.append(quality)
        rows.append(
            [
                n,
                f"{own.expectation * quality:.3f}",
                f"{own.expectation:.3f}",
                f"{quality:.4f}",
            ]
        )
    print()
    print(
        format_table(
            ["nodes", "transferred <C>", "own-optimum <C>", "quality"],
            rows,
        )
    )
    print(
        f"\nmean transfer quality {np.mean(qualities):.4f} — the family "
        "angles recover almost all of the per-instance optimum."
    )

    # 4. deploy: compile the largest recipient with transferred angles.
    problem = MaxCutProblem.from_graph(random_regular_graph(16, 3, rng))
    program = problem.to_program(params.gammas, params.betas)
    compiled = compile_with_method(program, ibmq_20_tokyo(), "ic", rng=rng)
    print(
        f"\ncompiled 16-node instance with transferred angles via IC: "
        f"depth {compiled.depth()}, gates {compiled.gate_count()}, "
        f"{compiled.compile_time * 1e3:.1f} ms — zero optimisation calls."
    )


if __name__ == "__main__":
    main()
