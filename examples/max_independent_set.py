"""Maximum Independent Set through the QUBO -> Ising -> QAOA path.

Section VI: "the cost Hamiltonian of any arbitrary NP-hard problem can be
formulated in the Ising format consisting of ZZ-interactions" — this example
takes a problem that is *not* MaxCut and runs it through the full stack:

1. encode Max Independent Set as a QUBO:
   maximise ``sum_i x_i - P * sum_{(i,j) in E} x_i x_j`` (penalty P > 1
   forbids picking both endpoints of an edge),
2. convert to an :class:`IsingProblem` (linear Z terms appear — handled as
   virtual RZ gates in the cost block),
3. optimise p=2 QAOA parameters on the simulator,
4. compile with IC(+QAIM) for ibmq_20_tokyo and sample the solution.

Run:  python examples/max_independent_set.py
"""

import numpy as np
from scipy import optimize

from repro import (
    StatevectorSimulator,
    build_qaoa_circuit,
    compile_with_method,
    decode_physical_counts,
    ibmq_20_tokyo,
)
from repro.experiments.reporting import format_table
from repro.qaoa import IsingProblem, erdos_renyi_graph


def mis_qubo(graph, penalty=2.0):
    """QUBO matrix for Max Independent Set (maximisation form)."""
    n = graph.number_of_nodes()
    q = np.zeros((n, n))
    for i in range(n):
        q[i, i] = 1.0
    for a, b in graph.edges():
        q[a, b] -= penalty / 2.0
        q[b, a] -= penalty / 2.0
    return q


def independent_set_from_bits(bits, n):
    return [i for i in range(n) if bits[n - 1 - i] == "1"]


def is_independent(graph, nodes):
    chosen = set(nodes)
    return not any(a in chosen and b in chosen for a, b in graph.edges())


def main():
    rng = np.random.default_rng(31)
    n = 9
    graph = erdos_renyi_graph(n, 0.35, rng)
    print(f"graph: {n} nodes, {graph.number_of_edges()} edges")

    problem = IsingProblem.from_qubo(mis_qubo(graph))
    print(
        f"Ising form: {len(problem.quadratic)} couplings, "
        f"{len(problem.linear)} local fields, offset {problem.offset:.2f}"
    )
    best_bits = problem.best_bitstring()
    optimum = independent_set_from_bits(best_bits, n)
    print(
        f"exact optimum (brute force): {sorted(optimum)} "
        f"(size {len(optimum)}, independent: {is_independent(graph, optimum)})"
    )

    # Optimise p=2 QAOA angles against the exact expectation.
    sim = StatevectorSimulator()
    values = problem.values()

    def objective(params):
        program = problem.to_program(list(params[:2]), list(params[2:]))
        circuit = build_qaoa_circuit(program, measure=False)
        return -sim.expectation_diagonal(circuit, values)

    best = min(
        (
            optimize.minimize(
                objective, x0=rng.uniform(-1, 1, size=4), method="L-BFGS-B",
                tol=1e-6,
            )
            for _ in range(6)
        ),
        key=lambda r: r.fun,
    )
    gammas, betas = list(best.x[:2]), list(best.x[2:])
    print(
        f"\nQAOA p=2 expectation {-best.fun:.3f} "
        f"(optimum value {problem.max_value():.3f})"
    )

    # Compile and sample.
    program = problem.to_program(gammas, betas)
    compiled = compile_with_method(program, ibmq_20_tokyo(), "ic", rng=rng)
    print(
        f"compiled via IC(+QAIM) on {compiled.coupling.name}: depth "
        f"{compiled.depth()}, gates {compiled.gate_count()}, swaps "
        f"{compiled.swap_count}"
    )
    counts = decode_physical_counts(
        sim.sample_counts(compiled.circuit, 8192, rng),
        compiled.final_mapping,
        n,
    )
    # Best feasible sample.
    feasible = [
        (problem.value_of_bits(bits), bits, c)
        for bits, c in counts.items()
        if is_independent(graph, independent_set_from_bits(bits, n))
    ]
    feasible.sort(reverse=True)
    rows = [
        [bits, f"{val:.2f}", c, str(sorted(independent_set_from_bits(bits, n)))]
        for val, bits, c in feasible[:5]
    ]
    print()
    print(
        format_table(["bitstring", "value", "shots", "independent set"], rows)
    )
    top_size = len(independent_set_from_bits(feasible[0][1], n))
    print(
        f"\nbest sampled independent set has size {top_size} "
        f"(optimal size {len(optimum)})"
    )


if __name__ == "__main__":
    main()
