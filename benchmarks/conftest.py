"""Benchmark-suite plumbing.

Each bench module reproduces one figure/table of the paper.  Benches record
their :class:`FigureResult` through the ``record_figure`` fixture; at the
end of the run every recorded table is printed in the terminal summary (so
``pytest benchmarks/ --benchmark-only | tee bench_output.txt`` captures the
same rows/series the paper plots) and written under ``benchmarks/results/``.

Set ``REPRO_FULL=1`` for paper-scale instance counts.
"""

from __future__ import annotations

import pathlib
from typing import List

import pytest

_RESULTS: List = []
_RESULTS_DIR = pathlib.Path(__file__).parent / "results"


@pytest.fixture
def record_figure():
    """Collect a FigureResult for end-of-run reporting."""

    def _record(result):
        _RESULTS.append(result)
        return result

    return _record


def pytest_terminal_summary(terminalreporter, exitstatus, config):
    if not _RESULTS:
        return
    _RESULTS_DIR.mkdir(exist_ok=True)
    terminalreporter.write_line("")
    terminalreporter.write_line("=" * 72)
    terminalreporter.write_line("PAPER FIGURE / TABLE REPRODUCTIONS")
    terminalreporter.write_line("=" * 72)
    for result in _RESULTS:
        terminalreporter.write_line("")
        text = result.render()
        terminalreporter.write_line(text)
        out_file = _RESULTS_DIR / f"{result.figure}.txt"
        out_file.write_text(text + "\n")
    terminalreporter.write_line("")
    terminalreporter.write_line(
        f"(tables also written to {_RESULTS_DIR}/)"
    )
