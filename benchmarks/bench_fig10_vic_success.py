"""Figure 10 bench: VIC vs IC compiled-circuit success probability.

Regenerates the success-probability-ratio bars of Figure 10 (ER p=0.5 and
6-regular graphs, 13/14/15 nodes, ibmq_16_melbourne with the 4/8/2020
calibration).

Paper targets: VIC ~80% better success probability on average for ER
workloads, ~45% for regular ones (the regular gain is smaller because
densely packed layers leave fewer reliable-pair choices).
"""

from repro.experiments.figures import fig10
from repro.experiments.harness import scaled_instances


def test_fig10_vic_vs_ic_success_probability(benchmark, record_figure):
    instances = scaled_instances(reduced=10, paper=20)
    result = benchmark.pedantic(
        fig10.run, kwargs={"instances": instances}, rounds=1, iterations=1
    )
    record_figure(result)
    # VIC must improve mean success probability on both families.
    assert result.headline["vic_over_ic_sp_er_mean"] > 1.0
    assert result.headline["vic_over_ic_sp_regular_mean"] > 1.0
