"""QAOA level scaling: approximation ratio and compiled cost vs p.

Section I: "QAOA performance improves with added levels in the PQC ...
however, each level adds additional two parameters which may affect the
convergence and the speed."  This bench quantifies both sides on our stack:

* noiseless optimised approximation ratio grows monotonically with p;
* compiled depth/gate count grow linearly with p (each level is one more
  commuting block through IC);
* under hardware noise there is a crossover — deeper circuits accumulate
  more error, so the *sampled* ratio stops improving (the NISQ p trade-off).
"""

import numpy as np

from repro.compiler import compile_with_method
from repro.experiments.figures.common import FigureResult
from repro.experiments.harness import make_problem, scaled_instances
from repro.experiments.reporting import format_table
from repro.hardware import ibmq_16_melbourne, melbourne_calibration
from repro.qaoa import optimize_qaoa
from repro.qaoa.evaluation import decode_physical_counts
from repro.sim import NoiseModel, NoisySimulator


def _run(instances, p_values=(1, 2, 3), shots=2048, trajectories=24):
    coupling = ibmq_16_melbourne()
    calibration = melbourne_calibration()
    noisy = NoisySimulator(
        NoiseModel.from_calibration(calibration), trajectories=trajectories
    )
    problem_rng = np.random.default_rng(808)
    acc = {p: {"ratio": [], "depth": [], "gates": [], "noisy": []} for p in p_values}
    for i in range(instances):
        problem = make_problem("regular", 8, 3, problem_rng)
        for p in p_values:
            opt = optimize_qaoa(
                problem, p=p, rng=np.random.default_rng((i, p)), restarts=4
            )
            program = problem.to_program(opt.gammas, opt.betas)
            compiled = compile_with_method(
                program,
                coupling,
                "ic",
                rng=np.random.default_rng((i, p, 7)),
            )
            counts = decode_physical_counts(
                noisy.sample_counts(
                    compiled.circuit, shots, np.random.default_rng((i, p, 9))
                ),
                compiled.final_mapping,
                problem.num_nodes,
            )
            total = sum(counts.values())
            sampled = (
                sum(problem.cut_value(b) * c for b, c in counts.items())
                / total
                / problem.max_cut_value()
            )
            acc[p]["ratio"].append(opt.approximation_ratio)
            acc[p]["depth"].append(compiled.depth())
            acc[p]["gates"].append(compiled.gate_count())
            acc[p]["noisy"].append(sampled)

    rows = []
    headline = {}
    for p in p_values:
        ratio = float(np.mean(acc[p]["ratio"]))
        depth = float(np.mean(acc[p]["depth"]))
        gates = float(np.mean(acc[p]["gates"]))
        sampled = float(np.mean(acc[p]["noisy"]))
        rows.append([p, ratio, round(depth, 1), round(gates, 1), sampled])
        headline[f"p{p}_ideal_ratio"] = ratio
        headline[f"p{p}_noisy_ratio"] = sampled
        headline[f"p{p}_depth"] = depth
    return FigureResult(
        figure="p_scaling",
        description=(
            f"QAOA level scaling on 8-node 3-regular graphs, IC on "
            f"melbourne ({instances} instances)"
        ),
        table=format_table(
            ["p", "ideal ratio", "mean depth", "mean gates", "noisy ratio"],
            rows,
        ),
        headline=headline,
    )


def test_p_scaling_tradeoff(benchmark, record_figure):
    instances = scaled_instances(reduced=3, paper=10)
    result = benchmark.pedantic(
        _run, kwargs={"instances": instances}, rounds=1, iterations=1
    )
    record_figure(result)
    h = result.headline
    # Ideal performance improves with p.
    assert h["p2_ideal_ratio"] >= h["p1_ideal_ratio"] - 1e-6
    assert h["p3_ideal_ratio"] >= h["p2_ideal_ratio"] - 0.02
    # Compiled cost grows with p.
    assert h["p3_depth"] > h["p2_depth"] > h["p1_depth"]
    # Under noise the gain is eroded: the noisy gap (ideal - sampled)
    # widens with p.
    gap1 = h["p1_ideal_ratio"] - h["p1_noisy_ratio"]
    gap3 = h["p3_ideal_ratio"] - h["p3_noisy_ratio"]
    assert gap3 > gap1
