"""Figure 11(b) bench: ARG validation on (noisy-simulated) hardware.

Regenerates the mean-ARG bars of Figure 11(b): p=1 QAOA-MaxCut instances
optimised with L-BFGS-B, compiled with QAIM / IP / IC / VIC for
ibmq_16_melbourne, sampled noiselessly and through the Monte-Carlo noise
model built from the Figure 10(a) calibration.

Paper targets (ordering, lower ARG = better): QAIM worst, then IP, then IC,
then VIC best — IC ~8.5% below IP, VIC ~7.4% below IC.
"""

from repro.experiments.figures import fig11b
from repro.experiments.harness import scaled_instances


def quick_speedup_smoke(nodes=10, shots=4096, trajectories=16, seed=11):
    """Quick mode: one instance, fast path vs gate-by-gate fallback.

    Returns ``(speedup, arg_fast, arg_slow)``; the two ARGs are computed
    from identical RNG streams so they must agree to machine precision.
    Used by CI to hold the fast-path engine to its >=5x contract.
    """
    import time

    import numpy as np

    from repro.compiler import compile_with_method
    from repro.experiments.harness import make_problem
    from repro.hardware import ibmq_16_melbourne, melbourne_calibration
    from repro.qaoa import optimize_qaoa
    from repro.sim import NoiseModel
    from repro.sim.fastpath import evaluate_fast

    rng = np.random.default_rng(seed)
    problem = make_problem("er", nodes, 0.5, rng)
    opt = optimize_qaoa(problem, p=1)
    program = problem.to_program(opt.gammas, opt.betas)
    calibration = melbourne_calibration()
    compiled = compile_with_method(
        program, ibmq_16_melbourne(), "ic", calibration=calibration, rng=rng
    )
    noise = NoiseModel.from_calibration(calibration)

    def once(use_fastpath):
        start = time.perf_counter()
        outcome = evaluate_fast(
            compiled,
            noise=noise,
            shots=shots,
            trajectories=trajectories,
            rng=np.random.default_rng(seed),
            use_fastpath=use_fastpath,
        )
        return time.perf_counter() - start, outcome

    # Warm both paths once (imports, registry) before timing.
    once(True), once(False)
    fast_s, fast = once(True)
    slow_s, slow = once(False)
    assert fast.fastpath and not slow.fastpath
    return slow_s / fast_s, fast.arg, slow.arg


def test_fastpath_speedup_quick():
    speedup, arg_fast, arg_slow = quick_speedup_smoke()
    assert abs(arg_fast - arg_slow) < 1e-9, (arg_fast, arg_slow)
    assert speedup >= 5.0, f"fast path only {speedup:.1f}x faster"


def test_fig11b_arg_hardware_validation(benchmark, record_figure):
    instances = scaled_instances(reduced=4, paper=20)
    num_nodes = scaled_instances(reduced=10, paper=12)
    shots = scaled_instances(reduced=4096, paper=40960)
    result = benchmark.pedantic(
        fig11b.run,
        kwargs={
            "instances": instances,
            "num_nodes": num_nodes,
            "shots": shots,
        },
        rounds=1,
        iterations=1,
    )
    record_figure(result)
    h = result.headline
    # Noise must open a gap for every method.
    for method in ("qaim", "ip", "ic", "vic"):
        assert h[f"arg_mean_{method}"] > 0.0
    # The paper's ordering: the optimised flows beat QAIM-only.
    assert h["arg_mean_ic"] < h["arg_mean_qaim"]
    assert h["arg_mean_vic"] < h["arg_mean_qaim"]


if __name__ == "__main__":
    speedup, arg_fast, arg_slow = quick_speedup_smoke()
    delta = abs(arg_fast - arg_slow)
    print(
        f"fast path {speedup:.1f}x faster; "
        f"ARG fast={arg_fast:.6f} slow={arg_slow:.6f} (|delta|={delta:.2e})"
    )
    assert delta < 1e-9, "fast/slow ARG mismatch"
    assert speedup >= 5.0, f"fast path only {speedup:.1f}x faster"
    print("quick speedup smoke OK")
