"""Figure 11(b) bench: ARG validation on (noisy-simulated) hardware.

Regenerates the mean-ARG bars of Figure 11(b): p=1 QAOA-MaxCut instances
optimised with L-BFGS-B, compiled with QAIM / IP / IC / VIC for
ibmq_16_melbourne, sampled noiselessly and through the Monte-Carlo noise
model built from the Figure 10(a) calibration.

Paper targets (ordering, lower ARG = better): QAIM worst, then IP, then IC,
then VIC best — IC ~8.5% below IP, VIC ~7.4% below IC.
"""

from repro.experiments.figures import fig11b
from repro.experiments.harness import scaled_instances


def test_fig11b_arg_hardware_validation(benchmark, record_figure):
    instances = scaled_instances(reduced=4, paper=20)
    num_nodes = scaled_instances(reduced=10, paper=12)
    shots = scaled_instances(reduced=4096, paper=40960)
    result = benchmark.pedantic(
        fig11b.run,
        kwargs={
            "instances": instances,
            "num_nodes": num_nodes,
            "shots": shots,
        },
        rounds=1,
        iterations=1,
    )
    record_figure(result)
    h = result.headline
    # Noise must open a gap for every method.
    for method in ("qaim", "ip", "ic", "vic"):
        assert h[f"arg_mean_{method}"] > 0.0
    # The paper's ordering: the optimised flows beat QAIM-only.
    assert h["arg_mean_ic"] < h["arg_mean_qaim"]
    assert h["arg_mean_vic"] < h["arg_mean_qaim"]
