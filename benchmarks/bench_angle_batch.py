"""Angle-grid bench: batched fast path vs looped exact evaluation.

A variational outer loop (or a Figure-4-style landscape sweep) scores
the *same* problem at many ``(gamma, beta)`` points.  The looped
baseline pays per-point overhead — one statevector build, one gate walk,
one diagonal lookup per call — while
:func:`repro.sim.fastpath.expectation_batch` applies the diagonal phase
and the axis-wise batched RX mixer to the whole angle batch in a handful
of vectorised numpy operations.

CI runs ``python benchmarks/bench_angle_batch.py --quick`` and holds the
batched path to its contract: at least 5x faster than looping
``evaluate_fast(mode="exact", noise=None)`` over the grid, with every
per-point expectation agreeing to 1e-9.
"""

import argparse
import time

import numpy as np

from repro.compiler import compile_with_method
from repro.experiments.harness import make_problem
from repro.hardware import ibmq_20_tokyo
from repro.sim.fastpath import evaluate_fast, expectation_batch


def angle_batch_speedup(nodes=12, points=32, seed=7):
    """Time a ``points``-long angle grid both ways on one ER instance.

    Compilation happens outside the timed region — both sides evaluate
    the same already-compiled circuits/problem, so the measured ratio is
    pure evaluation cost.  Returns ``(speedup, max_delta, looped_s,
    batched_s)`` where ``max_delta`` is the worst per-point expectation
    disagreement.
    """
    rng = np.random.default_rng(seed)
    problem = make_problem("er", nodes, 0.5, rng)
    max_cut = problem.max_cut_value()
    gammas = np.linspace(-np.pi, np.pi, points)
    betas = np.linspace(-np.pi / 2, np.pi / 2, points)

    coupling = ibmq_20_tokyo()
    compiled = [
        compile_with_method(
            problem.to_program([g], [b]), coupling, "ic", rng=rng
        )
        for g, b in zip(gammas, betas)
    ]

    # Warm both paths (interning, registries) before timing, then take
    # the best of a few runs each so one allocator hiccup cannot decide
    # the gate.
    evaluate_fast(compiled[0], noise=None, mode="exact")
    expectation_batch(problem, gammas[:1], betas[:1])

    looped_s = float("inf")
    for _ in range(3):
        start = time.perf_counter()
        looped = np.array(
            [
                evaluate_fast(c, noise=None, mode="exact").r0 * max_cut
                for c in compiled
            ]
        )
        looped_s = min(looped_s, time.perf_counter() - start)

    batched_s = float("inf")
    for _ in range(3):
        start = time.perf_counter()
        batched = expectation_batch(problem, gammas, betas)
        batched_s = min(batched_s, time.perf_counter() - start)

    max_delta = float(np.max(np.abs(looped - batched)))
    return looped_s / batched_s, max_delta, looped_s, batched_s


def test_angle_batch_speedup_quick():
    speedup, max_delta, _, _ = angle_batch_speedup(nodes=10, points=32)
    assert max_delta < 1e-9, f"batched/looped disagree by {max_delta:.2e}"
    assert speedup >= 5.0, f"batched path only {speedup:.1f}x faster"


def main():
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick",
        action="store_true",
        help="CI smoke: smaller instance, same >=5x / 1e-9 gates",
    )
    args = parser.parse_args()
    nodes, points = (10, 32) if args.quick else (10, 64)
    speedup, max_delta, looped_s, batched_s = angle_batch_speedup(
        nodes=nodes, points=points
    )
    print(
        f"{points}-point grid on {nodes} nodes: looped {looped_s * 1e3:.1f}ms,"
        f" batched {batched_s * 1e3:.1f}ms -> {speedup:.1f}x"
        f" (max |delta| = {max_delta:.2e})"
    )
    assert max_delta < 1e-9, f"batched/looped disagree by {max_delta:.2e}"
    assert speedup >= 5.0, f"batched path only {speedup:.1f}x faster"
    print("angle batch smoke OK")


if __name__ == "__main__":
    main()
