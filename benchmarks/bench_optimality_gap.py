"""Optimality-gap bench: IP and IC against exhaustive ordering search.

Not a paper figure, but the natural yardstick for the paper's framing
("finding the best-ordered circuit is a difficult problem and does not
scale"): on instances tiny enough to brute force every CPHASE permutation
through the same backend, how close do the heuristics land — and how much
cheaper are they?

Workload: 6-gate CPHASE blocks on a 6-qubit ring (720 permutations each).
"""

import numpy as np

from repro.circuits import QuantumCircuit, decompose_to_basis
from repro.compiler.exhaustive import exhaustive_best_order
from repro.compiler.ic import IncrementalCompiler
from repro.compiler.ip import parallelize
from repro.compiler.backend import ConventionalBackend
from repro.compiler.mapping import Mapping
from repro.experiments.figures.common import FigureResult
from repro.experiments.harness import scaled_instances
from repro.experiments.reporting import format_table
from repro.hardware import ring_device


def _random_pairs(rng, num_qubits=6, count=6):
    pairs = []
    while len(pairs) < count:
        a, b = rng.choice(num_qubits, size=2, replace=False)
        pair = (int(min(a, b)), int(max(a, b)))
        if pair not in pairs:
            pairs.append(pair)
    return pairs


def _depth_of(circuit):
    return decompose_to_basis(circuit).depth()


def _run(instances):
    device = ring_device(6)
    backend = ConventionalBackend(device)
    rows = []
    gaps = {"ip": [], "ic": []}
    for seed in range(instances):
        rng = np.random.default_rng(seed)
        pairs = _random_pairs(rng)
        mapping = Mapping.trivial(6, 6)

        optimal = exhaustive_best_order(pairs, device, mapping)
        opt_depth = _depth_of(optimal.compiled.circuit)

        ip_order = parallelize(pairs, rng=np.random.default_rng(seed)).ordered_pairs
        ip_circuit = QuantumCircuit(6)
        for a, b in ip_order:
            ip_circuit.cphase(0.5, a, b)
        ip_depth = _depth_of(backend.compile(ip_circuit, mapping).circuit)

        ic_out = QuantumCircuit(6)
        IncrementalCompiler(
            device, rng=np.random.default_rng(seed)
        ).compile_block(
            [(a, b, 0.5) for a, b in pairs], Mapping.trivial(6, 6), ic_out
        )
        ic_depth = _depth_of(ic_out)

        gaps["ip"].append(ip_depth / opt_depth)
        gaps["ic"].append(ic_depth / opt_depth)
        rows.append([seed, opt_depth, ip_depth, ic_depth])

    table = format_table(
        ["instance", "optimal depth", "IP depth", "IC depth"], rows
    )
    headline = {
        "ip_over_optimal_depth_mean": float(np.mean(gaps["ip"])),
        "ic_over_optimal_depth_mean": float(np.mean(gaps["ic"])),
    }
    return FigureResult(
        figure="optimality_gap",
        description=(
            f"IP/IC vs exhaustive ordering search, 6-gate blocks on ring_6 "
            f"({instances} instances, 720 permutations each)"
        ),
        table=table,
        headline=headline,
    )


def test_optimality_gap(benchmark, record_figure):
    instances = scaled_instances(reduced=6, paper=20)
    result = benchmark.pedantic(
        _run, kwargs={"instances": instances}, rounds=1, iterations=1
    )
    record_figure(result)
    # Heuristics land within ~30% of the brute-force optimum on average.
    assert result.headline["ic_over_optimal_depth_mean"] < 1.30
    assert result.headline["ip_over_optimal_depth_mean"] < 1.40
