"""Backend-generality bench: the front-ends over two different routers.

The paper claims QAIM/IP/IC "can be integrated into any conventional
compiler".  This bench runs the same front-ends over both of our backends —
the qiskit-style layer-partitioning router and the SABRE-style lookahead
router — and checks that the *relative* story survives the backend swap:
IC beats QAIM-only on depth and gates under either router.
"""

import numpy as np

from repro.compiler import compile_with_method
from repro.experiments.figures.common import FigureResult
from repro.experiments.harness import make_problem, scaled_instances
from repro.experiments.reporting import format_table
from repro.hardware import ibmq_20_tokyo


def _run(instances):
    device = ibmq_20_tokyo()
    methods = ("qaim", "ip", "ic")
    routers = ("layered", "sabre")
    problem_rng = np.random.default_rng(4242)
    problems = [
        make_problem("er", 16, 0.4, problem_rng) for _ in range(instances)
    ]
    sums = {(r, m): [0, 0, 0] for r in routers for m in methods}
    for i, problem in enumerate(problems):
        program = problem.to_program([0.7], [0.35])
        for router in routers:
            for method in methods:
                compiled = compile_with_method(
                    program,
                    device,
                    method,
                    rng=np.random.default_rng((i, hash(router) & 0xFF)),
                    router=router,
                )
                entry = sums[(router, method)]
                entry[0] += compiled.depth()
                entry[1] += compiled.gate_count()
                entry[2] += compiled.swap_count

    rows = []
    means = {}
    for router in routers:
        for method in methods:
            d, g, s = sums[(router, method)]
            means[(router, method)] = (
                d / instances, g / instances, s / instances
            )
            rows.append(
                [router, method.upper()] + [round(v, 1) for v in means[(router, method)]]
            )

    headline = {}
    for router in routers:
        headline[f"{router}_ic_over_qaim_depth"] = (
            means[(router, "ic")][0] / means[(router, "qaim")][0]
        )
        headline[f"{router}_ic_over_qaim_gates"] = (
            means[(router, "ic")][1] / means[(router, "qaim")][1]
        )
    return FigureResult(
        figure="backend_comparison",
        description=(
            f"QAIM/IP/IC over layered vs SABRE routers "
            f"(16-node ER p=0.4 on ibmq_20_tokyo, {instances} instances)"
        ),
        table=format_table(
            ["router", "method", "mean depth", "mean gates", "mean swaps"],
            rows,
        ),
        headline=headline,
    )


def test_frontends_generalise_across_backends(benchmark, record_figure):
    instances = scaled_instances(reduced=8, paper=30)
    result = benchmark.pedantic(
        _run, kwargs={"instances": instances}, rounds=1, iterations=1
    )
    record_figure(result)
    # The paper's relative claims hold under both routers.
    assert result.headline["layered_ic_over_qaim_depth"] < 1.0
    assert result.headline["sabre_ic_over_qaim_depth"] < 1.0
    assert result.headline["layered_ic_over_qaim_gates"] < 1.0
    assert result.headline["sabre_ic_over_qaim_gates"] < 1.05
