"""Fleet resilience bench: SLO attainment under injected fleet faults.

The resilience layer (:mod:`repro.fleet.resilience`) exists so a fleet
keeps its SLO promises *through* operational faults — a device dying
mid-stream, a latency spike window, a calibration that flaps between
broken and healthy.  This bench drives the scripted fleet chaos
scenarios (:mod:`repro.experiments.chaos`) twice each on the identical
stream, fleet, and virtual clock:

* **baseline** — the pre-resilience scheduler: permanent ineligibility
  after repeated failures, no migration, no degraded recompile;
* **resilient** — circuit breakers with half-open recovery probes,
  failure-triggered migration, and the SLO-aware degrade ladder.

and reports the attainment margin, failed-job delta, and breaker /
migration activity per scenario.  It also checks the crash-safety
claim: a journalled run interrupted mid-stream and resumed must produce
byte-identical placements to an uninterrupted run.

Run it through pytest-benchmark with the suite, or standalone::

    PYTHONPATH=src python benchmarks/bench_fleet_resilience.py --quick

The standalone quick mode is the CI smoke step: it asserts the
device-death scenario's resilient attainment beats the breaker-less
baseline, that resilience never serves fewer jobs, and that
journal-resume equality holds exactly.
"""

import os
import sys
import tempfile

from repro.experiments.chaos import (
    ScriptedFleetExecutor,
    chaos_fleet,
    chaos_stream,
    default_fleet_scenarios,
    render_fleet_chaos,
    run_fleet_chaos,
    run_fleet_chaos_suite,
)
from repro.experiments.figures.common import FigureResult

JOBS = 90
QUICK_JOBS = 60
SEED = 5
#: Interrupt the journalled run after this many executor calls; the
#: resumed continuation must reproduce the uninterrupted run exactly.
CRASH_AFTER_CALLS = 25


def run_bench(jobs=JOBS):
    comparisons = run_fleet_chaos_suite(jobs=jobs, seed=SEED)

    rows = []
    raw = {}
    headline = {"jobs": float(jobs)}
    for comp in comparisons:
        base, res = comp.baseline.summary(), comp.resilient.summary()
        name = comp.scenario.name
        raw[name] = {"baseline": base, "resilient": res}
        prefix = name.replace("-", "_")
        headline[f"{prefix}_margin"] = comp.margin
        headline[f"{prefix}_baseline_attainment"] = base["attainment_rate"]
        headline[f"{prefix}_resilient_attainment"] = res["attainment_rate"]
        headline[f"{prefix}_baseline_failed"] = float(base["failed"])
        headline[f"{prefix}_resilient_failed"] = float(res["failed"])
        headline[f"{prefix}_migrations"] = float(res["migrations"])
        rows.append([name, base, res, comp.margin])

    headline["resume_equal"] = float(_resume_equality(jobs))
    return FigureResult(
        figure="fleet_resilience",
        description=(
            f"attainment under {len(comparisons)} fleet fault scenarios, "
            f"{jobs}-job stream, resilience layer vs breaker-less baseline"
        ),
        table=render_fleet_chaos(comparisons),
        headline=headline,
        raw=raw,
    )


def _resume_equality(jobs):
    """Interrupt a journalled device-death run mid-stream, resume it,
    and compare against an uninterrupted run of the same stream."""
    scenario = default_fleet_scenarios(jobs)[0]
    stream = chaos_stream(jobs, SEED)

    with tempfile.TemporaryDirectory() as tmp:
        journal = os.path.join(tmp, "crash.jsonl")
        full = run_fleet_chaos(
            scenario, fleet=chaos_fleet(), stream=stream,
            journal=os.path.join(tmp, "full.jsonl"),
        )

        fleet = chaos_fleet()
        scripted = ScriptedFleetExecutor(fleet, stream, scenario)
        calls = {"n": 0}

        def interrupted(job):
            calls["n"] += 1
            if calls["n"] > CRASH_AFTER_CALLS:
                raise KeyboardInterrupt
            return scripted(job)

        try:
            run_fleet_chaos(
                scenario, fleet=fleet, stream=stream,
                journal=journal, execute_fn=interrupted,
            )
            raise AssertionError("interrupting executor never fired")
        except KeyboardInterrupt:
            pass

        resumed = run_fleet_chaos(
            scenario, fleet=chaos_fleet(), stream=stream,
            journal=journal, resume=True,
        )

    assert resumed.resumed > 0, "resume replayed nothing"
    full_seq = [(r.job_id, r.device_label) for r in full.records]
    resumed_seq = [(r.job_id, r.device_label) for r in resumed.records]
    assert full_seq == resumed_seq, (
        "journal resume diverged from the uninterrupted run: "
        f"{len(full_seq)} vs {len(resumed_seq)} placements"
    )
    full_counts = {d.label: d.placed for d in full.devices}
    resumed_counts = {d.label: d.placed for d in resumed.devices}
    assert full_counts == resumed_counts, (
        f"per-device placement counts diverged: {full_counts} "
        f"vs {resumed_counts}"
    )
    assert full.makespan_ms == resumed.makespan_ms, (
        f"makespan diverged: {full.makespan_ms} vs {resumed.makespan_ms}"
    )
    return full_seq == resumed_seq


def _check(result):
    h = result.headline
    # The headline claim: when a device dies mid-stream, breakers plus
    # migration must beat permanent ineligibility on SLO attainment.
    assert h["device_death_margin"] > 0, (
        "device-death: resilience did not improve attainment "
        f"({h['device_death_baseline_attainment']:.3f} -> "
        f"{h['device_death_resilient_attainment']:.3f})"
    )
    assert h["device_death_migrations"] > 0, (
        "device-death: no migrations recorded — the recovery path "
        "never fired"
    )
    for prefix in ("device_death", "latency_spike", "flapping_calibration"):
        assert (
            h[f"{prefix}_resilient_failed"] <= h[f"{prefix}_baseline_failed"]
        ), f"{prefix}: resilience increased failed jobs"
        assert h[f"{prefix}_margin"] >= -0.005, (
            f"{prefix}: resilience regressed attainment by "
            f"{-100 * h[f'{prefix}_margin']:.1f}pp"
        )
    assert h["resume_equal"] == 1.0, "journal resume equality failed"


def test_fleet_resilience(benchmark, record_figure):
    result = benchmark.pedantic(run_bench, rounds=1, iterations=1)
    record_figure(result)
    _check(result)


def main(argv):
    quick = "--quick" in argv
    result = run_bench(jobs=QUICK_JOBS if quick else JOBS)
    print(result.render())
    _check(result)
    print(
        "OK: resilience layer beats the breaker-less baseline under "
        "device death and journal resume is exact"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
