"""Figure 11(a) bench: the normalised performance-summary table.

Regenerates the paper's summary table over 20-node graphs (ER + regular mix)
on ibmq_20_tokyo, normalised by NAIVE:

    method  depth  gates  time        (paper values)
    NAIVE   1.00   1.00   1.00
    QAIM    0.95   0.94   ~1
    IP      0.54   0.92   0.55
    IC      0.47   0.77   0.85
    VIC     0.48   0.77   0.86
"""

from repro.experiments.figures import fig11a
from repro.experiments.harness import scaled_instances


def test_fig11a_summary_table(benchmark, record_figure):
    instances = scaled_instances(reduced=5, paper=50)
    result = benchmark.pedantic(
        fig11a.run, kwargs={"instances": instances}, rounds=1, iterations=1
    )
    record_figure(result)
    h = result.headline
    # Ordering of the depth column: IC/VIC < IP < QAIM <= ~NAIVE.
    assert h["ic_depth_norm"] < h["ip_depth_norm"] < 1.0
    assert h["qaim_depth_norm"] < 1.05
    # Gate-count column: IC/VIC < IP/QAIM < NAIVE.
    assert h["ic_gates_norm"] < h["qaim_gates_norm"] <= 1.05
    # VIC tracks IC closely on depth/gates (variation awareness is ~free).
    assert abs(h["vic_depth_norm"] - h["ic_depth_norm"]) < 0.15
    assert abs(h["vic_gates_norm"] - h["ic_gates_norm"]) < 0.15
