"""Target-layer oracle bench: cold per-job recomputation vs interning.

Before the Target layer, every batch job against the same device re-ran
the O(n³) Floyd–Warshall analyses — hop distances at ``CouplingGraph``
construction and the VIC reliability table per compile.  The interning
registry (:func:`repro.hardware.target.intern_target`) keys that work off
the content fingerprint, so a stream of N content-identical device specs
pays for one analysis.

This bench replays such a stream both ways against a 36-qubit grid (the
paper's hypothetical large architecture) and reports the speedup.  Each
"job" arrives the way service jobs do — as a raw spec (qubit count, edge
list, error table) — and needs the hop matrix, the VIC distance matrix,
the radius-2 connectivity profile, and a handful of shortest paths.

Run it through pytest-benchmark with the suite, or standalone::

    PYTHONPATH=src python benchmarks/bench_target_oracles.py --quick

The standalone quick mode is the CI smoke step: it asserts the interned
stream beats cold recomputation and that re-interning yields the *same*
object (hit-rate 100% after the first job).
"""

import sys
import time

import numpy as np

from repro.experiments.figures.common import FigureResult
from repro.experiments.reporting import format_table
from repro.hardware.calibration import Calibration, random_calibration
from repro.hardware.coupling import CouplingGraph
from repro.hardware.devices import grid_device
from repro.hardware.target import (
    Target,
    clear_target_registry,
    intern_coupling,
    intern_target,
    target_registry_stats,
)

JOBS = 60
QUICK_JOBS = 12


def _device_spec():
    """One device spec the way a batch job file carries it."""
    coupling = grid_device(6, 6)
    calibration = random_calibration(
        coupling, rng=np.random.default_rng(417)
    )
    return {
        "num_qubits": coupling.num_qubits,
        "edges": sorted(coupling.edges),
        "name": coupling.name,
        "cnot_error": dict(calibration.cnot_error),
    }


def _touch_oracles(target):
    """The per-job oracle workload (what one compile reads)."""
    target.hop_distances()
    target.vic_distance_matrix()
    target.connectivity_profile(radius=2)
    n = target.num_qubits
    for q in range(0, n, 5):
        target.shortest_path(0, q, metric="vic")


def _run_cold(spec, jobs):
    """Every job rebuilds the device objects and recomputes the oracles."""
    clear_target_registry()
    start = time.perf_counter()
    for _ in range(jobs):
        coupling = CouplingGraph(
            spec["num_qubits"], spec["edges"], name=spec["name"]
        )
        calibration = Calibration(
            coupling=coupling, cnot_error=dict(spec["cnot_error"])
        )
        _touch_oracles(Target(coupling, calibration))
    return time.perf_counter() - start


def _run_interned(spec, jobs):
    """Every job goes through the intern registry (the service path)."""
    clear_target_registry()
    start = time.perf_counter()
    for _ in range(jobs):
        coupling = intern_coupling(
            spec["num_qubits"], spec["edges"], name=spec["name"]
        )
        calibration = Calibration(
            coupling=coupling, cnot_error=dict(spec["cnot_error"])
        )
        _touch_oracles(intern_target(coupling, calibration))
    elapsed = time.perf_counter() - start
    return elapsed, target_registry_stats()


def run_bench(jobs=JOBS):
    spec = _device_spec()
    # Warm-up outside timing so first-import costs don't skew either side.
    _run_cold(spec, 1)
    cold_s = _run_cold(spec, jobs)
    interned_s, stats = _run_interned(spec, jobs)
    clear_target_registry()

    speedup = cold_s / max(interned_s, 1e-12)
    rows = [
        ["cold (rebuild per job)", jobs, cold_s * 1e3, 1.0],
        ["interned (shared Target)", jobs, interned_s * 1e3, speedup],
    ]
    table = format_table(
        ["mode", "jobs", "total ms", "speedup"], rows, float_fmt="{:.3g}"
    )
    headline = {
        "jobs": float(jobs),
        "cold_ms": cold_s * 1e3,
        "interned_ms": interned_s * 1e3,
        "interned_speedup": speedup,
        "target_hit_rate": stats["target_hits"] / max(jobs, 1),
    }
    return FigureResult(
        figure="target_oracles",
        description=(
            f"Target oracle memoization on a 36-qubit grid: {jobs} "
            f"content-identical device specs, cold vs interned"
        ),
        table=table,
        headline=headline,
    )


def test_target_oracles(benchmark, record_figure):
    result = benchmark.pedantic(run_bench, rounds=1, iterations=1)
    record_figure(result)
    h = result.headline
    # Every job after the first must hit the registry...
    assert h["target_hit_rate"] == (h["jobs"] - 1) / h["jobs"]
    # ...and sharing one analysis must beat recomputing it per job.
    assert h["interned_speedup"] > 2.0


def main(argv):
    jobs = QUICK_JOBS if "--quick" in argv else JOBS
    result = run_bench(jobs=jobs)
    print(result.render())
    h = result.headline
    assert h["target_hit_rate"] == (h["jobs"] - 1) / h["jobs"], (
        "intern registry missed content-identical specs"
    )
    # Quick mode runs on noisy CI hosts; the bar is lower than the
    # pytest-benchmark assertion but still requires a real win.
    assert h["interned_speedup"] > 1.5, (
        f"interned path only {h['interned_speedup']:.2f}x vs cold"
    )
    print(
        f"OK: interned Target {h['interned_speedup']:.1f}x faster than "
        f"per-job recomputation over {jobs} jobs"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
