"""Figure 9 bench: IP(+QAIM) and IC(+QAIM) against QAIM-only compilation.

Regenerates the depth / gate-count / compile-time ratio bars of Figure 9
(20-node ER and regular workloads on ibmq_20_tokyo).

Paper targets: IC depth 39.3% below QAIM at 3-regular, ~68% at 8-regular;
IC gates ~16.7% below QAIM and IP; IP compile time ~37% below IC.
"""

from repro.experiments.figures import fig9
from repro.experiments.harness import scaled_instances


def test_fig9_ip_ic_vs_qaim(benchmark, record_figure):
    instances = scaled_instances(reduced=10, paper=50)
    result = benchmark.pedantic(
        fig9.run, kwargs={"instances": instances}, rounds=1, iterations=1
    )
    record_figure(result)
    # IP and IC must both cut depth sharply vs random-order QAIM.
    assert result.headline["ic_vs_qaim_depth_reg3"] < 0.85
    # Denser graphs widen IC's depth advantage (paper: 39% -> 68%).
    assert (
        result.headline["ic_vs_qaim_depth_reg8"]
        < result.headline["ic_vs_qaim_depth_reg3"]
    )
    # IC reduces gate count; IP stays roughly at QAIM's gate count.
    assert result.headline["ic_vs_qaim_gates_mean"] < 1.0
    assert result.headline["ip_vs_qaim_gates_mean"] > result.headline["ic_vs_qaim_gates_mean"]
    # IC produces lower depth than IP on average.
    assert result.headline["ic_vs_ip_depth_mean"] < 1.05
