"""Batch-service throughput bench: cold vs warm cache, serial vs pooled.

The service layer exists so the paper's Section V-H / Section VI guidance —
recompile with many packing limits and methods, keep per-workload winners —
stays cheap at production scale.  This bench drives a 200-job grid
(ER instances × {IP, IC, VIC} × packing limits) through the batch engine
four ways and reports jobs/sec:

* serial, cold cache — the baseline every other row is normalised to;
* serial, warm cache — immediate re-run, must be 100% cache hits;
* pooled, cold cache — ``ProcessPoolExecutor`` fan-out;
* pooled, warm cache — pool + hits (cache short-circuits before submit).

The pooled speedup scales with available cores; the ≥2x acceptance bar
only applies on ≥4-core hosts, so the assertion is conditioned on
``os.cpu_count()``.  Warm-cache speedup is core-count independent and is
asserted unconditionally.
"""

import os

import numpy as np

from repro.compiler.serialize import FORMAT_VERSION
from repro.experiments.figures.common import FigureResult
from repro.experiments.harness import make_problem
from repro.experiments.reporting import format_table
from repro.service import BatchEngine, CompileJob, ResultCache

GRID_JOBS = 200
POOL_WORKERS = min(4, os.cpu_count() or 1)


def _build_grid(num_jobs=GRID_JOBS):
    """ER instances x {ip, ic, vic} x packing limits, trimmed to size."""
    rng = np.random.default_rng(417)
    jobs = []
    instance = 0
    while len(jobs) < num_jobs:
        problem = make_problem("er", 16, 0.4, rng)
        program = problem.to_program([0.7], [0.35])
        for method in ("ip", "ic", "vic"):
            for limit in (None, 4, 8, 12):
                jobs.append(
                    CompileJob(
                        program=program,
                        device="ibmq_20_tokyo",
                        method=method,
                        packing_limit=limit,
                        seed=instance,
                        calibration="auto" if method == "vic" else None,
                        job_id=f"er16-{instance}-{method}-{limit}",
                    )
                )
        instance += 1
    return jobs[:num_jobs]


def _measure(jobs, workers, cache):
    report = BatchEngine(workers=workers, cache=cache).run(jobs)
    assert not report.failed, [r.error for r in report.failed]
    summary = report.summary()
    return summary


def _run():
    jobs = _build_grid()
    serial_cache = ResultCache(expected_version=FORMAT_VERSION)
    serial_cold = _measure(jobs, workers=0, cache=serial_cache)
    serial_warm = _measure(jobs, workers=0, cache=serial_cache)
    pooled_cache = ResultCache(expected_version=FORMAT_VERSION)
    pooled_cold = _measure(jobs, workers=POOL_WORKERS, cache=pooled_cache)
    pooled_warm = _measure(jobs, workers=POOL_WORKERS, cache=pooled_cache)

    base = serial_cold["jobs_per_s"]
    rows = []
    for label, summary in (
        ("serial / cold", serial_cold),
        ("serial / warm", serial_warm),
        ("pooled / cold", pooled_cold),
        ("pooled / warm", pooled_warm),
    ):
        rows.append(
            [
                label,
                summary["jobs_per_s"],
                summary["jobs_per_s"] / base,
                summary["cached"],
                summary["latency_p50_ms"],
                summary["latency_p95_ms"],
            ]
        )
    table = format_table(
        ["mode", "jobs/s", "vs serial cold", "hits", "p50 ms", "p95 ms"],
        rows,
    )
    headline = {
        "jobs": float(len(jobs)),
        "pool_workers": float(POOL_WORKERS),
        "serial_cold_jobs_per_s": serial_cold["jobs_per_s"],
        "warm_speedup": serial_warm["jobs_per_s"] / base,
        "pooled_speedup": pooled_cold["jobs_per_s"] / base,
        "warm_hit_fraction": serial_warm["cached"] / len(jobs),
    }
    return FigureResult(
        figure="service_throughput",
        description=(
            f"Batch service throughput on a {len(jobs)}-job grid "
            f"(16-node ER x {{IP, IC, VIC}} x packing limits, tokyo; "
            f"pool={POOL_WORKERS} workers)"
        ),
        table=table,
        headline=headline,
    )


def test_service_throughput(benchmark, record_figure):
    result = benchmark.pedantic(_run, rounds=1, iterations=1)
    record_figure(result)
    h = result.headline
    # An immediate re-run must be pure cache hits and much faster.
    assert h["warm_hit_fraction"] == 1.0
    assert h["warm_speedup"] > 2.0
    # The pooled ≥2x bar holds where the cores exist to back it.
    if (os.cpu_count() or 1) >= 4:
        assert h["pooled_speedup"] >= 2.0
