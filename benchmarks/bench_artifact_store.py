"""Artifact-store bench: steady-state interning, shm fan-out, byte identity.

The content-addressed store (:mod:`repro.store`) makes three measurable
promises; this bench checks each one:

1. **Steady-state throughput** — a stream of mixed jobs over a ~100-target
   working set resolves device analyses through the intern registry
   instead of recomputing Floyd–Warshall per job.  The bench replays the
   stream cold (rebuild + recompute every job) and through the store, and
   gates on a ≥2x speedup.
2. **Cross-process zero-copy** — a fresh worker process (a stand-in for a
   pool worker) resolves the whole working set's hop tables out of the
   shared-memory tier: every table is an shm attach hit and the worker
   publishes nothing, i.e. no per-worker re-analysis.  A control worker
   with ``REPRO_SHM_DISABLE=1`` recomputes everything and shows zero hits.
3. **Byte identity** — entries written in the old flat ``ResultCache``
   layout read back byte-identical through the sharded facade, before and
   after migration into their shards.

Run through pytest-benchmark with the suite, or standalone::

    PYTHONPATH=src python benchmarks/bench_artifact_store.py --quick

Quick mode is the CI smoke step: smaller working set and stream, same
assertions.
"""

import json
import os
import pathlib
import subprocess
import sys
import tempfile
import time

import numpy as np

from repro.experiments.figures.common import FigureResult
from repro.experiments.reporting import format_table
from repro.hardware.coupling import CouplingGraph
from repro.hardware.devices import grid_device
from repro.hardware.target import clear_target_registry, intern_coupling
from repro.service.cache import ResultCache
from repro.store import reset_store, store_stats

TARGETS = 100
OPS = 10_000
QUICK_TARGETS = 16
QUICK_OPS = 500

_SRC = os.path.abspath(
    os.path.join(os.path.dirname(__file__), "..", "src")
)

#: The fresh-worker workload, run in a real subprocess: intern the whole
#: working set and touch every hop table, then report elapsed seconds and
#: the shm tier's counters.  With shared memory on, every table resolves
#: zero-copy (attach hits, no publishes); with REPRO_SHM_DISABLE=1 every
#: table is recomputed locally.
_WORKER_CODE = """
import json, sys, time
from repro.hardware.target import intern_coupling
from repro.store import shared_tier

specs = json.load(open(sys.argv[1]))
start = time.perf_counter()
for spec in specs:
    coupling = intern_coupling(
        spec["num_qubits"], [tuple(e) for e in spec["edges"]],
        name=spec["name"],
    )
    coupling.distance_matrix()
elapsed = time.perf_counter() - start
print(json.dumps({"elapsed_s": elapsed, "shm": shared_tier().stats()}))
"""


def _working_set(num_targets):
    """``num_targets`` content-distinct devices of identical analysis cost
    (one 6x6 grid per distinct name → distinct fingerprints)."""
    base = grid_device(6, 6)
    edges = sorted(base.edges)
    return [
        {
            "num_qubits": base.num_qubits,
            "edges": [list(e) for e in edges],
            "name": f"grid-6x6-v{i}",
        }
        for i in range(num_targets)
    ]


def _job_stream(specs, ops, seed=417):
    """A mixed steady-state stream: ops draws over the working set."""
    rng = np.random.default_rng(seed)
    return rng.integers(0, len(specs), size=ops)


def _run_cold(specs, stream):
    """Every job rebuilds the graph and recomputes Floyd-Warshall."""
    start = time.perf_counter()
    for index in stream:
        spec = specs[index]
        coupling = CouplingGraph(
            spec["num_qubits"],
            [tuple(e) for e in spec["edges"]],
            name=spec["name"],
        )
        coupling.distance_matrix()
    return time.perf_counter() - start


def _run_store(specs, stream):
    """Every job goes through the intern registry (the service path)."""
    clear_target_registry()
    before = store_stats()
    start = time.perf_counter()
    for index in stream:
        spec = specs[index]
        coupling = intern_coupling(
            spec["num_qubits"],
            [tuple(e) for e in spec["edges"]],
            name=spec["name"],
        )
        coupling.distance_matrix()
    elapsed = time.perf_counter() - start
    delta = {
        "hits": store_stats()["registries"]["couplings"]["hits"]
        - before["registries"]["couplings"]["hits"],
        "misses": store_stats()["registries"]["couplings"]["misses"]
        - before["registries"]["couplings"]["misses"],
    }
    return elapsed, delta


def _run_worker(spec_file, disable_shm):
    env = dict(os.environ)
    env["PYTHONPATH"] = _SRC
    if disable_shm:
        env["REPRO_SHM_DISABLE"] = "1"
    else:
        env.pop("REPRO_SHM_DISABLE", None)
    proc = subprocess.run(
        [sys.executable, "-c", _WORKER_CODE, spec_file],
        capture_output=True,
        text=True,
        env=env,
        timeout=600,
    )
    if proc.returncode != 0:
        raise RuntimeError(f"store worker failed: {proc.stderr}")
    return json.loads(proc.stdout.strip().splitlines()[-1])


def _check_byte_identity(specs):
    """Old flat-layout entries must read back byte-identical through the
    sharded facade — cold (pre-migration) and warm (post-migration)."""
    payloads = {
        f"key-{i}": json.dumps(
            {"format_version": 1, "metrics": {"i": i}, "compiled": None},
            separators=(",", ":"),
        )
        for i in range(min(len(specs), 32))
    }
    with tempfile.TemporaryDirectory() as tmp:
        root = pathlib.Path(tmp)
        for key, text in payloads.items():
            (root / f"{key}.json").write_text(text)  # the old flat layout
        cold = ResultCache(directory=tmp, expected_version=1)
        for key, text in payloads.items():
            assert cold.get(key) == text, f"cold read differs for {key}"
            assert not (root / f"{key}.json").exists(), "migration skipped"
        warm = ResultCache(directory=tmp, expected_version=1)
        for key, text in payloads.items():
            assert warm.get(key) == text, f"warm read differs for {key}"
    return len(payloads)


def run_bench(num_targets=TARGETS, ops=OPS):
    specs = _working_set(num_targets)
    stream = _job_stream(specs, ops)

    # -- steady-state throughput -----------------------------------------
    _run_cold(specs, stream[:2])  # warm-up: first-import costs
    cold_s = _run_cold(specs, stream)
    store_s, registry_delta = _run_store(specs, stream)
    speedup = cold_s / max(store_s, 1e-12)

    # -- cross-process fan-out -------------------------------------------
    # The parent plays the role of the first worker: it interns (and
    # thereby publishes) the whole working set before the others start.
    with tempfile.NamedTemporaryFile(
        "w", suffix=".json", delete=False
    ) as handle:
        json.dump(specs, handle)
        spec_file = handle.name
    try:
        shm_worker = _run_worker(spec_file, disable_shm=False)
        cold_worker = _run_worker(spec_file, disable_shm=True)
    finally:
        os.unlink(spec_file)

    # -- byte identity ---------------------------------------------------
    identical = _check_byte_identity(specs)

    clear_target_registry()
    reset_store()

    rows = [
        ["cold (rebuild per job)", ops, cold_s * 1e3, 1.0],
        ["store (interned)", ops, store_s * 1e3, speedup],
        [
            "worker via shm",
            num_targets,
            shm_worker["elapsed_s"] * 1e3,
            cold_worker["elapsed_s"] / max(shm_worker["elapsed_s"], 1e-12),
        ],
        ["worker recompute", num_targets, cold_worker["elapsed_s"] * 1e3, 1.0],
    ]
    table = format_table(
        ["mode", "jobs", "total ms", "speedup"], rows, float_fmt="{:.3g}"
    )
    headline = {
        "ops": float(ops),
        "targets": float(num_targets),
        "cold_ms": cold_s * 1e3,
        "store_ms": store_s * 1e3,
        "store_speedup": speedup,
        "registry_hits": float(registry_delta["hits"]),
        "registry_misses": float(registry_delta["misses"]),
        "worker_shm_attach_hits": float(shm_worker["shm"]["attach_hits"]),
        "worker_shm_publishes": float(shm_worker["shm"]["publishes"]),
        "worker_cold_hits": float(
            cold_worker["shm"]["hits"] + cold_worker["shm"]["attach_hits"]
        ),
        "byte_identical_entries": float(identical),
    }
    return FigureResult(
        figure="artifact_store",
        description=(
            f"Artifact store: {ops} mixed jobs over a {num_targets}-target "
            f"working set, cold vs interned, plus shm worker fan-out"
        ),
        table=table,
        headline=headline,
    )


def _assert_headline(h):
    targets = h["targets"]
    # Steady state: one miss per distinct target, hits for the rest.
    assert h["registry_misses"] == targets, (
        f"{h['registry_misses']:.0f} registry misses for "
        f"{targets:.0f} distinct targets"
    )
    assert h["registry_hits"] == h["ops"] - targets
    # The worker resolved every hop table zero-copy: all attach hits, no
    # per-worker recompute-and-publish.
    assert h["worker_shm_attach_hits"] == targets, (
        f"worker attached {h['worker_shm_attach_hits']:.0f}/"
        f"{targets:.0f} tables from shared memory"
    )
    assert h["worker_shm_publishes"] == 0, "worker re-analysed a target"
    # The control worker (shm disabled) resolved nothing from shm.
    assert h["worker_cold_hits"] == 0
    assert h["byte_identical_entries"] > 0
    assert h["store_speedup"] > 2.0, (
        f"store path only {h['store_speedup']:.2f}x vs cold recompute"
    )


def test_artifact_store(benchmark, record_figure):
    result = benchmark.pedantic(
        run_bench,
        kwargs={"num_targets": QUICK_TARGETS, "ops": QUICK_OPS},
        rounds=1,
        iterations=1,
    )
    record_figure(result)
    _assert_headline(result.headline)


def main(argv):
    quick = "--quick" in argv
    result = run_bench(
        num_targets=QUICK_TARGETS if quick else TARGETS,
        ops=QUICK_OPS if quick else OPS,
    )
    print(result.render())
    _assert_headline(result.headline)
    h = result.headline
    print(
        f"OK: store path {h['store_speedup']:.1f}x over cold recompute; "
        f"worker resolved {h['worker_shm_attach_hits']:.0f}/"
        f"{h['targets']:.0f} tables from shared memory with zero "
        f"re-analysis"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
