"""Ablation benches for the design choices DESIGN.md calls out.

* QAIM connectivity-strength radius (1 vs 2 vs 3);
* IC's dynamic distance re-sorting vs a frozen-order variant;
* VIC's 1/R edge weighting vs -log R.
"""

from repro.experiments.figures import ablations
from repro.experiments.harness import scaled_instances


def test_ablation_qaim_radius(benchmark, record_figure):
    instances = scaled_instances(reduced=8, paper=25)
    result = benchmark.pedantic(
        ablations.qaim_radius_ablation,
        kwargs={"instances": instances},
        rounds=1,
        iterations=1,
    )
    record_figure(result)
    # Radius-1 (pure degree) should not beat the paper's radius-2 choice by
    # a wide margin anywhere.
    for key, value in result.headline.items():
        if key.endswith("r1_depth_vs_r2"):
            assert value > 0.85


def test_ablation_ic_dynamic_resorting(benchmark, record_figure):
    instances = scaled_instances(reduced=10, paper=50)
    result = benchmark.pedantic(
        ablations.ic_dynamic_ablation,
        kwargs={"instances": instances},
        rounds=1,
        iterations=1,
    )
    record_figure(result)
    # Dynamic re-sorting is IC's point: freezing the order must not reduce
    # the SWAP/gate cost.
    assert result.headline["er_frozen_over_dynamic_gates"] >= 0.97
    assert result.headline["regular_frozen_over_dynamic_gates"] >= 0.97


def test_ablation_vic_weight_scheme(benchmark, record_figure):
    instances = scaled_instances(reduced=10, paper=25)
    result = benchmark.pedantic(
        ablations.vic_weight_ablation,
        kwargs={"instances": instances},
        rounds=1,
        iterations=1,
    )
    record_figure(result)
    # Both weightings implement "prefer reliable couplings"; neither should
    # collapse. (-log R is theoretically cleaner and often a bit better.)
    assert result.headline["er_neglog_over_inv_sp"] > 0.5
    assert result.headline["regular_neglog_over_inv_sp"] > 0.5
