"""Fleet scheduler bench: SLO attainment per placement policy.

The fleet layer (:mod:`repro.fleet`) exists so a mixed compile/eval
stream with tiered SLOs lands on the device that can actually honour
each job's latency/fidelity/ARG bounds.  This bench drives one 200-job
stream (gold/silver/bronze/best-effort tiers, ~30% eval jobs) through
the same default fleet — seven slots spanning hardware topologies,
simulated grids/rings, and fault-injected degraded variants — once per
placement policy, and reports:

* SLO attainment rate (attained / SLO-constrained placements);
* p95 observed vs promised latency — did admission-time promises hold?;
* rejection counts by structured kind;
* per-device utilization spread (max - min busy share).

Run it through pytest-benchmark with the suite, or standalone::

    PYTHONPATH=src python benchmarks/bench_fleet_slo.py --quick

The standalone quick mode is the CI smoke step: a trimmed stream that
asserts every policy places jobs without executor failures, every
rejection carries a structured reason, and the policies do not collapse
into identical placements.
"""

import sys

from repro.experiments.figures.common import FigureResult
from repro.experiments.reporting import format_table
from repro.fleet import (
    POLICIES,
    DeviceSlot,
    FleetSpec,
    Scheduler,
    synthetic_stream,
)

JOBS = 200
QUICK_JOBS = 40
SEED = 2020
#: Virtual arrival gap — tight enough that queue waits build on slow
#: slots, so latency-aware and latency-blind policies actually diverge.
INTERARRIVAL_MS = 10.0
#: Eval-heavy mix: eval jobs carry the measurable ARG/fidelity outcomes
#: the gold quality bar binds on, so they are where policies separate.
EVAL_FRACTION = 0.5
#: Gold-heavy tiering (vs the library's service-like default): gold is
#: the only tier with a quality bar, so it is where fidelity-aware and
#: fidelity-blind placement diverge.
TIER_WEIGHTS = (
    ("gold", 0.35),
    ("silver", 0.25),
    ("bronze", 0.25),
    ("best-effort", 0.15),
)


def bench_fleet():
    """Five slots, listed the way an operator acquires them — drifted
    hardware first, clean capacity later.  The two ``trap`` slots pass
    gold's calibration-derived success floor (so admission lets gold in)
    while their drifted/inflated error rates push observed ARG past
    gold's 8% bar: first-fit order is a fidelity trap, and only
    placement that *looks at the calibration* avoids it."""
    return FleetSpec(
        [
            DeviceSlot(
                "trap-a", "ibmq_20_tokyo",
                faults={"drift_sigma": 1.2, "inflate": 4.0},
                fault_seed=SEED + 101,
            ),
            DeviceSlot(
                "trap-b", "ibmq_20_tokyo",
                faults={"drift_sigma": 1.0, "inflate": 3.0, "dead_edges": 4},
                fault_seed=SEED + 102,
            ),
            DeviceSlot("melbourne", "ibmq_16_melbourne"),
            DeviceSlot("tokyo", "ibmq_20_tokyo"),
            DeviceSlot("ring-12", "ring_12"),
        ]
    )


def run_bench(jobs=JOBS):
    fleet = bench_fleet()
    stream = synthetic_stream(
        jobs,
        seed=SEED,
        nodes=8,
        eval_fraction=EVAL_FRACTION,
        tier_weights=TIER_WEIGHTS,
    )

    rows = []
    summaries = {}
    for name in POLICIES:
        scheduler = Scheduler(
            fleet, name, interarrival_ms=INTERARRIVAL_MS
        )
        report = scheduler.run(stream)
        s = report.summary()
        util = list(s["utilization"].values())
        summaries[name] = s
        rows.append(
            [
                name,
                f"{s['attained']}/{s['constrained']}",
                f"{100 * s['attainment_rate']:.1f}%",
                s["failed"],
                s["rejected"],
                f"{s['p95_observed_ms']:.0f}",
                f"{s['p95_promised_ms']:.0f}",
                f"{s['makespan_ms']:.0f}",
                f"{100 * (max(util) - min(util)):.1f}%",
            ]
        )

    table = format_table(
        [
            "policy", "SLO", "attainment", "failed", "rejected",
            "p95 obs ms", "p95 promised ms", "makespan ms", "util spread",
        ],
        rows,
    )
    headline = {"jobs": float(len(stream))}
    for name, s in summaries.items():
        prefix = name.replace("-", "_")
        headline[f"{prefix}_attainment"] = s["attainment_rate"]
        headline[f"{prefix}_p95_observed_ms"] = s["p95_observed_ms"]
        headline[f"{prefix}_failed"] = float(s["failed"])
        headline[f"{prefix}_rejected"] = float(s["rejected"])
    return FigureResult(
        figure="fleet_slo",
        description=(
            f"SLO attainment across {len(POLICIES)} placement policies, "
            f"{len(stream)}-job mixed stream, {len(fleet)}-device fleet"
        ),
        table=table,
        headline=headline,
        raw={name: s for name, s in summaries.items()},
    )


def _check(result, *, require_policy_gap):
    h = result.headline
    for name in POLICIES:
        prefix = name.replace("-", "_")
        assert h[f"{prefix}_failed"] == 0, (
            f"{name}: {h[f'{prefix}_failed']:.0f} executor failures"
        )
        assert h[f"{prefix}_attainment"] > 0.5, (
            f"{name}: attainment collapsed to "
            f"{h[f'{prefix}_attainment']:.2f}"
        )
    if require_policy_gap:
        # The acceptance bar: greedy (placement-order-blind to load and
        # fidelity) must measurably differ from best-fidelity on the
        # same stream — otherwise the policies are dead code.
        gap = abs(h["greedy_attainment"] - h["best_fidelity_attainment"])
        assert gap > 0.01, (
            "greedy and best-fidelity produced indistinguishable "
            f"attainment ({h['greedy_attainment']:.3f} vs "
            f"{h['best_fidelity_attainment']:.3f})"
        )


def test_fleet_slo(benchmark, record_figure):
    result = benchmark.pedantic(run_bench, rounds=1, iterations=1)
    record_figure(result)
    _check(result, require_policy_gap=True)


def main(argv):
    quick = "--quick" in argv
    result = run_bench(jobs=QUICK_JOBS if quick else JOBS)
    print(result.render())
    # Quick mode trims the stream, so the greedy/best-fidelity gap can
    # legitimately shrink below measurability; only the full stream
    # enforces it.
    _check(result, require_policy_gap=not quick)
    print(
        f"OK: {len(POLICIES)} policies served "
        f"{result.headline['jobs']:.0f} jobs without executor failures"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
