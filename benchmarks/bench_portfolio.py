"""Portfolio-compilation bench (Section V-H / Section VI directives).

The paper advises compiling "multiple times with different packing limits"
and choosing IP/IC/VIC by application requirements.  The portfolio compiler
automates that: sweep (method x packing limit x seed), keep the best under
a chosen objective.  This bench measures how much the portfolio wins over
the best *fixed* configuration, and that its cost stays trivial.
"""

import numpy as np

from repro.compiler import compile_with_method
from repro.compiler.portfolio import compile_portfolio, depth_objective
from repro.experiments.figures.common import FigureResult
from repro.experiments.harness import make_problem, scaled_instances
from repro.experiments.reporting import format_table
from repro.hardware import ibmq_20_tokyo


def _run(instances):
    device = ibmq_20_tokyo()
    problem_rng = np.random.default_rng(909)
    fixed_depths = {"ip": [], "ic": []}
    portfolio_depths = []
    portfolio_times = []
    winners = {}
    for i in range(instances):
        problem = make_problem("er", 18, 0.4, problem_rng)
        program = problem.to_program([0.7], [0.35])
        for method in fixed_depths:
            compiled = compile_with_method(
                program, device, method, rng=np.random.default_rng(i)
            )
            fixed_depths[method].append(compiled.depth())
        result = compile_portfolio(
            program,
            device,
            methods=("ip", "ic"),
            packing_limits=(None, 4, 8),
            seeds=(0, 1, 2),
            objective=depth_objective,
        )
        portfolio_depths.append(result.best.compiled.depth())
        portfolio_times.append(
            sum(e.compiled.compile_time for e in result.entries)
        )
        key = (result.best.method, result.best.packing_limit)
        winners[key] = winners.get(key, 0) + 1

    rows = [
        ["IP (fixed)", float(np.mean(fixed_depths["ip"])), "-"],
        ["IC (fixed)", float(np.mean(fixed_depths["ic"])), "-"],
        [
            "portfolio (18 configs)",
            float(np.mean(portfolio_depths)),
            f"{float(np.mean(portfolio_times)) * 1e3:.1f} ms total",
        ],
    ]
    best_fixed = min(
        float(np.mean(fixed_depths[m])) for m in fixed_depths
    )
    headline = {
        "portfolio_mean_depth": float(np.mean(portfolio_depths)),
        "best_fixed_mean_depth": best_fixed,
        "portfolio_gain": 1.0 - float(np.mean(portfolio_depths)) / best_fixed,
        "portfolio_mean_seconds": float(np.mean(portfolio_times)),
    }
    winner_rows = [
        [f"{m}/limit={l}", count] for (m, l), count in sorted(winners.items(), key=lambda kv: -kv[1])
    ]
    table = (
        format_table(["configuration", "mean depth", "compile cost"], rows)
        + "\n\nwinning configurations:\n"
        + format_table(["config", "wins"], winner_rows)
    )
    return FigureResult(
        figure="portfolio",
        description=(
            f"Portfolio compilation vs fixed configurations "
            f"(18-node ER p=0.4 on tokyo, {instances} instances)"
        ),
        table=table,
        headline=headline,
    )


def test_portfolio_beats_fixed_configs(benchmark, record_figure):
    instances = scaled_instances(reduced=6, paper=25)
    result = benchmark.pedantic(
        _run, kwargs={"instances": instances}, rounds=1, iterations=1
    )
    record_figure(result)
    # The portfolio can only match or beat any fixed configuration.
    assert (
        result.headline["portfolio_mean_depth"]
        <= result.headline["best_fixed_mean_depth"] + 1e-9
    )
    assert result.headline["portfolio_gain"] >= 0.0
    # Whole portfolio stays far below the planner's 70 s budget.
    assert result.headline["portfolio_mean_seconds"] < 1.0
