"""Decoherence extension bench: depth matters once T2 is modelled.

The paper motivates depth reduction by decoherence ("a reduced circuit-depth
means less decoherence time for the qubits"), but its noisy runs conflate
gate errors with duration.  Our T2 extension separates them: with idle
dephasing enabled, two compilations of the *same* instance with similar gate
counts but different depths should diverge in ARG — the shallower circuit
survives better.

This bench measures ARG for QAIM (deep) vs IC (shallow) compilations with
the depolarizing model alone and with depolarizing + T2 dephasing, and
checks that adding T2 widens IC's advantage.
"""

import numpy as np

from repro.compiler import compile_with_method
from repro.experiments.figures.common import FigureResult
from repro.experiments.harness import make_problem, scaled_instances
from repro.experiments.reporting import format_table
from repro.hardware import ibmq_16_melbourne, melbourne_calibration
from repro.qaoa import evaluate_arg, optimize_qaoa
from repro.sim import NoiseModel, NoisySimulator, StatevectorSimulator


def _run(instances, t2_ns=40_000.0, shots=4096, trajectories=24):
    coupling = ibmq_16_melbourne()
    calibration = melbourne_calibration()
    ideal = StatevectorSimulator()
    sims = {
        "depol only": NoisySimulator(
            NoiseModel.from_calibration(calibration), trajectories=trajectories
        ),
        "depol + T2": NoisySimulator(
            NoiseModel.from_calibration(calibration, t2_ns=t2_ns),
            trajectories=trajectories,
        ),
    }
    problem_rng = np.random.default_rng(606)
    args = {(s, m): [] for s in sims for m in ("qaim", "ic")}
    depths = {m: [] for m in ("qaim", "ic")}
    for i in range(instances):
        problem = make_problem("er", 10, 0.5, problem_rng)
        opt = optimize_qaoa(problem, p=1)
        program = problem.to_program(opt.gammas, opt.betas)
        for method in ("qaim", "ic"):
            compiled = compile_with_method(
                program,
                coupling,
                method,
                calibration=calibration,
                rng=np.random.default_rng((i, method == "ic")),
            )
            depths[method].append(compiled.depth())
            for sim_name, sim in sims.items():
                result = evaluate_arg(
                    compiled, problem, ideal, sim, shots=shots,
                    rng=np.random.default_rng((i, sim_name == "depol only")),
                )
                args[(sim_name, method)].append(result.arg)

    rows = []
    headline = {}
    for sim_name in sims:
        for method in ("qaim", "ic"):
            mean = float(np.mean(args[(sim_name, method)]))
            rows.append(
                [sim_name, method.upper(), round(float(np.mean(depths[method])), 1), mean]
            )
            key = f"arg_{'t2' if 'T2' in sim_name else 'depol'}_{method}"
            headline[key] = mean
    headline["ic_advantage_depol"] = (
        headline["arg_depol_qaim"] - headline["arg_depol_ic"]
    )
    headline["ic_advantage_t2"] = (
        headline["arg_t2_qaim"] - headline["arg_t2_ic"]
    )
    return FigureResult(
        figure="t2_decoherence",
        description=(
            f"ARG with and without T2 idle dephasing (T2={t2_ns / 1000:.0f}us), "
            f"10-node ER p=0.5 on melbourne, {instances} instances"
        ),
        table=format_table(
            ["noise model", "method", "mean depth", "mean ARG (%)"], rows
        ),
        headline=headline,
    )


def test_t2_widens_depth_advantage(benchmark, record_figure):
    instances = scaled_instances(reduced=4, paper=15)
    result = benchmark.pedantic(
        _run, kwargs={"instances": instances}, rounds=1, iterations=1
    )
    record_figure(result)
    # T2 dephasing must cost everyone something...
    assert result.headline["arg_t2_ic"] >= result.headline["arg_depol_ic"] - 1.0
    # ...and the shallow compilation must keep (or grow) its lead.
    assert (
        result.headline["ic_advantage_t2"]
        >= result.headline["ic_advantage_depol"] - 2.0
    )
    assert result.headline["arg_t2_qaim"] > 0
