"""Method-comparison bench: the structural methods against the paper's.

Scores every registered methodology — QAIM / IP / IC / VIC plus the
odd/even SWAP network and the LHZ parity encoding — on the paper's two
devices (ibmq_16_melbourne, ibmq_20_tokyo): circuit depth, gate/SWAP
counts, and noisy-simulation ARG on one optimised ER instance family.

The structural methods trade differently: the SWAP network pays a fixed
O(n) brick schedule regardless of problem density (so it beats routed
flows on dense graphs), while parity swaps routing for locality at the
cost of a larger register (one qubit per edge) and constraint gadgets.

``python benchmarks/bench_methods.py --quick`` runs the depth-contract
smoke only (CI gate): SWAP-network brick layers must stay <= n per QAOA
level and both structural methods must pass their verifier plans.
"""

import numpy as np

from repro.compiler import compile_with_method
from repro.experiments.figures.common import FigureResult
from repro.experiments.harness import make_problem, scaled_instances
from repro.hardware import get_device, melbourne_calibration
from repro.hardware.calibration import random_calibration
from repro.qaoa import optimize_qaoa
from repro.sim import NoiseModel
from repro.sim.fastpath import evaluate_fast, fastpath_plan, parity_plan

METHODS = ("qaim", "ip", "ic", "vic", "swap_network", "parity")
DEVICES = ("ibmq_16_melbourne", "ibmq_20_tokyo")


def _calibration_for(coupling):
    if coupling.name == "ibmq_16_melbourne":
        return melbourne_calibration()
    return random_calibration(coupling, rng=np.random.default_rng(7))


def run(instances=3, num_nodes=6, shots=4096, trajectories=8, seed=7):
    """ARG + depth comparison across methods and devices.

    Instances stay small (``num_nodes`` defaults to 6) so the parity
    register — one qubit per edge — fits both devices and the noisy
    reference simulation stays exact-size.
    """
    rng = np.random.default_rng(seed)
    rows = {
        (device, method): {"arg": [], "depth": [], "swaps": []}
        for device in DEVICES
        for method in METHODS
    }
    for index in range(instances):
        problem = make_problem("er", num_nodes, 0.5, rng)
        if not problem.edges:
            continue
        opt = optimize_qaoa(problem, p=1)
        program = problem.to_program(opt.gammas, opt.betas)
        for device in DEVICES:
            coupling = get_device(device)
            calibration = _calibration_for(coupling)
            noise = NoiseModel.from_calibration(calibration)
            for method in METHODS:
                compiled = compile_with_method(
                    program,
                    coupling,
                    method,
                    calibration=calibration if method == "vic" else None,
                    rng=np.random.default_rng(seed + index),
                )
                outcome = evaluate_fast(
                    compiled,
                    noise=noise,
                    shots=shots,
                    trajectories=trajectories,
                    rng=np.random.default_rng(seed + index),
                )
                cell = rows[(device, method)]
                cell["arg"].append(outcome.arg)
                cell["depth"].append(compiled.circuit.depth())
                cell["swaps"].append(compiled.swap_count)

    headline = {}
    lines = [
        f"{'device':<20} {'method':<14} {'ARG%':>8} {'depth':>6} {'swaps':>6}"
    ]
    for device in DEVICES:
        for method in METHODS:
            cell = rows[(device, method)]
            if not cell["arg"]:
                continue
            arg = float(np.mean(cell["arg"]))
            depth = float(np.mean(cell["depth"]))
            swaps = float(np.mean(cell["swaps"]))
            short = device.replace("ibmq_", "")
            headline[f"arg_{method}_{short}"] = arg
            headline[f"depth_{method}_{short}"] = depth
            lines.append(
                f"{device:<20} {method:<14} {arg:>8.2f} {depth:>6.1f} "
                f"{swaps:>6.1f}"
            )
    return FigureResult(
        figure="methods",
        description=(
            "structural methods (swap_network, parity) vs QAIM/IP/IC/VIC: "
            f"noisy ARG and depth, ER(n={num_nodes}, p_edge=0.5), "
            f"{instances} instance(s)"
        ),
        table="\n".join(lines),
        headline=headline,
        raw={
            f"{device}:{method}": cell
            for (device, method), cell in rows.items()
        },
    )


def quick_smoke(num_nodes=6, seed=3):
    """CI depth-contract gate, no noisy simulation.

    For both devices: the SWAP network's per-level brick layers stay
    <= n and the circuit passes the commutation verifier; the parity
    circuit passes its dedicated plan.  Returns the collected depths.
    """
    rng = np.random.default_rng(seed)
    problem = make_problem("er", num_nodes, 0.6, rng)
    program = problem.to_program([0.7], [0.35])
    depths = {}
    for device in DEVICES:
        coupling = get_device(device)
        swapnet = compile_with_method(
            program, coupling, "swap_network",
            rng=np.random.default_rng(seed),
        )
        plan = fastpath_plan(swapnet)
        assert plan.ok, f"{device}: {plan.reason}"
        trace = {r.name: r for r in swapnet.pass_trace}
        layers = trace["route/swap_network"].info["brick_layers"]
        assert all(used <= program.num_qubits for used in layers), layers
        parity = compile_with_method(
            program, coupling, "parity", rng=np.random.default_rng(seed)
        )
        pplan = parity_plan(parity)
        assert pplan.ok, f"{device}: {pplan.reason}"
        depths[device] = {
            "swap_network": swapnet.circuit.depth(),
            "parity": parity.circuit.depth(),
        }
    return depths


def test_methods_quick_smoke():
    depths = quick_smoke()
    for device in DEVICES:
        assert depths[device]["swap_network"] > 0
        assert depths[device]["parity"] > 0


def test_methods_arg_comparison(benchmark, record_figure):
    instances = scaled_instances(reduced=2, paper=10)
    result = benchmark.pedantic(
        run,
        kwargs={"instances": instances},
        rounds=1,
        iterations=1,
    )
    record_figure(result)
    h = result.headline
    for device in ("16_melbourne", "20_tokyo"):
        for method in METHODS:
            assert f"arg_{method}_{device}" in h
            assert np.isfinite(h[f"arg_{method}_{device}"])
    # Depth contract: the SWAP network's schedule is O(n) by construction
    # — per level at most n brick layers of (cphase, swap) plus the H,
    # RZ and RX columns — independent of problem density.
    n = 6
    for device in ("16_melbourne", "20_tokyo"):
        assert h[f"depth_swap_network_{device}"] <= 2 * n + 4


if __name__ == "__main__":
    import argparse

    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--quick",
        action="store_true",
        help="depth-contract smoke only (no noisy ARG simulation)",
    )
    opts = parser.parse_args()
    if opts.quick:
        depths = quick_smoke()
        for device, cell in depths.items():
            print(
                f"{device}: swap_network depth={cell['swap_network']} "
                f"parity depth={cell['parity']} (contracts hold)"
            )
    else:
        print(run().render())
