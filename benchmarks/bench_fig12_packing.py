"""Figure 12 bench: impact of layer packing density.

Regenerates the packing-limit sweep of Figure 12 (36-node ER p=0.5 and
15-regular graphs on a 6x6 grid, IC(+QAIM), limit on CPHASE gates per
layer swept).

Paper target shapes: depth falls then degrades past ~11 gates/layer; gate
count creeps up mildly through the mid range and sharply at the top;
compile time falls monotonically with the packing limit.
"""

from repro.experiments.figures import fig12
from repro.experiments.harness import scaled_instances


def test_fig12_packing_density(benchmark, record_figure):
    instances = scaled_instances(reduced=4, paper=20)
    num_nodes = scaled_instances(reduced=25, paper=36)
    result = benchmark.pedantic(
        fig12.run,
        kwargs={"instances": instances, "num_nodes": num_nodes},
        rounds=1,
        iterations=1,
    )
    record_figure(result)
    h = result.headline
    # Serialising everything (limit 1) costs depth vs generous packing.
    assert h["er_depth_limit1_over_limit18"] > 1.0
    # Packing to the fullest costs gate count vs minimal packing.
    assert h["er_gates_limit18_over_limit1"] > 0.95
    # Compile time falls as packing grows (fewer layers to satisfy).
    assert h["er_time_limit1_over_limit18"] > 1.0
    assert h["regular_time_limit1_over_limit18"] > 1.0
