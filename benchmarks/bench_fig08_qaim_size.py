"""Figure 8 bench: QAIM vs GreedyV vs NAIVE across problem size.

Regenerates the depth/gate-count ratio series of Figure 8 (3-regular graphs,
12..20 nodes, ibmq_20_tokyo).

Paper targets: at 12 nodes QAIM is ~21.8% below NAIVE in depth and ~26.8%
in gates; the gap narrows as the problem fills the 20-qubit device.
"""

from repro.experiments.figures import fig8
from repro.experiments.harness import scaled_instances


def test_fig8_qaim_vs_problem_size(benchmark, record_figure):
    instances = scaled_instances(reduced=8, paper=20)
    result = benchmark.pedantic(
        fig8.run, kwargs={"instances": instances}, rounds=1, iterations=1
    )
    record_figure(result)
    # Small problems benefit from avoiding weakly connected corners.
    assert result.headline["qaim_vs_naive_depth_n12"] < 1.0
    assert result.headline["qaim_vs_naive_gates_n12"] < 1.0
    # The advantage at the smallest size exceeds the one at the largest.
    assert (
        result.headline["qaim_vs_naive_depth_n12"]
        <= result.headline["qaim_vs_naive_depth_n20"] + 0.10
    )
