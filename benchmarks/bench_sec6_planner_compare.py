"""Section VI bench: the temporal-planner comparison workload.

Regenerates the comparative-analysis numbers of Section VI: 8-node ER graphs
with exactly 8 edges on an 8-qubit cyclic device.  The paper reports IC
producing 8.51% smaller depth and 12.99% smaller gate count than the
planner [46] on this workload, while compiling in well under a second
(the planner needed ~70 s for 8-qubit circuits).

We compare IC against the conventional NAIVE flow (the planner is not
available); the reproduction targets are (a) a depth/gate-count win of at
least that magnitude and (b) millisecond-scale compile time.
"""

from repro.experiments.figures import sec6_planner
from repro.experiments.harness import scaled_instances


def test_sec6_planner_workload(benchmark, record_figure):
    instances = scaled_instances(reduced=20, paper=50)
    result = benchmark.pedantic(
        sec6_planner.run, kwargs={"instances": instances}, rounds=1,
        iterations=1,
    )
    record_figure(result)
    assert result.headline["ic_depth_reduction_vs_naive"] > 0.08
    assert result.headline["ic_gate_reduction_vs_naive"] > 0.05
    # The scalability headline: heuristics compile in milliseconds.
    assert result.headline["ic_mean_compile_seconds"] < 0.5
