"""Figure 7 bench: QAIM vs GreedyV vs NAIVE across graph density.

Regenerates the depth-ratio and gate-count-ratio bars of Figure 7 (20-node
ER p=0.1..0.6 and 3..8-regular graphs on ibmq_20_tokyo).

Paper targets: QAIM ~12%/20.5% below NAIVE in depth/gates at ER p=0.1,
~15.3%/21.3% at 3-regular; all methods converge on dense graphs.
"""

from repro.experiments.figures import fig7
from repro.experiments.harness import scaled_instances


def test_fig7_qaim_vs_baselines(benchmark, record_figure):
    instances = scaled_instances(reduced=10, paper=50)
    result = benchmark.pedantic(
        fig7.run, kwargs={"instances": instances}, rounds=1, iterations=1
    )
    record_figure(result)
    # Reproduction shape: QAIM helps on sparse workloads...
    assert result.headline["qaim_vs_naive_depth_er0.1"] < 1.0
    assert result.headline["qaim_vs_naive_gates_er0.1"] < 1.0
    assert result.headline["qaim_vs_naive_gates_reg3"] < 1.0
    # ...and the advantage shrinks as density rises (paper: "for dense
    # graphs, all three approaches perform similarly").
    assert (
        result.headline["qaim_vs_naive_depth_er0.6"]
        > result.headline["qaim_vs_naive_depth_er0.1"] - 0.05
    )
