"""Experiment harness: workloads, per-instance records, aggregation.

Everything the per-figure experiment modules share:

* workload construction (:func:`make_problem`) over the paper's two graph
  families (Erdős–Rényi by edge probability, d-regular by degree),
* compiling one instance with one method and collecting the paper's
  metrics into a flat :class:`RunRecord`,
* aggregation (mean per group) and ratio-vs-baseline computation — the
  paper reports most results as ratios against NAIVE or QAIM.

Scaling: each experiment accepts an ``instances`` count.  The benchmark
suite passes reduced defaults so it finishes on a laptop and honours the
``REPRO_FULL=1`` environment variable for paper-scale sweeps (see
:func:`scaled_instances`).
"""

from __future__ import annotations

import dataclasses
import os
import zlib
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np

from ..compiler import compile_with_method, measure_compiled
from ..hardware.calibration import Calibration
from ..hardware.coupling import CouplingGraph
from ..hardware.target import Target, intern_target
from ..qaoa.graphs import (
    erdos_renyi_fixed_edges,
    erdos_renyi_graph,
    random_regular_graph,
)
from ..qaoa.ising import IsingProblem
from ..qaoa.problems import MaxCutProblem

__all__ = [
    "RunRecord",
    "EvalRecord",
    "make_problem",
    "compile_record",
    "eval_record",
    "run_sweep",
    "mean_by",
    "pass_seconds",
    "ratio_table",
    "scaled_instances",
    "stable_hash",
    "DEFAULT_GAMMA",
    "DEFAULT_BETA",
]

#: Nominal QAOA angles for compile-only experiments.  Depth/gate-count/
#: compile-time are angle-independent, so any fixed value works; these are
#: in the typical optimal range for p=1 MaxCut.
DEFAULT_GAMMA = 0.7
DEFAULT_BETA = 0.35


def stable_hash(text: str) -> int:
    """Process-independent 16-bit hash (``hash()`` is salted per process,
    which would make seeded sweeps irreproducible across runs)."""
    return zlib.crc32(text.encode()) & 0xFFFF


def scaled_instances(reduced: int, paper: int) -> int:
    """Instance count for a sweep: ``reduced`` normally, ``paper`` when the
    ``REPRO_FULL`` environment variable is set truthy."""
    if os.environ.get("REPRO_FULL", "").strip() not in ("", "0", "false"):
        return paper
    return reduced


@dataclasses.dataclass
class RunRecord:
    """One compiled instance's metrics (a row in every figure's raw data).

    Attributes:
        family: Workload family label, e.g. ``"er"`` or ``"regular"``.
        param: Family parameter (edge probability or degree).
        num_nodes: Problem size.
        instance: Instance index within the sweep.
        method: Compilation method name.
        depth: Native circuit depth.
        gate_count: Native gate count.
        cnot_count: Native CNOT count.
        swap_count: Inserted SWAPs.
        compile_time: Wall-clock compile seconds.
        success_probability: Product-of-gate-success metric (when a
            calibration was supplied).
        pass_times: Per-pass wall seconds from the compile's pass trace
            (``{pass_name: seconds}``), so sweeps can attribute where
            compile time goes, not just its total.
    """

    family: str
    param: float
    num_nodes: int
    instance: int
    method: str
    depth: int
    gate_count: int
    cnot_count: int
    swap_count: int
    compile_time: float
    success_probability: Optional[float] = None
    pass_times: Optional[Dict[str, float]] = None


def make_problem(
    family: str,
    num_nodes: int,
    param: float,
    rng: np.random.Generator,
):
    """Sample one problem instance from a named workload family.

    Families:
        * ``"er"`` — Erdős–Rényi MaxCut with edge probability ``param``;
        * ``"regular"`` — ``param``-regular MaxCut graph;
        * ``"er_m"`` — ER with exactly ``param`` edges (Section VI);
        * ``"qubo"`` — random symmetric QUBO at off-diagonal density
          ``param`` (an :class:`~repro.qaoa.ising.IsingProblem` via
          :meth:`~repro.qaoa.ising.IsingProblem.from_qubo`), the unified
          frontend's non-MaxCut workload.
    """
    if family == "er":
        graph = erdos_renyi_graph(num_nodes, float(param), rng)
    elif family == "regular":
        graph = random_regular_graph(num_nodes, int(param), rng)
    elif family == "er_m":
        for _ in range(1000):
            graph = erdos_renyi_fixed_edges(num_nodes, int(param), rng)
            if graph.number_of_edges() > 0:
                break
    elif family == "qubo":
        matrix = np.zeros((num_nodes, num_nodes))
        diag = rng.uniform(-1.0, 1.0, size=num_nodes)
        matrix[np.diag_indices(num_nodes)] = diag
        pairs = [
            (i, j)
            for i in range(num_nodes)
            for j in range(i + 1, num_nodes)
        ]
        density = min(max(float(param), 0.0), 1.0)
        keep = rng.random(len(pairs)) < density
        if not keep.any():
            # A coupling-free QUBO has a trivial product-state optimum;
            # force at least one quadratic term so the instance exercises
            # the entangling layer.
            keep[int(rng.integers(len(pairs)))] = True
        for (i, j), kept in zip(pairs, keep):
            if kept:
                w = float(rng.uniform(-1.0, 1.0))
                matrix[i, j] = w
                matrix[j, i] = w
        return IsingProblem.from_qubo(matrix)
    else:
        raise ValueError(f"unknown workload family {family!r}")
    return MaxCutProblem.from_graph(graph)


def compile_record(
    problem: MaxCutProblem,
    coupling: CouplingGraph,
    method: str,
    rng: np.random.Generator,
    calibration: Optional[Calibration] = None,
    packing_limit: Optional[int] = None,
    gamma: float = DEFAULT_GAMMA,
    beta: float = DEFAULT_BETA,
    family: str = "",
    param: float = 0.0,
    instance: int = 0,
    target: Optional[Target] = None,
) -> RunRecord:
    """Compile one instance with one method and collect its metrics.

    When ``target`` is given, its memoized oracles (hop/VIC distance
    matrices, connectivity profiles) are shared across every record in
    the sweep instead of being recomputed per compile.
    """
    program = problem.to_program([gamma], [beta])
    if target is not None:
        compiled = compile_with_method(
            program,
            method=method,
            packing_limit=packing_limit,
            rng=rng,
            target=target,
        )
    else:
        compiled = compile_with_method(
            program,
            coupling,
            method,
            calibration=calibration,
            packing_limit=packing_limit,
            rng=rng,
        )
    metrics = measure_compiled(compiled, calibration=calibration)
    return RunRecord(
        family=family,
        param=param,
        num_nodes=problem.num_nodes,
        instance=instance,
        method=method,
        depth=metrics.depth,
        gate_count=metrics.gate_count,
        cnot_count=metrics.cnot_count,
        swap_count=metrics.swap_count,
        compile_time=metrics.compile_time,
        success_probability=metrics.success_probability,
        pass_times=pass_seconds(compiled.pass_trace),
    )


@dataclasses.dataclass
class EvalRecord(RunRecord):
    """A :class:`RunRecord` extended with fast-path evaluation numbers.

    Attributes:
        r0: Noiseless expected-cut ratio.
        rh: Noisy (hardware-simulated) expected-cut ratio.
        arg: Approximation Ratio Gap, ``100 * (r0 - rh) / r0``.
        fastpath: Whether the vectorized diagonal engine was used (False
            means the gate-by-gate fallback ran; numbers are identical
            either way).
    """

    r0: float = 0.0
    rh: float = 0.0
    arg: float = 0.0
    fastpath: bool = False


def eval_record(
    problem: MaxCutProblem,
    coupling: CouplingGraph,
    method: str,
    rng: np.random.Generator,
    calibration: Optional[Calibration] = None,
    packing_limit: Optional[int] = None,
    gammas: Optional[Sequence[float]] = None,
    betas: Optional[Sequence[float]] = None,
    shots: int = 4096,
    trajectories: int = 24,
    mode: str = "sampled",
    t2_ns: Optional[float] = None,
    eval_rng: Optional[np.random.Generator] = None,
    family: str = "",
    param: float = 0.0,
    instance: int = 0,
    target: Optional[Target] = None,
) -> EvalRecord:
    """Compile one instance and evaluate its ARG through the fast path.

    The evaluation-enabled sibling of :func:`compile_record`: same compile
    and metric collection, plus one :func:`repro.sim.fastpath.evaluate_fast`
    pass for ``r0``/``rh``/ARG.  The noise model comes from ``calibration``
    (ideal when ``None``); ``eval_rng`` defaults to a fresh child of
    ``rng`` so compile tie-breaks and sampling draws stay independent.
    """
    from ..sim.fastpath import evaluate_fast
    from ..sim.noise import NoiseModel

    program = problem.to_program(
        list(gammas) if gammas is not None else [DEFAULT_GAMMA],
        list(betas) if betas is not None else [DEFAULT_BETA],
    )
    if target is not None:
        compiled = compile_with_method(
            program,
            method=method,
            packing_limit=packing_limit,
            rng=rng,
            target=target,
        )
    else:
        compiled = compile_with_method(
            program,
            coupling,
            method,
            calibration=calibration,
            packing_limit=packing_limit,
            rng=rng,
        )
    metrics = measure_compiled(compiled, calibration=calibration)
    if calibration is not None:
        noise = NoiseModel.from_calibration(calibration, t2_ns=t2_ns)
    else:
        noise = NoiseModel.ideal(coupling.num_qubits)
        if t2_ns is not None:
            noise = dataclasses.replace(noise, t2_ns=float(t2_ns))
    outcome = evaluate_fast(
        compiled,
        noise=noise,
        shots=shots,
        trajectories=trajectories,
        rng=eval_rng if eval_rng is not None else np.random.default_rng(
            rng.integers(2**63)
        ),
        mode=mode,
    )
    return EvalRecord(
        family=family,
        param=param,
        num_nodes=problem.num_nodes,
        instance=instance,
        method=method,
        depth=metrics.depth,
        gate_count=metrics.gate_count,
        cnot_count=metrics.cnot_count,
        swap_count=metrics.swap_count,
        compile_time=metrics.compile_time,
        success_probability=metrics.success_probability,
        pass_times=pass_seconds(compiled.pass_trace),
        r0=outcome.r0,
        rh=outcome.rh,
        arg=outcome.arg,
        fastpath=outcome.fastpath,
    )


def pass_seconds(trace) -> Dict[str, float]:
    """Collapse a pass trace to ``{pass_name: total_seconds}`` (summing
    repeated pass names, which can occur in custom pipelines)."""
    out: Dict[str, float] = {}
    for record in trace:
        out[record.name] = out.get(record.name, 0.0) + record.seconds
    return out


def run_sweep(
    coupling: CouplingGraph,
    methods: Sequence[str],
    family: str,
    num_nodes: int,
    params: Sequence[float],
    instances: int,
    seed: int,
    calibration: Optional[Calibration] = None,
    packing_limit: Optional[int] = None,
) -> List[RunRecord]:
    """The generic sweep behind most figures.

    For each family parameter, ``instances`` random problems are sampled;
    every method compiles *the same* instances (shared problem, independent
    method rng derived from the seed) so ratios are paired, as in the paper.

    The (coupling, calibration) pair is interned into a single
    :class:`~repro.hardware.target.Target` up front so every compile in
    the sweep shares one set of memoized distance/connectivity oracles.
    """
    target = intern_target(coupling, calibration)
    records: List[RunRecord] = []
    for param in params:
        problem_rng = np.random.default_rng((seed, int(param * 1000), 0))
        for i in range(instances):
            problem = make_problem(family, num_nodes, param, problem_rng)
            for method in methods:
                method_rng = np.random.default_rng(
                    (seed, int(param * 1000), i, stable_hash(method))
                )
                records.append(
                    compile_record(
                        problem,
                        coupling,
                        method,
                        method_rng,
                        calibration=calibration,
                        packing_limit=packing_limit,
                        family=family,
                        param=param,
                        instance=i,
                        target=target,
                    )
                )
    return records


def mean_by(
    records: Iterable[RunRecord],
    metric: str,
    keys: Sequence[str] = ("family", "param", "method"),
) -> Dict[Tuple, float]:
    """Mean of ``metric`` grouped by the given record fields.

    ``None`` metric values (e.g. success probability without calibration)
    are skipped; a group with no values raises.
    """
    groups: Dict[Tuple, List[float]] = {}
    for rec in records:
        value = getattr(rec, metric)
        if value is None:
            continue
        key = tuple(getattr(rec, k) for k in keys)
        groups.setdefault(key, []).append(float(value))
    if not groups:
        raise ValueError(f"no values for metric {metric!r}")
    return {key: float(np.mean(vals)) for key, vals in groups.items()}


def ratio_table(
    records: Iterable[RunRecord],
    metric: str,
    baseline_method: str,
    keys: Sequence[str] = ("family", "param"),
) -> Dict[Tuple, Dict[str, float]]:
    """Mean-metric ratios of every method against a baseline, per group.

    Returns ``{group_key: {method: mean(method)/mean(baseline)}}`` — the
    shape of the paper's Figure 7/8/9 bar charts.
    """
    records = list(records)
    means = mean_by(records, metric, keys=tuple(keys) + ("method",))
    out: Dict[Tuple, Dict[str, float]] = {}
    group_keys = sorted({key[:-1] for key in means})
    for group in group_keys:
        base = means.get(group + (baseline_method,))
        if base is None or base == 0.0:
            raise ValueError(
                f"missing/zero baseline {baseline_method!r} for group {group}"
            )
        methods = {
            key[-1]: value / base
            for key, value in means.items()
            if key[:-1] == group
        }
        out[group] = methods
    return out
