"""Plain-text result tables for the benchmark harness.

The benches print the same rows/series the paper's figures show; these
helpers keep that output consistent and readable in a terminal or a
``tee``'d log file.
"""

from __future__ import annotations

from typing import Iterable, List, Mapping, Sequence, Tuple

__all__ = ["format_table", "format_ratio_table", "banner"]


def banner(title: str, width: int = 72) -> str:
    """A section header for bench output."""
    bar = "=" * width
    return f"\n{bar}\n{title}\n{bar}"


def format_table(
    headers: Sequence[str],
    rows: Iterable[Sequence],
    float_fmt: str = "{:.3f}",
) -> str:
    """Render rows as an aligned text table.

    Floats go through ``float_fmt``; everything else through ``str``.
    """
    rendered: List[List[str]] = [[str(h) for h in headers]]
    for row in rows:
        cells = []
        for cell in row:
            if isinstance(cell, float):
                cells.append(float_fmt.format(cell))
            else:
                cells.append(str(cell))
        rendered.append(cells)
    widths = [
        max(len(r[i]) for r in rendered) for i in range(len(headers))
    ]
    lines = []
    for idx, row in enumerate(rendered):
        line = "  ".join(cell.rjust(w) for cell, w in zip(row, widths))
        lines.append(line)
        if idx == 0:
            lines.append("  ".join("-" * w for w in widths))
    return "\n".join(lines)


def format_ratio_table(
    ratios: Mapping[Tuple, Mapping[str, float]],
    methods: Sequence[str],
    group_header: str = "group",
    float_fmt: str = "{:.3f}",
) -> str:
    """Render the output of :func:`repro.experiments.harness.ratio_table`.

    One row per group; one column per method (ratio vs baseline).
    """
    headers = [group_header] + list(methods)
    rows = []
    for group in sorted(ratios):
        label = "/".join(str(g) for g in group)
        rows.append([label] + [ratios[group].get(m, float("nan")) for m in methods])
    return format_table(headers, rows, float_fmt=float_fmt)
