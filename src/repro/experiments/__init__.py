"""Experiment harness regenerating every figure and table of the paper."""

from . import figures
from .chaos import (
    ChaosOutcome,
    ChaosReport,
    ChaosScenario,
    default_scenarios,
    run_chaos,
)
from .harness import (
    DEFAULT_BETA,
    DEFAULT_GAMMA,
    RunRecord,
    compile_record,
    make_problem,
    mean_by,
    pass_seconds,
    ratio_table,
    run_sweep,
    scaled_instances,
)
from .reporting import banner, format_ratio_table, format_table

__all__ = [
    "figures",
    "ChaosOutcome",
    "ChaosReport",
    "ChaosScenario",
    "default_scenarios",
    "run_chaos",
    "RunRecord",
    "make_problem",
    "compile_record",
    "run_sweep",
    "mean_by",
    "pass_seconds",
    "ratio_table",
    "scaled_instances",
    "DEFAULT_GAMMA",
    "DEFAULT_BETA",
    "format_table",
    "format_ratio_table",
    "banner",
]
