"""Ablation studies for the design choices DESIGN.md calls out.

Three ablations, each isolating one ingredient of the paper's methods:

* :func:`qaim_radius_ablation` — QAIM's connectivity-strength radius
  (1 = first neighbours only, 2 = paper default, 3 = deeper lookahead).
  The paper suggests larger radii for larger architectures.
* :func:`ic_dynamic_ablation` — IC's defining feature: re-sorting remaining
  CPHASEs by the *current* mapping's distances after every layer.  The
  ablated variant freezes gate ordering to the block's initial distances
  (routing still updates the mapping), quantifying how much of IC's win
  comes from observing mapping drift.
* :func:`vic_weight_ablation` — VIC's ``1/R`` edge weighting vs the
  information-theoretically cleaner ``-log R`` (which makes path weight =
  -log of path success, i.e. shortest path == most reliable path).  The
  paper uses ``1/R``; this checks how sensitive the result is.
"""

from __future__ import annotations

import math
from typing import Optional, Sequence

import numpy as np

from ...compiler.flow import compile_qaoa, run_incremental_flow
from ...compiler.ic import IncrementalCompiler
from ...compiler.metrics import success_probability
from ...compiler.qaim import qaim_placement
from ...hardware.devices import (
    grid_device,
    ibmq_16_melbourne,
    ibmq_20_tokyo,
    melbourne_calibration,
)
from ...hardware.target import intern_target
from ..harness import make_problem, scaled_instances
from ..reporting import format_table
from .common import FigureResult

__all__ = [
    "qaim_radius_ablation",
    "ic_dynamic_ablation",
    "vic_weight_ablation",
]

_GAMMA, _BETA = 0.7, 0.35


def qaim_radius_ablation(
    instances: Optional[int] = None,
    seed: int = 3001,
    radii: Sequence[int] = (1, 2, 3),
) -> FigureResult:
    """Sweep QAIM's connectivity-strength radius on tokyo and a 6x6 grid."""
    instances = instances or scaled_instances(reduced=6, paper=25)
    rows = []
    headline = {}
    for coupling, num_nodes in ((ibmq_20_tokyo(), 16), (grid_device(6, 6), 28)):
        per_radius = {}
        problem_rng = np.random.default_rng((seed, coupling.num_qubits))
        problems = [
            make_problem("er", num_nodes, 0.3, problem_rng)
            for _ in range(instances)
        ]
        for radius in radii:
            depths, gates = [], []
            for i, problem in enumerate(problems):
                rng = np.random.default_rng((seed, radius, i))
                program = problem.to_program([_GAMMA], [_BETA])
                compiled = compile_qaoa(
                    program,
                    coupling,
                    placement="qaim",
                    ordering="random",
                    rng=rng,
                    qaim_radius=radius,
                )
                depths.append(compiled.depth())
                gates.append(compiled.gate_count())
            per_radius[radius] = (
                float(np.mean(depths)),
                float(np.mean(gates)),
            )
            rows.append(
                [coupling.name, radius, per_radius[radius][0], per_radius[radius][1]]
            )
        base = per_radius[2]
        for radius in radii:
            headline[f"{coupling.name}_r{radius}_depth_vs_r2"] = (
                per_radius[radius][0] / base[0]
            )
    return FigureResult(
        figure="ablation_qaim_radius",
        description="QAIM connectivity-strength radius ablation",
        table=format_table(
            ["device", "radius", "mean depth", "mean gates"],
            rows,
            float_fmt="{:.4g}",
        ),
        headline=headline,
    )


class _FrozenOrderIncrementalCompiler(IncrementalCompiler):
    """IC variant that sorts by the block's *initial* mapping distances.

    Routing still mutates the mapping (SWAPs must), but layer formation
    ignores the drift — exactly the knowledge IC adds over IP-style static
    ordering.
    """

    def compile_block(self, gates, mapping, out, max_iterations: int = 100000):
        self._frozen = mapping.copy()
        return super().compile_block(
            gates, mapping, out, max_iterations=max_iterations
        )

    def _sorted_by_distance(self, gates, mapping):
        return super()._sorted_by_distance(gates, self._frozen)


def ic_dynamic_ablation(
    instances: Optional[int] = None,
    seed: int = 3002,
    num_nodes: int = 20,
) -> FigureResult:
    """IC with dynamic re-sorting vs frozen initial-distance ordering."""
    instances = instances or scaled_instances(reduced=8, paper=50)
    coupling = ibmq_20_tokyo()
    rows = []
    headline = {}
    for family, param in (("er", 0.4), ("regular", 5)):
        problem_rng = np.random.default_rng((seed, family == "er"))
        problems = [
            make_problem(family, num_nodes, param, problem_rng)
            for _ in range(instances)
        ]
        results = {}
        for variant in ("dynamic", "frozen"):
            depths, gates, swaps = [], [], []
            for i, problem in enumerate(problems):
                rng = np.random.default_rng((seed, i, variant == "dynamic"))
                program = problem.to_program([_GAMMA], [_BETA])
                mapping = qaim_placement(
                    program.pairs(), program.num_qubits, coupling, rng=rng
                )
                cls = (
                    IncrementalCompiler
                    if variant == "dynamic"
                    else _FrozenOrderIncrementalCompiler
                )
                compiler = cls(coupling, rng=rng)
                circuit, _, swap_count = run_incremental_flow(
                    program, mapping, compiler
                )
                from ...circuits import decompose_to_basis

                native = decompose_to_basis(circuit)
                depths.append(native.depth())
                gates.append(native.gate_count())
                swaps.append(swap_count)
            results[variant] = (
                float(np.mean(depths)),
                float(np.mean(gates)),
                float(np.mean(swaps)),
            )
            rows.append([family, variant] + list(results[variant]))
        headline[f"{family}_frozen_over_dynamic_gates"] = (
            results["frozen"][1] / results["dynamic"][1]
        )
        headline[f"{family}_frozen_over_dynamic_swaps"] = (
            results["frozen"][2] / max(results["dynamic"][2], 1e-9)
        )
    return FigureResult(
        figure="ablation_ic_dynamic",
        description="IC dynamic-distance re-sorting vs frozen ordering",
        table=format_table(
            ["family", "variant", "mean depth", "mean gates", "mean swaps"],
            rows,
            float_fmt="{:.4g}",
        ),
        headline=headline,
    )


def vic_weight_ablation(
    instances: Optional[int] = None,
    seed: int = 3003,
    num_nodes: int = 14,
) -> FigureResult:
    """VIC edge weighting: the paper's ``1/R`` vs ``-log R``."""
    instances = instances or scaled_instances(reduced=8, paper=25)
    coupling = ibmq_16_melbourne()
    calibration = melbourne_calibration()
    target = intern_target(coupling, calibration)
    inv_matrix = target.vic_distance_matrix()
    log_weights = {
        e: -math.log(calibration.cphase_success(*e))
        for e in coupling.edges
    }
    log_matrix = target.weighted_distances(log_weights)

    rows = []
    headline = {}
    for family, param in (("er", 0.5), ("regular", 4)):
        problem_rng = np.random.default_rng((seed, family == "er"))
        problems = [
            make_problem(family, num_nodes, param, problem_rng)
            for _ in range(instances)
        ]
        results = {}
        for scheme, matrix in (("inv", inv_matrix), ("neglog", log_matrix)):
            sps, depths = [], []
            for i, problem in enumerate(problems):
                rng = np.random.default_rng((seed, i, scheme == "inv"))
                program = problem.to_program([_GAMMA], [_BETA])
                mapping = qaim_placement(
                    program.pairs(), program.num_qubits, coupling, rng=rng
                )
                compiler = IncrementalCompiler(
                    coupling, distance_matrix=matrix, rng=rng
                )
                circuit, _, _ = run_incremental_flow(program, mapping, compiler)
                sps.append(success_probability(circuit, calibration))
                from ...circuits import decompose_to_basis

                depths.append(decompose_to_basis(circuit).depth())
            results[scheme] = (float(np.mean(sps)), float(np.mean(depths)))
            rows.append([family, scheme] + list(results[scheme]))
        headline[f"{family}_neglog_over_inv_sp"] = (
            results["neglog"][0] / results["inv"][0]
        )
    return FigureResult(
        figure="ablation_vic_weight",
        description="VIC edge-weight scheme: 1/R vs -log R",
        table=format_table(
            ["family", "scheme", "mean success prob", "mean depth"],
            rows,
            float_fmt="{:.4g}",
        ),
        headline=headline,
    )
