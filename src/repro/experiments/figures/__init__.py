"""Per-figure experiment modules; each exposes ``run(...) -> FigureResult``."""

from . import ablations, fig7, fig8, fig9, fig10, fig11a, fig11b, fig12, sec6_planner
from .common import FigureResult

__all__ = [
    "FigureResult",
    "fig7",
    "fig8",
    "fig9",
    "fig10",
    "fig11a",
    "fig11b",
    "fig12",
    "sec6_planner",
    "ablations",
]
