"""Shared result container for the per-figure experiment modules."""

from __future__ import annotations

import dataclasses
from typing import Dict, Optional

__all__ = ["FigureResult"]


@dataclasses.dataclass
class FigureResult:
    """Output of one figure/table reproduction.

    Attributes:
        figure: Identifier, e.g. ``"fig7"``.
        description: What the experiment measures.
        table: Formatted text table (the rows/series the paper plots).
        headline: Named scalar takeaways, e.g.
            ``{"qaim_vs_naive_depth_er0.1": 0.88}`` — these are what
            EXPERIMENTS.md compares against the paper's reported numbers.
        raw: Raw grouped numbers for programmatic consumers.
    """

    figure: str
    description: str
    table: str
    headline: Dict[str, float]
    raw: Optional[dict] = None

    def render(self) -> str:
        """Full text block: header, table, headline numbers."""
        lines = [f"[{self.figure}] {self.description}", "", self.table, ""]
        for key in sorted(self.headline):
            lines.append(f"  {key} = {self.headline[key]:.4f}")
        return "\n".join(lines)
