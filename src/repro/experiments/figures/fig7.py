"""Figure 7: QAIM vs GreedyV vs NAIVE across graph density.

Paper setup: 20-node MaxCut instances — Erdős–Rényi with edge probability
0.1..0.6 and d-regular with d = 3..8 — 50 instances per bar, compiled with
randomly ordered CPHASE gates on ibmq_20_tokyo; bars show the ratio of mean
depth and mean gate count of GreedyV and QAIM against NAIVE (lower is
better).

Paper headline numbers this module targets:

* ER p=0.1: QAIM depth 12% below NAIVE, 10.3% below GreedyV; gate count
  20.5% / 16.5% smaller.
* 3-regular: QAIM depth 15.3% / 12.6% shorter; gates 21.3% / 16.88% smaller.
* Dense graphs: all three approaches converge (no QAIM advantage).
"""

from __future__ import annotations

from typing import Optional, Sequence

from ...hardware.devices import ibmq_20_tokyo
from ..harness import ratio_table, run_sweep, scaled_instances
from ..reporting import format_ratio_table
from .common import FigureResult

__all__ = ["run"]

METHODS = ("naive", "greedy_v", "qaim")
ER_PROBS = (0.1, 0.2, 0.3, 0.4, 0.5, 0.6)
REGULAR_DEGREES = (3, 4, 5, 6, 7, 8)


def run(
    instances: Optional[int] = None,
    seed: int = 2020,
    num_nodes: int = 20,
    er_probs: Sequence[float] = ER_PROBS,
    degrees: Sequence[int] = REGULAR_DEGREES,
) -> FigureResult:
    """Reproduce Figure 7 (depth & gate-count ratios vs graph density)."""
    instances = instances or scaled_instances(reduced=8, paper=50)
    coupling = ibmq_20_tokyo()
    records = run_sweep(
        coupling, METHODS, "er", num_nodes, er_probs, instances, seed
    )
    records += run_sweep(
        coupling, METHODS, "regular", num_nodes, degrees, instances, seed + 1
    )

    depth_ratios = ratio_table(records, "depth", "naive")
    gate_ratios = ratio_table(records, "gate_count", "naive")

    table = (
        "depth ratio vs NAIVE\n"
        + format_ratio_table(depth_ratios, METHODS, group_header="family/param")
        + "\n\ngate-count ratio vs NAIVE\n"
        + format_ratio_table(gate_ratios, METHODS, group_header="family/param")
    )

    def pick(ratios, family, param, method):
        return ratios[(family, param)][method]

    sparse_p, dense_p = min(er_probs), max(er_probs)
    sparse_d, dense_d = min(degrees), max(degrees)
    headline = {
        f"qaim_vs_naive_depth_er{sparse_p}": pick(
            depth_ratios, "er", sparse_p, "qaim"
        ),
        f"qaim_vs_naive_gates_er{sparse_p}": pick(
            gate_ratios, "er", sparse_p, "qaim"
        ),
        f"qaim_vs_naive_depth_reg{sparse_d}": pick(
            depth_ratios, "regular", sparse_d, "qaim"
        ),
        f"qaim_vs_naive_gates_reg{sparse_d}": pick(
            gate_ratios, "regular", sparse_d, "qaim"
        ),
        f"greedyv_vs_naive_depth_reg{sparse_d}": pick(
            depth_ratios, "regular", sparse_d, "greedy_v"
        ),
        # dense-graph convergence: QAIM's advantage at the densest settings
        f"qaim_vs_naive_depth_er{dense_p}": pick(
            depth_ratios, "er", dense_p, "qaim"
        ),
        f"qaim_vs_naive_depth_reg{dense_d}": pick(
            depth_ratios, "regular", dense_d, "qaim"
        ),
    }
    return FigureResult(
        figure="fig7",
        description=(
            f"QAIM vs GreedyV vs NAIVE, {num_nodes}-node graphs on "
            f"ibmq_20_tokyo ({instances} instances/bar)"
        ),
        table=table,
        headline=headline,
        raw={"depth": depth_ratios, "gate_count": gate_ratios},
    )
