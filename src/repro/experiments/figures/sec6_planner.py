"""Section VI comparative analysis: the temporal-planner workload.

The paper compares against Venturelli et al.'s temporal-planner compiler
[46] on its workload: 50 instances of 8-node Erdős–Rényi graphs with exactly
8 edges on an 8-qubit *cyclic* architecture, reporting that IC produces
8.51% smaller depth and 12.99% smaller gate count, while compiling orders of
magnitude faster (the planner needed ~70 s for 8-qubit circuits; the
heuristic flows stay well under a second).

We do not have the planner; the reproduction target here is (a) IC beating
the conventional NAIVE flow on this workload by a margin in that ballpark
and (b) compile times in the milliseconds — demonstrating the scalability
claim ("reasonably good quality solutions ... within 10s" for 36 qubits is
exercised by the Figure 12 bench).
"""

from __future__ import annotations

from typing import Optional

from ...hardware.devices import ring_device
from ..harness import mean_by, run_sweep, scaled_instances
from ..reporting import format_table
from .common import FigureResult

__all__ = ["run"]

METHODS = ("naive", "ic")


def run(instances: Optional[int] = None, seed: int = 2027) -> FigureResult:
    """Reproduce the Section VI 8-qubit cyclic-architecture comparison."""
    instances = instances or scaled_instances(reduced=15, paper=50)
    coupling = ring_device(8)
    records = run_sweep(
        coupling, METHODS, "er_m", 8, (8,), instances, seed
    )
    means = {
        metric: mean_by(records, metric, keys=("method",))
        for metric in ("depth", "gate_count", "compile_time")
    }
    rows = []
    for method in METHODS:
        rows.append(
            [
                method.upper(),
                means["depth"][(method,)],
                means["gate_count"][(method,)],
                means["compile_time"][(method,)],
            ]
        )
    depth_gain = 1.0 - means["depth"][("ic",)] / means["depth"][("naive",)]
    gate_gain = (
        1.0 - means["gate_count"][("ic",)] / means["gate_count"][("naive",)]
    )
    table = format_table(
        ["method", "mean depth", "mean gates", "mean time (s)"],
        rows,
        float_fmt="{:.4g}",
    )
    headline = {
        "ic_depth_reduction_vs_naive": depth_gain,
        "ic_gate_reduction_vs_naive": gate_gain,
        "ic_mean_compile_seconds": means["compile_time"][("ic",)],
    }
    return FigureResult(
        figure="sec6_planner",
        description=(
            f"8-node / 8-edge ER graphs on ring_8 "
            f"({instances} instances; planner-comparison workload)"
        ),
        table=table,
        headline=headline,
        raw={"means": means},
    )
