"""Figure 8: QAIM vs GreedyV vs NAIVE across problem size.

Paper setup: 3-regular graphs with 12..20 nodes (20 instances per point),
randomly ordered CPHASE gates, ibmq_20_tokyo.  Ratios of mean depth and
gate count against NAIVE are plotted per node count.

Paper headline: at the smallest size (12 nodes) QAIM compiles circuits with
21.8% smaller depth and 26.8% smaller gate count than NAIVE (12.2% / 17.2%
vs GreedyV); the advantage shrinks as the problem fills the device.
"""

from __future__ import annotations

from typing import Optional, Sequence

from ...hardware.devices import ibmq_20_tokyo
from ..harness import ratio_table, run_sweep, scaled_instances
from ..reporting import format_ratio_table
from .common import FigureResult

__all__ = ["run"]

METHODS = ("naive", "greedy_v", "qaim")
NODE_SIZES = (12, 14, 16, 18, 20)
DEGREE = 3


def run(
    instances: Optional[int] = None,
    seed: int = 2021,
    node_sizes: Sequence[int] = NODE_SIZES,
) -> FigureResult:
    """Reproduce Figure 8 (ratios vs problem size, 3-regular graphs)."""
    instances = instances or scaled_instances(reduced=6, paper=20)
    coupling = ibmq_20_tokyo()
    records = []
    for n in node_sizes:
        recs = run_sweep(
            coupling, METHODS, "regular", n, (DEGREE,), instances, seed + n
        )
        for rec in recs:
            rec.param = n  # group by node count, not degree
        records += recs

    depth_ratios = ratio_table(records, "depth", "naive")
    gate_ratios = ratio_table(records, "gate_count", "naive")

    table = (
        "depth ratio vs NAIVE (3-regular, by node count)\n"
        + format_ratio_table(depth_ratios, METHODS, group_header="family/n")
        + "\n\ngate-count ratio vs NAIVE\n"
        + format_ratio_table(gate_ratios, METHODS, group_header="family/n")
    )

    smallest = min(node_sizes)
    largest = max(node_sizes)
    headline = {
        f"qaim_vs_naive_depth_n{smallest}": depth_ratios[("regular", smallest)]["qaim"],
        f"qaim_vs_naive_gates_n{smallest}": gate_ratios[("regular", smallest)]["qaim"],
        f"greedyv_vs_naive_depth_n{smallest}": depth_ratios[("regular", smallest)][
            "greedy_v"
        ],
        f"qaim_vs_naive_depth_n{largest}": depth_ratios[("regular", largest)]["qaim"],
    }
    return FigureResult(
        figure="fig8",
        description=(
            f"QAIM vs GreedyV vs NAIVE, 3-regular graphs of "
            f"{min(node_sizes)}-{max(node_sizes)} nodes on ibmq_20_tokyo "
            f"({instances} instances/point)"
        ),
        table=table,
        headline=headline,
        raw={"depth": depth_ratios, "gate_count": gate_ratios},
    )
