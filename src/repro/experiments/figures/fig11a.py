"""Figure 11(a): performance summary of all methodologies.

Paper setup: 600 20-node MaxCut instances (the Figure 7 ER + regular mix),
compiled with NAIVE, QAIM(+random order), IP(+QAIM), IC(+QAIM) and
VIC(+QAIM) on ibmq_20_tokyo; VIC uses CNOT error rates drawn from
N(mu=1e-2, sigma=0.5e-2).  The table reports mean depth, gate count and
compile time normalised by NAIVE.

Paper's table:

    method  depth  gates  time
    NAIVE   1.00   1.00   1.00
    QAIM    0.95   0.94   ~1
    IP      0.54   0.92   0.55
    IC      0.47   0.77   0.85
    VIC     0.48   0.77   0.86
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from ...hardware.calibration import random_calibration
from ...hardware.devices import ibmq_20_tokyo
from ..harness import mean_by, run_sweep, scaled_instances
from ..reporting import format_table
from .common import FigureResult

__all__ = ["run", "METHODS"]

METHODS = ("naive", "qaim", "ip", "ic", "vic")
ER_PROBS = (0.1, 0.2, 0.3, 0.4, 0.5, 0.6)
REGULAR_DEGREES = (3, 4, 5, 6, 7, 8)


def run(
    instances: Optional[int] = None,
    seed: int = 2024,
    num_nodes: int = 20,
    er_probs: Sequence[float] = ER_PROBS,
    degrees: Sequence[int] = REGULAR_DEGREES,
) -> FigureResult:
    """Reproduce Figure 11(a)'s normalised summary table."""
    instances = instances or scaled_instances(reduced=4, paper=50)
    coupling = ibmq_20_tokyo()
    calibration = random_calibration(
        coupling, rng=np.random.default_rng(seed), mean=1.0e-2, sigma=0.5e-2
    )
    records = run_sweep(
        coupling,
        METHODS,
        "er",
        num_nodes,
        er_probs,
        instances,
        seed,
        calibration=calibration,
    )
    records += run_sweep(
        coupling,
        METHODS,
        "regular",
        num_nodes,
        degrees,
        instances,
        seed + 1,
        calibration=calibration,
    )

    rows = []
    headline = {}
    metrics = ("depth", "gate_count", "compile_time")
    means = {
        metric: mean_by(records, metric, keys=("method",)) for metric in metrics
    }
    base = {metric: means[metric][("naive",)] for metric in metrics}
    for method in METHODS:
        normalised = [
            means[metric][(method,)] / base[metric] for metric in metrics
        ]
        rows.append([method.upper()] + normalised)
        headline[f"{method}_depth_norm"] = normalised[0]
        headline[f"{method}_gates_norm"] = normalised[1]
        headline[f"{method}_time_norm"] = normalised[2]

    table = format_table(
        ["method", "depth (vs NAIVE)", "gates (vs NAIVE)", "time (vs NAIVE)"],
        rows,
    )
    total = len({(r.family, r.param, r.instance) for r in records})
    return FigureResult(
        figure="fig11a",
        description=(
            f"Summary over {total} {num_nodes}-node graphs (ER + regular) "
            "on ibmq_20_tokyo, normalised by NAIVE"
        ),
        table=table,
        headline=headline,
        raw={"means": means},
    )
