"""Figure 12: impact of layer packing density.

Paper setup: 36-node MaxCut instances — 20 ER graphs (edge probability 0.5)
and 20 15-regular graphs — compiled with IC(+QAIM) on a hypothetical
36-qubit 6x6 grid, with the maximum allowed CPHASE gates per layer (the
"packing limit") swept.  Mean depth, gate count and compile time are plotted
against the limit (the paper scales them by 283 / 1428 / 9.48 s).

Paper headline shapes:

* depth falls with packing limit, then degrades past ~11 gates/layer;
* gate count rises mildly between limits 3..11 (12.7% ER / 16.2% regular),
  then sharply;
* compile time falls monotonically with packing limit.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from ...hardware.devices import grid_device
from ..harness import mean_by, run_sweep, scaled_instances
from ..reporting import format_table
from .common import FigureResult

__all__ = ["run", "PACKING_LIMITS"]

PACKING_LIMITS = (1, 3, 5, 7, 9, 11, 13, 15, 18)


def run(
    instances: Optional[int] = None,
    seed: int = 2026,
    num_nodes: Optional[int] = None,
    packing_limits: Sequence[int] = PACKING_LIMITS,
) -> FigureResult:
    """Reproduce Figure 12 (depth/gates/time vs packing limit)."""
    instances = instances or scaled_instances(reduced=3, paper=20)
    num_nodes = num_nodes or scaled_instances(reduced=25, paper=36)
    # The grid must fit the problem: 6x6 for paper scale, larger if asked.
    side = 6 if num_nodes <= 36 else int(np.ceil(np.sqrt(num_nodes)))
    coupling = grid_device(side, side)
    regular_degree = scaled_instances(reduced=8, paper=15)

    rows = []
    headline = {}
    raw = {}
    for family, param in (("er", 0.5), ("regular", regular_degree)):
        series = {}
        for limit in packing_limits:
            records = run_sweep(
                coupling,
                ("ic",),
                family,
                num_nodes,
                (param,),
                instances,
                seed,  # same seed for every limit -> identical instances
                packing_limit=limit,
            )
            depth = mean_by(records, "depth", keys=("method",))[("ic",)]
            gates = mean_by(records, "gate_count", keys=("method",))[("ic",)]
            ctime = mean_by(records, "compile_time", keys=("method",))[("ic",)]
            rows.append([family, limit, depth, gates, ctime])
            series[limit] = (depth, gates, ctime)
        raw[family] = series
        lo, hi = min(packing_limits), max(packing_limits)
        headline[f"{family}_depth_limit{lo}_over_limit{hi}"] = (
            series[lo][0] / series[hi][0]
        )
        headline[f"{family}_gates_limit{hi}_over_limit{lo}"] = (
            series[hi][1] / series[lo][1]
        )
        headline[f"{family}_time_limit{lo}_over_limit{hi}"] = (
            series[lo][2] / series[hi][2]
        )

    table = format_table(
        ["family", "packing limit", "mean depth", "mean gates", "mean time (s)"],
        rows,
        float_fmt="{:.4g}",
    )
    return FigureResult(
        figure="fig12",
        description=(
            f"Packing-limit sweep with IC(+QAIM) on {coupling.name} "
            f"({num_nodes}-node graphs, {instances} instances/point)"
        ),
        table=table,
        headline=headline,
        raw=raw,
    )
