"""Figure 11(b): ARG validation on (simulated) hardware.

Paper setup: 20 12-node ER graphs (edge probability 0.5) and 20 12-node
6-regular graphs; the hybrid loop (L-BFGS-B, tol 1e-6) finds optimal p=1
parameters; circuits are compiled with QAIM / IP / IC / VIC for
ibmq_16_melbourne, sampled 40960 times noiselessly and on hardware, and the
Approximation Ratio Gap is computed per instance.

We substitute the QPU with the Monte-Carlo Pauli-trajectory simulator under
the Figure 10(a) calibration (see DESIGN.md, "Substitutions"); shots and
problem sizes default lower for laptop runtimes (``REPRO_FULL=1`` restores
paper scale).

Paper headline: mean ARGs QAIM -20.89%, IP -18.29%, IC -16.73%,
VIC -15.50% (sign convention: the paper plots negative gaps; we report
positive ARG = 100*(r0-rh)/r0, so *lower is better* and the ordering
QAIM > IP > IC > VIC is the reproduction target — IC ~8.5% below IP,
VIC ~7.4% below IC).
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ...compiler import compile_with_method
from ...hardware.devices import ibmq_16_melbourne, melbourne_calibration
from ...qaoa.evaluation import evaluate_arg
from ...qaoa.optimizer import optimize_qaoa
from ...sim.noise import NoiseModel, NoisySimulator
from ...sim.statevector import StatevectorSimulator
from ..harness import make_problem, scaled_instances, stable_hash
from ..reporting import format_table
from .common import FigureResult

__all__ = ["run", "METHODS"]

METHODS = ("qaim", "ip", "ic", "vic")


def run(
    instances: Optional[int] = None,
    seed: int = 2025,
    num_nodes: Optional[int] = None,
    shots: Optional[int] = None,
    trajectories: int = 24,
) -> FigureResult:
    """Reproduce Figure 11(b): mean ARG per method per workload family."""
    instances = instances or scaled_instances(reduced=4, paper=20)
    num_nodes = num_nodes or scaled_instances(reduced=10, paper=12)
    shots = shots or scaled_instances(reduced=4096, paper=40960)
    coupling = ibmq_16_melbourne()
    calibration = melbourne_calibration()
    ideal = StatevectorSimulator()
    noisy = NoisySimulator(
        NoiseModel.from_calibration(calibration), trajectories=trajectories
    )

    rows = []
    headline = {}
    args = {}
    for family, param in (("er", 0.5), ("regular", 6)):
        problem_rng = np.random.default_rng((seed, family == "er"))
        per_method = {m: [] for m in METHODS}
        for i in range(instances):
            problem = make_problem(family, num_nodes, param, problem_rng)
            opt = optimize_qaoa(problem, p=1)
            program = problem.to_program(opt.gammas, opt.betas)
            for method in METHODS:
                rng = np.random.default_rng((seed, i, stable_hash(method)))
                compiled = compile_with_method(
                    program,
                    coupling,
                    method,
                    calibration=calibration,
                    rng=rng,
                )
                result = evaluate_arg(
                    compiled, problem, ideal, noisy, shots=shots, rng=rng
                )
                per_method[method].append(result.arg)
        for method in METHODS:
            mean_arg = float(np.mean(per_method[method]))
            rows.append([family, method.upper(), mean_arg])
            headline[f"arg_{family}_{method}"] = mean_arg
            args.setdefault(method, []).append(mean_arg)

    for method in METHODS:
        headline[f"arg_mean_{method}"] = float(np.mean(args[method]))

    table = format_table(["family", "method", "mean ARG (%)"], rows)
    return FigureResult(
        figure="fig11b",
        description=(
            f"ARG on noisy-simulated ibmq_16_melbourne "
            f"({instances} instances/family, {num_nodes}-node graphs, "
            f"{shots} shots)"
        ),
        table=table,
        headline=headline,
        raw={"per_family": rows},
    )
