"""Figure 10: VIC vs IC compiled-circuit success probability.

Paper setup: Erdős–Rényi graphs with edge probability 0.5 and 6-regular
graphs, 13/14/15 nodes (20 instances per bar), compiled with IC(+QAIM) and
VIC(+QAIM) for ibmq_16_melbourne using the 4/8/2020 CNOT error calibration
of Figure 10(a).  Bars show the ratio of mean success probability
VIC / IC (higher is better).

Paper headline: VIC improves success probability by ~80% on average for the
ER graphs (157% at 15 nodes) and ~45.3% for the regular graphs (72.2% at
14 nodes); the regular-graph gain is smaller because heavily packed layers
leave less freedom to pick reliable qubit pairs.
"""

from __future__ import annotations

from typing import Optional, Sequence

from ...hardware.devices import ibmq_16_melbourne, melbourne_calibration
from ..harness import mean_by, run_sweep, scaled_instances
from ..reporting import format_table
from .common import FigureResult

__all__ = ["run"]

METHODS = ("ic", "vic")
NODE_SIZES = (13, 14, 15)


def run(
    instances: Optional[int] = None,
    seed: int = 2023,
    node_sizes: Sequence[int] = NODE_SIZES,
) -> FigureResult:
    """Reproduce Figure 10 (VIC/IC success-probability ratio)."""
    instances = instances or scaled_instances(reduced=8, paper=20)
    coupling = ibmq_16_melbourne()
    calibration = melbourne_calibration()
    records = []
    for n in node_sizes:
        for family, param in (("er", 0.5), ("regular", 6)):
            recs = run_sweep(
                coupling,
                METHODS,
                family,
                n,
                (param,),
                instances,
                seed + n,
                calibration=calibration,
            )
            for rec in recs:
                rec.param = n
            records += recs

    means = mean_by(
        records, "success_probability", keys=("family", "param", "method")
    )
    rows = []
    headline = {}
    for family in ("er", "regular"):
        for n in node_sizes:
            ic = means[(family, n, "ic")]
            vic = means[(family, n, "vic")]
            ratio = vic / ic if ic > 0 else float("inf")
            rows.append([family, n, ic, vic, ratio])
            headline[f"vic_over_ic_sp_{family}_n{n}"] = ratio
    er_ratios = [headline[f"vic_over_ic_sp_er_n{n}"] for n in node_sizes]
    reg_ratios = [headline[f"vic_over_ic_sp_regular_n{n}"] for n in node_sizes]
    headline["vic_over_ic_sp_er_mean"] = sum(er_ratios) / len(er_ratios)
    headline["vic_over_ic_sp_regular_mean"] = sum(reg_ratios) / len(reg_ratios)

    table = format_table(
        ["family", "nodes", "IC mean SP", "VIC mean SP", "VIC/IC"],
        rows,
        float_fmt="{:.4g}",
    )
    return FigureResult(
        figure="fig10",
        description=(
            "VIC vs IC success probability on ibmq_16_melbourne "
            f"(4/8/2020 calibration, {instances} instances/bar)"
        ),
        table=table,
        headline=headline,
        raw={"means": means},
    )
