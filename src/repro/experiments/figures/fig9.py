"""Figure 9: IP and IC against QAIM-only compilation.

Paper setup: the Figure 7 workloads (20-node ER p=0.1..0.6 and d=3..8
regular graphs, 50 instances per bar, ibmq_20_tokyo), comparing QAIM with
random CPHASE order against IP(+QAIM) and IC(+QAIM).  Ratios of mean depth,
gate count and compilation time against QAIM are reported.

Paper headline numbers:

* IC depth 39.3% below QAIM for 3-regular, widening to ~68% for 8-regular;
* IC depth on average 13.2% below IP;
* IC gate count ~16.7% below both QAIM and IP, IP ≈ QAIM on gates;
* IP compiles ~37% faster than IC.
"""

from __future__ import annotations

from typing import Optional, Sequence

from ...hardware.devices import ibmq_20_tokyo
from ..harness import ratio_table, run_sweep, scaled_instances
from ..reporting import format_ratio_table
from .common import FigureResult

__all__ = ["run"]

METHODS = ("qaim", "ip", "ic")
ER_PROBS = (0.1, 0.2, 0.3, 0.4, 0.5, 0.6)
REGULAR_DEGREES = (3, 4, 5, 6, 7, 8)


def run(
    instances: Optional[int] = None,
    seed: int = 2022,
    num_nodes: int = 20,
    er_probs: Sequence[float] = ER_PROBS,
    degrees: Sequence[int] = REGULAR_DEGREES,
) -> FigureResult:
    """Reproduce Figure 9 (IP/IC vs QAIM: depth, gates, compile time)."""
    instances = instances or scaled_instances(reduced=8, paper=50)
    coupling = ibmq_20_tokyo()
    records = run_sweep(
        coupling, METHODS, "er", num_nodes, er_probs, instances, seed
    )
    records += run_sweep(
        coupling, METHODS, "regular", num_nodes, degrees, instances, seed + 1
    )

    depth_ratios = ratio_table(records, "depth", "qaim")
    gate_ratios = ratio_table(records, "gate_count", "qaim")
    time_ratios = ratio_table(records, "compile_time", "qaim")

    table = (
        "depth ratio vs QAIM\n"
        + format_ratio_table(depth_ratios, METHODS, group_header="family/param")
        + "\n\ngate-count ratio vs QAIM\n"
        + format_ratio_table(gate_ratios, METHODS, group_header="family/param")
        + "\n\ncompile-time ratio vs QAIM\n"
        + format_ratio_table(time_ratios, METHODS, group_header="family/param")
    )

    def mean_over_groups(ratios, method):
        vals = [group[method] for group in ratios.values()]
        return sum(vals) / len(vals)

    ic_depth_mean = mean_over_groups(depth_ratios, "ic")
    ip_depth_mean = mean_over_groups(depth_ratios, "ip")
    sparse_d, dense_d = min(degrees), max(degrees)
    headline = {
        f"ic_vs_qaim_depth_reg{sparse_d}": depth_ratios[("regular", sparse_d)]["ic"],
        f"ic_vs_qaim_depth_reg{dense_d}": depth_ratios[("regular", dense_d)]["ic"],
        "ic_vs_qaim_gates_mean": mean_over_groups(gate_ratios, "ic"),
        "ip_vs_qaim_gates_mean": mean_over_groups(gate_ratios, "ip"),
        "ic_vs_ip_depth_mean": ic_depth_mean / ip_depth_mean,
        "ip_vs_ic_time_mean": (
            mean_over_groups(time_ratios, "ip")
            / mean_over_groups(time_ratios, "ic")
        ),
    }
    return FigureResult(
        figure="fig9",
        description=(
            f"IP(+QAIM) and IC(+QAIM) vs QAIM-only, {num_nodes}-node graphs "
            f"on ibmq_20_tokyo ({instances} instances/bar)"
        ),
        table=table,
        headline=headline,
        raw={
            "depth": depth_ratios,
            "gate_count": gate_ratios,
            "compile_time": time_ratios,
        },
    )
