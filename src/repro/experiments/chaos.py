"""Chaos harness: sweep seeded calibration faults through every flow.

The resilience contract of the compilation service is behavioural, not
structural: *no* calibration defect may crash a compile, every degraded
compile must still produce a valid (coupling-compliant) circuit with a
populated ``warnings`` list, routing must never touch a pruned dead
coupler, and success probability must fall monotonically as fault severity
rises (more broken hardware can only hurt).  This module encodes that
contract as an executable sweep:

* :class:`ChaosScenario` — one named fault bundle with a severity rank;
  :func:`default_scenarios` provides the standard ladder from ``baseline``
  (no faults) to ``blackout`` (dead qubit + dead couplers + dropout + NaN
  poisoning at heavy error inflation).
* :func:`run_chaos` — the sweep driver: for every (device, scenario) it
  degrades a clean calibration with a :class:`~repro.hardware.faults.
  FaultInjector`, repairs the feed, then compiles one problem with each
  requested method and audits the outcome.
* :class:`ChaosReport` — per-cell outcomes plus the contract checks
  (``failures()``, ``contract_violations()``, ``monotone_violations()``)
  and a terminal rendering used by ``repro chaos``.

Both the integration suite (``tests/integration/test_chaos_compilation``,
marker ``chaos``) and the CLI drive this module, so CI and operators run
the identical sweep.
"""

from __future__ import annotations

import dataclasses
import datetime
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..compiler.flow import compile_with_method
from ..compiler.metrics import measure_compiled
from ..hardware.calibration import Calibration, random_calibration
from ..hardware.coupling import Edge
from ..hardware.devices import get_device, melbourne_calibration
from ..hardware.faults import (
    CalibrationError,
    CalibrationValidator,
    FaultInjector,
    RawCalibration,
    repair_calibration,
)
from ..hardware.target import intern_target
from .harness import make_problem, pass_seconds

__all__ = [
    "ChaosScenario",
    "ChaosOutcome",
    "ChaosReport",
    "default_scenarios",
    "run_chaos",
    "DEFAULT_METHODS",
    "DEFAULT_DEVICES",
    "DeviceProfile",
    "FleetScenario",
    "FleetChaosComparison",
    "ScriptedFleetExecutor",
    "chaos_fleet",
    "chaos_profiles",
    "chaos_stream",
    "default_fleet_scenarios",
    "run_fleet_chaos",
    "run_fleet_chaos_suite",
    "render_fleet_chaos",
]

DEFAULT_METHODS = ("qaim", "ip", "ic", "vic")
DEFAULT_DEVICES = ("ibmq_20_tokyo", "ibmq_16_melbourne")


@dataclasses.dataclass(frozen=True)
class ChaosScenario:
    """One fault bundle at one severity rank.

    Severity orders scenarios for the monotone-degradation check; the
    ``inflate`` knob (uniform error scaling) is what makes severity
    physically meaningful — every step up the ladder strictly worsens the
    average error rate, on top of whatever structural faults it adds.
    """

    name: str
    severity: int
    dead_qubits: int = 0
    dead_edges: int = 0
    drift_sigma: float = 0.0
    dropout: float = 0.0
    nan_entries: int = 0
    out_of_range_entries: int = 0
    inflate: float = 1.0
    timestamp: Optional[str] = None

    @property
    def injects_faults(self) -> bool:
        """Whether the scenario degrades the calibration at all."""
        return (
            self.dead_qubits > 0
            or self.dead_edges > 0
            or self.drift_sigma > 0
            or self.dropout > 0
            or self.nan_entries > 0
            or self.out_of_range_entries > 0
            or self.inflate != 1.0
            or self.timestamp is not None
        )

    def apply(
        self, calibration: Calibration, injector: FaultInjector
    ) -> RawCalibration:
        """Degrade ``calibration`` according to this scenario."""
        return injector.degrade(
            calibration,
            dead_qubits=self.dead_qubits,
            dead_edges=self.dead_edges,
            drift_sigma=self.drift_sigma,
            dropout=self.dropout,
            nan_entries=self.nan_entries,
            out_of_range_entries=self.out_of_range_entries,
            inflate=self.inflate,
            timestamp=self.timestamp,
        )


def default_scenarios() -> List[ChaosScenario]:
    """The standard severity ladder, mildest first."""
    return [
        ChaosScenario(name="baseline", severity=0),
        ChaosScenario(
            name="drift",
            severity=1,
            drift_sigma=0.15,
            inflate=1.6,
            timestamp="1/1/2020",  # stale vs the validator's max age
        ),
        ChaosScenario(
            name="dropout", severity=2, dropout=0.15, inflate=2.6
        ),
        ChaosScenario(
            name="poison",
            severity=3,
            nan_entries=3,
            out_of_range_entries=1,
            inflate=4.2,
        ),
        # Pruning dead couplers can *help* routing (the worst edges leave
        # the graph), so the inflate gap to the previous rung is widened to
        # keep the severity ladder physically monotone.
        ChaosScenario(
            name="dead-coupler", severity=4, dead_edges=2, inflate=10.0
        ),
        ChaosScenario(
            name="blackout",
            severity=5,
            dead_qubits=1,
            dead_edges=2,
            dropout=0.1,
            nan_entries=2,
            inflate=18.0,
        ),
    ]


@dataclasses.dataclass
class ChaosOutcome:
    """Audit record for one (device, scenario, method) cell."""

    device: str
    scenario: str
    severity: int
    method: str
    ok: bool
    error: Optional[str] = None
    warnings: List[str] = dataclasses.field(default_factory=list)
    pruned_edges: List[Edge] = dataclasses.field(default_factory=list)
    used_pruned_edges: List[Edge] = dataclasses.field(default_factory=list)
    depth: Optional[int] = None
    swap_count: Optional[int] = None
    success_probability: Optional[float] = None
    pass_times: Optional[Dict[str, float]] = None

    @property
    def violates_contract(self) -> Optional[str]:
        """A human-readable violation, or ``None`` when the cell is fine."""
        if not self.ok:
            return f"compile failed: {self.error}"
        if self.used_pruned_edges:
            return f"circuit uses pruned dead couplers {self.used_pruned_edges}"
        return None


@dataclasses.dataclass
class ChaosReport:
    """Everything one chaos sweep produced, plus the contract checks."""

    outcomes: List[ChaosOutcome]
    seed: int
    nodes: int

    def failures(self) -> List[ChaosOutcome]:
        return [o for o in self.outcomes if not o.ok]

    def contract_violations(self) -> List[Tuple[ChaosOutcome, str]]:
        """Cells breaking the resilience contract (crash or pruned-edge use)."""
        out = []
        for o in self.outcomes:
            violation = o.violates_contract
            if violation is not None:
                out.append((o, violation))
        return out

    def monotone_violations(
        self, tolerance: float = 1.05
    ) -> List[Tuple[str, str, str, str, float, float]]:
        """Severity steps where success probability *rose* beyond tolerance.

        For each (device, method), outcomes are ordered by severity; a
        step from probability ``p_low`` (milder) to ``p_high`` (harsher)
        violates monotonicity when ``p_high > p_low * tolerance``.  The
        tolerance absorbs routing noise: a harsher scenario may reroute
        and by luck land a marginally better circuit.
        """
        series: Dict[Tuple[str, str], List[ChaosOutcome]] = {}
        for o in self.outcomes:
            if o.ok and o.success_probability is not None:
                series.setdefault((o.device, o.method), []).append(o)
        violations = []
        for (device, method), cells in series.items():
            cells.sort(key=lambda o: o.severity)
            for milder, harsher in zip(cells, cells[1:]):
                if (
                    harsher.success_probability
                    > milder.success_probability * tolerance
                ):
                    violations.append(
                        (
                            device,
                            method,
                            milder.scenario,
                            harsher.scenario,
                            milder.success_probability,
                            harsher.success_probability,
                        )
                    )
        return violations

    def render(self) -> str:
        """Terminal table plus the contract verdict."""
        from .reporting import format_table

        rows = []
        for o in self.outcomes:
            rows.append(
                [
                    o.scenario,
                    o.severity,
                    o.device,
                    o.method,
                    "ok" if o.ok else "FAIL",
                    len(o.warnings),
                    o.swap_count if o.swap_count is not None else "-",
                    (
                        f"{o.success_probability:.3e}"
                        if o.success_probability is not None
                        else "-"
                    ),
                ]
            )
        table = format_table(
            [
                "scenario",
                "sev",
                "device",
                "method",
                "status",
                "warnings",
                "swaps",
                "success prob",
            ],
            rows,
        )
        violations = self.contract_violations()
        monotone = self.monotone_violations()
        lines = [
            f"chaos sweep (seed={self.seed}, {self.nodes}-node problem)",
            "",
            table,
            "",
        ]
        lines.append(
            f"cells: {len(self.outcomes)}  failures: {len(self.failures())}  "
            f"contract violations: {len(violations)}  "
            f"monotonicity violations: {len(monotone)}"
        )
        for outcome, violation in violations:
            lines.append(
                f"  VIOLATION {outcome.device}/{outcome.scenario}/"
                f"{outcome.method}: {violation}"
            )
        for device, method, s_low, s_high, p_low, p_high in monotone:
            lines.append(
                f"  NON-MONOTONE {device}/{method}: {s_high} "
                f"({p_high:.3e}) > {s_low} ({p_low:.3e})"
            )
        return "\n".join(lines)


def _base_calibration(device_name: str, seed: int) -> Calibration:
    device = get_device(device_name)
    if device.name == "ibmq_16_melbourne":
        return melbourne_calibration()
    return random_calibration(device, rng=np.random.default_rng(seed))


def run_chaos(
    methods: Sequence[str] = DEFAULT_METHODS,
    devices: Sequence[str] = DEFAULT_DEVICES,
    scenarios: Optional[Sequence[ChaosScenario]] = None,
    nodes: int = 8,
    edge_prob: float = 0.5,
    seed: int = 0,
) -> ChaosReport:
    """Sweep every (device, scenario, method) cell and audit the outcomes.

    One MaxCut instance (``nodes``, ``edge_prob``, seeded) is compiled per
    cell.  The compile itself is wrapped so an unexpected exception becomes
    a failed :class:`ChaosOutcome` rather than aborting the sweep — the
    report is the place such bugs surface.
    """
    scenarios = (
        list(scenarios) if scenarios is not None else default_scenarios()
    )
    graph_rng = np.random.default_rng(seed)
    problem = make_problem("er", nodes, edge_prob, graph_rng)
    program = problem.to_program([0.7], [0.35])
    # Flags calibrations older than a month as stale.  The clock is pinned
    # (not wall time) so the sweep is reproducible and the paper-era
    # melbourne feed (4/8/2020) stays fresh while the drift scenario's
    # 1/1/2020 timestamp always trips the check.
    validator = CalibrationValidator(
        max_age_days=30.0, now=datetime.datetime(2020, 4, 20)
    )

    outcomes: List[ChaosOutcome] = []
    for device_name in devices:
        base = _base_calibration(device_name, seed)
        for scenario_index, scenario in enumerate(scenarios):
            injector = FaultInjector(
                seed=seed * 1009 + scenario_index * 101 + hash_name(device_name)
            )
            raw = scenario.apply(base, injector)
            try:
                repair = repair_calibration(raw, validator=validator)
            except CalibrationError as exc:
                for method in methods:
                    outcomes.append(
                        ChaosOutcome(
                            device=device_name,
                            scenario=scenario.name,
                            severity=scenario.severity,
                            method=method,
                            ok=False,
                            error=f"unrepairable calibration: {exc}",
                        )
                    )
                continue
            for method in methods:
                outcomes.append(
                    _run_cell(
                        device_name, scenario, method, program, repair, seed
                    )
                )
    return ChaosReport(outcomes=outcomes, seed=seed, nodes=nodes)


def hash_name(name: str) -> int:
    """Deterministic small hash (``hash()`` is salted per process)."""
    value = 0
    for ch in name:
        value = (value * 131 + ord(ch)) % 1_000_003
    return value


def _run_cell(
    device_name: str,
    scenario: ChaosScenario,
    method: str,
    program,
    repair,
    seed: int,
) -> ChaosOutcome:
    outcome = ChaosOutcome(
        device=device_name,
        scenario=scenario.name,
        severity=scenario.severity,
        method=method,
        ok=False,
        pruned_edges=list(repair.pruned_edges),
    )
    try:
        # Interning keys off content, so every method cell for the same
        # repaired feed shares one Target (and its memoized oracles).
        target = intern_target(
            repair.coupling,
            repair.calibration,
            warnings=tuple(repair.warnings),
        )
        compiled = compile_with_method(
            program,
            method=method,
            rng=np.random.default_rng(seed),
            target=target,
        )
        compiled.warnings = list(repair.warnings) + compiled.warnings
        compiled.validate()
        pruned = set(repair.pruned_edges)
        used = sorted(
            {
                (min(i.qubits), max(i.qubits))
                for i in compiled.circuit
                if i.is_two_qubit
            }
            & pruned
        )
        metrics = measure_compiled(compiled, calibration=repair.calibration)
        outcome.ok = True
        outcome.warnings = list(compiled.warnings)
        outcome.used_pruned_edges = used
        outcome.depth = metrics.depth
        outcome.swap_count = metrics.swap_count
        outcome.success_probability = metrics.success_probability
        outcome.pass_times = pass_seconds(compiled.pass_trace)
    except Exception as exc:  # noqa: BLE001 — the audit reports, never dies
        outcome.error = f"{type(exc).__name__}: {exc}"
    return outcome


# ======================================================================
# fleet chaos: scripted device faults against the scheduler
# ======================================================================
#
# The calibration sweep above stresses *compilation* under degraded
# hardware; this half stresses the *fleet scheduler* under degraded
# operations — a device that dies mid-stream, a latency spike window, a
# calibration that flaps between healthy and broken.  Faults are scripted
# per (device, job-index) in a deterministic executor that stamps a
# ``virtual_exec_ms`` metric into every result, so the scheduler's
# virtual clock — and therefore admissions, breaker transitions,
# migrations and SLO attainment — are exactly reproducible, which is
# also what makes journal-resume equality checks exact.


@dataclasses.dataclass(frozen=True)
class DeviceProfile:
    """Scripted service behaviour of one fleet slot.

    Execution times are virtual milliseconds per job kind, scaled by the
    method's :data:`~repro.fleet.latency.METHOD_COST_FACTORS` entry —
    cheaper presets really run faster in the scripted world, which is
    what gives the SLO-aware degraded recompile something true to learn.
    """

    compile_ms: float
    eval_ms: float
    arg: float
    success_probability: float


@dataclasses.dataclass(frozen=True)
class FleetScenario:
    """One scripted fleet fault pattern over a job stream.

    Attributes:
        name: Scenario id (reports key on it).
        description: What the fault models.
        dies_at: ``{label: index}`` — the device fails every job whose
            stream index is >= the given index (mid-stream death).
        spikes: ``{label: (start, end, factor)}`` — execution time is
            multiplied by ``factor`` for jobs in ``[start, end)``.
        flaps: ``{label: (start, period)}`` — from ``start`` on, the
            device alternates ``period``-job windows of failing and
            healthy behaviour (flapping calibration).
    """

    name: str
    description: str = ""
    dies_at: Dict[str, int] = dataclasses.field(default_factory=dict)
    spikes: Dict[str, Tuple[int, int, float]] = dataclasses.field(
        default_factory=dict
    )
    flaps: Dict[str, Tuple[int, int]] = dataclasses.field(
        default_factory=dict
    )

    def fails(self, label: str, index: int) -> bool:
        """Whether the scripted device fails job ``index``."""
        died = self.dies_at.get(label)
        if died is not None and index >= died:
            return True
        flap = self.flaps.get(label)
        if flap is not None:
            start, period = flap
            if index >= start and ((index - start) // period) % 2 == 0:
                return True
        return False

    def latency_factor(self, label: str, index: int) -> float:
        spike = self.spikes.get(label)
        if spike is not None:
            start, end, factor = spike
            if start <= index < end:
                return factor
        return 1.0


def chaos_fleet() -> "FleetSpec":
    """The 4-slot fleet the scripted scenarios run against.

    Topologies are pairwise distinct (the executor identifies the bound
    slot by its interned coupling) and all small enough for eval
    placement; calibrations are seeded so fidelity estimates exist and
    success-probability SLOs are admissible.
    """
    from ..fleet import DeviceSlot, FleetSpec

    return FleetSpec(
        [
            DeviceSlot("alpha", "ring_8", calibration={"seed": 31}),
            DeviceSlot("beta", "linear_8", calibration={"seed": 37}),
            DeviceSlot("gamma", "grid_3x3", calibration={"seed": 41}),
            DeviceSlot("delta", "ring_12", calibration={"seed": 43}),
        ]
    )


def chaos_profiles() -> Dict[str, DeviceProfile]:
    """Scripted profiles: ``alpha`` is the fast, high-quality slot the
    load balancer concentrates traffic on — which is exactly why the
    scenarios kill it."""
    return {
        "alpha": DeviceProfile(
            compile_ms=24.0, eval_ms=80.0,
            arg=3.0, success_probability=2e-2,
        ),
        "beta": DeviceProfile(
            compile_ms=40.0, eval_ms=140.0,
            arg=5.0, success_probability=8e-3,
        ),
        "gamma": DeviceProfile(
            compile_ms=55.0, eval_ms=190.0,
            arg=6.5, success_probability=4e-3,
        ),
        "delta": DeviceProfile(
            compile_ms=80.0, eval_ms=245.0,
            arg=7.5, success_probability=1.5e-3,
        ),
    }


#: Chaos streams are constrained-heavy (vs the service default mix) so
#: that jobs lost to a fault are *visible* in SLO attainment, with a
#: best-effort remainder left to volunteer for breaker recovery probes.
CHAOS_TIER_WEIGHTS = (
    ("gold", 0.3),
    ("silver", 0.4),
    ("bronze", 0.2),
    ("best-effort", 0.1),
)


def chaos_stream(jobs: int = 90, seed: int = 5) -> list:
    """The deterministic tiered job stream the scenarios serve."""
    from ..fleet import synthetic_stream

    return synthetic_stream(
        jobs, seed=seed, nodes=8, eval_fraction=0.4,
        shots=128, trajectories=4, tier_weights=CHAOS_TIER_WEIGHTS,
    )


def default_fleet_scenarios(jobs: int = 90) -> List[FleetScenario]:
    """The standard fleet fault ladder for a ``jobs``-long stream."""
    return [
        FleetScenario(
            name="device-death",
            description=(
                "the fastest device dies for good at job ~N/3; its "
                "traffic must migrate or be lost"
            ),
            dies_at={"alpha": max(1, jobs // 3)},
        ),
        FleetScenario(
            name="latency-spike",
            description=(
                "a noisy-neighbour window multiplies the fast device's "
                "service time 12x for the middle third of the stream"
            ),
            spikes={"alpha": (max(1, jobs // 3), max(2, 2 * jobs // 3), 12.0)},
        ),
        FleetScenario(
            name="flapping-calibration",
            description=(
                "a mid-tier device alternates broken and healthy windows "
                "— permanent ineligibility overreacts, breakers recover"
            ),
            flaps={"beta": (max(1, jobs // 5), max(3, jobs // 10))},
        ),
    ]


class ScriptedFleetExecutor:
    """Deterministic fleet job executor driven by a :class:`FleetScenario`.

    Resolves which slot a bound job landed on via the identity of its
    interned coupling (placement binds the slot target's coupling into
    the job), and which stream position it holds via its ``job_id`` —
    *not* via call count, which would diverge between an interrupted run
    and its resumed continuation.  Every result carries
    ``virtual_exec_ms`` so the scheduler's clock advances identically
    on every run.
    """

    def __init__(
        self,
        fleet,
        stream: Sequence,
        scenario: FleetScenario,
        profiles: Optional[Dict[str, DeviceProfile]] = None,
    ) -> None:
        from ..fleet.latency import METHOD_COST_FACTORS

        self.scenario = scenario
        self.profiles = dict(profiles or chaos_profiles())
        self._method_factors = dict(METHOD_COST_FACTORS)
        self._label_by_coupling = {
            id(fleet.target(slot.label).coupling): slot.label
            for slot in fleet
        }
        if len(self._label_by_coupling) < len(fleet):
            raise ValueError(
                "scripted fleet scenarios need pairwise-distinct slot "
                "targets (two slots interned to the same coupling)"
            )
        self._index_by_job_id = {
            job.job_id: index for index, job in enumerate(stream)
        }
        for slot in fleet:
            if slot.label not in self.profiles:
                raise ValueError(f"no scripted profile for slot {slot.label!r}")

    def __call__(self, job):
        from ..service.job import JobResult, encode_envelope

        label = self._label_by_coupling.get(id(job.device))
        if label is None:
            raise ValueError("job bound to a device outside the scripted fleet")
        index = self._index_by_job_id.get(job.job_id, 0)
        profile = self.profiles[label]
        is_eval = hasattr(job, "compile_job")
        base_ms = profile.eval_ms if is_eval else profile.compile_ms
        method = getattr(job, "method", None)
        exec_ms = (
            base_ms
            * self._method_factors.get(method, 1.0)
            * self.scenario.latency_factor(label, index)
        )
        key = job.content_hash()
        if self.scenario.fails(label, index):
            return JobResult(
                job=job,
                key=key,
                ok=False,
                error=(
                    f"scripted fault: {self.scenario.name} on {label} "
                    f"at job {index}"
                ),
                error_kind="exception",
                metrics={"virtual_exec_ms": exec_ms},
            )
        metrics = {
            "virtual_exec_ms": exec_ms,
            "success_probability": profile.success_probability,
        }
        if is_eval:
            metrics["arg"] = profile.arg
        return JobResult(
            job=job,
            key=key,
            ok=True,
            metrics=metrics,
            payload=encode_envelope("null", dict(metrics)),
        )


def run_fleet_chaos(
    scenario: FleetScenario,
    *,
    jobs: int = 90,
    policy: str = "least-loaded",
    seed: int = 5,
    interarrival_ms: float = 20.0,
    resilient: bool = True,
    breaker_cooldown_ms: float = 150.0,
    max_migrations: int = 2,
    journal=None,
    resume: bool = False,
    fleet=None,
    stream=None,
    execute_fn=None,
):
    """One scripted fleet run under ``scenario``.

    ``resilient=False`` reproduces the pre-resilience scheduler exactly
    — breakers never half-open (permanent ineligibility), no migration,
    no degraded recompile — which is the baseline the resilience margin
    is measured against.
    """
    from ..fleet import Scheduler

    fleet = fleet if fleet is not None else chaos_fleet()
    stream = stream if stream is not None else chaos_stream(jobs, seed)
    executor = execute_fn or ScriptedFleetExecutor(fleet, stream, scenario)
    if resilient:
        recovery = dict(
            breaker_cooldown_ms=breaker_cooldown_ms,
            max_migrations=max_migrations,
        )
    else:
        recovery = dict(
            breaker_cooldown_ms=None, max_migrations=0, degrade_ladder=(),
        )
    scheduler = Scheduler(
        fleet,
        policy,
        interarrival_ms=interarrival_ms,
        execute_fn=executor,
        journal=journal,
        **recovery,
    )
    return scheduler.run(stream, resume=resume)


@dataclasses.dataclass
class FleetChaosComparison:
    """Resilience-on vs pre-resilience baseline under one scenario."""

    scenario: FleetScenario
    baseline: object  # FleetReport
    resilient: object  # FleetReport

    @property
    def margin(self) -> float:
        """Attainment gained by the resilience layer (may be ~0 for
        scenarios the baseline already survives)."""
        return (
            self.resilient.attainment_rate()
            - self.baseline.attainment_rate()
        )


def run_fleet_chaos_suite(
    scenarios: Optional[Sequence[FleetScenario]] = None,
    *,
    jobs: int = 90,
    policy: str = "least-loaded",
    seed: int = 5,
    interarrival_ms: float = 20.0,
) -> List[FleetChaosComparison]:
    """Run every scenario twice — baseline and resilient — on the same
    stream, fleet, and clock."""
    scenarios = (
        list(scenarios) if scenarios is not None
        else default_fleet_scenarios(jobs)
    )
    out = []
    for scenario in scenarios:
        kwargs = dict(
            jobs=jobs, policy=policy, seed=seed,
            interarrival_ms=interarrival_ms,
        )
        out.append(
            FleetChaosComparison(
                scenario=scenario,
                baseline=run_fleet_chaos(
                    scenario, resilient=False, **kwargs
                ),
                resilient=run_fleet_chaos(
                    scenario, resilient=True, **kwargs
                ),
            )
        )
    return out


def render_fleet_chaos(comparisons: Sequence[FleetChaosComparison]) -> str:
    """Terminal table: attainment, failures, recoveries per scenario."""
    from .reporting import format_table

    rows = []
    for comp in comparisons:
        base, res = comp.baseline.summary(), comp.resilient.summary()
        rows.append(
            [
                comp.scenario.name,
                f"{100 * base['attainment_rate']:.1f}%",
                f"{100 * res['attainment_rate']:.1f}%",
                f"{100 * comp.margin:+.1f}pp",
                f"{base['failed']}/{res['failed']}",
                res["migrations"],
                res["downgrades"],
                (
                    f"{res['breaker']['trips']}/"
                    f"{res['breaker']['recoveries']}"
                ),
            ]
        )
    return format_table(
        [
            "scenario",
            "baseline",
            "resilient",
            "margin",
            "failed b/r",
            "migrations",
            "downgrades",
            "trips/recoveries",
        ],
        rows,
    )
