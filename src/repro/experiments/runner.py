"""Run every figure reproduction and emit a consolidated report.

Used both programmatically (``collect_all`` returns the FigureResults) and
as a script::

    python -m repro.experiments.runner [--instances K] [--output report.md]

The report interleaves each experiment's table with the paper-reported
headline values (:data:`PAPER_HEADLINES`), which is how ``EXPERIMENTS.md``
is produced.
"""

from __future__ import annotations

import argparse
import sys
from typing import Dict, List, Optional

from .figures import (
    ablations,
    fig7,
    fig8,
    fig9,
    fig10,
    fig11a,
    fig11b,
    fig12,
    sec6_planner,
)
from .figures.common import FigureResult

__all__ = ["collect_all", "render_report", "PAPER_HEADLINES", "main"]

#: What the paper reports, per experiment, for side-by-side comparison.
PAPER_HEADLINES: Dict[str, List[str]] = {
    "fig7": [
        "QAIM vs NAIVE at ER p=0.1: depth -12%, gates -20.5%",
        "QAIM vs NAIVE at 3-regular: depth -15.3%, gates -21.3%",
        "dense graphs: all three approaches perform similarly",
    ],
    "fig8": [
        "n=12: QAIM depth -21.8% and gates -26.8% vs NAIVE",
        "advantage shrinks toward n=20",
    ],
    "fig9": [
        "IC depth -39.3% vs QAIM at 3-regular, -68% at 8-regular",
        "IC gates -16.67% vs QAIM; IP gates ~= QAIM",
        "IC depth -13.2% vs IP on average; IP compile ~37% faster than IC",
    ],
    "fig10": [
        "VIC/IC success probability: ~1.80x mean on ER (2.57x at n=15)",
        "~1.45x mean on 6-regular (1.72x at n=14)",
    ],
    "fig11a": [
        "normalised (depth, gates, time): QAIM (0.95, 0.94, ~1),",
        "IP (0.54, 0.92, 0.55), IC (0.47, 0.77, 0.85), VIC (0.48, 0.77, 0.86)",
    ],
    "fig11b": [
        "mean ARG ordering QAIM > IP > IC > VIC",
        "IC ~8.53% below IP; VIC ~7.36% below IC; overall ~25.8% better than QAIM-only",
    ],
    "fig12": [
        "depth falls with packing limit, degrades past ~11",
        "gates +12.7% (ER) / +16.2% (regular) between limits 3..11, sharp rise after",
        "compile time falls monotonically with packing limit",
    ],
    "sec6_planner": [
        "IC -8.51% depth, -12.99% gates vs temporal planner [46]",
        "planner needs ~70 s at 8 qubits; heuristics are sub-second",
    ],
    "ablation_qaim_radius": ["(ablation — no paper counterpart)"],
    "ablation_ic_dynamic": ["(ablation — no paper counterpart)"],
    "ablation_vic_weight": ["(ablation — no paper counterpart)"],
}


def collect_all(
    instances: Optional[int] = None, include_ablations: bool = True
) -> List[FigureResult]:
    """Run every experiment and return the FigureResults in paper order."""
    results = [
        fig7.run(instances=instances),
        fig8.run(instances=instances),
        fig9.run(instances=instances),
        fig10.run(instances=instances),
        fig11a.run(instances=instances),
        fig11b.run(instances=instances),
        fig12.run(instances=instances),
        sec6_planner.run(instances=instances),
    ]
    if include_ablations:
        results += [
            ablations.qaim_radius_ablation(instances=instances),
            ablations.ic_dynamic_ablation(instances=instances),
            ablations.vic_weight_ablation(instances=instances),
        ]
    return results


def render_report(results: List[FigureResult]) -> str:
    """Markdown report: per experiment, paper claims then measured output."""
    lines = ["# Experiment report", ""]
    for result in results:
        lines.append(f"## {result.figure}: {result.description}")
        lines.append("")
        paper = PAPER_HEADLINES.get(result.figure)
        if paper:
            lines.append("**Paper reports:**")
            for claim in paper:
                lines.append(f"- {claim}")
            lines.append("")
        lines.append("**Measured:**")
        lines.append("")
        lines.append("```")
        lines.append(result.table)
        lines.append("")
        for key in sorted(result.headline):
            lines.append(f"{key} = {result.headline[key]:.4f}")
        lines.append("```")
        lines.append("")
    return "\n".join(lines)


def main(argv=None) -> int:
    """Script entry point."""
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--instances", type=int, default=None)
    parser.add_argument("--output", default=None)
    parser.add_argument(
        "--no-ablations", action="store_true", help="skip ablation studies"
    )
    args = parser.parse_args(argv)
    results = collect_all(
        instances=args.instances,
        include_ablations=not args.no_ablations,
    )
    report = render_report(results)
    if args.output:
        with open(args.output, "w") as fh:
            fh.write(report)
        print(f"report written to {args.output}")
    else:
        print(report)
    return 0


if __name__ == "__main__":
    sys.exit(main())
