"""General Ising / QUBO cost Hamiltonians (Section VI, "Applicability
beyond QAOA-MaxCut").

The paper: "the cost Hamiltonian of any arbitrary NP-hard problem can be
formulated in the Ising format consisting of ZZ-interactions ...  Hence,
the proposed compilation methodologies can be applied to other classes of
QAOA instances."  This module implements that generalisation:

* :class:`IsingProblem` — a cost function
  ``C(z) = sum_ij J_ij z_i z_j + sum_i h_i z_i + offset`` over spins
  ``z in {-1, +1}``, with exact brute-force optima and conversion into a
  :class:`~repro.qaoa.problems.QAOAProgram` whose cost block is CPHASE
  (ZZ) gates for the quadratic terms plus *virtual* RZ gates for the linear
  terms — single-qubit gates never route, so all four methodologies apply
  unchanged;
* :func:`qubo_to_ising` / :meth:`IsingProblem.from_qubo` — the standard
  change of variables ``x = (1 - z) / 2`` from 0/1 QUBO matrices;
* :func:`maxcut_to_ising` — MaxCut as the special case
  ``J_ij = -w_ij / 2`` (plus constant), closing the loop with
  :class:`~repro.qaoa.problems.MaxCutProblem`.

Sign conventions: we *maximise* ``C``.  The QAOA cost unitary is
``exp(-i*gamma*C)`` up to global phase, realised edge-wise as our
ZZ gate ``cphase(2*gamma*J_ij)`` and ``rz(2*gamma*h_i)``
(since ``exp(-i*gamma*J*Z(x)Z) = ZZ(2*gamma*J)`` and
``exp(-i*gamma*h*Z) = RZ(2*gamma*h)`` in our gate definitions).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from .problems import Level, MaxCutProblem, QAOAProgram

__all__ = ["IsingProblem", "qubo_to_ising", "maxcut_to_ising"]

Pair = Tuple[int, int]

_MAX_BRUTE_FORCE = 24


class IsingProblem:
    """A general (maximisation) Ising cost function.

    Args:
        num_spins: Number of spins / logical qubits.
        quadratic: ``{(i, j): J_ij}`` couplings (i != j; keys normalised).
        linear: ``{i: h_i}`` local fields.
        offset: Constant term added to every evaluation.
    """

    def __init__(
        self,
        num_spins: int,
        quadratic: Dict[Pair, float],
        linear: Optional[Dict[int, float]] = None,
        offset: float = 0.0,
    ) -> None:
        if num_spins < 1:
            raise ValueError("num_spins must be positive")
        self.num_spins = int(num_spins)
        self.offset = float(offset)
        self.quadratic: Dict[Pair, float] = {}
        for (a, b), j in quadratic.items():
            a, b = int(a), int(b)
            if a == b:
                raise ValueError(f"diagonal coupling ({a}, {b}) not allowed")
            if not (0 <= a < num_spins and 0 <= b < num_spins):
                raise ValueError(f"coupling ({a}, {b}) out of range")
            key = (min(a, b), max(a, b))
            self.quadratic[key] = self.quadratic.get(key, 0.0) + float(j)
        self.linear: Dict[int, float] = {}
        for i, h in (linear or {}).items():
            i = int(i)
            if not 0 <= i < num_spins:
                raise ValueError(f"field index {i} out of range")
            if h:
                self.linear[i] = self.linear.get(i, 0.0) + float(h)
        self._values: Optional[np.ndarray] = None

    # ------------------------------------------------------------------
    # constructors
    # ------------------------------------------------------------------
    @classmethod
    def from_qubo(
        cls, q_matrix: np.ndarray, sense: str = "max"
    ) -> "IsingProblem":
        """Convert a QUBO matrix into an Ising problem.

        QUBO: ``f(x) = x^T Q x`` over ``x in {0, 1}^n`` (Q need not be
        symmetric; it is symmetrised).  With ``x_i = (1 - z_i) / 2`` the
        objective becomes an Ising form; ``sense="min"`` negates it so the
        returned problem is always a maximisation.
        """
        q = np.asarray(q_matrix, dtype=float)
        if q.ndim != 2 or q.shape[0] != q.shape[1]:
            raise ValueError(f"QUBO matrix must be square, got {q.shape}")
        if sense not in ("max", "min"):
            raise ValueError(f"sense must be 'max' or 'min', got {sense!r}")
        sign = 1.0 if sense == "max" else -1.0
        q = sign * (q + q.T) / 2.0
        n = q.shape[0]
        quadratic: Dict[Pair, float] = {}
        linear: Dict[int, float] = {}
        offset = 0.0
        # x_i x_j = (1 - z_i)(1 - z_j)/4 ; x_i^2 = x_i = (1 - z_i)/2.
        for i in range(n):
            offset += q[i, i] / 2.0
            linear[i] = linear.get(i, 0.0) - q[i, i] / 2.0
            for j in range(i + 1, n):
                coupling = 2.0 * q[i, j]  # both (i,j) and (j,i) entries
                if coupling == 0.0:
                    continue
                offset += coupling / 4.0
                linear[i] = linear.get(i, 0.0) - coupling / 4.0
                linear[j] = linear.get(j, 0.0) - coupling / 4.0
                quadratic[(i, j)] = quadratic.get((i, j), 0.0) + coupling / 4.0
        linear = {i: h for i, h in linear.items() if h}
        return cls(n, quadratic, linear, offset)

    # ------------------------------------------------------------------
    # Problem protocol surface (see repro.qaoa.frontend)
    # ------------------------------------------------------------------
    @property
    def num_qubits(self) -> int:
        """Logical register width (one qubit per spin)."""
        return self.num_spins

    @property
    def edges(self) -> List[Tuple[int, int, float]]:
        """Weighted ZZ terms in *program weight* convention.

        The weight is ``-2 * J_ij`` — exactly what :meth:`to_program`
        emits and what :func:`repro.sim.fastpath.cost_diagonal`
        duck-types on, so an ``IsingProblem`` and its program intern the
        same diagonal.
        """
        return [
            (a, b, -2.0 * j) for (a, b), j in sorted(self.quadratic.items())
        ]

    def cost_values(self) -> np.ndarray:
        """Protocol alias of :meth:`values` (includes the offset)."""
        return self.values()

    def optimum(self) -> float:
        """Protocol alias of :meth:`max_value`."""
        return self.max_value()

    def content_fingerprint(self) -> str:
        """Canonical content hash (stable under term reordering)."""
        from .frontend import problem_fingerprint

        return problem_fingerprint(self)

    # ------------------------------------------------------------------
    # evaluation
    # ------------------------------------------------------------------
    def value_of_spins(self, spins: Sequence[int]) -> float:
        """Cost of a spin assignment (entries in {-1, +1}, index = spin)."""
        if len(spins) != self.num_spins:
            raise ValueError(
                f"expected {self.num_spins} spins, got {len(spins)}"
            )
        for s in spins:
            if s not in (-1, 1):
                raise ValueError(f"spins must be +-1, got {s}")
        value = self.offset
        for (a, b), j in self.quadratic.items():
            value += j * spins[a] * spins[b]
        for i, h in self.linear.items():
            value += h * spins[i]
        return value

    def value_of_bits(self, bits: str) -> float:
        """Cost of a ``q_{n-1}...q_0`` bitstring (bit 0 -> z = +1, bit 1 ->
        z = -1, the standard ``z = 1 - 2x`` promotion)."""
        if len(bits) != self.num_spins:
            raise ValueError(
                f"bitstring length {len(bits)} != num_spins {self.num_spins}"
            )
        spins = [
            1 - 2 * int(bits[self.num_spins - 1 - i])
            for i in range(self.num_spins)
        ]
        return self.value_of_spins(spins)

    def values(self) -> np.ndarray:
        """Cost of every basis state, little-endian indexed (cached)."""
        if self._values is not None:
            return self._values
        n = self.num_spins
        if n > _MAX_BRUTE_FORCE:
            raise ValueError(
                f"brute force infeasible for {n} spins (limit {_MAX_BRUTE_FORCE})"
            )
        indices = np.arange(2 ** n, dtype=np.int64)
        out = np.full(2 ** n, self.offset)
        z = {
            i: 1.0 - 2.0 * ((indices >> i) & 1).astype(float)
            for i in range(n)
        }
        for (a, b), j in self.quadratic.items():
            out += j * z[a] * z[b]
        for i, h in self.linear.items():
            out += h * z[i]
        self._values = out
        return out

    def max_value(self) -> float:
        """The exact maximum (brute force)."""
        return float(self.values().max())

    def best_bitstring(self) -> str:
        """A maximising ``q_{n-1}...q_0`` bitstring."""
        idx = int(np.argmax(self.values()))
        return format(idx, f"0{self.num_spins}b")

    # ------------------------------------------------------------------
    # QAOA conversion
    # ------------------------------------------------------------------
    def to_program(
        self,
        gammas: Sequence[float],
        betas: Sequence[float],
    ) -> QAOAProgram:
        """QAOA program implementing ``exp(-i*gamma*C)`` per level.

        Quadratic terms become CPHASE gates with program weight
        ``-2 * J_ij``: the builder's angle is ``-gamma * weight``, and our
        ZZ gate is ``exp(-i*theta/2 * Z(x)Z)``, so the emitted unitary is
        ``exp(-i*gamma*J_ij*Z(x)Z)`` — exactly the cost term's
        contribution.  Linear terms become per-level virtual RZ rotations
        of ``2 * gamma * h_i``.  Validated against the simulator in the
        test suite.
        """
        if len(gammas) != len(betas):
            raise ValueError("gammas and betas must have equal length")
        levels = [Level(float(g), float(b)) for g, b in zip(gammas, betas)]
        edges = [
            (a, b, -2.0 * j) for (a, b), j in sorted(self.quadratic.items())
        ]
        return QAOAProgram(
            num_qubits=self.num_spins,
            edges=edges,
            levels=levels,
            linear=dict(self.linear),
        )

    def interaction_pairs(self) -> List[Pair]:
        """Quadratic-term endpoints (what the compiler's profiling sees)."""
        return sorted(self.quadratic)

    def __repr__(self) -> str:
        return (
            f"IsingProblem(num_spins={self.num_spins}, "
            f"num_couplings={len(self.quadratic)}, "
            f"num_fields={len(self.linear)})"
        )


def qubo_to_ising(
    q_matrix: np.ndarray, sense: str = "max"
) -> IsingProblem:
    """Functional alias of :meth:`IsingProblem.from_qubo`."""
    return IsingProblem.from_qubo(q_matrix, sense=sense)


def maxcut_to_ising(problem: MaxCutProblem) -> IsingProblem:
    """Express a MaxCut instance in Ising form.

    ``cut(z) = sum w_ij (1 - z_i z_j) / 2`` =>
    ``J_ij = -w_ij / 2`` with offset ``sum w_ij / 2``.
    """
    quadratic = {
        (a, b): -w / 2.0 for a, b, w in problem.edges
    }
    offset = problem.total_weight() / 2.0
    return IsingProblem(problem.num_nodes, quadratic, {}, offset)
