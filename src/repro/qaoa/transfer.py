"""Parameter transfer across similar QAOA instances.

The paper notes (Section I) that QAOA parameter values "can be found
(without the optimization routines) by exploiting their relationship among
similar instances [Wecker et al.] or analytically [Streif & Leib]".  The
analytic route lives in :mod:`repro.qaoa.analytic`; this module implements
the instance-transfer route:

* optimise a handful of *donor* instances drawn from a workload family,
* aggregate their optimal angles (median, robust to the occasional bad
  local optimum),
* reuse the aggregated angles on new instances of the family with **no**
  per-instance optimisation.

:func:`transfer_quality` measures what the shortcut costs: the ratio of the
transferred-parameter expectation to the instance's own optimum (1.0 means
transfer was free).
"""

from __future__ import annotations

import dataclasses
from typing import List, Optional, Sequence, Tuple

import numpy as np

from .analytic import analytic_expectation
from .optimizer import optimize_qaoa, qaoa_expectation
from .problems import MaxCutProblem

__all__ = ["TransferredParameters", "learn_parameters", "transfer_quality"]


@dataclasses.dataclass
class TransferredParameters:
    """Family-level QAOA angles learned from donor instances.

    Attributes:
        gammas: Aggregated cost angles (one per level).
        betas: Aggregated mixer angles.
        donor_ratios: Approximation ratio each donor achieved at its own
            optimum (diagnostic).
    """

    gammas: List[float]
    betas: List[float]
    donor_ratios: List[float]

    @property
    def p(self) -> int:
        """Number of QAOA levels."""
        return len(self.gammas)


def _canonicalise(gamma: float, beta: float) -> Tuple[float, float]:
    """Map p=1 angles into a canonical fundamental domain.

    The p=1 QAOA landscape has the symmetries ``(gamma, beta) ->
    (gamma + 2*pi, beta)``, ``(gamma, beta + pi/2... )`` and the joint sign
    flip ``(-gamma, -beta)``.  Donors may converge to different equivalent
    optima; folding everything into ``gamma >= 0`` (via the joint flip)
    keeps the median meaningful.
    """
    gamma = float(np.arctan2(np.sin(gamma), np.cos(gamma)))  # wrap to (-pi, pi]
    beta = float(np.arctan2(np.sin(2 * beta), np.cos(2 * beta)) / 2.0)
    if gamma < 0:
        gamma, beta = -gamma, -beta
    return gamma, beta


def learn_parameters(
    donors: Sequence[MaxCutProblem],
    p: int = 1,
    rng: Optional[np.random.Generator] = None,
) -> TransferredParameters:
    """Optimise each donor and aggregate the angles (component median).

    Args:
        donors: Instances from the workload family (a handful suffices).
        p: QAOA levels.
        rng: Generator for optimiser restarts.

    Returns:
        The family-level :class:`TransferredParameters`.
    """
    if not donors:
        raise ValueError("need at least one donor instance")
    rng = rng if rng is not None else np.random.default_rng()
    all_gammas, all_betas, ratios = [], [], []
    for problem in donors:
        result = optimize_qaoa(problem, p=p, rng=rng)
        gammas, betas = list(result.gammas), list(result.betas)
        if p == 1:
            gammas[0], betas[0] = _canonicalise(gammas[0], betas[0])
        all_gammas.append(gammas)
        all_betas.append(betas)
        ratios.append(result.approximation_ratio)
    gamma_med = np.median(np.array(all_gammas), axis=0)
    beta_med = np.median(np.array(all_betas), axis=0)
    return TransferredParameters(
        gammas=[float(g) for g in gamma_med],
        betas=[float(b) for b in beta_med],
        donor_ratios=ratios,
    )


def transfer_quality(
    problem: MaxCutProblem,
    params: TransferredParameters,
    rng: Optional[np.random.Generator] = None,
) -> float:
    """Transferred-expectation over own-optimum ratio for one recipient.

    1.0 means the family angles were as good as instance-specific
    optimisation; the paper's premise is that similar instances land close.
    """
    unweighted = all(abs(w - 1.0) < 1e-12 for _, _, w in problem.edges)
    if params.p == 1 and unweighted:
        transferred = analytic_expectation(
            problem, params.gammas[0], params.betas[0]
        )
    else:
        transferred = qaoa_expectation(problem, params.gammas, params.betas)
    own = optimize_qaoa(problem, p=params.p, rng=rng).expectation
    if own <= 0:
        raise ValueError("recipient optimum is non-positive")
    return transferred / own
