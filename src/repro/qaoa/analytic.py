"""Analytic p=1 QAOA-MaxCut expectation (no quantum execution needed).

The paper notes (Sections I and V-A) that optimal QAOA parameters can be
found "analytically [45]" instead of running the hybrid loop, and uses that
to set circuit parameters before compilation.  For unweighted MaxCut at
p = 1 a closed form is known (Wang, Hadfield, Jiang, Rieffel, PRA 97,
022304 (2018)): for edge ``(u, v)`` with ``d_u = deg(u) - 1``,
``d_v = deg(v) - 1`` and ``t`` triangles through the edge,

    <C_uv>(gamma, beta) = 1/2
        + (1/4) * sin(4*beta) * sin(gamma) * (cos^{d_u} gamma + cos^{d_v} gamma)
        - (1/4) * sin^2(2*beta) * cos^{d_u + d_v - 2t}(gamma) * (1 - cos^t(2*gamma))

summed over edges.  We verify this against the statevector simulator in the
test suite, and use it both for fast parameter optimisation (grid +
L-BFGS-B polish without ever building a circuit) and as an independent
oracle for the simulator.

Only valid for *unweighted* problems at p = 1; the functions check this.
"""

from __future__ import annotations

import math
from typing import Tuple

import numpy as np
from scipy import optimize

from .problems import MaxCutProblem

__all__ = [
    "analytic_edge_expectation",
    "analytic_expectation",
    "analytic_optimal_parameters",
]


def _require_unweighted(problem: MaxCutProblem) -> None:
    if any(abs(w - 1.0) > 1e-12 for _, _, w in problem.edges):
        raise ValueError("analytic p=1 expectation requires unit edge weights")


def analytic_edge_expectation(
    problem: MaxCutProblem, edge_index: int, gamma: float, beta: float
) -> float:
    """Expected cut contribution of one edge at angles ``(gamma, beta)``."""
    _require_unweighted(problem)
    a, b, _ = problem.edges[edge_index]
    d_u = problem.degree(a) - 1
    d_v = problem.degree(b) - 1
    t = problem.common_neighbours(a, b)
    cg = math.cos(gamma)
    term_single = (
        0.25
        * math.sin(4 * beta)
        * math.sin(gamma)
        * (cg ** d_u + cg ** d_v)
    )
    term_pair = (
        0.25
        * math.sin(2 * beta) ** 2
        * cg ** (d_u + d_v - 2 * t)
        * (1.0 - math.cos(2 * gamma) ** t)
    )
    return 0.5 + term_single - term_pair


def analytic_expectation(
    problem: MaxCutProblem, gamma: float, beta: float
) -> float:
    """Exact p=1 QAOA expectation ``<C>(gamma, beta)`` for the problem."""
    return sum(
        analytic_edge_expectation(problem, i, gamma, beta)
        for i in range(len(problem.edges))
    )


def analytic_optimal_parameters(
    problem: MaxCutProblem,
    grid: int = 24,
    polish: bool = True,
) -> Tuple[float, float, float]:
    """Find ``(gamma*, beta*, <C>*)`` maximising the p=1 expectation.

    A coarse grid over ``gamma in [-pi, pi), beta in [-pi/2, pi/2)`` seeds
    an L-BFGS-B polish (the landscape is multimodal; the grid avoids poor
    local optima).

    Returns:
        ``(gamma, beta, expectation)`` at the optimum found.
    """
    _require_unweighted(problem)
    gammas = np.linspace(-math.pi, math.pi, grid, endpoint=False)
    betas = np.linspace(-math.pi / 2, math.pi / 2, grid, endpoint=False)
    best: Tuple[float, float, float] = (0.0, 0.0, -math.inf)
    for g in gammas:
        for b in betas:
            val = analytic_expectation(problem, g, b)
            if val > best[2]:
                best = (float(g), float(b), float(val))
    if not polish:
        return best

    def negated(params: np.ndarray) -> float:
        return -analytic_expectation(problem, params[0], params[1])

    result = optimize.minimize(
        negated,
        x0=np.array(best[:2]),
        method="L-BFGS-B",
        tol=1e-9,
    )
    gamma, beta = float(result.x[0]), float(result.x[1])
    value = analytic_expectation(problem, gamma, beta)
    if value < best[2]:  # polish should never hurt; keep the grid point if so
        return best
    return gamma, beta, value
