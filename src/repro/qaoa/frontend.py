"""The unified problem frontend: one protocol from QUBO to placement.

The paper's Section VI observes that *any* Ising-formulated cost
Hamiltonian compiles through the same ZZ-interaction path as MaxCut.
This module makes that a first-class contract: a :class:`Problem` is
anything exposing

* ``num_qubits`` — logical register width,
* ``edges`` — weighted ``(a, b, w)`` ZZ terms *in program weight
  convention* (the CPHASE angle is ``-gamma * w``),
* ``linear`` — ``{qubit: h}`` fields realised as virtual RZ rotations,
* ``to_program(gammas, betas)`` — the QAOA circuit description,
* ``cost_values()`` — the classical cost of every little-endian basis
  state (dense, small ``n`` only),
* ``optimum()`` — the exact brute-force optimum,
* ``content_fingerprint()`` — a canonical content hash.

:class:`~repro.qaoa.problems.MaxCutProblem` and
:class:`~repro.qaoa.ising.IsingProblem` both satisfy it, so every layer
above — ``repro.api.compile``, the service job specs, the workload
families, fleet admission, the batched angle-grid fast path — accepts
either without special-casing.  The ``edges``/``linear`` surface is
exactly what :func:`repro.sim.fastpath.cost_diagonal` duck-types on, so
content-equal problems share one interned diagonal across the stack.

JSONL spec forms (:func:`problem_from_spec`)::

    {"qubo": {"matrix": [[1, -2], [0, 1]], "sense": "max"}}
    {"ising": {"num_spins": 3, "quadratic": {"0-1": -0.5},
               "linear": {"2": 1.0}, "offset": 1.5}}

Diagonal QUBO terms become RZ rotations, off-diagonal terms weighted ZZ
interactions — matching the cost diagonal's weighted support — and the
canonical form hashes identically however the terms were ordered.
"""

from __future__ import annotations

import hashlib
import json
from typing import (
    Dict,
    List,
    Protocol,
    Sequence,
    Tuple,
    runtime_checkable,
)

import numpy as np

from .ising import IsingProblem
from .problems import MaxCutProblem, QAOAProgram

__all__ = [
    "PROBLEM_CANONICAL_VERSION",
    "Problem",
    "cost_values",
    "problem_canonical",
    "problem_fingerprint",
    "problem_from_spec",
]

#: Bumped whenever the canonical problem form changes, so fingerprints
#: (and everything hashed on top of them) cannot alias across versions.
PROBLEM_CANONICAL_VERSION = 1


@runtime_checkable
class Problem(Protocol):
    """Anything the whole stack accepts as a QAOA cost function."""

    @property
    def num_qubits(self) -> int:
        """Logical register width."""
        ...

    @property
    def edges(self) -> Sequence[Tuple[int, int, float]]:
        """Weighted ZZ terms, program weight convention."""
        ...

    @property
    def linear(self) -> Dict[int, float]:
        """Per-qubit linear fields (virtual RZ rotations)."""
        ...

    def to_program(
        self, gammas: Sequence[float], betas: Sequence[float]
    ) -> QAOAProgram:
        """The QAOA program for one parameter assignment."""
        ...

    def cost_values(self) -> np.ndarray:
        """Classical cost of every little-endian basis state."""
        ...

    def optimum(self) -> float:
        """The exact brute-force optimum (small ``n`` only)."""
        ...

    def content_fingerprint(self) -> str:
        """Canonical content hash (stable under term reordering)."""
        ...


def _kind(problem) -> str:
    if isinstance(problem, MaxCutProblem):
        return "maxcut"
    if isinstance(problem, IsingProblem):
        return "ising"
    return type(problem).__name__.lower()


def problem_canonical(problem) -> dict:
    """The order-independent hash pre-image of a problem's content.

    Two content-equal problems — same kind, register, accumulated terms
    and offset, whatever the construction order — canonicalise
    identically; problems whose *cost semantics* differ (a MaxCut
    instance vs the Ising form with the same couplings) differ in
    ``kind`` and never collide.
    """
    edges = sorted(
        (min(int(a), int(b)), max(int(a), int(b)), float(w))
        for a, b, w in problem.edges
    )
    linear = sorted(
        (int(q), float(h))
        for q, h in dict(getattr(problem, "linear", {}) or {}).items()
        if h
    )
    return {
        "canonical_version": PROBLEM_CANONICAL_VERSION,
        "kind": _kind(problem),
        "num_qubits": int(problem.num_qubits),
        "edges": [[a, b, repr(w)] for a, b, w in edges],
        "linear": [[q, repr(h)] for q, h in linear],
        "offset": repr(float(getattr(problem, "offset", 0.0))),
    }


def problem_fingerprint(problem) -> str:
    """Hex SHA-256 of :func:`problem_canonical`."""
    text = json.dumps(
        problem_canonical(problem), sort_keys=True, separators=(",", ":")
    )
    return hashlib.sha256(text.encode("utf-8")).hexdigest()


def cost_values(problem) -> np.ndarray:
    """The classical cost vector of a problem (protocol dispatch with a
    legacy fallback for bare MaxCut-likes exposing ``cut_values``)."""
    method = getattr(problem, "cost_values", None)
    if method is not None:
        return method()
    return problem.cut_values()


# ----------------------------------------------------------------------
# JSONL spec forms
# ----------------------------------------------------------------------
def _parse_pair_key(key) -> Tuple[int, int]:
    if isinstance(key, str):
        a, b = key.replace(",", "-").split("-")
        return int(a), int(b)
    a, b = key
    return int(a), int(b)


def problem_from_spec(spec: dict):
    """Build a problem from one JSONL spec object.

    Accepted forms (exactly one must be present):

    * ``"qubo"`` — ``{"matrix": [[...]], "sense": "max"|"min"}``, routed
      through :meth:`IsingProblem.from_qubo` (diagonal terms → RZ,
      off-diagonal → weighted ZZ);
    * ``"ising"`` — ``{"num_spins", "quadratic": {"i-j": J} | [[i, j, J]],
      "linear": {"i": h}, "offset"}``;
    * ``"maxcut"`` — ``{"num_nodes", "edges": [[a, b], [a, b, w], ...]}``.
    """
    forms = [k for k in ("qubo", "ising", "maxcut") if k in spec]
    if len(forms) != 1:
        raise ValueError(
            f"problem spec needs exactly one of 'qubo'/'ising'/'maxcut', "
            f"got {forms or 'none'}"
        )
    form = forms[0]
    body = spec[form]
    if not isinstance(body, dict):
        raise ValueError(f"'{form}' must be an object, got {type(body).__name__}")
    if form == "qubo":
        if "matrix" not in body:
            raise ValueError("'qubo' spec needs a 'matrix' entry")
        return IsingProblem.from_qubo(
            np.asarray(body["matrix"], dtype=float),
            sense=str(body.get("sense", "max")),
        )
    if form == "ising":
        quadratic_spec = body.get("quadratic", {})
        if isinstance(quadratic_spec, dict):
            quadratic = {
                _parse_pair_key(k): float(v)
                for k, v in quadratic_spec.items()
            }
        else:
            quadratic = {}
            for entry in quadratic_spec:
                a, b, j = entry
                key = (min(int(a), int(b)), max(int(a), int(b)))
                quadratic[key] = quadratic.get(key, 0.0) + float(j)
        return IsingProblem(
            int(body["num_spins"]),
            quadratic,
            {int(q): float(h) for q, h in body.get("linear", {}).items()},
            float(body.get("offset", 0.0)),
        )
    edges: List[Sequence] = [tuple(e) for e in body["edges"]]
    return MaxCutProblem(int(body["num_nodes"]), edges)
