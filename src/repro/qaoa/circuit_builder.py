"""Building logical QAOA circuits from a :class:`QAOAProgram`.

The p-level QAOA-MaxCut circuit (Figure 1(b)):

* Hadamard on every qubit (uniform superposition),
* per level: one CPHASE per edge (angle ``-gamma * w``) followed by
  ``RX(2*beta)`` on every qubit,
* measurement of every qubit.

The CPHASE order within a level is a free choice — that freedom is the whole
paper.  :func:`build_qaoa_circuit` accepts an explicit order (or an rng to
randomise it, the NAIVE behaviour) so compilation flows control it.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

import numpy as np

from ..circuits import QuantumCircuit
from .problems import QAOAProgram

__all__ = ["build_qaoa_circuit", "order_edges"]

Pair = Tuple[int, int]


def order_edges(
    gates: Sequence[Tuple[int, int, float]],
    order: Optional[Sequence[Pair]] = None,
    rng: Optional[np.random.Generator] = None,
) -> List[Tuple[int, int, float]]:
    """Re-order a level's CPHASE gates.

    Args:
        gates: ``(a, b, angle)`` triples.
        order: Explicit pair order (each pair must appear with matching
            multiplicity); wins over ``rng``.
        rng: Shuffle randomly when no explicit order is given.

    Returns:
        The gates in the requested order.
    """
    if order is not None:
        remaining = list(gates)
        out: List[Tuple[int, int, float]] = []
        for a, b in order:
            for i, gate in enumerate(remaining):
                ga, gb = gate[0], gate[1]
                if {ga, gb} == {a, b}:
                    out.append(remaining.pop(i))
                    break
            else:
                raise ValueError(f"pair ({a}, {b}) not found among gates")
        if remaining:
            raise ValueError(
                f"order omitted {len(remaining)} gate(s): {remaining}"
            )
        return out
    gates = list(gates)
    if rng is not None:
        perm = rng.permutation(len(gates))
        gates = [gates[i] for i in perm]
    return gates


def build_qaoa_circuit(
    program: QAOAProgram,
    edge_orders: Optional[Sequence[Sequence[Pair]]] = None,
    rng: Optional[np.random.Generator] = None,
    measure: bool = True,
) -> QuantumCircuit:
    """Construct the logical QAOA circuit for ``program``.

    Args:
        program: The QAOA level structure.
        edge_orders: Optional per-level explicit CPHASE orders (one sequence
            of pairs per level).
        rng: Random CPHASE order per level when ``edge_orders`` is None and
            an rng is given; otherwise program order is kept.
        measure: Append measurement of every qubit.

    Returns:
        A logical-qubit :class:`~repro.circuits.circuit.QuantumCircuit`.
    """
    if edge_orders is not None and len(edge_orders) != program.p:
        raise ValueError(
            f"edge_orders has {len(edge_orders)} entries for p={program.p}"
        )
    circuit = QuantumCircuit(program.num_qubits, name="qaoa")
    for q in range(program.num_qubits):
        circuit.h(q)
    for level in range(program.p):
        gates = program.cphase_gates(level)
        order = edge_orders[level] if edge_orders is not None else None
        for a, b, angle in order_edges(gates, order=order, rng=rng):
            circuit.cphase(angle, a, b)
        for q, angle in program.rz_gates(level):
            circuit.rz(angle, q)
        mixer = program.mixer_angle(level)
        for q in range(program.num_qubits):
            circuit.rx(mixer, q)
    if measure:
        circuit.measure_all()
    return circuit
