"""Problem-graph workload generators (Section V-B).

The paper's benchmark suite is built from two random-graph families,
"inspired from recent works on QAOA":

* **Erdős–Rényi** ``G(n, p)`` graphs with edge probabilities 0.1–0.6;
* **random d-regular** graphs with 3–8 edges per node.

Plus the Section VI comparison workload: 8-node ER graphs conditioned on
having exactly 8 edges.  All generators take an explicit seed/rng so every
experiment in :mod:`repro.experiments` is reproducible.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

import networkx as nx
import numpy as np

__all__ = [
    "erdos_renyi_graph",
    "random_regular_graph",
    "erdos_renyi_fixed_edges",
    "graph_edges",
    "ensure_no_isolated_qubits",
]

Pair = Tuple[int, int]


def _seed_from(rng: Optional[np.random.Generator]) -> int:
    """Derive a deterministic int seed for networkx from our rng."""
    if rng is None:
        rng = np.random.default_rng()
    return int(rng.integers(0, 2 ** 31 - 1))


def graph_edges(graph: nx.Graph) -> List[Pair]:
    """Normalised (min, max) sorted edge list of a graph."""
    return sorted((min(a, b), max(a, b)) for a, b in graph.edges())


def erdos_renyi_graph(
    num_nodes: int,
    edge_probability: float,
    rng: Optional[np.random.Generator] = None,
    require_edges: bool = True,
) -> nx.Graph:
    """Sample a ``G(n, p)`` Erdős–Rényi graph.

    Args:
        num_nodes: Number of nodes (logical qubits).
        edge_probability: Independent inclusion probability per node pair.
        rng: Random generator (seeded for reproducibility).
        require_edges: Re-sample until the graph has at least one edge, so
            every instance yields a non-empty QAOA circuit.
    """
    if not 0.0 <= edge_probability <= 1.0:
        raise ValueError(f"edge_probability {edge_probability} outside [0, 1]")
    if num_nodes < 2:
        raise ValueError("need at least 2 nodes")
    rng = rng if rng is not None else np.random.default_rng()
    for _ in range(1000):
        graph = nx.erdos_renyi_graph(
            num_nodes, edge_probability, seed=_seed_from(rng)
        )
        if graph.number_of_edges() > 0 or not require_edges:
            return graph
    raise RuntimeError(
        f"failed to sample a non-empty G({num_nodes}, {edge_probability})"
    )


def random_regular_graph(
    num_nodes: int,
    degree: int,
    rng: Optional[np.random.Generator] = None,
) -> nx.Graph:
    """Sample a random ``degree``-regular graph on ``num_nodes`` nodes.

    ``num_nodes * degree`` must be even (handshake lemma) and
    ``degree < num_nodes``.
    """
    if degree >= num_nodes:
        raise ValueError(f"degree {degree} >= num_nodes {num_nodes}")
    if (num_nodes * degree) % 2 != 0:
        raise ValueError(
            f"n*d must be even for a regular graph (n={num_nodes}, d={degree})"
        )
    rng = rng if rng is not None else np.random.default_rng()
    return nx.random_regular_graph(degree, num_nodes, seed=_seed_from(rng))


def erdos_renyi_fixed_edges(
    num_nodes: int,
    num_edges: int,
    rng: Optional[np.random.Generator] = None,
) -> nx.Graph:
    """A uniformly random graph with exactly ``num_edges`` edges (G(n, m)).

    This is the Section VI planner-comparison workload: "8-node erdos-renyi
    random graphs with exactly 8 edges".
    """
    max_edges = num_nodes * (num_nodes - 1) // 2
    if not 0 <= num_edges <= max_edges:
        raise ValueError(
            f"num_edges {num_edges} outside [0, {max_edges}] for n={num_nodes}"
        )
    rng = rng if rng is not None else np.random.default_rng()
    return nx.gnm_random_graph(num_nodes, num_edges, seed=_seed_from(rng))


def ensure_no_isolated_qubits(graph: nx.Graph) -> bool:
    """Whether every node participates in at least one edge.

    Isolated nodes are legal (their qubits just get H + RX + measure) but
    some sweeps prefer to filter them; this predicate makes that explicit.
    """
    return all(d > 0 for _, d in graph.degree())
