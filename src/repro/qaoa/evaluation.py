"""QAOA output evaluation: approximation ratio and the ARG metric.

The paper's quality pipeline (Sections II and V-A):

* **approximation ratio** ``r`` — the mean sampled cut value divided by the
  true maximum cut;
* **Approximation Ratio Gap (ARG)** — the paper's proposed hardware-quality
  metric: compile the circuit once with optimal parameters, sample it on a
  noiseless simulator (ratio ``r0``) and on hardware (ratio ``rh``), and
  report ``100 * (r0 - rh) / r0``.  Lower is better; it isolates how much
  the *compiled circuit's* noise exposure degrades the algorithm.

Compiled circuits live on physical qubits and their logical qubits end up
wherever routing left them, so :func:`decode_physical_counts` folds sampled
physical bitstrings back into logical ones through the final mapping before
any cost is evaluated.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, Mapping, Optional

import numpy as np

from ..sim.sampler import expectation_from_counts, total_shots
from .problems import MaxCutProblem

__all__ = [
    "approximation_ratio",
    "approximation_ratio_gap",
    "decode_physical_counts",
    "ARGResult",
    "evaluate_arg",
]


def decode_physical_counts(
    counts: Mapping[str, int],
    final_mapping: Mapping[int, int],
    num_logical: int,
) -> Dict[str, int]:
    """Translate physical-qubit bitstrings into logical-qubit bitstrings.

    Args:
        counts: Histogram over physical bitstrings ``p_{N-1}...p_0``.
        final_mapping: logical -> physical at measurement time.
        num_logical: Number of logical qubits; all must be mapped.

    Returns:
        Histogram over logical bitstrings ``q_{n-1}...q_0``.
    """
    for q in range(num_logical):
        if q not in final_mapping:
            raise ValueError(f"logical qubit {q} missing from final mapping")
    out: Dict[str, int] = {}
    for bits, c in counts.items():
        n_phys = len(bits)
        logical_bits = "".join(
            bits[n_phys - 1 - final_mapping[q]]
            for q in range(num_logical - 1, -1, -1)
        )
        out[logical_bits] = out.get(logical_bits, 0) + c
    return out


def approximation_ratio(
    counts: Mapping[str, int], problem: MaxCutProblem
) -> float:
    """Mean sampled cut value over the exact maximum cut.

    ``counts`` must already be over *logical* bitstrings (see
    :func:`decode_physical_counts`).
    """
    if total_shots(counts) == 0:
        raise ValueError("empty counts")
    mean_cost = expectation_from_counts(counts, problem.cut_value)
    return mean_cost / problem.max_cut_value()


def approximation_ratio_gap(r0: float, rh: float) -> float:
    """ARG = ``100 * (r0 - rh) / r0`` (percent; lower is better)."""
    if r0 == 0.0:
        raise ValueError("noiseless approximation ratio r0 is zero")
    return 100.0 * (r0 - rh) / r0


@dataclasses.dataclass
class ARGResult:
    """ARG measurement for one compiled circuit.

    Attributes:
        r0: Noiseless-sampling approximation ratio of the compiled circuit.
        rh: Hardware (noisy-simulation) approximation ratio.
        arg: ``100 * (r0 - rh) / r0``.
        shots: Samples used on each side.
    """

    r0: float
    rh: float
    arg: float
    shots: int


def evaluate_arg(
    compiled,
    problem: MaxCutProblem,
    ideal_simulator,
    noisy_simulator,
    shots: int = 4096,
    rng: Optional[np.random.Generator] = None,
    fast: object = "auto",
) -> ARGResult:
    """Measure the ARG of a compiled QAOA circuit (Section V-A procedure).

    Args:
        compiled: A compiled result exposing ``circuit`` (physical
            :class:`~repro.circuits.circuit.QuantumCircuit`),
            ``final_mapping`` (logical -> physical) and ``num_logical``
            (e.g. :class:`repro.compiler.flow.CompiledQAOA`).
        problem: The MaxCut instance the circuit solves.
        ideal_simulator: Object with ``sample_counts(circuit, shots, rng)``
            producing noiseless samples.
        noisy_simulator: Same interface, standing in for the hardware.
        shots: Samples per side (paper: 40960 on melbourne).
        rng: Random generator for sampling.
        fast: ``"auto"`` (default) routes through
            :func:`repro.sim.fastpath.evaluate_fast` when both simulators
            are the stock gate-by-gate ones and the compiled circuit
            proves ARG-equivalent, falling back to gate-by-gate sampling
            otherwise; ``False`` forces the legacy path; ``True`` demands
            the fast path and raises :class:`ValueError` when it cannot
            be taken.  The fast path consumes random draws in the same
            order as the legacy path, so a seeded ``rng`` yields
            identical samples either way.

    Returns:
        An :class:`ARGResult`.
    """
    if fast not in ("auto", True, False):
        raise ValueError(f"fast must be 'auto', True or False, got {fast!r}")
    rng = rng if rng is not None else np.random.default_rng()

    if fast is not False:
        from ..sim.fastpath import cost_diagonal, evaluate_fast, fastpath_plan
        from ..sim.noise import NoisySimulator
        from ..sim.statevector import StatevectorSimulator

        reason = None
        if not (
            type(ideal_simulator) is StatevectorSimulator
            and type(noisy_simulator) is NoisySimulator
        ):
            reason = "simulators are not the stock gate-by-gate pair"
        elif (
            cost_diagonal(problem).fingerprint
            != cost_diagonal(compiled.program).fingerprint
        ):
            reason = "problem content differs from the compiled program"
        else:
            plan = fastpath_plan(compiled)
            if not plan.ok:
                reason = plan.reason
        if reason is None:
            outcome = evaluate_fast(
                compiled,
                noise=noisy_simulator.noise,
                shots=shots,
                trajectories=noisy_simulator.trajectories,
                rng=rng,
                mode="sampled",
                durations=noisy_simulator.durations,
            )
            return ARGResult(
                r0=outcome.r0, rh=outcome.rh, arg=outcome.arg, shots=shots
            )
        if fast is True:
            raise ValueError(f"fast path unavailable: {reason}")

    circuit = compiled.circuit
    mapping = compiled.final_mapping
    n_logical = compiled.num_logical

    ideal_counts = decode_physical_counts(
        ideal_simulator.sample_counts(circuit, shots, rng), mapping, n_logical
    )
    noisy_counts = decode_physical_counts(
        noisy_simulator.sample_counts(circuit, shots, rng), mapping, n_logical
    )
    r0 = approximation_ratio(ideal_counts, problem)
    rh = approximation_ratio(noisy_counts, problem)
    return ARGResult(
        r0=r0, rh=rh, arg=approximation_ratio_gap(r0, rh), shots=shots
    )
