"""QAOA expectation landscapes.

The paper motivates reliable compilation with the observation that "various
sources of noise flatten the solution space of QAOA" (Section I, citing the
authors' own noise studies).  This module provides the tools to see that:

* :func:`expectation_grid` — ``<C>(gamma, beta)`` on a parameter grid,
  using the closed form for p=1 unweighted problems and the simulator
  otherwise;
* :func:`noisy_expectation_grid` — the same landscape as measured through a
  *compiled* circuit on a noisy simulator (grid points share the gate
  structure; only angles change — exactly how a hardware sweep works);
* :func:`landscape_statistics` — contrast/flatness summary, so "noise
  flattens the landscape" becomes a number.
"""

from __future__ import annotations

import dataclasses
import math
from typing import Optional, Tuple

import numpy as np

from ..sim.fastpath import cost_diagonal, expectation_batch
from .analytic import analytic_expectation
from .frontend import cost_values
from .problems import MaxCutProblem

__all__ = [
    "LandscapeGrid",
    "expectation_grid",
    "noisy_expectation_grid",
    "landscape_statistics",
    "LandscapeStats",
]


@dataclasses.dataclass
class LandscapeGrid:
    """A sampled ``<C>(gamma, beta)`` surface.

    Attributes:
        gammas: Grid values along the gamma axis.
        betas: Grid values along the beta axis.
        values: ``(len(gammas), len(betas))`` expectation values.
    """

    gammas: np.ndarray
    betas: np.ndarray
    values: np.ndarray

    def best(self) -> Tuple[float, float, float]:
        """``(gamma, beta, value)`` at the grid maximum."""
        i, j = np.unravel_index(np.argmax(self.values), self.values.shape)
        return float(self.gammas[i]), float(self.betas[j]), float(self.values[i, j])


@dataclasses.dataclass
class LandscapeStats:
    """Flatness summary of a landscape.

    Attributes:
        max_value: Peak expectation.
        min_value: Valley expectation.
        contrast: ``max - min`` — what noise flattens.
        mean: Grid mean.
        peak_to_mean: ``max - mean``; small values mean the optimiser has
            little signal to climb.
    """

    max_value: float
    min_value: float
    contrast: float
    mean: float
    peak_to_mean: float


def _grid_axes(resolution: int) -> Tuple[np.ndarray, np.ndarray]:
    gammas = np.linspace(-math.pi, math.pi, resolution, endpoint=False)
    betas = np.linspace(-math.pi / 2, math.pi / 2, resolution, endpoint=False)
    return gammas, betas


def expectation_grid(
    problem,
    resolution: int = 16,
    use_analytic: bool = True,
) -> LandscapeGrid:
    """Noiseless p=1 expectation surface of a problem.

    Accepts any :class:`~repro.qaoa.frontend.Problem`.  The general case
    runs the whole ``resolution^2`` grid through one batched fast-path
    pass (:func:`~repro.sim.fastpath.expectation_batch`) against the
    interned cost diagonal — no per-point circuit builds.

    Args:
        problem: The instance (MaxCut or general Ising/QUBO).
        resolution: Grid points per axis.
        use_analytic: Use the closed form when valid (unweighted MaxCut).
    """
    if resolution < 2:
        raise ValueError("resolution must be >= 2")
    gammas, betas = _grid_axes(resolution)
    unweighted = isinstance(problem, MaxCutProblem) and all(
        abs(w - 1.0) < 1e-12 for _, _, w in problem.edges
    )
    if use_analytic and unweighted:
        values = np.zeros((resolution, resolution))
        for i, g in enumerate(gammas):
            for j, b in enumerate(betas):
                values[i, j] = analytic_expectation(problem, float(g), float(b))
    else:
        grid_g, grid_b = np.meshgrid(gammas, betas, indexing="ij")
        flat = expectation_batch(
            problem,
            grid_g.ravel()[:, None],
            grid_b.ravel()[:, None],
            values=cost_values(problem),
            diagonal=cost_diagonal(problem),
        )
        values = flat.reshape(resolution, resolution)
    return LandscapeGrid(gammas=gammas, betas=betas, values=values)


def noisy_expectation_grid(
    problem: MaxCutProblem,
    coupling,
    method: str,
    noisy_simulator,
    resolution: int = 8,
    shots: int = 512,
    rng: Optional[np.random.Generator] = None,
    calibration=None,
) -> LandscapeGrid:
    """The landscape as seen through compiled circuits on noisy hardware.

    Every grid point re-compiles with the same seed, so the gate structure
    is fixed and only the angles vary — matching how a parameter sweep runs
    on a real device.  Sampled expectations (``shots`` each) stand in for
    the hardware estimator.
    """
    from ..compiler import compile_with_method
    from .evaluation import decode_physical_counts

    if resolution < 2:
        raise ValueError("resolution must be >= 2")
    rng = rng if rng is not None else np.random.default_rng()
    gammas, betas = _grid_axes(resolution)
    values = np.zeros((resolution, resolution))
    for i, g in enumerate(gammas):
        for j, b in enumerate(betas):
            program = problem.to_program([float(g)], [float(b)])
            compiled = compile_with_method(
                program,
                coupling,
                method,
                calibration=calibration,
                rng=np.random.default_rng(1234),  # fixed: same structure
            )
            counts = decode_physical_counts(
                noisy_simulator.sample_counts(compiled.circuit, shots, rng),
                compiled.final_mapping,
                problem.num_nodes,
            )
            total = sum(counts.values())
            values[i, j] = (
                sum(problem.cut_value(bits) * c for bits, c in counts.items())
                / total
            )
    return LandscapeGrid(gammas=gammas, betas=betas, values=values)


def landscape_statistics(grid: LandscapeGrid) -> LandscapeStats:
    """Contrast/flatness numbers for a landscape."""
    values = grid.values
    return LandscapeStats(
        max_value=float(values.max()),
        min_value=float(values.min()),
        contrast=float(values.max() - values.min()),
        mean=float(values.mean()),
        peak_to_mean=float(values.max() - values.mean()),
    )
