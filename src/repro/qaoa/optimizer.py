"""The hybrid quantum-classical optimisation loop (Section V-G).

The paper finds optimal QAOA-MaxCut parameters by running "the
quantum-classical optimization loop (L-BFGS-B classical optimizer used from
SciPy library with convergence limit set to e-6)".  We reproduce that loop
with the exact fast-path statevector as the quantum side: the objective is
the exact expectation of the classical cost over the QAOA output
distribution, evaluated against the interned
:class:`~repro.sim.fastpath.CostDiagonal` (no circuit builds inside the
loop).  Any :class:`~repro.qaoa.frontend.Problem` — MaxCut or general
Ising/QUBO — is accepted.

For p = 1 on unweighted MaxCut the analytic expectation of
:mod:`repro.qaoa.analytic` is used as a fast path unless disabled — it is
mathematically the same objective, without building a state.

:func:`optimize_problem` is the service-grade variant behind the
``OptimizeJob`` workload: a *bounded* COBYLA / Nelder-Mead search whose
random restart population is scored in one call through
:func:`~repro.sim.fastpath.expectation_batch` before the single local
search starts — the batched angle grid is what makes an
optimizer-per-request service affordable.
"""

from __future__ import annotations

import dataclasses
import math
import time
from typing import Dict, List, Optional, Sequence

import numpy as np
from scipy import optimize

from ..sim.fastpath import (
    cost_diagonal,
    expectation_batch,
    qaoa_statevector_batch,
)
from ..sim.statevector import StatevectorSimulator
from .analytic import analytic_optimal_parameters
from .circuit_builder import build_qaoa_circuit
from .frontend import cost_values as _cost_values
from .problems import MaxCutProblem

__all__ = [
    "OPTIMIZER_METHODS",
    "QAOAOptimizationResult",
    "VariationalResult",
    "optimize_problem",
    "optimize_qaoa",
    "qaoa_expectation",
]

#: Bounded classical optimizers served by :func:`optimize_problem`,
#: mapped to their scipy method names.
OPTIMIZER_METHODS: Dict[str, str] = {
    "cobyla": "COBYLA",
    "nelder-mead": "Nelder-Mead",
}


@dataclasses.dataclass
class QAOAOptimizationResult:
    """Outcome of the hybrid loop.

    Attributes:
        gammas: Optimal cost angles, one per level.
        betas: Optimal mixer angles, one per level.
        expectation: ``<C>`` at the optimum.
        approximation_ratio: ``expectation / optimum`` (noiseless).
        evaluations: Number of objective evaluations used.
    """

    gammas: List[float]
    betas: List[float]
    expectation: float
    approximation_ratio: float
    evaluations: int


@dataclasses.dataclass
class VariationalResult:
    """Outcome of the bounded service-grade loop.

    Attributes:
        gammas / betas: Best parameters found, one per level.
        expectation: ``<C>`` at those parameters.
        optimum: The exact brute-force optimum of the problem.
        approximation_ratio: ``expectation / optimum`` (NaN when the
            optimum is ~0, where the ratio is meaningless).
        evaluations: Objective evaluations spent — the batched
            population scoring counts once per member.
        optimizer: Which entry of :data:`OPTIMIZER_METHODS` ran.
        timings: Wall-clock seconds per stage (``population`` = the one
            batched scoring pass, ``search`` = the local optimizer).
    """

    gammas: List[float]
    betas: List[float]
    expectation: float
    optimum: float
    approximation_ratio: float
    evaluations: int
    optimizer: str
    timings: Dict[str, float]


def _ratio(expectation: float, optimum: float) -> float:
    if abs(optimum) < 1e-12:
        return float("nan")
    return expectation / optimum


def qaoa_expectation(
    problem,
    gammas: Sequence[float],
    betas: Sequence[float],
    simulator: Optional[StatevectorSimulator] = None,
) -> float:
    """Exact noiseless ``<C>`` for the given parameters.

    Accepts any :class:`~repro.qaoa.frontend.Problem`.  By default the
    interned diagonal fast path evaluates it in one dense pass; passing
    ``simulator`` forces the legacy gate-by-gate circuit route (the two
    agree to machine precision).
    """
    values = _cost_values(problem)
    if simulator is not None:
        program = problem.to_program(gammas, betas)
        circuit = build_qaoa_circuit(program, measure=False)
        return simulator.expectation_diagonal(circuit, values)
    return float(
        expectation_batch(
            problem, [list(gammas)], [list(betas)], values=values
        )[0]
    )


def optimize_qaoa(
    problem,
    p: int = 1,
    rng: Optional[np.random.Generator] = None,
    restarts: int = 3,
    tol: float = 1e-6,
    use_analytic: bool = True,
    simulator: Optional[StatevectorSimulator] = None,
) -> QAOAOptimizationResult:
    """Run the hybrid loop and return optimal ``(gammas, betas)``.

    Args:
        problem: Any :class:`~repro.qaoa.frontend.Problem` (MaxCut or
            general Ising/QUBO).
        p: Number of QAOA levels.
        rng: Generator for the random restarts' initial points.
        restarts: Number of L-BFGS-B starts (best result kept).  The QAOA
            landscape is non-convex; a handful of restarts is the standard
            mitigation.
        tol: L-BFGS-B convergence tolerance (paper: 1e-6).
        use_analytic: For p=1 unweighted MaxCut, optimise the closed-form
            expectation instead of simulating (identical objective).
        simulator: Statevector simulator override; forces the legacy
            circuit-build objective instead of the diagonal fast path.

    Returns:
        A :class:`QAOAOptimizationResult`.
    """
    if p < 1:
        raise ValueError(f"p must be >= 1, got {p}")
    rng = rng if rng is not None else np.random.default_rng()
    optimum = _cost_values(problem).max()

    unweighted = isinstance(problem, MaxCutProblem) and all(
        abs(w - 1.0) < 1e-12 for _, _, w in problem.edges
    )
    if use_analytic and p == 1 and unweighted:
        gamma, beta, expectation = analytic_optimal_parameters(problem)
        return QAOAOptimizationResult(
            gammas=[gamma],
            betas=[beta],
            expectation=expectation,
            approximation_ratio=_ratio(expectation, optimum),
            evaluations=0,
        )

    values = _cost_values(problem)
    evaluations = 0

    if simulator is not None:

        def objective(params: np.ndarray) -> float:
            nonlocal evaluations
            evaluations += 1
            gammas, betas = params[:p], params[p:]
            program = problem.to_program(gammas, betas)
            circuit = build_qaoa_circuit(program, measure=False)
            return -simulator.expectation_diagonal(circuit, values)

    else:
        diag = cost_diagonal(problem)

        def objective(params: np.ndarray) -> float:
            nonlocal evaluations
            evaluations += 1
            states = qaoa_statevector_batch(
                problem, params[None, :p], params[None, p:], diagonal=diag
            )
            return -float(np.abs(states[0]) ** 2 @ values)

    best_value = math.inf
    best_params = None
    for _ in range(max(restarts, 1)):
        x0 = np.concatenate(
            [
                rng.uniform(-math.pi, math.pi, size=p),
                rng.uniform(-math.pi / 2, math.pi / 2, size=p),
            ]
        )
        result = optimize.minimize(
            objective, x0=x0, method="L-BFGS-B", tol=tol
        )
        if result.fun < best_value:
            best_value = float(result.fun)
            best_params = result.x.copy()
    assert best_params is not None
    expectation = -best_value
    return QAOAOptimizationResult(
        gammas=[float(g) for g in best_params[:p]],
        betas=[float(b) for b in best_params[p:]],
        expectation=expectation,
        approximation_ratio=_ratio(expectation, optimum),
        evaluations=evaluations,
    )


def optimize_problem(
    problem,
    p: int = 1,
    optimizer: str = "cobyla",
    maxiter: int = 200,
    restarts: int = 8,
    seed: int = 0,
    diagonal=None,
) -> VariationalResult:
    """Bounded variational search — the ``OptimizeJob`` classical loop.

    ``restarts`` random starting points are scored in *one* batched
    fast-path pass (:func:`~repro.sim.fastpath.expectation_batch`), then
    a single bounded COBYLA / Nelder-Mead search (``maxiter`` iterations)
    refines the best member.  Deterministic for a given ``seed``.

    Args:
        problem: Any :class:`~repro.qaoa.frontend.Problem`.
        p: Number of QAOA levels.
        optimizer: Key of :data:`OPTIMIZER_METHODS`.
        maxiter: Iteration bound handed to the scipy optimizer.
        restarts: Random-population size (must be >= 1).
        seed: Population RNG seed.
        diagonal: Optional pre-built :class:`CostDiagonal` override.

    Returns:
        A :class:`VariationalResult` with per-stage wall-clock timings.
    """
    if p < 1:
        raise ValueError(f"p must be >= 1, got {p}")
    if restarts < 1:
        raise ValueError(f"restarts must be >= 1, got {restarts}")
    if maxiter < 1:
        raise ValueError(f"maxiter must be >= 1, got {maxiter}")
    try:
        method = OPTIMIZER_METHODS[optimizer]
    except KeyError:
        raise ValueError(
            f"unknown optimizer {optimizer!r}; "
            f"choose from {sorted(OPTIMIZER_METHODS)}"
        ) from None

    rng = np.random.default_rng(seed)
    diag = diagonal if diagonal is not None else cost_diagonal(problem)
    values = _cost_values(problem)
    optimum = float(values.max())
    timings: Dict[str, float] = {}

    start = time.perf_counter()
    pop_gammas = rng.uniform(-math.pi, math.pi, size=(restarts, p))
    pop_betas = rng.uniform(-math.pi / 2.0, math.pi / 2.0, size=(restarts, p))
    scores = expectation_batch(
        problem, pop_gammas, pop_betas, values=values, diagonal=diag
    )
    timings["population"] = time.perf_counter() - start
    best = int(np.argmax(scores))
    x0 = np.concatenate([pop_gammas[best], pop_betas[best]])
    evaluations = restarts

    def objective(params: np.ndarray) -> float:
        nonlocal evaluations
        evaluations += 1
        states = qaoa_statevector_batch(
            problem, params[None, :p], params[None, p:], diagonal=diag
        )
        return -float(np.abs(states[0]) ** 2 @ values)

    start = time.perf_counter()
    result = optimize.minimize(
        objective, x0=x0, method=method, options={"maxiter": int(maxiter)}
    )
    timings["search"] = time.perf_counter() - start

    # The bounded search can stop worse than its start; keep the best.
    if -float(result.fun) >= float(scores[best]):
        params, expectation = result.x, -float(result.fun)
    else:
        params, expectation = x0, float(scores[best])
    return VariationalResult(
        gammas=[float(g) for g in params[:p]],
        betas=[float(b) for b in params[p:]],
        expectation=expectation,
        optimum=optimum,
        approximation_ratio=_ratio(expectation, optimum),
        evaluations=evaluations,
        optimizer=optimizer,
        timings=timings,
    )
