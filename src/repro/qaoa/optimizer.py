"""The hybrid quantum-classical optimisation loop (Section V-G).

The paper finds optimal QAOA-MaxCut parameters by running "the
quantum-classical optimization loop (L-BFGS-B classical optimizer used from
SciPy library with convergence limit set to e-6)".  We reproduce that loop
with the ideal statevector simulator as the quantum side: the objective is
the exact expectation of the cut value over the QAOA output distribution.

For p = 1 on unweighted problems the analytic expectation of
:mod:`repro.qaoa.analytic` is used as a fast path unless disabled — it is
mathematically the same objective, without building a state.
"""

from __future__ import annotations

import dataclasses
import math
from typing import List, Optional, Sequence

import numpy as np
from scipy import optimize

from ..sim.statevector import StatevectorSimulator
from .analytic import analytic_optimal_parameters
from .circuit_builder import build_qaoa_circuit
from .problems import MaxCutProblem

__all__ = ["QAOAOptimizationResult", "qaoa_expectation", "optimize_qaoa"]


@dataclasses.dataclass
class QAOAOptimizationResult:
    """Outcome of the hybrid loop.

    Attributes:
        gammas: Optimal cost angles, one per level.
        betas: Optimal mixer angles, one per level.
        expectation: ``<C>`` at the optimum.
        approximation_ratio: ``expectation / max_cut`` (noiseless).
        evaluations: Number of objective evaluations used.
    """

    gammas: List[float]
    betas: List[float]
    expectation: float
    approximation_ratio: float
    evaluations: int


def qaoa_expectation(
    problem: MaxCutProblem,
    gammas: Sequence[float],
    betas: Sequence[float],
    simulator: Optional[StatevectorSimulator] = None,
) -> float:
    """Exact noiseless ``<C>`` for the given parameters (via statevector)."""
    simulator = simulator or StatevectorSimulator()
    program = problem.to_program(gammas, betas)
    circuit = build_qaoa_circuit(program, measure=False)
    return simulator.expectation_diagonal(circuit, problem.cut_values())


def optimize_qaoa(
    problem: MaxCutProblem,
    p: int = 1,
    rng: Optional[np.random.Generator] = None,
    restarts: int = 3,
    tol: float = 1e-6,
    use_analytic: bool = True,
    simulator: Optional[StatevectorSimulator] = None,
) -> QAOAOptimizationResult:
    """Run the hybrid loop and return optimal ``(gammas, betas)``.

    Args:
        problem: The MaxCut instance.
        p: Number of QAOA levels.
        rng: Generator for the random restarts' initial points.
        restarts: Number of L-BFGS-B starts (best result kept).  The QAOA
            landscape is non-convex; a handful of restarts is the standard
            mitigation.
        tol: L-BFGS-B convergence tolerance (paper: 1e-6).
        use_analytic: For p=1 unweighted problems, optimise the closed-form
            expectation instead of simulating (identical objective).
        simulator: Statevector simulator override.

    Returns:
        A :class:`QAOAOptimizationResult`.
    """
    if p < 1:
        raise ValueError(f"p must be >= 1, got {p}")
    rng = rng if rng is not None else np.random.default_rng()
    max_cut = problem.max_cut_value()

    unweighted = all(abs(w - 1.0) < 1e-12 for _, _, w in problem.edges)
    if use_analytic and p == 1 and unweighted:
        gamma, beta, expectation = analytic_optimal_parameters(problem)
        return QAOAOptimizationResult(
            gammas=[gamma],
            betas=[beta],
            expectation=expectation,
            approximation_ratio=expectation / max_cut,
            evaluations=0,
        )

    simulator = simulator or StatevectorSimulator()
    cut_values = problem.cut_values()
    evaluations = 0

    def objective(params: np.ndarray) -> float:
        nonlocal evaluations
        evaluations += 1
        gammas, betas = params[:p], params[p:]
        program = problem.to_program(gammas, betas)
        circuit = build_qaoa_circuit(program, measure=False)
        return -simulator.expectation_diagonal(circuit, cut_values)

    best_value = math.inf
    best_params = None
    for _ in range(max(restarts, 1)):
        x0 = np.concatenate(
            [
                rng.uniform(-math.pi, math.pi, size=p),
                rng.uniform(-math.pi / 2, math.pi / 2, size=p),
            ]
        )
        result = optimize.minimize(
            objective, x0=x0, method="L-BFGS-B", tol=tol
        )
        if result.fun < best_value:
            best_value = float(result.fun)
            best_params = result.x.copy()
    assert best_params is not None
    expectation = -best_value
    return QAOAOptimizationResult(
        gammas=[float(g) for g in best_params[:p]],
        betas=[float(b) for b in best_params[p:]],
        expectation=expectation,
        approximation_ratio=expectation / max_cut,
        evaluations=evaluations,
    )
