"""MaxCut problem instances and the QAOA program description.

Two classes:

* :class:`MaxCutProblem` — a (weighted) MaxCut instance: the classical cost
  function ``C(z) = sum_{(i,j)} w_ij * (1 - z_i z_j) / 2`` evaluated over
  bitstrings, its exact optimum (brute force, vectorised), and conversion
  into QAOA programs.
* :class:`QAOAProgram` — the level structure of a QAOA circuit: one CPHASE
  per edge per level with angle ``-gamma * w`` (so the block implements
  ``exp(-i*gamma*C)`` up to global phase), plus the ``RX(2*beta)`` mixer.

The Ising connection (Section II, "QAOA-circuits"): promoting each binary
variable to a Pauli-Z turns every quadratic term of the Ising model into a
ZZ interaction, realised by one CPHASE gate.  MaxCut is the paper's
evaluation problem, but anything expressible as quadratic Ising terms maps
through the same path, which is why :class:`QAOAProgram` stores generic
weighted edges.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

import networkx as nx
import numpy as np

__all__ = ["MaxCutProblem", "QAOAProgram", "Level"]

Pair = Tuple[int, int]

_MAX_BRUTE_FORCE_QUBITS = 26


@dataclasses.dataclass(frozen=True)
class Level:
    """One QAOA level's parameters ``(gamma, beta)``."""

    gamma: float
    beta: float


@dataclasses.dataclass
class QAOAProgram:
    """Structural description of a QAOA circuit before compilation.

    Attributes:
        num_qubits: Number of logical qubits.
        edges: ``(a, b, weight)`` triples — one CPHASE per edge per level.
        levels: The ``p`` levels' ``(gamma, beta)`` parameters.
        linear: Optional per-qubit linear Ising fields ``{i: h_i}`` — they
            become *virtual* RZ rotations in every cost block (general
            Ising problems have them; MaxCut does not).  Single-qubit gates
            never constrain routing, so all compilation flows apply
            unchanged.
    """

    num_qubits: int
    edges: List[Tuple[int, int, float]]
    levels: List[Level]
    linear: Dict[int, float] = dataclasses.field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.num_qubits < 1:
            raise ValueError("num_qubits must be positive")
        if not self.levels:
            raise ValueError("a QAOA program needs at least one level")
        for a, b, w in self.edges:
            if a == b:
                raise ValueError(f"self-loop edge ({a}, {b})")
            if not (0 <= a < self.num_qubits and 0 <= b < self.num_qubits):
                raise ValueError(f"edge ({a}, {b}) out of range")
        for i in self.linear:
            if not 0 <= i < self.num_qubits:
                raise ValueError(f"linear term index {i} out of range")

    @property
    def p(self) -> int:
        """The number of QAOA levels."""
        return len(self.levels)

    def pairs(self) -> List[Pair]:
        """Unweighted logical endpoint pairs (one per edge)."""
        return [(a, b) for a, b, _ in self.edges]

    def cphase_gates(self, level: int) -> List[Tuple[int, int, float]]:
        """``(a, b, angle)`` triples for one level's cost block.

        The angle is ``-gamma * w`` so that applying our ZZ gate
        ``exp(-i*angle/2 * Z(x)Z)`` per edge realises ``exp(-i*gamma*C)``
        up to a global phase.
        """
        gamma = self.levels[level].gamma
        return [(a, b, -gamma * w) for a, b, w in self.edges]

    def rz_gates(self, level: int) -> List[Tuple[int, float]]:
        """``(qubit, angle)`` RZ rotations implementing the linear terms.

        ``exp(-i*gamma*h*Z) = RZ(2*gamma*h)`` under our RZ convention.
        Diagonal, so they commute with every CPHASE in the block.
        """
        gamma = self.levels[level].gamma
        return [(i, 2.0 * gamma * h) for i, h in sorted(self.linear.items())]

    def mixer_angle(self, level: int) -> float:
        """RX angle for the level's mixer: ``exp(-i*beta*X) = RX(2*beta)``."""
        return 2.0 * self.levels[level].beta


class MaxCutProblem:
    """A weighted MaxCut instance over ``num_nodes`` nodes.

    Args:
        num_nodes: Number of graph nodes (= logical qubits).
        edges: Edge list; each entry is ``(a, b)`` or ``(a, b, weight)``.
            Duplicate edges accumulate weight.
    """

    def __init__(
        self,
        num_nodes: int,
        edges: Iterable[Sequence],
    ) -> None:
        if num_nodes < 2:
            raise ValueError("MaxCut needs at least 2 nodes")
        self.num_nodes = int(num_nodes)
        accum: Dict[Pair, float] = {}
        for edge in edges:
            if len(edge) == 2:
                a, b = edge
                w = 1.0
            elif len(edge) == 3:
                a, b, w = edge
            else:
                raise ValueError(f"edge {edge!r} must be (a, b) or (a, b, w)")
            a, b = int(a), int(b)
            if a == b:
                raise ValueError(f"self-loop edge ({a}, {b})")
            if not (0 <= a < num_nodes and 0 <= b < num_nodes):
                raise ValueError(f"edge ({a}, {b}) out of range")
            key = (min(a, b), max(a, b))
            accum[key] = accum.get(key, 0.0) + float(w)
        if not accum:
            raise ValueError("MaxCut instance has no edges")
        self.edges: List[Tuple[int, int, float]] = [
            (a, b, w) for (a, b), w in sorted(accum.items())
        ]
        self._cut_values: Optional[np.ndarray] = None

    # ------------------------------------------------------------------
    # constructors
    # ------------------------------------------------------------------
    @classmethod
    def from_graph(cls, graph: nx.Graph) -> "MaxCutProblem":
        """Build from a networkx graph (edge attribute ``weight`` honoured)."""
        nodes = sorted(graph.nodes())
        index = {node: i for i, node in enumerate(nodes)}
        edges = [
            (index[a], index[b], float(data.get("weight", 1.0)))
            for a, b, data in graph.edges(data=True)
        ]
        return cls(len(nodes), edges)

    # ------------------------------------------------------------------
    # Problem protocol surface (see repro.qaoa.frontend)
    # ------------------------------------------------------------------
    @property
    def num_qubits(self) -> int:
        """Logical register width (one qubit per node)."""
        return self.num_nodes

    @property
    def linear(self) -> Dict[int, float]:
        """MaxCut has no linear Ising fields."""
        return {}

    def cost_values(self) -> np.ndarray:
        """Protocol alias of :meth:`cut_values`."""
        return self.cut_values()

    def optimum(self) -> float:
        """Protocol alias of :meth:`max_cut_value`."""
        return self.max_cut_value()

    def content_fingerprint(self) -> str:
        """Canonical content hash (stable under edge reordering)."""
        from .frontend import problem_fingerprint

        return problem_fingerprint(self)

    # ------------------------------------------------------------------
    # classical cost function
    # ------------------------------------------------------------------
    def pairs(self) -> List[Pair]:
        """Unweighted endpoint pairs."""
        return [(a, b) for a, b, _ in self.edges]

    def total_weight(self) -> float:
        """Sum of edge weights (upper bound on any cut)."""
        return sum(w for _, _, w in self.edges)

    def cut_value(self, bits: str) -> float:
        """Cut value of one assignment.

        ``bits`` is a ``q_{n-1}...q_0`` bitstring (qubit 0 rightmost, the
        sampler convention).  An edge contributes its weight when its
        endpoints land on opposite sides.
        """
        if len(bits) != self.num_nodes:
            raise ValueError(
                f"bitstring length {len(bits)} != num_nodes {self.num_nodes}"
            )
        n = self.num_nodes
        value = 0.0
        for a, b, w in self.edges:
            if bits[n - 1 - a] != bits[n - 1 - b]:
                value += w
        return value

    def cut_values(self) -> np.ndarray:
        """Cut value of every basis state, indexed little-endian.

        Vectorised and cached; refuses beyond ``2**26`` states.
        """
        if self._cut_values is not None:
            return self._cut_values
        n = self.num_nodes
        if n > _MAX_BRUTE_FORCE_QUBITS:
            raise ValueError(
                f"brute-force cut table infeasible for {n} nodes "
                f"(limit {_MAX_BRUTE_FORCE_QUBITS})"
            )
        indices = np.arange(2 ** n, dtype=np.int64)
        values = np.zeros(2 ** n)
        for a, b, w in self.edges:
            bit_a = (indices >> a) & 1
            bit_b = (indices >> b) & 1
            values += w * (bit_a ^ bit_b)
        self._cut_values = values
        return values

    def max_cut_value(self) -> float:
        """The exact optimum (brute force)."""
        return float(self.cut_values().max())

    # ------------------------------------------------------------------
    # QAOA conversion
    # ------------------------------------------------------------------
    def to_program(
        self,
        gammas: Sequence[float],
        betas: Sequence[float],
    ) -> QAOAProgram:
        """Build the QAOA program for parameter vectors ``gammas, betas``."""
        if len(gammas) != len(betas):
            raise ValueError(
                f"gammas ({len(gammas)}) and betas ({len(betas)}) differ"
            )
        levels = [Level(float(g), float(b)) for g, b in zip(gammas, betas)]
        return QAOAProgram(
            num_qubits=self.num_nodes,
            edges=list(self.edges),
            levels=levels,
        )

    def degree(self, node: int) -> int:
        """Number of edges touching ``node``."""
        return sum(1 for a, b, _ in self.edges if node in (a, b))

    def common_neighbours(self, a: int, b: int) -> int:
        """Number of triangles through edge ``(a, b)`` (for the p=1
        analytic expectation)."""
        neigh_a = {y for x, y, _ in self.edges if x == a} | {
            x for x, y, _ in self.edges if y == a
        }
        neigh_b = {y for x, y, _ in self.edges if x == b} | {
            x for x, y, _ in self.edges if y == b
        }
        return len((neigh_a & neigh_b) - {a, b})

    def __repr__(self) -> str:
        return (
            f"MaxCutProblem(num_nodes={self.num_nodes}, "
            f"num_edges={len(self.edges)})"
        )
