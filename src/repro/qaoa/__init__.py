"""QAOA: problems, workload generators, circuits, optimisation, evaluation."""

from .analytic import (
    analytic_edge_expectation,
    analytic_expectation,
    analytic_optimal_parameters,
)
from .circuit_builder import build_qaoa_circuit, order_edges
from .evaluation import (
    ARGResult,
    approximation_ratio,
    approximation_ratio_gap,
    decode_physical_counts,
    evaluate_arg,
)
from .graphs import (
    ensure_no_isolated_qubits,
    erdos_renyi_fixed_edges,
    erdos_renyi_graph,
    graph_edges,
    random_regular_graph,
)
from .frontend import (
    PROBLEM_CANONICAL_VERSION,
    Problem,
    cost_values,
    problem_canonical,
    problem_fingerprint,
    problem_from_spec,
)
from .ising import IsingProblem, maxcut_to_ising, qubo_to_ising
from .landscape import (
    LandscapeGrid,
    LandscapeStats,
    expectation_grid,
    landscape_statistics,
    noisy_expectation_grid,
)
from .optimizer import (
    OPTIMIZER_METHODS,
    QAOAOptimizationResult,
    VariationalResult,
    optimize_problem,
    optimize_qaoa,
    qaoa_expectation,
)
from .problems import Level, MaxCutProblem, QAOAProgram
from .transfer import TransferredParameters, learn_parameters, transfer_quality

__all__ = [
    "MaxCutProblem",
    "QAOAProgram",
    "Level",
    "build_qaoa_circuit",
    "order_edges",
    "erdos_renyi_graph",
    "erdos_renyi_fixed_edges",
    "random_regular_graph",
    "graph_edges",
    "ensure_no_isolated_qubits",
    "analytic_expectation",
    "analytic_edge_expectation",
    "analytic_optimal_parameters",
    "optimize_qaoa",
    "qaoa_expectation",
    "QAOAOptimizationResult",
    "approximation_ratio",
    "approximation_ratio_gap",
    "decode_physical_counts",
    "evaluate_arg",
    "ARGResult",
    "learn_parameters",
    "transfer_quality",
    "TransferredParameters",
    "IsingProblem",
    "qubo_to_ising",
    "maxcut_to_ising",
    "Problem",
    "PROBLEM_CANONICAL_VERSION",
    "cost_values",
    "problem_canonical",
    "problem_fingerprint",
    "problem_from_spec",
    "OPTIMIZER_METHODS",
    "VariationalResult",
    "optimize_problem",
    "expectation_grid",
    "noisy_expectation_grid",
    "landscape_statistics",
    "LandscapeGrid",
    "LandscapeStats",
]
