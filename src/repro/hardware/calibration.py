"""Device calibration data: per-gate error rates.

The paper's variation-aware techniques (VQA-style allocation and VIC) and the
circuit success-probability metric both consume *calibration data*: per-edge
CNOT error rates (Figure 10(a) shows one day of ibmq_16_melbourne data) and,
optionally, single-qubit gate and readout error rates.

:class:`Calibration` stores these and exposes the derived quantities the
compiler uses:

* ``cnot_success(a, b)`` — ``1 - error`` for the coupling,
* ``vic_edge_weights()`` — ``1 / success`` weights for VIC's distance table,
* :func:`random_calibration` — Gaussian CNOT-error sampling
  (``mu=1e-2, sigma=0.5e-2``), the model used for Figure 11(a)'s summary.
"""

from __future__ import annotations

import dataclasses
import math
from types import MappingProxyType
from typing import Dict, Mapping, Optional

import numpy as np

from .coupling import CouplingGraph, Edge

__all__ = ["Calibration", "random_calibration", "uniform_calibration"]


def _norm_edge(a: int, b: int) -> Edge:
    return (min(a, b), max(a, b))


@dataclasses.dataclass
class Calibration:
    """Error rates for one device at one point in time.

    Attributes:
        coupling: The device topology the data belongs to.
        cnot_error: Per-edge CNOT error rate in ``[0, 1)``.
        single_qubit_error: Per-qubit single-qubit gate error rate; defaults
            to 0 for every qubit (single-qubit errors are an order of
            magnitude below CNOT errors and the paper's success-probability
            comparisons are driven by the two-qubit gates).
        readout_error: Per-qubit measurement misread probability.
        timestamp: Free-form provenance label (e.g. "4/8/2020").
    """

    coupling: CouplingGraph
    cnot_error: Dict[Edge, float]
    single_qubit_error: Dict[int, float] = dataclasses.field(default_factory=dict)
    readout_error: Dict[int, float] = dataclasses.field(default_factory=dict)
    timestamp: str = ""

    def __post_init__(self) -> None:
        normalised = {}
        for (a, b), err in self.cnot_error.items():
            edge = _norm_edge(a, b)
            if not self.coupling.has_edge(*edge):
                raise ValueError(
                    f"calibration for non-existent coupling {edge} on "
                    f"{self.coupling.name}"
                )
            err = float(err)
            if not math.isfinite(err):
                raise ValueError(
                    f"CNOT error {err} on {edge} is not finite; NaN/inf "
                    f"entries poison VIC edge weights — repair the feed "
                    f"first (see repro.hardware.faults.repair_calibration)"
                )
            if not 0.0 <= err < 1.0:
                raise ValueError(f"CNOT error {err} on {edge} outside [0, 1)")
            normalised[edge] = err
        missing = self.coupling.edges - set(normalised)
        if missing:
            raise ValueError(
                f"missing CNOT calibration for edges {sorted(missing)}"
            )
        self.cnot_error = normalised
        for q, err in {**self.single_qubit_error, **self.readout_error}.items():
            if not 0 <= q < self.coupling.num_qubits:
                raise ValueError(f"qubit {q} out of range in calibration")
            if not math.isfinite(float(err)):
                raise ValueError(
                    f"error rate {err} on qubit {q} is not finite"
                )
            if not 0.0 <= err < 1.0:
                raise ValueError(f"error rate {err} on qubit {q} outside [0, 1)")

    # ------------------------------------------------------------------
    # lookups
    # ------------------------------------------------------------------
    def cnot_error_rate(self, a: int, b: int) -> float:
        """CNOT error rate on the (undirected) coupling ``a - b``."""
        edge = _norm_edge(a, b)
        if edge not in self.cnot_error:
            raise KeyError(f"no coupling {edge} on {self.coupling.name}")
        return self.cnot_error[edge]

    def cnot_success(self, a: int, b: int) -> float:
        """CNOT success probability ``1 - error``."""
        return 1.0 - self.cnot_error_rate(a, b)

    def cphase_success(self, a: int, b: int) -> float:
        """Success rate of a CPHASE on the coupling.

        On IBM hardware the RZ inside the CPHASE decomposition is virtual,
        so the CPHASE reliability is the product of its two CNOTs
        (Section IV-D: 0.9 CNOT -> ~0.81 CPHASE).
        """
        s = self.cnot_success(a, b)
        return s * s

    def swap_success(self, a: int, b: int) -> float:
        """Success rate of a SWAP (three CNOTs) on the coupling."""
        s = self.cnot_success(a, b)
        return s * s * s

    def single_qubit_success(self, qubit: int) -> float:
        """Success probability of one single-qubit gate on ``qubit``."""
        return 1.0 - self.single_qubit_error.get(qubit, 0.0)

    def readout_fidelity(self, qubit: int) -> float:
        """Probability that measuring ``qubit`` reports the true value."""
        return 1.0 - self.readout_error.get(qubit, 0.0)

    # ------------------------------------------------------------------
    # derived tables
    # ------------------------------------------------------------------
    def vic_edge_weights(self) -> Mapping[Edge, float]:
        """Edge weights ``1 / cphase_success`` for VIC routing.

        Figure 6 uses ``1/R`` where ``R`` is the two-qubit operation success
        rate; combined with Floyd–Warshall this makes the "distance" between
        qubits grow as reliability falls.

        Memoized (read-only mapping): a calibration's rates are fixed after
        validation, and VIC resolves these weights once per layer without
        this cache.
        """
        cached = self.__dict__.get("_vic_weights_cache")
        if cached is None:
            cached = MappingProxyType(
                {e: 1.0 / self.cphase_success(*e) for e in self.coupling.edges}
            )
            self.__dict__["_vic_weights_cache"] = cached
        return cached

    def vic_distance_matrix(self) -> np.ndarray:
        """Reliability-weighted all-pairs distances (Figure 6(d)).

        Memoized as a read-only array — the O(n³) Floyd–Warshall runs once
        per calibration instead of once per VIC layer.
        """
        cached = self.__dict__.get("_vic_matrix_cache")
        if cached is None:
            cached = self.coupling.weighted_distance_matrix(
                self.vic_edge_weights()
            )
            cached.setflags(write=False)
            self.__dict__["_vic_matrix_cache"] = cached
        return cached

    def __getstate__(self) -> dict:
        # Memoized tables are derived data: drop them so pickles stay
        # edge-list-sized and unpickled copies recompute lazily.
        state = dict(self.__dict__)
        state.pop("_vic_weights_cache", None)
        state.pop("_vic_matrix_cache", None)
        return state

    def mean_cnot_error(self) -> float:
        """Average CNOT error over all couplings."""
        return float(np.mean(list(self.cnot_error.values())))

    def best_edge(self) -> Edge:
        """The most reliable coupling."""
        return min(self.cnot_error, key=self.cnot_error.get)

    def worst_edge(self) -> Edge:
        """The least reliable coupling."""
        return max(self.cnot_error, key=self.cnot_error.get)

    def drifted(
        self,
        rng,
        relative_sigma: float = 0.3,
        min_error: float = 1.0e-3,
        max_error: float = 0.5,
        timestamp: str = "drifted",
    ) -> "Calibration":
        """A temporally drifted copy of this calibration.

        Quantum hardware "suffers from the temporal variation" of qubit
        quality (Section VII, citing the authors' ISLPED'19 study): the
        calibration VIC compiled against may be stale at execution time.
        Each CNOT error rate is multiplied by a log-normal factor with the
        given relative spread; single-qubit and readout errors are kept
        (their drift is second-order for the paper's metrics).

        Args:
            rng: Random generator.
            relative_sigma: Sigma of the log-normal drift factor.
            min_error: Floor for drifted error rates.
            max_error: Ceiling for drifted error rates.
            timestamp: Provenance label of the copy.
        """
        if relative_sigma < 0:
            raise ValueError("relative_sigma must be >= 0")
        drifted_errors = {}
        for edge in sorted(self.cnot_error):
            factor = float(np.exp(rng.normal(0.0, relative_sigma)))
            drifted_errors[edge] = float(
                np.clip(self.cnot_error[edge] * factor, min_error, max_error)
            )
        return Calibration(
            coupling=self.coupling,
            cnot_error=drifted_errors,
            single_qubit_error=dict(self.single_qubit_error),
            readout_error=dict(self.readout_error),
            timestamp=timestamp,
        )


def uniform_calibration(
    coupling: CouplingGraph,
    cnot_error: float = 0.01,
    single_qubit_error: float = 0.0,
    readout_error: float = 0.0,
) -> Calibration:
    """Calibration with identical error rates everywhere (no variation)."""
    return Calibration(
        coupling=coupling,
        cnot_error={e: cnot_error for e in coupling.edges},
        single_qubit_error={
            q: single_qubit_error for q in range(coupling.num_qubits)
        },
        readout_error={q: readout_error for q in range(coupling.num_qubits)},
        timestamp="uniform",
    )


def random_calibration(
    coupling: CouplingGraph,
    rng: Optional[np.random.Generator] = None,
    mean: float = 1.0e-2,
    sigma: float = 0.5e-2,
    min_error: float = 1.0e-3,
    max_error: float = 0.5,
    single_qubit_error: float = 1.0e-3,
    readout_error: float = 2.0e-2,
) -> Calibration:
    """Sample per-edge CNOT errors from a clipped normal distribution.

    This reproduces the Figure 11(a) setup: "CNOT error-rates for different
    qubit pairs are picked randomly from a normal distribution
    (mu = 1.0e-2, sigma = 0.5e-2)".  Samples are clipped to
    ``[min_error, max_error]`` so success rates stay physical.
    """
    rng = rng if rng is not None else np.random.default_rng()
    errors = {}
    for e in sorted(coupling.edges):
        err = float(np.clip(rng.normal(mean, sigma), min_error, max_error))
        errors[e] = err
    return Calibration(
        coupling=coupling,
        cnot_error=errors,
        single_qubit_error={
            q: single_qubit_error for q in range(coupling.num_qubits)
        },
        readout_error={q: readout_error for q in range(coupling.num_qubits)},
        timestamp="random",
    )
