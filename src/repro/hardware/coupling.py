"""Hardware coupling graphs.

A :class:`CouplingGraph` describes which physical-qubit pairs support a
native two-qubit gate.  It precomputes the two distance tables the paper's
methodologies consume:

* **hop distances** — unweighted all-pairs shortest paths (Floyd–Warshall,
  as Section IV-A prescribes), used by QAIM and IC;
* **reliability-weighted distances** — the same algorithm with edge weight
  ``1 / success_rate`` (Figure 6(d)), used by VIC.

Coupling is treated as undirected for routing purposes — on IBM devices a
direction-reversed CNOT costs only single-qubit gates (see
:func:`repro.circuits.decompose.flip_cnot`), so direction never changes
where SWAPs go.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterable, List, Optional, Sequence, Tuple

import numpy as np

__all__ = ["CouplingGraph", "Edge", "floyd_warshall"]

Edge = Tuple[int, int]

_INF = float("inf")


def floyd_warshall(num_nodes: int, weights: Dict[Edge, float]) -> np.ndarray:
    """All-pairs shortest path distances via Floyd–Warshall.

    Args:
        num_nodes: Number of nodes, labelled ``0 .. num_nodes-1``.
        weights: Undirected edge weights; ``(a, b)`` and ``(b, a)`` are the
            same edge (last writer wins if both appear).

    Returns:
        ``(num_nodes, num_nodes)`` float matrix; unreachable pairs are
        ``inf``, the diagonal is 0.
    """
    dist = np.full((num_nodes, num_nodes), _INF)
    np.fill_diagonal(dist, 0.0)
    for (a, b), w in weights.items():
        if w < 0:
            raise ValueError(f"negative edge weight on {(a, b)}: {w}")
        dist[a, b] = min(dist[a, b], w)
        dist[b, a] = min(dist[b, a], w)
    for k in range(num_nodes):
        # Vectorised relaxation: dist = min(dist, dist[:,k,None]+dist[None,k,:])
        via_k = dist[:, k, None] + dist[None, k, :]
        np.minimum(dist, via_k, out=dist)
    return dist


class CouplingGraph:
    """Undirected physical-qubit connectivity of a device.

    Args:
        num_qubits: Number of physical qubits.
        edges: Iterable of qubit-index pairs with native two-qubit coupling.
        name: Human-readable device/topology name.
    """

    def __init__(
        self, num_qubits: int, edges: Iterable[Edge], name: str = "device"
    ) -> None:
        if num_qubits < 1:
            raise ValueError(f"num_qubits must be positive, got {num_qubits}")
        self.num_qubits = int(num_qubits)
        self.name = name
        normalised = set()
        for a, b in edges:
            a, b = int(a), int(b)
            if a == b:
                raise ValueError(f"self-loop edge ({a}, {b})")
            if not (0 <= a < num_qubits and 0 <= b < num_qubits):
                raise ValueError(f"edge ({a}, {b}) out of range")
            normalised.add((min(a, b), max(a, b)))
        self._edges: FrozenSet[Edge] = frozenset(normalised)
        self._adjacency: Dict[int, Tuple[int, ...]] = {
            q: tuple(sorted(self._neighbours_of(q))) for q in range(num_qubits)
        }
        # Hop distances are O(n^3) to compute and O(n^2) to hold, so the
        # table is built lazily: pool workers that resolve it zero-copy
        # from the shared-memory store (via _install_hop_distances) never
        # run Floyd-Warshall at all.
        self._hop_distances: Optional[np.ndarray] = None

    def _hop_table(self) -> np.ndarray:
        """The hop-distance matrix, computed on first use (read-only).

        Interned graphs carry a content key in ``_shm_key`` (set by
        :func:`repro.hardware.target.intern_coupling`); those first try
        to adopt the table zero-copy from the shared-memory store, and
        publish it for other processes after computing.  Graphs built
        directly never touch shared memory.
        """
        if self._hop_distances is None:
            key = getattr(self, "_shm_key", None)
            if key is not None:
                from ..store.shm import shared_tier

                arrays = shared_tier().resolve(key)
                if arrays is not None:
                    table = arrays.get("hop")
                    if table is not None and table.shape == (
                        self.num_qubits,
                        self.num_qubits,
                    ):
                        self._hop_distances = table
                        return table
            dist = floyd_warshall(self.num_qubits, {e: 1.0 for e in self._edges})
            # Served directly by distance_matrix(); read-only so hot-path
            # callers can share it without defensive copies.
            dist.setflags(write=False)
            self._hop_distances = dist
            if key is not None:
                from ..store.shm import shared_tier

                shared_tier().publish(key, {"hop": dist})
        return self._hop_distances

    def _install_hop_distances(self, matrix: np.ndarray) -> None:
        """Adopt an externally resolved hop table (shared-memory tier).

        The matrix must be the read-only Floyd-Warshall table for this
        exact edge set — callers address it by coupling fingerprint, so
        content addressing is the correctness argument.  No-op if a
        table is already materialised.
        """
        if self._hop_distances is not None:
            return
        if matrix.shape != (self.num_qubits, self.num_qubits):
            raise ValueError(
                f"hop table shape {matrix.shape} != "
                f"({self.num_qubits}, {self.num_qubits})"
            )
        if matrix.flags.writeable:
            matrix = matrix.copy()
            matrix.setflags(write=False)
        self._hop_distances = matrix

    def _neighbours_of(self, qubit: int) -> List[int]:
        return [
            b if a == qubit else a
            for a, b in self._edges
            if qubit in (a, b)
        ]

    # ------------------------------------------------------------------
    # structure
    # ------------------------------------------------------------------
    @property
    def edges(self) -> FrozenSet[Edge]:
        """Normalised (min, max) edge set."""
        return self._edges

    def num_edges(self) -> int:
        """Number of couplings."""
        return len(self._edges)

    def neighbours(self, qubit: int) -> Tuple[int, ...]:
        """Directly coupled qubits (the paper's "first neighbours")."""
        return self._adjacency[qubit]

    def degree(self, qubit: int) -> int:
        """Number of direct couplings of ``qubit``."""
        return len(self._adjacency[qubit])

    def has_edge(self, a: int, b: int) -> bool:
        """Whether a native two-qubit gate exists between ``a`` and ``b``."""
        return (min(a, b), max(a, b)) in self._edges

    def is_connected(self) -> bool:
        """Whether every qubit can reach every other qubit."""
        return bool(np.all(np.isfinite(self._hop_table())))

    # ------------------------------------------------------------------
    # distances
    # ------------------------------------------------------------------
    def distance(self, a: int, b: int) -> int:
        """Hop distance (shortest-path length) between two physical qubits."""
        d = self._hop_table()[a, b]
        if not np.isfinite(d):
            raise ValueError(f"qubits {a} and {b} are disconnected")
        return int(d)

    def distance_matrix(self) -> np.ndarray:
        """The full hop-distance matrix as a cached **read-only** array.

        The same array object is returned on every call (sabre/ic/backend
        consume it on the hot path, so no per-call O(n²) copy).  Callers
        that need to mutate must ``.copy()`` explicitly.
        """
        return self._hop_table()

    def weighted_distance_matrix(
        self, edge_weights: Dict[Edge, float]
    ) -> np.ndarray:
        """Floyd–Warshall distances under custom edge weights.

        This is the VIC distance table of Figure 6(d): pass
        ``{edge: 1/success_rate}`` to make unreliable couplings look far.
        Missing edges default to weight 1.0 so partially calibrated devices
        still route.
        """
        weights = {}
        for e in self._edges:
            a, b = e
            w = edge_weights.get(e, edge_weights.get((b, a), 1.0))
            weights[e] = float(w)
        return floyd_warshall(self.num_qubits, weights)

    def shortest_path(
        self, a: int, b: int, dist: Optional[np.ndarray] = None
    ) -> List[int]:
        """A shortest path from ``a`` to ``b`` as a list of qubits.

        Args:
            a: Source physical qubit.
            b: Destination physical qubit.
            dist: Optional distance matrix to steer by (e.g. a
                reliability-weighted one); defaults to hop distances.

        The path is reconstructed greedily: from the current node, step to
        any neighbour ``n`` with ``w(cur, n) + dist[n, b] == dist[cur, b]``
        (up to floating tolerance).  Ties break toward the smallest qubit
        index so results are deterministic.
        """
        if dist is None:
            dist = self._hop_table()
            weight = {e: 1.0 for e in self._edges}
        else:
            # Recover consistent edge weights from the matrix itself: for a
            # metric produced by Floyd-Warshall, w(a,b) == dist[a,b] on edges.
            weight = {e: float(dist[e[0], e[1]]) for e in self._edges}
        if not np.isfinite(dist[a, b]):
            raise ValueError(f"qubits {a} and {b} are disconnected")
        path = [a]
        current = a
        guard = 0
        while current != b:
            guard += 1
            if guard > self.num_qubits + 1:
                raise RuntimeError("path reconstruction failed to converge")
            candidates = [
                n
                for n in self.neighbours(current)
                if abs(
                    weight[(min(current, n), max(current, n))]
                    + dist[n, b]
                    - dist[current, b]
                )
                < 1e-9
            ]
            if not candidates:
                raise RuntimeError(
                    f"no descent step from {current} toward {b}"
                )
            current = min(candidates)
            path.append(current)
        return path

    # ------------------------------------------------------------------
    # connectivity strength (Figure 3(b))
    # ------------------------------------------------------------------
    def connectivity_strength(self, qubit: int, radius: int = 2) -> int:
        """QAIM's connectivity-strength metric for one qubit.

        The strength is the number of *distinct* qubits within ``radius``
        hops (excluding the qubit itself).  With the paper's default
        ``radius=2`` this is "first neighbours + unique second neighbours":
        qubit 0 of ibmq_20_tokyo has 2 first and 5 second neighbours, giving
        strength 7, matching Figure 3(b).  Larger devices may want
        ``radius=3`` or 4 (the paper suggests including higher-degree
        neighbours as architectures grow).
        """
        if radius < 1:
            raise ValueError(f"radius must be >= 1, got {radius}")
        within = self._hop_table()[qubit] <= radius
        return int(np.count_nonzero(within)) - 1  # exclude self

    def connectivity_profile(self, radius: int = 2) -> Dict[int, int]:
        """Connectivity strength of every qubit (Figure 3(b) table)."""
        return {
            q: self.connectivity_strength(q, radius)
            for q in range(self.num_qubits)
        }

    # ------------------------------------------------------------------
    # misc
    # ------------------------------------------------------------------
    def subgraph_edges(self, qubits: Sequence[int]) -> List[Edge]:
        """Edges of the induced subgraph on ``qubits``."""
        qs = set(qubits)
        return [e for e in self._edges if e[0] in qs and e[1] in qs]

    def __reduce__(self):
        # Pickle as the constructive spec, not the O(n²) distance tables,
        # and re-intern on arrival: a process-pool worker receiving N jobs
        # for the same device rebuilds (and analyses) it once.
        from .target import intern_coupling

        return (
            intern_coupling,
            (self.num_qubits, tuple(sorted(self._edges)), self.name),
        )

    def __repr__(self) -> str:
        return (
            f"CouplingGraph(name={self.name!r}, num_qubits={self.num_qubits},"
            f" num_edges={self.num_edges()})"
        )
