"""The Target layer: one memoized bundle of device + calibration + faults.

Every methodology in the paper is parameterised by the same device facts —
hop distances (IC), ``1/success_rate`` weighted distances (VIC),
connectivity strength (QAIM), neighbour sets, shortest paths, crosstalk
conflict pairs.  Before this layer the codebase threaded
:class:`~repro.hardware.coupling.CouplingGraph`,
:class:`~repro.hardware.calibration.Calibration`, and fault-repair state as
three loose objects and recomputed the O(n³) Floyd–Warshall tables per pass
and per batch job.

:class:`Target` consolidates them: an *immutable* view of one device at one
calibration point that lazily computes and memoizes every derived oracle.
Because a target never changes after construction, every oracle is computed
at most once per target, results are served as read-only views, and a batch
of N jobs against the same device shares a single analysis via the interning
registry (:func:`intern_target`).

**Fingerprints.**  :attr:`Target.fingerprint` is a SHA-256 over the
canonical content — coupling (name, size, sorted edges), calibration error
tables (timestamp excluded: provenance labels don't change compilation),
normalised crosstalk conflicts, and degradation warnings.  It is the
interning key, the service-layer device identity (shipped to pool workers
instead of O(n²) matrices), and is stamped on serialised results.
Calibrations that don't expose canonical error tables (duck-typed test
stubs) yield ``fingerprint = None`` and are simply never interned.

**Ownership.**  A target *wraps* its coupling and calibration; it never
copies or mutates them.  Degraded state (e.g. a repaired calibration's
pruned coupling plus repair warnings) is expressed by constructing the
target from the repaired objects with ``warnings=...`` — the warnings feed
the fingerprint so degraded and clean targets never alias.
"""

from __future__ import annotations

import hashlib
import json
from types import MappingProxyType
from typing import (
    Callable,
    Dict,
    FrozenSet,
    Iterable,
    List,
    Mapping,
    Optional,
    Sequence,
    Tuple,
)

import numpy as np

from .coupling import CouplingGraph, Edge
from ..store.registry import FingerprintRegistry
from ..store.shm import shared_tier

__all__ = [
    "Target",
    "as_target",
    "clear_target_registry",
    "coupling_fingerprint",
    "intern_coupling",
    "intern_target",
    "normalise_conflicts",
    "set_registry_capacity",
    "target_registry_stats",
]

ConflictPair = FrozenSet[Edge]

_FINGERPRINT_VERSION = 1


def _norm_edge(a: int, b: int) -> Edge:
    return (min(int(a), int(b)), max(int(a), int(b)))


def normalise_conflicts(conflicts) -> FrozenSet[ConflictPair]:
    """Canonicalise crosstalk conflict pairs (Section VI).

    Accepts ``((e1, e2), ...)`` tuples or already-frozen
    ``frozenset({e1, e2})`` pairs; edges are normalised to ``(min, max)``.
    ``None`` means no conflicts.  A coupling cannot conflict with itself.
    """
    out = set()
    if conflicts is None:
        return frozenset()
    for pair in conflicts:
        e1, e2 = tuple(pair)
        n1, n2 = _norm_edge(*e1), _norm_edge(*e2)
        if n1 == n2:
            raise ValueError(f"a coupling cannot conflict with itself: {n1}")
        out.add(frozenset((n1, n2)))
    return frozenset(out)


# ----------------------------------------------------------------------
# canonical content (fingerprint pre-images)
# ----------------------------------------------------------------------
def _coupling_canonical(coupling: CouplingGraph) -> dict:
    return {
        "name": str(coupling.name),
        "num_qubits": int(coupling.num_qubits),
        "edges": [[a, b] for a, b in sorted(coupling.edges)],
    }


def _calibration_canonical(calibration) -> Optional[dict]:
    """Canonical error tables, or ``None`` for duck-typed calibrations.

    ``repr(float)`` round-trips exactly, so two calibrations canonicalise
    equal iff their rates are bit-identical.  The timestamp is *excluded*:
    it is provenance, not content, and must not split the intern registry.
    """
    cnot = getattr(calibration, "cnot_error", None)
    if not isinstance(cnot, dict):
        return None
    try:
        return {
            "cnot_error": [
                [a, b, repr(float(err))]
                for (a, b), err in sorted(
                    (_norm_edge(*e), v) for e, v in cnot.items()
                )
            ],
            "single_qubit_error": [
                [int(q), repr(float(err))]
                for q, err in sorted(
                    getattr(calibration, "single_qubit_error", {}).items()
                )
            ],
            "readout_error": [
                [int(q), repr(float(err))]
                for q, err in sorted(
                    getattr(calibration, "readout_error", {}).items()
                )
            ],
        }
    except (TypeError, ValueError):
        return None


def _conflicts_canonical(conflicts: FrozenSet[ConflictPair]) -> list:
    return sorted(
        [list(e) for e in sorted(pair)] for pair in conflicts
    )


def _digest(payload: dict) -> str:
    text = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(text.encode("utf-8")).hexdigest()


def coupling_fingerprint(coupling: CouplingGraph) -> str:
    """Content fingerprint of a bare coupling graph.

    This is what the service layer ships and keys on for inline device
    specs — the fingerprint of a :class:`Target` with no calibration is a
    superset of the same content.
    """
    return _digest(
        {
            "fingerprint_version": _FINGERPRINT_VERSION,
            "coupling": _coupling_canonical(coupling),
        }
    )


# ----------------------------------------------------------------------
# the target
# ----------------------------------------------------------------------
class Target:
    """Immutable device view with lazily memoized compilation oracles.

    Args:
        coupling: Device topology.
        calibration: Optional calibration (required for the VIC oracles).
            Must cover ``coupling`` when it exposes a ``coupling``
            attribute.
        crosstalk_conflicts: Optional conflicting coupling pairs
            (Section VI); normalised via :func:`normalise_conflicts`.
        warnings: Degradation provenance attached to this device state
            (e.g. calibration-repair messages).  Part of the fingerprint —
            a repaired device never aliases a clean one.

    Construct directly for throwaway use; prefer :func:`intern_target`
    whenever the same device+calibration may recur (batches, sweeps), so
    the O(n³) analyses run once per distinct device.
    """

    def __init__(
        self,
        coupling: CouplingGraph,
        calibration=None,
        crosstalk_conflicts=None,
        warnings: Sequence[str] = (),
    ) -> None:
        cal_coupling = getattr(calibration, "coupling", None)
        if cal_coupling is not None and cal_coupling is not coupling:
            if (
                getattr(cal_coupling, "name", None) != coupling.name
                or getattr(cal_coupling, "num_qubits", None)
                != coupling.num_qubits
                or getattr(cal_coupling, "edges", None) != coupling.edges
            ):
                raise ValueError(
                    "calibration device does not match target coupling"
                )
        self.coupling = coupling
        self.calibration = calibration
        self.crosstalk_conflicts = normalise_conflicts(crosstalk_conflicts)
        self.warnings: Tuple[str, ...] = tuple(str(w) for w in warnings)
        # Memo slots.  Lazy writes are idempotent (every oracle is a pure
        # function of the immutable inputs), so concurrent first calls are
        # benign — last writer wins with an identical value.
        self._fingerprint: Optional[str] = None
        self._fingerprint_done = False
        self._vic_resolved: Optional[
            Tuple[Optional[np.ndarray], Tuple[str, ...]]
        ] = None
        self._profiles: Dict[int, Mapping[int, int]] = {}
        self._neighbourhoods: Dict[Tuple[int, int], FrozenSet[int]] = {}
        self._paths: Dict[Tuple[str, int, int], Tuple[int, ...]] = {}
        self._weighted: Dict[tuple, np.ndarray] = {}

    # ------------------------------------------------------------------
    # identity
    # ------------------------------------------------------------------
    @property
    def fingerprint(self) -> Optional[str]:
        """SHA-256 content fingerprint, or ``None`` when the calibration
        cannot be canonicalised (duck-typed stubs) — such targets are
        never interned or cache-shared."""
        if not self._fingerprint_done:
            cal = None
            if self.calibration is not None:
                cal = _calibration_canonical(self.calibration)
            if self.calibration is not None and cal is None:
                self._fingerprint = None
            else:
                self._fingerprint = _digest(
                    {
                        "fingerprint_version": _FINGERPRINT_VERSION,
                        "coupling": _coupling_canonical(self.coupling),
                        "calibration": cal,
                        "conflicts": _conflicts_canonical(
                            self.crosstalk_conflicts
                        ),
                        "warnings": list(self.warnings),
                    }
                )
            self._fingerprint_done = True
        return self._fingerprint

    @property
    def num_qubits(self) -> int:
        """Physical qubit count of the device."""
        return self.coupling.num_qubits

    @property
    def name(self) -> str:
        """Device name."""
        return self.coupling.name

    # ------------------------------------------------------------------
    # distance oracles
    # ------------------------------------------------------------------
    def hop_distances(self) -> np.ndarray:
        """Read-only hop-distance matrix (shared, never copied)."""
        return self.coupling.distance_matrix()

    def vic_edge_weights(self) -> Mapping[Edge, float]:
        """``1 / cphase_success`` edge weights (memoized on the
        calibration); raises without calibration data."""
        if self.calibration is None:
            raise ValueError("VIC edge weights require calibration data")
        return self.calibration.vic_edge_weights()

    def vic_distance_matrix(self) -> np.ndarray:
        """Reliability-weighted distance matrix (Figure 6(d)), memoized;
        raises without calibration data or on unusable calibrations."""
        if self.calibration is None:
            raise ValueError("VIC distances require calibration data")
        return self.calibration.vic_distance_matrix()

    def vic_distances(self) -> Tuple[Optional[np.ndarray], List[str]]:
        """The degradation-aware VIC resolution, memoized.

        Same contract as :func:`repro.compiler.vic.resolve_vic_distances`
        (which performs the actual resolution): ``(matrix, [])`` for a
        usable table, ``(None, warnings)`` after falling back to hop
        distances.  The warnings list is a fresh copy per call; the matrix
        is the shared memoized table.
        """
        if self.calibration is None:
            raise ValueError("VIC distances require calibration data")
        if self._vic_resolved is None:
            from ..compiler.vic import resolve_vic_distances

            matrix, warnings = resolve_vic_distances(self.calibration)
            self._vic_resolved = (matrix, tuple(warnings))
            # Publish clean resolutions for other processes to adopt
            # zero-copy (degraded fallbacks carry warnings and stay
            # private — adoption must reproduce (matrix, ()) exactly).
            if matrix is not None and not warnings and self.fingerprint:
                shared_tier().publish(
                    f"vic:{self.fingerprint}", {"matrix": matrix}
                )
        matrix, warnings = self._vic_resolved
        return matrix, list(warnings)

    def routing_distances(self, metric: str = "hop") -> Optional[np.ndarray]:
        """The distance-table override routing should steer by.

        ``None`` for the ``"hop"`` metric (routers default to hop
        distances); the memoized VIC table for ``"vic"`` (``None`` again
        if the calibration degraded to hop distances).
        """
        if metric == "hop":
            return None
        if metric == "vic":
            return self.vic_distances()[0]
        raise ValueError(f"unknown distance metric {metric!r}")

    def weighted_distances(self, edge_weights: Dict[Edge, float]) -> np.ndarray:
        """Floyd–Warshall under custom edge weights, memoized per weight
        assignment (read-only view).  This is the seam ablation studies
        use for alternative VIC weight functions."""
        key = tuple(
            sorted(
                (_norm_edge(*e), repr(float(w)))
                for e, w in edge_weights.items()
            )
        )
        cached = self._weighted.get(key)
        if cached is None:
            cached = self.coupling.weighted_distance_matrix(edge_weights)
            cached.setflags(write=False)
            self._weighted[key] = cached
        return cached

    # ------------------------------------------------------------------
    # neighbourhood / connectivity oracles (QAIM, Figure 3(b))
    # ------------------------------------------------------------------
    def neighbours(self, qubit: int) -> Tuple[int, ...]:
        """Directly coupled qubits (first neighbours)."""
        return self.coupling.neighbours(qubit)

    def neighbourhood(self, qubit: int, radius: int = 2) -> FrozenSet[int]:
        """All distinct qubits within ``radius`` hops (self excluded)."""
        if radius < 1:
            raise ValueError(f"radius must be >= 1, got {radius}")
        key = (int(qubit), int(radius))
        cached = self._neighbourhoods.get(key)
        if cached is None:
            hop = self.hop_distances()[qubit]
            cached = frozenset(
                int(q)
                for q in np.flatnonzero(hop <= radius)
                if int(q) != qubit
            )
            self._neighbourhoods[key] = cached
        return cached

    def second_neighbours(self, qubit: int) -> FrozenSet[int]:
        """Qubits at hop distance exactly 2."""
        return self.neighbourhood(qubit, 2) - frozenset(
            self.neighbours(qubit)
        )

    def connectivity_strength(self, qubit: int, radius: int = 2) -> int:
        """QAIM connectivity strength — ``len(neighbourhood(radius))``."""
        return self.connectivity_profile(radius)[qubit]

    def connectivity_profile(self, radius: int = 2) -> Mapping[int, int]:
        """Connectivity strength of every qubit (read-only, memoized per
        radius; Figure 3(b) table)."""
        cached = self._profiles.get(radius)
        if cached is None:
            cached = MappingProxyType(
                self.coupling.connectivity_profile(radius=radius)
            )
            self._profiles[radius] = cached
        return cached

    # ------------------------------------------------------------------
    # path oracle
    # ------------------------------------------------------------------
    def shortest_path(self, a: int, b: int, metric: str = "hop") -> List[int]:
        """A shortest path under the metric, memoized per endpoint pair.

        ``"vic"`` steers by the reliability-weighted table, degrading to
        hop distances when the calibration cannot produce one (matching
        the compiler's VIC→IC fallback).  Returns a fresh list per call.
        """
        dist = self.routing_distances(metric) if metric != "hop" else None
        key = (metric if dist is not None else "hop", int(a), int(b))
        cached = self._paths.get(key)
        if cached is None:
            cached = tuple(self.coupling.shortest_path(a, b, dist=dist))
            self._paths[key] = cached
        return list(cached)

    def path_oracle(self, metric: str = "hop") -> Callable[[int, int], List[int]]:
        """A ``(a, b) -> path`` callable bound to this target's memoized
        shortest-path cache (what routers consume)."""
        return lambda a, b: self.shortest_path(a, b, metric=metric)

    # ------------------------------------------------------------------
    # crosstalk
    # ------------------------------------------------------------------
    def conflict_sets(self) -> FrozenSet[ConflictPair]:
        """Normalised crosstalk conflict pairs bound to this device."""
        return self.crosstalk_conflicts

    # ------------------------------------------------------------------
    # plumbing
    # ------------------------------------------------------------------
    def __reduce__(self):
        # Ship content, not matrices: the worker re-interns, so each pool
        # process pays one device analysis per distinct target.
        return (
            _rebuild_target,
            (
                self.coupling,
                self.calibration,
                self.crosstalk_conflicts,
                self.warnings,
            ),
        )

    def __repr__(self) -> str:
        fp = self.fingerprint
        return (
            f"Target(name={self.name!r}, num_qubits={self.num_qubits}, "
            f"calibrated={self.calibration is not None}, "
            f"fingerprint={fp[:12] if fp else None})"
        )


def _rebuild_target(coupling, calibration, conflicts, warnings) -> Target:
    return intern_target(
        coupling,
        calibration,
        crosstalk_conflicts=conflicts,
        warnings=warnings,
    )


# ----------------------------------------------------------------------
# interning registries (the store's in-process tier)
# ----------------------------------------------------------------------
# One FingerprintRegistry per artifact kind replaces the two hand-rolled
# OrderedDict LRU loops that used to live here.  Capacity comes from
# REPRO_REGISTRY_CAPACITY (default 256) or set_registry_capacity().
_TARGETS = FingerprintRegistry(
    "targets", env_var="REPRO_REGISTRY_CAPACITY", default_capacity=256
)
_COUPLINGS = FingerprintRegistry(
    "couplings", env_var="REPRO_REGISTRY_CAPACITY", default_capacity=256
)


def set_registry_capacity(capacity: Optional[int]) -> None:
    """Re-bound both intern registries (``None`` = unbounded)."""
    _TARGETS.set_capacity(capacity)
    _COUPLINGS.set_capacity(capacity)


def _adopt_shared_vic(target: Target) -> None:
    """Resolve this target's VIC table from the shared-memory tier.

    Keyed ``"vic:<target fingerprint>"`` — published by whichever process
    resolved the table first (see :meth:`Target.vic_distances`).  Only
    clean resolutions (matrix present, no degradation warnings) are ever
    published, so adoption re-creates exactly ``(matrix, ())``.
    """
    if target.calibration is None or target._vic_resolved is not None:
        return
    arrays = shared_tier().resolve(f"vic:{target.fingerprint}")
    if arrays is not None and "matrix" in arrays:
        matrix = arrays["matrix"]
        n = target.num_qubits
        if matrix.shape == (n, n):
            target._vic_resolved = (matrix, ())


def intern_target(
    coupling: CouplingGraph,
    calibration=None,
    crosstalk_conflicts=None,
    warnings: Sequence[str] = (),
) -> Target:
    """The shared :class:`Target` for this device+calibration content.

    Keyed on :attr:`Target.fingerprint`: two content-equal requests (even
    from distinct ``CouplingGraph``/``Calibration`` instances) return the
    *same* target, so its memoized oracles are computed once.  Targets
    without a fingerprint (duck-typed calibrations) are returned
    un-interned.  The registry is a bounded LRU — long-running services
    with unbounded device churn cannot leak.

    On an intern miss the target additionally tries to adopt its heavy
    tables (VIC distance matrix) zero-copy from the shared-memory tier,
    so a pool worker unpickling a target another process already analysed
    skips the O(n³) work entirely.
    """
    target = Target(
        coupling,
        calibration,
        crosstalk_conflicts=crosstalk_conflicts,
        warnings=warnings,
    )
    fp = target.fingerprint
    if fp is None:
        return target
    interned, hit = _TARGETS.intern(fp, lambda: target)
    if not hit:
        _adopt_shared_vic(interned)
    return interned


def intern_coupling(
    num_qubits: int, edges: Iterable[Edge], name: str = "device"
) -> CouplingGraph:
    """The shared :class:`CouplingGraph` for this topology content.

    Interning makes N identical inline device specs (batch job files,
    unpickled pool jobs) share one graph — and one Floyd–Warshall table,
    resolved zero-copy from the shared-memory tier when any process has
    already computed it (the interned graph carries its content key in
    ``_shm_key``; see ``CouplingGraph._hop_table``).  This is also
    ``CouplingGraph.__reduce__``'s constructor, so couplings cross
    process boundaries as edge lists and re-intern on arrival.
    """
    key = (
        str(name),
        int(num_qubits),
        tuple(sorted(_norm_edge(*e) for e in edges)),
    )

    def _build() -> CouplingGraph:
        built = CouplingGraph(key[1], key[2], name=key[0])
        built._shm_key = f"coupling:{coupling_fingerprint(built)}"
        return built

    graph, _hit = _COUPLINGS.intern(key, _build)
    return graph


def as_target(obj) -> Target:
    """Coerce a :class:`Target`, :class:`CouplingGraph`, or calibration
    (anything with a ``coupling`` attribute) into an interned target."""
    if isinstance(obj, Target):
        return obj
    if isinstance(obj, CouplingGraph):
        return intern_target(obj)
    coupling = getattr(obj, "coupling", None)
    if coupling is not None:
        return intern_target(coupling, obj)
    raise TypeError(
        f"cannot build a Target from {type(obj).__name__}; expected a "
        f"Target, CouplingGraph, or calibration"
    )


def clear_target_registry() -> None:
    """Empty both intern registries and reset hit/miss counters (tests and
    cold-start benchmarking)."""
    _TARGETS.clear()
    _COUPLINGS.clear()


def target_registry_stats() -> dict:
    """Registry sizes and hit/miss counters (telemetry).

    Key names predate the store refactor and are kept stable for callers;
    the same counters appear per-registry in
    :func:`repro.store.store_stats` under ``targets``/``couplings``.
    """
    t = _TARGETS.stats()
    c = _COUPLINGS.stats()
    return {
        "target_hits": t["hits"],
        "target_misses": t["misses"],
        "target_evictions": t["evictions"],
        "coupling_hits": c["hits"],
        "coupling_misses": c["misses"],
        "coupling_evictions": c["evictions"],
        "targets": t["size"],
        "couplings": c["size"],
        "capacity": t["capacity"],
    }
