"""Device library: the coupling graphs (and calibration) the paper evaluates on.

The paper targets three architectures (Section V-B):

* ``ibmq_20_tokyo`` — IBM's 20-qubit device (Figure 3(a)); QAIM/IP/IC
  comparisons (Figures 7, 8, 9, 11(a)) run here.
* ``ibmq_16_melbourne`` — IBM's 15-qubit device; VIC and the hardware ARG
  validation (Figures 10, 11(b)) run here.  :func:`melbourne_calibration`
  carries the per-edge CNOT error rates printed in Figure 10(a)
  (calibration of 4/8/2020); the edge-to-value assignment follows the figure
  layout and is documented inline.
* a hypothetical 6x6 ``grid`` — the 36-qubit packing-density study (Fig 12).

Additional synthetic topologies used by examples/tests: linear chains, rings
(the 8-qubit cyclic device of the Section VI planner comparison), fully
connected graphs, and the hypothetical 6-qubit device of Figure 6.
"""

from __future__ import annotations

from typing import Dict, List

from .calibration import Calibration
from .coupling import CouplingGraph, Edge

__all__ = [
    "ibmq_20_tokyo",
    "ibmq_16_melbourne",
    "ibmq_poughkeepsie",
    "melbourne_calibration",
    "grid_device",
    "linear_device",
    "ring_device",
    "fully_connected_device",
    "figure6_device",
    "figure6_calibration",
    "get_device",
    "DEVICE_BUILDERS",
]


def ibmq_20_tokyo() -> CouplingGraph:
    """The 20-qubit IBM Q20 Tokyo coupling graph (Figure 3(a)).

    Qubits form a 4x5 grid (rows 0-4, 5-9, 10-14, 15-19) with horizontal,
    vertical, and the device's characteristic diagonal couplings.  The
    resulting connectivity-strength profile matches Figure 3(b) — e.g.
    qubit 0 has first neighbours {1, 5} and second neighbours
    {2, 6, 7, 10, 11}, strength 7.
    """
    horizontal = [
        (r * 5 + c, r * 5 + c + 1) for r in range(4) for c in range(4)
    ]
    vertical = [(r * 5 + c, (r + 1) * 5 + c) for r in range(3) for c in range(5)]
    diagonal = [
        (1, 7), (2, 6), (3, 9), (4, 8),
        (5, 11), (6, 10), (7, 13), (8, 12),
        (11, 17), (12, 16), (13, 19), (14, 18),
    ]
    return CouplingGraph(20, horizontal + vertical + diagonal, name="ibmq_20_tokyo")


def _melbourne_edges() -> List[Edge]:
    # Ladder: top row 0..6, bottom row 14..7 (left to right), with rungs.
    top = [(i, i + 1) for i in range(6)]  # 0-1 .. 5-6
    bottom = [(i, i - 1) for i in range(14, 7, -1)]  # 14-13 .. 8-7
    rungs = [(0, 14), (1, 13), (2, 12), (3, 11), (4, 10), (5, 9), (6, 8)]
    return top + [(min(a, b), max(a, b)) for a, b in bottom] + rungs


def ibmq_16_melbourne() -> CouplingGraph:
    """The 15-qubit IBM Q16 Melbourne coupling graph (Figure 10(a)).

    Despite the name, the device has 15 usable qubits arranged as a 2x7
    ladder with a trailing qubit: top row 0-6, bottom row 14-7, and seven
    vertical rungs.  20 couplings in total.
    """
    return CouplingGraph(15, _melbourne_edges(), name="ibmq_16_melbourne")


#: Per-edge CNOT error rates read from Figure 10(a) (4/8/2020 calibration).
#: The figure prints 20 values; assignment follows the figure layout
#: (top-row horizontals, rungs, bottom-row horizontals, left to right).
MELBOURNE_CNOT_ERRORS: Dict[Edge, float] = {
    (0, 1): 1.87e-2,
    (1, 2): 1.77e-2,
    (2, 3): 1.54e-2,
    (3, 4): 8.60e-2,
    (4, 5): 5.80e-2,
    (5, 6): 2.96e-2,
    (0, 14): 2.85e-2,
    (1, 13): 8.29e-2,
    (2, 12): 5.03e-2,
    (3, 11): 7.63e-2,
    (4, 10): 4.16e-2,
    (5, 9): 3.68e-2,
    (6, 8): 3.46e-2,
    (13, 14): 7.63e-2,
    (12, 13): 2.26e-2,
    (11, 12): 7.78e-2,
    (10, 11): 4.70e-2,
    (9, 10): 4.11e-2,
    (8, 9): 3.89e-2,
    (7, 8): 2.87e-2,
}


def melbourne_calibration(
    single_qubit_error: float = 1.0e-3, readout_error: float = 3.0e-2
) -> Calibration:
    """The 4/8/2020 melbourne calibration used for Figures 10 and 11(b)."""
    coupling = ibmq_16_melbourne()
    return Calibration(
        coupling=coupling,
        cnot_error=dict(MELBOURNE_CNOT_ERRORS),
        single_qubit_error={
            q: single_qubit_error for q in range(coupling.num_qubits)
        },
        readout_error={q: readout_error for q in range(coupling.num_qubits)},
        timestamp="4/8/2020",
    )


def ibmq_poughkeepsie() -> CouplingGraph:
    """The 20-qubit IBM Poughkeepsie coupling graph.

    Referenced in Section VI's crosstalk discussion: Murali et al. found
    only 5 of its 221 coupling *pairs* to be highly crosstalk-prone.  The
    topology is a 4x5 grid with rungs only at the row ends and centre —
    sparser than tokyo (23 couplings vs 43).
    """
    edges = [
        (0, 1), (1, 2), (2, 3), (3, 4),
        (5, 6), (6, 7), (7, 8), (8, 9),
        (10, 11), (11, 12), (12, 13), (13, 14),
        (15, 16), (16, 17), (17, 18), (18, 19),
        (0, 5), (4, 9), (5, 10), (7, 12), (9, 14), (10, 15), (14, 19),
    ]
    return CouplingGraph(20, edges, name="ibmq_poughkeepsie")


def grid_device(rows: int, cols: int) -> CouplingGraph:
    """A ``rows x cols`` nearest-neighbour grid.

    ``grid_device(6, 6)`` is the hypothetical 36-qubit architecture of the
    packing-density study (Figure 12).
    """
    if rows < 1 or cols < 1:
        raise ValueError("grid dimensions must be positive")
    edges = []
    for r in range(rows):
        for c in range(cols):
            q = r * cols + c
            if c + 1 < cols:
                edges.append((q, q + 1))
            if r + 1 < rows:
                edges.append((q, q + cols))
    return CouplingGraph(rows * cols, edges, name=f"grid_{rows}x{cols}")


def linear_device(num_qubits: int) -> CouplingGraph:
    """A linear chain (Figure 1(d)'s 4-qubit hardware is ``linear_device(4)``)."""
    if num_qubits < 2:
        raise ValueError("linear device needs at least 2 qubits")
    edges = [(i, i + 1) for i in range(num_qubits - 1)]
    return CouplingGraph(num_qubits, edges, name=f"linear_{num_qubits}")


def ring_device(num_qubits: int) -> CouplingGraph:
    """A cycle; ``ring_device(8)`` is the Section VI planner-comparison device."""
    if num_qubits < 3:
        raise ValueError("ring device needs at least 3 qubits")
    edges = [(i, (i + 1) % num_qubits) for i in range(num_qubits)]
    return CouplingGraph(num_qubits, edges, name=f"ring_{num_qubits}")


def fully_connected_device(num_qubits: int) -> CouplingGraph:
    """All-to-all coupling (the idealised hardware of Figure 1(b)/(c))."""
    edges = [
        (a, b) for a in range(num_qubits) for b in range(a + 1, num_qubits)
    ]
    return CouplingGraph(num_qubits, edges, name=f"full_{num_qubits}")


def figure6_device() -> CouplingGraph:
    """The hypothetical 6-qubit device of Figure 6(a).

    A 6-qubit ring ``0-1-2-3-4-5-0`` with a chord ``1-4`` — this reproduces
    the figure's distance tables: hop distance (0,3) = 3, (0,4) = 2, etc.
    """
    edges = [(0, 1), (1, 2), (2, 3), (3, 4), (4, 5), (5, 0), (1, 4)]
    return CouplingGraph(6, edges, name="figure6_6q")


#: CPHASE success rates of Figure 6(b); stored as CNOT error rates such
#: that ``cphase_success`` reproduces the printed values exactly.
FIGURE6_CPHASE_SUCCESS: Dict[Edge, float] = {
    (0, 1): 0.90,
    (0, 5): 0.82,
    (1, 2): 0.85,
    (1, 4): 0.81,
    (2, 3): 0.89,
    (3, 4): 0.88,
    (4, 5): 0.84,
}


def figure6_calibration() -> Calibration:
    """Calibration matching Figure 6(b)'s hypothetical success rates."""
    coupling = figure6_device()
    cnot_error = {
        e: 1.0 - s ** 0.5 for e, s in FIGURE6_CPHASE_SUCCESS.items()
    }
    return Calibration(
        coupling=coupling, cnot_error=cnot_error, timestamp="figure6"
    )


DEVICE_BUILDERS = {
    "ibmq_20_tokyo": ibmq_20_tokyo,
    "ibmq_16_melbourne": ibmq_16_melbourne,
    "ibmq_poughkeepsie": ibmq_poughkeepsie,
    "grid_6x6": lambda: grid_device(6, 6),
    "ring_8": lambda: ring_device(8),
    "linear_4": lambda: linear_device(4),
    "figure6_6q": figure6_device,
}


def get_device(name: str) -> CouplingGraph:
    """Look up a named device from the library."""
    try:
        return DEVICE_BUILDERS[name]()
    except KeyError:
        known = ", ".join(sorted(DEVICE_BUILDERS))
        raise KeyError(f"unknown device {name!r}; known: {known}") from None
