"""Random device topologies for fuzzing and scaling studies.

The paper evaluates on fixed devices; for testing the compiler stack it is
useful to sweep over *arbitrary* connected topologies (property-based tests)
and over parameterised families (how do the methods scale with device
sparsity?).  Generators here always return connected graphs.
"""

from __future__ import annotations

from typing import Optional

import networkx as nx
import numpy as np

from .coupling import CouplingGraph

__all__ = ["random_connected_device", "random_degree_bounded_device"]


def random_connected_device(
    num_qubits: int,
    extra_edges: int = 0,
    rng: Optional[np.random.Generator] = None,
    name: Optional[str] = None,
) -> CouplingGraph:
    """A random connected topology: spanning tree + ``extra_edges`` chords.

    Args:
        num_qubits: Device size (>= 2).
        extra_edges: Edges added beyond the spanning tree (duplicates are
            re-rolled; capped at the complete graph).
        rng: Random generator.
        name: Optional device name.
    """
    if num_qubits < 2:
        raise ValueError("need at least 2 qubits")
    if extra_edges < 0:
        raise ValueError("extra_edges must be >= 0")
    rng = rng if rng is not None else np.random.default_rng()
    tree = nx.random_labeled_tree(
        num_qubits, seed=int(rng.integers(2 ** 31 - 1))
    )
    edges = {tuple(sorted(e)) for e in tree.edges()}
    max_edges = num_qubits * (num_qubits - 1) // 2
    target = min(len(edges) + extra_edges, max_edges)
    guard = 0
    while len(edges) < target:
        guard += 1
        if guard > 100 * max_edges:
            break
        a, b = rng.choice(num_qubits, size=2, replace=False)
        edges.add((int(min(a, b)), int(max(a, b))))
    return CouplingGraph(
        num_qubits,
        sorted(edges),
        name=name or f"random_{num_qubits}q_{len(edges)}e",
    )


def random_degree_bounded_device(
    num_qubits: int,
    max_degree: int = 4,
    rng: Optional[np.random.Generator] = None,
    name: Optional[str] = None,
) -> CouplingGraph:
    """A random connected topology with bounded qubit degree.

    Superconducting devices rarely exceed degree 3-6; this generator builds
    a random spanning tree (respecting the bound) and densifies with chords
    that keep every qubit at or below ``max_degree``.
    """
    if max_degree < 2:
        raise ValueError("max_degree must be >= 2 for a connected device")
    if num_qubits < 2:
        raise ValueError("need at least 2 qubits")
    rng = rng if rng is not None else np.random.default_rng()
    degree = {q: 0 for q in range(num_qubits)}
    edges = set()
    # Random tree under the degree bound: attach each new node to a random
    # existing node that still has headroom.
    order = list(rng.permutation(num_qubits))
    placed = [order[0]]
    for node in order[1:]:
        candidates = [p for p in placed if degree[p] < max_degree]
        if not candidates:  # every placed node saturated: relax by chain
            candidates = [placed[-1]]
        anchor = int(candidates[int(rng.integers(len(candidates)))])
        edges.add((min(anchor, node), max(anchor, node)))
        degree[anchor] += 1
        degree[node] += 1
        placed.append(node)
    # Densify.
    for _ in range(num_qubits * 2):
        a, b = rng.choice(num_qubits, size=2, replace=False)
        a, b = int(min(a, b)), int(max(a, b))
        if (a, b) in edges or degree[a] >= max_degree or degree[b] >= max_degree:
            continue
        edges.add((a, b))
        degree[a] += 1
        degree[b] += 1
    return CouplingGraph(
        num_qubits,
        sorted(edges),
        name=name or f"random_deg{max_degree}_{num_qubits}q",
    )
