"""Hardware and program profiling used by QAIM and IP (Section IV-A).

Two profiles drive the paper's placement and ordering heuristics:

* **Hardware profile** — the connectivity strength of every physical qubit
  (Figure 3(b)).  Computed once per device and cached, exactly as the paper
  recommends ("this profiling can be done once for every hardware").
* **Program profile** — the number of CPHASE operations per logical qubit
  (Figure 3(c)), i.e. the vertex degree of the problem's interaction graph.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Sequence, Tuple

from .coupling import CouplingGraph

__all__ = [
    "hardware_profile",
    "program_profile",
    "interaction_pairs",
    "rank_cphases",
    "max_operations_per_qubit",
]

Pair = Tuple[int, int]


def hardware_profile(
    coupling: CouplingGraph, radius: int = 2
) -> Dict[int, int]:
    """Connectivity-strength profile of every physical qubit.

    Thin wrapper over :meth:`CouplingGraph.connectivity_profile` kept here so
    all profiling lives in one module; results are cheap enough to recompute
    (the distance matrix is already cached on the coupling graph).
    """
    return coupling.connectivity_profile(radius=radius)


def program_profile(pairs: Iterable[Pair]) -> Dict[int, int]:
    """CPHASE operations per logical qubit (Figure 3(c)/4(b)).

    Args:
        pairs: The logical-qubit pairs of the circuit's CPHASE gates.

    Returns:
        Mapping logical qubit -> number of CPHASE gates touching it.
    """
    counts: Dict[int, int] = {}
    for a, b in pairs:
        counts[a] = counts.get(a, 0) + 1
        counts[b] = counts.get(b, 0) + 1
    return counts


def interaction_pairs(circuit) -> List[Pair]:
    """Extract the (control, target) pairs of every CPHASE in a circuit.

    Accepts a :class:`~repro.circuits.circuit.QuantumCircuit`; order follows
    program order, duplicates are preserved (multi-level QAOA repeats every
    edge once per level).
    """
    return [
        (inst.qubits[0], inst.qubits[1])
        for inst in circuit
        if inst.name == "cphase"
    ]


def rank_cphases(pairs: Sequence[Pair]) -> List[Tuple[Pair, int]]:
    """Rank CPHASE operations by cumulative qubit activity (Figure 4(c)).

    The rank of gate ``(a, b)`` is ``ops(a) + ops(b)`` where ``ops`` counts
    all CPHASE gates touching the qubit.  Returns ``(pair, rank)`` tuples
    sorted by descending rank; ties keep input order (the paper breaks ties
    randomly — callers who want that shuffle before ranking).
    """
    profile = program_profile(pairs)
    ranked = [((a, b), profile[a] + profile[b]) for a, b in pairs]
    ranked.sort(key=lambda item: -item[1])
    return ranked


def max_operations_per_qubit(pairs: Iterable[Pair]) -> int:
    """MOQ — the maximum number of CPHASEs on any single qubit (Figure 4(b)).

    This lower-bounds the number of layers any ordering can achieve, because
    gates sharing a qubit can never run concurrently.
    """
    profile = program_profile(pairs)
    return max(profile.values(), default=0)
