"""Hardware models: coupling graphs, calibration data, profiling."""

from .calibration import Calibration, random_calibration, uniform_calibration
from .coupling import CouplingGraph, Edge, floyd_warshall
from .devices import (
    DEVICE_BUILDERS,
    figure6_calibration,
    figure6_device,
    fully_connected_device,
    get_device,
    grid_device,
    ibmq_16_melbourne,
    ibmq_20_tokyo,
    ibmq_poughkeepsie,
    linear_device,
    melbourne_calibration,
    ring_device,
)
from .faults import (
    CalibrationDefect,
    CalibrationError,
    CalibrationReport,
    CalibrationValidator,
    FaultInjector,
    RawCalibration,
    RepairPolicy,
    RepairResult,
    repair_calibration,
)
from .random import random_connected_device, random_degree_bounded_device
from .profiling import (
    hardware_profile,
    interaction_pairs,
    max_operations_per_qubit,
    program_profile,
    rank_cphases,
)

__all__ = [
    "CouplingGraph",
    "Edge",
    "floyd_warshall",
    "Calibration",
    "random_calibration",
    "uniform_calibration",
    "ibmq_20_tokyo",
    "ibmq_16_melbourne",
    "ibmq_poughkeepsie",
    "melbourne_calibration",
    "grid_device",
    "linear_device",
    "ring_device",
    "fully_connected_device",
    "figure6_device",
    "figure6_calibration",
    "get_device",
    "DEVICE_BUILDERS",
    "CalibrationDefect",
    "CalibrationError",
    "CalibrationReport",
    "CalibrationValidator",
    "FaultInjector",
    "RawCalibration",
    "RepairPolicy",
    "RepairResult",
    "repair_calibration",
    "random_connected_device",
    "random_degree_bounded_device",
    "hardware_profile",
    "program_profile",
    "interaction_pairs",
    "rank_cphases",
    "max_operations_per_qubit",
]
