"""Calibration fault model: defect classification, repair, fault injection.

Real calibration feeds are messy.  The paper's variation-aware machinery
(Section IV-D) and the success-probability metric both assume a clean
per-edge error table like Figure 10(a), but a production feed can carry
NaN entries for couplers whose calibration run failed, values outside
``[0, 1)``, whole edges missing, effectively-dead couplers with error
rates far above the device average, and stale timestamps.  This module is
the quarantine layer between such a feed and the compiler:

* :class:`RawCalibration` — an *unvalidated* calibration snapshot, the
  dirty wire format.  :class:`~repro.hardware.calibration.Calibration`
  refuses bad data at construction; ``RawCalibration`` accepts anything so
  defects can be inspected and repaired instead of crashing the service.
* :class:`CalibrationValidator` — classifies every defect into a
  structured :class:`CalibrationReport` (kinds: ``non_finite``,
  ``out_of_range``, ``missing_edge``, ``unknown_edge``, ``dead_coupler``,
  ``bad_qubit_rate``, ``stale_timestamp``).
* :func:`repair_calibration` — repair policies: median / neighbour-median
  imputation for unusable entries, topology pruning of dead couplers
  (never disconnecting the device), sanitisation of per-qubit rates.
  Returns a valid :class:`Calibration` on a possibly-pruned coupling plus
  a ``warnings`` list recording every repair taken, or raises a clear
  :class:`CalibrationError` when the feed is beyond repair.
* :class:`FaultInjector` — a seeded chaos source that degrades a clean
  calibration (dead qubits, dead edges, Gaussian drift, entry dropout,
  NaN poisoning, uniform error inflation) for resilience testing.
"""

from __future__ import annotations

import dataclasses
import datetime
import math
from typing import Dict, Iterable, List, Optional, Union

import numpy as np

from .calibration import Calibration
from .coupling import CouplingGraph, Edge

__all__ = [
    "CalibrationError",
    "CalibrationDefect",
    "CalibrationReport",
    "CalibrationValidator",
    "RawCalibration",
    "RepairPolicy",
    "RepairResult",
    "repair_calibration",
    "FaultInjector",
    "DEFECT_KINDS",
]

#: Every defect kind a validator can report.
DEFECT_KINDS = (
    "non_finite",
    "out_of_range",
    "missing_edge",
    "unknown_edge",
    "dead_coupler",
    "bad_qubit_rate",
    "stale_timestamp",
)


class CalibrationError(ValueError):
    """A calibration feed is unusable and could not be repaired."""


def _norm_edge(a: int, b: int) -> Edge:
    return (min(a, b), max(a, b))


def _is_healthy(err: float, dead_threshold: float) -> bool:
    return math.isfinite(err) and 0.0 <= err < dead_threshold


@dataclasses.dataclass(frozen=True)
class CalibrationDefect:
    """One classified problem in a calibration feed.

    Attributes:
        kind: One of :data:`DEFECT_KINDS`.
        edge: The offending coupling, when the defect is edge-scoped.
        qubit: The offending qubit, when the defect is qubit-scoped.
        value: The raw offending value, when there is one.
        detail: Human-readable description.
    """

    kind: str
    edge: Optional[Edge] = None
    qubit: Optional[int] = None
    value: Optional[float] = None
    detail: str = ""

    def __str__(self) -> str:
        where = ""
        if self.edge is not None:
            where = f" on edge {self.edge}"
        elif self.qubit is not None:
            where = f" on qubit {self.qubit}"
        return f"{self.kind}{where}: {self.detail}"


@dataclasses.dataclass
class CalibrationReport:
    """Structured output of :meth:`CalibrationValidator.validate`.

    Attributes:
        device: Name of the coupling graph the feed targets.
        num_entries: CNOT entries present in the feed.
        num_edges: Couplings the device actually has.
        defects: Every classified defect.
    """

    device: str
    num_entries: int
    num_edges: int
    defects: List[CalibrationDefect] = dataclasses.field(default_factory=list)

    @property
    def clean(self) -> bool:
        """Whether the feed can be used without any repair."""
        return not self.defects

    def by_kind(self) -> Dict[str, List[CalibrationDefect]]:
        """Defects grouped by kind (only kinds that occurred)."""
        grouped: Dict[str, List[CalibrationDefect]] = {}
        for defect in self.defects:
            grouped.setdefault(defect.kind, []).append(defect)
        return grouped

    def counts(self) -> Dict[str, int]:
        """``{kind: occurrences}`` for every kind that occurred."""
        return {k: len(v) for k, v in self.by_kind().items()}

    def summary(self) -> str:
        """One-line digest, e.g. ``"3 defects (non_finite=2, dead_coupler=1)"``."""
        if self.clean:
            return f"clean ({self.num_entries}/{self.num_edges} entries)"
        parts = ", ".join(
            f"{k}={n}" for k, n in sorted(self.counts().items())
        )
        n = len(self.defects)
        return f"{n} defect{'s' if n != 1 else ''} ({parts})"


@dataclasses.dataclass
class RawCalibration:
    """An unvalidated calibration snapshot — the dirty feed.

    Unlike :class:`Calibration`, construction performs **no** checks:
    NaN error rates, missing or unknown edges and out-of-range values are
    all representable, so validators and repair policies can work on the
    data instead of dying on it.
    """

    coupling: CouplingGraph
    cnot_error: Dict[Edge, float]
    single_qubit_error: Dict[int, float] = dataclasses.field(
        default_factory=dict
    )
    readout_error: Dict[int, float] = dataclasses.field(default_factory=dict)
    timestamp: str = ""

    @classmethod
    def from_calibration(cls, calibration: Calibration) -> "RawCalibration":
        """Copy a validated calibration into the raw representation."""
        return cls(
            coupling=calibration.coupling,
            cnot_error=dict(calibration.cnot_error),
            single_qubit_error=dict(calibration.single_qubit_error),
            readout_error=dict(calibration.readout_error),
            timestamp=calibration.timestamp,
        )

    def normalised_cnot_error(self) -> Dict[Edge, float]:
        """CNOT entries with ``(min, max)`` edge keys (last writer wins)."""
        return {
            _norm_edge(a, b): err for (a, b), err in self.cnot_error.items()
        }


_TIMESTAMP_FORMATS = ("%m/%d/%Y", "%Y-%m-%d", "%Y-%m-%dT%H:%M:%S")


def _parse_timestamp(text: str) -> Optional[datetime.datetime]:
    for fmt in _TIMESTAMP_FORMATS:
        try:
            return datetime.datetime.strptime(text, fmt)
        except ValueError:
            continue
    try:
        return datetime.datetime.fromisoformat(text)
    except ValueError:
        return None


class CalibrationValidator:
    """Classify the defects of a calibration feed.

    Args:
        dead_threshold: CNOT error rate at or above which a coupler is
            considered dead (Section IV-D treats such couplings as ones
            routing should avoid; a 0.5 error rate means a coin flip).
        max_age_days: When set, a parseable timestamp older than this is
            flagged ``stale_timestamp``.  Unparseable timestamps are never
            flagged — the field is free-form provenance.
        now: Reference time for staleness (defaults to the current time;
            injectable for deterministic tests).
    """

    def __init__(
        self,
        dead_threshold: float = 0.5,
        max_age_days: Optional[float] = None,
        now: Optional[datetime.datetime] = None,
    ) -> None:
        if not 0.0 < dead_threshold <= 1.0:
            raise ValueError("dead_threshold must be in (0, 1]")
        if max_age_days is not None and max_age_days <= 0:
            raise ValueError("max_age_days must be positive or None")
        self.dead_threshold = float(dead_threshold)
        self.max_age_days = max_age_days
        self.now = now

    def validate(
        self, raw: Union[RawCalibration, Calibration]
    ) -> CalibrationReport:
        """Classify every defect in ``raw`` (validated feeds allowed too)."""
        if isinstance(raw, Calibration):
            raw = RawCalibration.from_calibration(raw)
        coupling = raw.coupling
        entries = raw.normalised_cnot_error()
        report = CalibrationReport(
            device=coupling.name,
            num_entries=len(entries),
            num_edges=coupling.num_edges(),
        )
        for edge in sorted(entries):
            err = entries[edge]
            if not coupling.has_edge(*edge):
                report.defects.append(
                    CalibrationDefect(
                        kind="unknown_edge",
                        edge=edge,
                        value=err,
                        detail=f"no coupling {edge} on {coupling.name}",
                    )
                )
                continue
            try:
                err = float(err)
            except (TypeError, ValueError):
                report.defects.append(
                    CalibrationDefect(
                        kind="non_finite",
                        edge=edge,
                        detail=f"non-numeric error rate {err!r}",
                    )
                )
                continue
            if not math.isfinite(err):
                report.defects.append(
                    CalibrationDefect(
                        kind="non_finite",
                        edge=edge,
                        value=err,
                        detail=f"error rate {err} is not finite",
                    )
                )
            elif not 0.0 <= err < 1.0:
                report.defects.append(
                    CalibrationDefect(
                        kind="out_of_range",
                        edge=edge,
                        value=err,
                        detail=f"error rate {err} outside [0, 1)",
                    )
                )
            elif err >= self.dead_threshold:
                report.defects.append(
                    CalibrationDefect(
                        kind="dead_coupler",
                        edge=edge,
                        value=err,
                        detail=(
                            f"error rate {err:.3g} at or above dead "
                            f"threshold {self.dead_threshold:.3g}"
                        ),
                    )
                )
        for edge in sorted(coupling.edges - set(entries)):
            report.defects.append(
                CalibrationDefect(
                    kind="missing_edge",
                    edge=edge,
                    detail=f"no CNOT entry for coupling {edge}",
                )
            )
        for label, rates in (
            ("single-qubit", raw.single_qubit_error),
            ("readout", raw.readout_error),
        ):
            for q, err in sorted(rates.items()):
                bad_qubit = not 0 <= q < coupling.num_qubits
                try:
                    bad_value = not (
                        math.isfinite(float(err)) and 0.0 <= float(err) < 1.0
                    )
                except (TypeError, ValueError):
                    bad_value = True
                if bad_qubit or bad_value:
                    report.defects.append(
                        CalibrationDefect(
                            kind="bad_qubit_rate",
                            qubit=q,
                            value=err if not bad_qubit else None,
                            detail=f"unusable {label} rate {err!r} on qubit {q}",
                        )
                    )
        if self.max_age_days is not None and raw.timestamp:
            stamp = _parse_timestamp(raw.timestamp)
            now = self.now if self.now is not None else datetime.datetime.now()
            if stamp is not None:
                age = (now - stamp).total_seconds() / 86400.0
                if age > self.max_age_days:
                    report.defects.append(
                        CalibrationDefect(
                            kind="stale_timestamp",
                            detail=(
                                f"calibration is {age:.1f} days old "
                                f"(limit {self.max_age_days:g})"
                            ),
                        )
                    )
        return report


@dataclasses.dataclass(frozen=True)
class RepairPolicy:
    """How :func:`repair_calibration` fixes what the validator flags.

    Attributes:
        impute: ``"neighbor_median"`` (median over healthy entries sharing
            an endpoint, falling back to the global median), ``"median"``
            (global median of healthy entries), or ``"default"`` (always
            ``default_error``).
        default_error: Imputation value of last resort, used when no
            healthy entry exists to take a median over.
        prune_dead: Whether to remove dead couplers from the topology.
            Pruning never disconnects the device: when removing a dead
            coupler would cut the graph, the coupler is kept (routing will
            still de-prioritise it under VIC weights) and a warning is
            recorded instead.
    """

    impute: str = "neighbor_median"
    default_error: float = 2.0e-2
    prune_dead: bool = True

    def __post_init__(self) -> None:
        if self.impute not in ("neighbor_median", "median", "default"):
            raise ValueError(f"unknown imputation policy {self.impute!r}")
        if not 0.0 < self.default_error < 1.0:
            raise ValueError("default_error must be in (0, 1)")


@dataclasses.dataclass
class RepairResult:
    """A repaired calibration plus the full repair provenance.

    Attributes:
        calibration: Valid calibration on the (possibly pruned) coupling.
        coupling: Post-prune coupling graph; identical to the input graph
            when nothing was pruned.  The name is preserved so downstream
            device-name checks keep passing — it is the same device, seen
            through a degraded lens.
        report: The defect report the repair acted on.
        warnings: One entry per repair action or residual concern; empty
            iff the feed was clean.
        pruned_edges: Dead couplers removed from the topology.
    """

    calibration: Calibration
    coupling: CouplingGraph
    report: CalibrationReport
    warnings: List[str] = dataclasses.field(default_factory=list)
    pruned_edges: List[Edge] = dataclasses.field(default_factory=list)

    @property
    def degraded(self) -> bool:
        """Whether any repair or fallback was taken."""
        return bool(self.warnings)


def _connected_with_edges(num_qubits: int, edges: Iterable[Edge]) -> bool:
    """Union-find connectivity over an edge set."""
    parent = list(range(num_qubits))

    def find(x: int) -> int:
        while parent[x] != x:
            parent[x] = parent[parent[x]]
            x = parent[x]
        return x

    components = num_qubits
    for a, b in edges:
        ra, rb = find(a), find(b)
        if ra != rb:
            parent[ra] = rb
            components -= 1
    return components == 1


def _impute_value(
    edge: Edge,
    healthy: Dict[Edge, float],
    policy: RepairPolicy,
) -> float:
    if policy.impute == "default" or not healthy:
        return policy.default_error
    if policy.impute == "neighbor_median":
        neighbours = [
            err
            for (a, b), err in healthy.items()
            if edge[0] in (a, b) or edge[1] in (a, b)
        ]
        if neighbours:
            return float(np.median(neighbours))
    return float(np.median(list(healthy.values())))


def repair_calibration(
    raw: Union[RawCalibration, Calibration],
    validator: Optional[CalibrationValidator] = None,
    policy: Optional[RepairPolicy] = None,
) -> RepairResult:
    """Turn a dirty calibration feed into a usable one, or raise.

    Pipeline: classify defects, impute unusable CNOT entries
    (NaN/inf, out-of-range, missing, unknown-edge removal), prune dead
    couplers while the topology stays connected, sanitise per-qubit rates,
    then construct a validated :class:`Calibration`.  Every action lands
    in ``warnings`` so callers (and job results) can surface degradation.

    Raises:
        CalibrationError: When the device topology itself is disconnected
            (no repair can make distances finite) or the repaired feed
            still fails :class:`Calibration` validation.
    """
    validator = validator if validator is not None else CalibrationValidator()
    policy = policy if policy is not None else RepairPolicy()
    if isinstance(raw, Calibration):
        raw = RawCalibration.from_calibration(raw)
    coupling = raw.coupling
    if coupling.num_qubits > 1 and not coupling.is_connected():
        raise CalibrationError(
            f"coupling graph {coupling.name} is disconnected; no repair "
            f"policy can produce finite routing distances"
        )
    report = validator.validate(raw)
    warnings: List[str] = []
    entries = raw.normalised_cnot_error()
    by_kind = report.by_kind()

    dropped = [d.edge for d in by_kind.get("unknown_edge", ())]
    for edge in dropped:
        entries.pop(edge, None)
    if dropped:
        warnings.append(
            f"dropped {len(dropped)} entr"
            f"{'y' if len(dropped) == 1 else 'ies'} for unknown couplings "
            f"{sorted(dropped)}"
        )

    healthy = {
        e: float(err)
        for e, err in entries.items()
        if coupling.has_edge(*e)
        and _is_numeric(err)
        and _is_healthy(float(err), validator.dead_threshold)
    }
    to_impute = sorted(
        {d.edge for k in ("non_finite", "out_of_range", "missing_edge")
         for d in by_kind.get(k, ())}
    )
    for edge in to_impute:
        entries[edge] = _impute_value(edge, healthy, policy)
    if to_impute:
        warnings.append(
            f"imputed {len(to_impute)} CNOT entr"
            f"{'y' if len(to_impute) == 1 else 'ies'} "
            f"({policy.impute}) on edges {to_impute}"
        )

    pruned: List[Edge] = []
    dead = sorted(
        (d for d in by_kind.get("dead_coupler", ())),
        key=lambda d: -(d.value if d.value is not None else 1.0),
    )
    if dead and policy.prune_dead:
        surviving = set(coupling.edges)
        for defect in dead:
            candidate = surviving - {defect.edge}
            if coupling.num_qubits == 1 or _connected_with_edges(
                coupling.num_qubits, candidate
            ):
                surviving = candidate
                pruned.append(defect.edge)
                entries.pop(defect.edge, None)
            else:
                warnings.append(
                    f"kept dead coupler {defect.edge} "
                    f"(error {defect.value:.3g}): pruning it would "
                    f"disconnect {coupling.name}"
                )
        if pruned:
            warnings.append(
                f"pruned {len(pruned)} dead coupler"
                f"{'' if len(pruned) == 1 else 's'} {sorted(pruned)} "
                f"(error >= {validator.dead_threshold:.3g})"
            )
    elif dead:
        warnings.append(
            f"{len(dead)} dead coupler(s) retained (prune_dead disabled)"
        )

    for defect in by_kind.get("stale_timestamp", ()):
        warnings.append(f"stale calibration: {defect.detail}")

    single_qubit, readout = {}, {}
    bad_rates = 0
    for source, target in (
        (raw.single_qubit_error, single_qubit),
        (raw.readout_error, readout),
    ):
        for q, err in source.items():
            if (
                0 <= q < coupling.num_qubits
                and _is_numeric(err)
                and math.isfinite(float(err))
                and 0.0 <= float(err) < 1.0
            ):
                target[q] = float(err)
            else:
                bad_rates += 1
    if bad_rates:
        warnings.append(
            f"dropped {bad_rates} unusable per-qubit rate"
            f"{'' if bad_rates == 1 else 's'}"
        )

    if pruned:
        repaired_coupling = CouplingGraph(
            coupling.num_qubits,
            coupling.edges - set(pruned),
            name=coupling.name,
        )
    else:
        repaired_coupling = coupling
    try:
        calibration = Calibration(
            coupling=repaired_coupling,
            cnot_error={
                e: entries[e] for e in repaired_coupling.edges
            },
            single_qubit_error=single_qubit,
            readout_error=readout,
            timestamp=raw.timestamp,
        )
    except (KeyError, ValueError) as exc:
        raise CalibrationError(
            f"calibration for {coupling.name} is beyond repair: {exc}"
        ) from exc
    return RepairResult(
        calibration=calibration,
        coupling=repaired_coupling,
        report=report,
        warnings=warnings,
        pruned_edges=sorted(pruned),
    )


def _is_numeric(value) -> bool:
    try:
        float(value)
        return True
    except (TypeError, ValueError):
        return False


class FaultInjector:
    """Seeded source of degraded calibrations for chaos testing.

    Every method is deterministic under the construction seed, so chaos
    sweeps and property tests reproduce exactly.  The injector degrades
    *data*, never the coupling graph itself: a dead qubit or dead edge is
    expressed as calibration entries at ``dead_error``, mirroring how real
    feeds report hardware faults, and the repair layer decides what to
    prune.

    Args:
        seed: Seed for the injector's private random generator.
        dead_error: Error rate written for dead couplers/qubits; must sit
            at or above the validator's dead threshold to be classified.
    """

    def __init__(self, seed: int = 0, dead_error: float = 0.9) -> None:
        if not 0.0 < dead_error < 1.0:
            raise ValueError("dead_error must be in (0, 1)")
        self.rng = np.random.default_rng(seed)
        self.dead_error = float(dead_error)

    # ------------------------------------------------------------------
    # individual faults (each returns a new RawCalibration)
    # ------------------------------------------------------------------
    def kill_qubits(
        self, raw: RawCalibration, count: int
    ) -> RawCalibration:
        """Mark every coupler of ``count`` random qubits as dead."""
        raw = _copy_raw(raw)
        count = min(count, raw.coupling.num_qubits)
        victims = self.rng.choice(
            raw.coupling.num_qubits, size=count, replace=False
        )
        for q in victims:
            for n in raw.coupling.neighbours(int(q)):
                raw.cnot_error[_norm_edge(int(q), n)] = self.dead_error
        return raw

    def kill_edges(self, raw: RawCalibration, count: int) -> RawCalibration:
        """Mark ``count`` random couplers as dead."""
        raw = _copy_raw(raw)
        edges = sorted(raw.coupling.edges)
        count = min(count, len(edges))
        for i in self.rng.choice(len(edges), size=count, replace=False):
            raw.cnot_error[edges[int(i)]] = self.dead_error
        return raw

    def drift(
        self, raw: RawCalibration, sigma: float
    ) -> RawCalibration:
        """Multiply every entry by a log-normal drift factor (Fig 10(a)
        day-to-day variation)."""
        raw = _copy_raw(raw)
        for edge in sorted(raw.cnot_error):
            err = raw.cnot_error[edge]
            if _is_numeric(err) and math.isfinite(float(err)):
                factor = float(np.exp(self.rng.normal(0.0, sigma)))
                raw.cnot_error[edge] = min(float(err) * factor, 0.95)
        return raw

    def drop_entries(
        self, raw: RawCalibration, fraction: float
    ) -> RawCalibration:
        """Delete a random fraction of CNOT entries (missing edges)."""
        raw = _copy_raw(raw)
        edges = sorted(raw.cnot_error)
        count = min(len(edges), max(0, int(round(fraction * len(edges)))))
        for i in self.rng.choice(len(edges), size=count, replace=False):
            del raw.cnot_error[edges[int(i)]]
        return raw

    def poison(
        self, raw: RawCalibration, count: int, value: float = float("nan")
    ) -> RawCalibration:
        """Overwrite ``count`` random entries with a poison value (NaN by
        default; pass e.g. ``-0.2`` or ``3.0`` for out-of-range faults)."""
        raw = _copy_raw(raw)
        edges = sorted(raw.cnot_error)
        count = min(count, len(edges))
        for i in self.rng.choice(len(edges), size=count, replace=False):
            raw.cnot_error[edges[int(i)]] = value
        return raw

    def inflate(self, raw: RawCalibration, factor: float) -> RawCalibration:
        """Uniformly scale every finite entry (severity knob for sweeps)."""
        raw = _copy_raw(raw)
        for edge in sorted(raw.cnot_error):
            err = raw.cnot_error[edge]
            if _is_numeric(err) and math.isfinite(float(err)):
                raw.cnot_error[edge] = min(float(err) * factor, 0.95)
        return raw

    # ------------------------------------------------------------------
    # composite
    # ------------------------------------------------------------------
    def degrade(
        self,
        calibration: Union[Calibration, RawCalibration],
        dead_qubits: int = 0,
        dead_edges: int = 0,
        drift_sigma: float = 0.0,
        dropout: float = 0.0,
        nan_entries: int = 0,
        out_of_range_entries: int = 0,
        inflate: float = 1.0,
        timestamp: Optional[str] = None,
    ) -> RawCalibration:
        """Apply a bundle of faults in a fixed order.

        Order: inflation, drift, dead qubits, dead edges, NaN poisoning,
        out-of-range poisoning, dropout.  The fixed order keeps a given
        seed + parameter set perfectly reproducible.
        """
        raw = (
            RawCalibration.from_calibration(calibration)
            if isinstance(calibration, Calibration)
            else _copy_raw(calibration)
        )
        if inflate != 1.0:
            raw = self.inflate(raw, inflate)
        if drift_sigma > 0:
            raw = self.drift(raw, drift_sigma)
        if dead_qubits > 0:
            raw = self.kill_qubits(raw, dead_qubits)
        if dead_edges > 0:
            raw = self.kill_edges(raw, dead_edges)
        if nan_entries > 0:
            raw = self.poison(raw, nan_entries)
        if out_of_range_entries > 0:
            raw = self.poison(raw, out_of_range_entries, value=1.5)
        if dropout > 0:
            raw = self.drop_entries(raw, dropout)
        if timestamp is not None:
            raw.timestamp = timestamp
        return raw


def _copy_raw(raw: RawCalibration) -> RawCalibration:
    return RawCalibration(
        coupling=raw.coupling,
        cnot_error=dict(raw.cnot_error),
        single_qubit_error=dict(raw.single_qubit_error),
        readout_error=dict(raw.readout_error),
        timestamp=raw.timestamp,
    )
