"""The durable tier: fanout-sharded on-disk JSON entries.

Replaces the single-directory layout of the original
:class:`~repro.service.cache.ResultCache`, which kept every entry as
``<key>.json`` in one flat directory — so ``disk_entries()`` and
``prune_stale()`` were full-directory scans and every stat touched every
entry.  Here keys fan out over 256 shard directories (two hex characters
of the key's SHA-256, so arbitrary keys shard uniformly and path-safely)::

    cache_dir/
        3f/<key>.json
        a0/<key>.json
        <key>.json          # legacy flat layout, read + migrated on hit

Invariants carried over from the old cache:

* writes are atomic (unique tmp name in the shard + ``os.replace``);
* undecodable entries are quarantined to ``<name>.corrupt`` instead of
  deleted, and quarantines are counted per shard;
* a legacy flat-layout entry is never silently missed — a shard miss
  falls back to the root directory and migrates the file into its shard.

Scans are shard-aware: counting and pruning walk only shard directories
that exist (plus the legacy root), and the cumulative number of shard
directories walked is reported as ``shards_scanned`` so tests can assert
stats stay O(touched shards).
"""

from __future__ import annotations

import hashlib
import json
import os
import threading
from dataclasses import dataclass
from pathlib import Path
from typing import Callable, Dict, Iterator, Optional, Tuple

__all__ = ["DiskLookup", "ShardStats", "ShardedDiskTier", "shard_for"]

_SHARD_WIDTH = 2  # 256-way fanout


def shard_for(key: str) -> str:
    """Shard label for a key: first two hex chars of its SHA-256.

    Digest-based (not a key prefix) so short or non-hex keys — test keys
    like ``"k"`` — shard uniformly and always yield a path-safe name.
    """
    return hashlib.sha256(key.encode("utf-8")).hexdigest()[:_SHARD_WIDTH]


@dataclass
class ShardStats:
    """Per-shard counters surfaced through ``repro store stats``."""

    hits: int = 0
    misses: int = 0
    puts: int = 0
    evictions: int = 0
    quarantines: int = 0
    migrations: int = 0

    def as_dict(self) -> Dict[str, int]:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "puts": self.puts,
            "evictions": self.evictions,
            "quarantines": self.quarantines,
            "migrations": self.migrations,
        }


@dataclass
class DiskLookup:
    """Outcome of a disk get: payload (when hit) plus what happened.

    ``text`` is the entry's exact on-disk bytes (as str) — callers that
    cached a serialised payload get it back byte-identical; ``payload``
    is the parsed JSON object.
    """

    payload: Optional[dict] = None
    text: Optional[str] = None
    hit: bool = False
    quarantined: bool = False
    migrated: bool = False


class ShardedDiskTier:
    """Sharded, size-bounded, quarantining JSON entry store.

    The byte budget is advisory and enforced at put time by evicting the
    oldest entries (by mtime, across shards) until under budget.  The
    running byte total is maintained incrementally after one lazy scan;
    concurrent writers from other processes make it approximate, which
    is fine for an eviction threshold.
    """

    def __init__(
        self,
        directory,
        max_bytes: Optional[int] = None,
    ) -> None:
        self.directory = Path(directory)
        self.max_bytes = max_bytes
        self._lock = threading.Lock()
        self._shard_stats: Dict[str, ShardStats] = {}
        self._bytes: Optional[int] = None  # lazy; None until first scan
        self._shards_scanned = 0

    # ------------------------------------------------------------------
    # paths
    # ------------------------------------------------------------------
    def _shard_dir(self, key: str) -> Path:
        return self.directory / shard_for(key)

    def entry_path(self, key: str) -> Path:
        return self._shard_dir(key) / f"{key}.json"

    def _legacy_path(self, key: str) -> Path:
        return self.directory / f"{key}.json"

    def _stats_for(self, key: str) -> ShardStats:
        shard = shard_for(key)
        stats = self._shard_stats.get(shard)
        if stats is None:
            stats = self._shard_stats[shard] = ShardStats()
        return stats

    # ------------------------------------------------------------------
    # get / put / delete
    # ------------------------------------------------------------------
    def get(self, key: str) -> DiskLookup:
        path = self.entry_path(key)
        legacy = False
        if not path.exists():
            # Legacy flat layout at the root: validate in place first and
            # migrate into the shard only on a clean hit, so a corrupt
            # legacy entry is quarantined where it was found.
            path = self._legacy_path(key)
            legacy = True
            if not path.exists():
                with self._lock:
                    self._stats_for(key).misses += 1
                return DiskLookup()
        try:
            text = path.read_text(encoding="utf-8")
            payload = json.loads(text)
            if not isinstance(payload, dict):
                raise ValueError("cache entry is not a JSON object")
        except (OSError, ValueError):
            self._quarantine(path)
            with self._lock:
                stats = self._stats_for(key)
                stats.quarantines += 1
                stats.misses += 1
            return DiskLookup(quarantined=True)
        migrated = False
        if legacy:
            shard_path = self.entry_path(key)
            try:
                shard_path.parent.mkdir(parents=True, exist_ok=True)
                os.replace(path, shard_path)
                migrated = True
            except OSError:
                pass
        with self._lock:
            stats = self._stats_for(key)
            stats.hits += 1
            if migrated:
                stats.migrations += 1
        return DiskLookup(payload=payload, text=text, hit=True, migrated=migrated)

    def put(self, key: str, payload: dict) -> int:
        """Atomically write a JSON entry; returns bytes written."""
        return self.put_text(key, json.dumps(payload))

    def put_text(self, key: str, text: str) -> int:
        """Atomically write an entry's exact text (byte-preserving).

        Unique temp name per writer (pid + thread id): two writers racing
        on the same key never interleave into one temp file.  Raises
        ``OSError`` on write failure after removing the temp file.
        """
        path = self.entry_path(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        tmp = path.parent / f"{key}.{os.getpid()}.{threading.get_ident()}.tmp"
        try:
            tmp.write_text(text, encoding="utf-8")
            os.replace(tmp, path)
        except OSError:
            tmp.unlink(missing_ok=True)
            raise
        nbytes = len(text.encode("utf-8"))
        with self._lock:
            self._stats_for(key).puts += 1
            if self._bytes is not None:
                self._bytes += nbytes
        if self.max_bytes is not None:
            self._evict_to_budget()
        return nbytes

    def contains(self, key: str) -> bool:
        """Whether an entry exists (shard or legacy path; stat-free of
        telemetry — no hit/miss is counted)."""
        return self.entry_path(key).exists() or self._legacy_path(key).exists()

    def delete(self, key: str) -> bool:
        removed = False
        for path in (self.entry_path(key), self._legacy_path(key)):
            try:
                size = path.stat().st_size
                path.unlink()
                removed = True
                with self._lock:
                    if self._bytes is not None:
                        self._bytes = max(0, self._bytes - size)
            except (FileNotFoundError, OSError):
                continue
        return removed

    def _quarantine(self, path: Path) -> None:
        try:
            os.replace(path, path.with_name(path.name + ".corrupt"))
        except OSError:
            pass

    # ------------------------------------------------------------------
    # shard-aware scans
    # ------------------------------------------------------------------
    def _iter_shard_dirs(self) -> Iterator[Tuple[str, Path]]:
        """Yield (shard_label, dir) for shard dirs that exist, plus the
        legacy root — counting each walked dir into ``shards_scanned``."""
        if not self.directory.is_dir():
            return
        for child in sorted(self.directory.iterdir()):
            if (
                child.is_dir()
                and len(child.name) == _SHARD_WIDTH
                and all(c in "0123456789abcdef" for c in child.name)
            ):
                with self._lock:
                    self._shards_scanned += 1
                yield child.name, child
        with self._lock:
            self._shards_scanned += 1
        yield "", self.directory  # legacy flat entries at the root

    def _iter_entries(self) -> Iterator[Path]:
        for _shard, directory in self._iter_shard_dirs():
            for path in sorted(directory.glob("*.json")):
                if path.is_file():
                    yield path

    def entries(self) -> int:
        return sum(1 for _ in self._iter_entries())

    def bytes_used(self, refresh: bool = False) -> int:
        with self._lock:
            if self._bytes is not None and not refresh:
                return self._bytes
        total = sum(p.stat().st_size for p in self._iter_entries())
        with self._lock:
            self._bytes = total
        return total

    def prune(
        self,
        stale: Callable[[dict], bool],
        quarantine_corrupt: bool = True,
    ) -> int:
        """Remove entries whose payload the predicate marks stale.

        Undecodable entries are quarantined (and counted per shard) by
        default, or deleted outright with ``quarantine_corrupt=False``
        (the ``repro cache prune`` semantics).  Returns the number of
        entries removed either way.
        """
        removed = 0
        for path in list(self._iter_entries()):
            try:
                payload = json.loads(path.read_text(encoding="utf-8"))
                if not isinstance(payload, dict):
                    raise ValueError("not an object")
            except (OSError, ValueError):
                if quarantine_corrupt:
                    self._quarantine(path)
                    with self._lock:
                        self._shard_stats_for_path(path).quarantines += 1
                else:
                    try:
                        path.unlink()
                    except OSError:
                        continue
                removed += 1
                continue
            if stale(payload):
                try:
                    size = path.stat().st_size
                    path.unlink()
                    removed += 1
                    with self._lock:
                        if self._bytes is not None:
                            self._bytes = max(0, self._bytes - size)
                except OSError:
                    continue
        return removed

    def _shard_stats_for_path(self, path: Path) -> ShardStats:
        shard = path.parent.name if path.parent != self.directory else ""
        stats = self._shard_stats.get(shard)
        if stats is None:
            stats = self._shard_stats[shard] = ShardStats()
        return stats

    def sweep_debris(self) -> int:
        """Remove writer debris (orphaned ``.tmp``) and quarantined
        ``.corrupt`` files across all shard dirs and the legacy root."""
        removed = 0
        for _shard, directory in self._iter_shard_dirs():
            for pattern in ("*.tmp", "*.json.corrupt"):
                for path in directory.glob(pattern):
                    try:
                        path.unlink()
                        removed += 1
                    except OSError:
                        continue
        return removed

    def clear(self, debris: bool = True) -> int:
        """Delete every entry (and, by default, tmp/corrupt debris)."""
        removed = 0
        for path in list(self._iter_entries()):
            try:
                path.unlink()
                removed += 1
            except OSError:
                continue
        if debris:
            self.sweep_debris()
        with self._lock:
            self._bytes = 0 if self.directory.is_dir() else None
        return removed

    def _evict_to_budget(self) -> None:
        total = self.bytes_used()
        if self.max_bytes is None or total <= self.max_bytes:
            return
        aged = []
        for path in self._iter_entries():
            try:
                stat = path.stat()
            except OSError:
                continue
            aged.append((stat.st_mtime, stat.st_size, path))
        aged.sort()
        for _mtime, size, path in aged:
            if total <= self.max_bytes:
                break
            try:
                path.unlink()
            except OSError:
                continue
            total -= size
            shard = path.parent.name if path.parent != self.directory else ""
            with self._lock:
                stats = self._shard_stats.get(shard)
                if stats is None:
                    stats = self._shard_stats[shard] = ShardStats()
                stats.evictions += 1
                self._bytes = max(0, total)

    # ------------------------------------------------------------------
    # telemetry
    # ------------------------------------------------------------------
    def shard_stats(self) -> Dict[str, ShardStats]:
        with self._lock:
            return {k: ShardStats(**v.as_dict()) for k, v in self._shard_stats.items()}

    def stats(self) -> Dict[str, object]:
        with self._lock:
            totals = ShardStats()
            for s in self._shard_stats.values():
                totals.hits += s.hits
                totals.misses += s.misses
                totals.puts += s.puts
                totals.evictions += s.evictions
                totals.quarantines += s.quarantines
                totals.migrations += s.migrations
            out = totals.as_dict()
            out["shards"] = len(self._shard_stats)
            out["shards_scanned"] = self._shards_scanned
            out["max_bytes"] = self.max_bytes
            return out
