"""Content-addressed artifact store: one substrate for shared immutable data.

Before this package the repo grew three parallel caching mechanisms, each
hand-rolled where it was first needed:

* bounded-LRU intern registries for :class:`~repro.hardware.target.Target`
  and :class:`~repro.hardware.coupling.CouplingGraph` (``hardware/target.py``),
  duplicated again for :class:`~repro.sim.fastpath.CostDiagonal`;
* a ``__reduce__``-based re-intern-in-every-worker pattern, so a process
  pool paid one full device analysis per worker per distinct target;
* a single-directory disk :class:`~repro.service.cache.ResultCache`.

``repro.store`` replaces all three with one content-addressed substrate,
organised as pluggable tiers keyed by SHA-256 content fingerprints:

* :class:`FingerprintRegistry` — the in-process tier: a generic bounded-LRU
  intern registry with hit/miss/eviction telemetry and configurable
  capacity (keyword or environment variable);
* :class:`SharedArrayTier` — the cross-process tier: read-only numpy
  payloads (distance tables, cut/phase vectors, statevectors) published
  once into ``multiprocessing.shared_memory`` blocks and resolved
  zero-copy by every pool worker, so N workers share one copy of each
  O(n²)/O(2^n) table instead of recomputing or re-materialising it;
* :class:`ShardedDiskTier` — the durable tier: a fanout-sharded on-disk
  layout with atomic writes, corrupt-entry quarantine, size-bounded
  eviction, and per-shard hit/miss/eviction/quarantine telemetry
  (:class:`~repro.service.cache.ResultCache` is a thin facade over it).

:func:`store_stats` aggregates every tier's counters into one JSON-safe
snapshot; the batch engine and fleet scheduler thread it through
``BatchReport``/``FleetReport`` and ``repro store`` exposes it on the CLI.
"""

from .artifact import (
    ArtifactStore,
    diff_store_stats,
    flatten_store_events,
    get_store,
    reset_store,
    store_stats,
)
from .disk import DiskLookup, ShardStats, ShardedDiskTier, shard_for
from .registry import (
    FingerprintRegistry,
    all_registries,
    registry_capacity,
)
from .shm import SharedArrayTier, shared_tier

__all__ = [
    "ArtifactStore",
    "DiskLookup",
    "FingerprintRegistry",
    "ShardStats",
    "ShardedDiskTier",
    "SharedArrayTier",
    "all_registries",
    "diff_store_stats",
    "flatten_store_events",
    "get_store",
    "registry_capacity",
    "reset_store",
    "shard_for",
    "shared_tier",
    "store_stats",
]
