"""The cross-process tier: read-only numpy payloads in shared memory.

Before this tier, ``Target.__reduce__`` shipped *content* to every pool
worker and each worker re-ran the full analysis (Floyd–Warshall distance
tables, VIC matrices, cost-diagonal cut/phase vectors) into its own
private registry — N workers, N copies, N recomputations.  Here the
first process to materialise an artifact publishes it once into a
``multiprocessing.shared_memory`` block named after its content
fingerprint; every other process resolves the same block zero-copy and
wraps the raw buffer in read-only numpy views.

Block layout (offsets in bytes)::

    0      8   magic seal  b"RPRSTOR1"   -- written LAST
    8      8   header length H (little-endian uint64)
    16     H   JSON header {"arrays": [{name, dtype, shape, offset, nbytes}]}
    16+H  ...  raw array payloads at their stated offsets

The magic seal is written after everything else, so a reader that
attaches mid-publish (or after a publisher was killed) sees a missing
seal and treats the block as absent instead of decoding garbage.

Hazards this module is explicit about (CPython 3.11, Linux, fork):

* **Tracker-on-attach** (bpo-39959): ``SharedMemory(name=...)`` registers
  the segment with the resource tracker even when merely attaching, so a
  worker's exit would *unlink* blocks it never owned.  Attachers
  unregister themselves immediately after attach.
* **Fork inheritance**: children inherit the parent's ``_owned`` map; the
  atexit sweep is pid-guarded so only the creating process unlinks.
* **Exported views**: ``SharedMemory.close()`` raises ``BufferError``
  while numpy views reference the buffer; cleanup unlinks first and
  tolerates close failing.  The tier is therefore append-only — at
  capacity it stops publishing (counted) rather than evicting live
  segments out from under readers.
* **fd budget**: every attached segment holds a file descriptor, so the
  segment count is bounded (``REPRO_SHM_MAX_SEGMENTS``, default 128)
  alongside the byte budget (``REPRO_SHM_MAX_BYTES``, default 256 MiB).

Set ``REPRO_SHM_DISABLE=1`` to turn the tier off entirely (publish and
resolve become no-ops); callers must always keep a content fallback.
"""

from __future__ import annotations

import atexit
import hashlib
import json
import os
import struct
import threading
from typing import Dict, Optional

import numpy as np

__all__ = ["SharedArrayTier", "shared_tier"]

_MAGIC = b"RPRSTOR1"
_HEADER_AT = len(_MAGIC)
_PAYLOAD_AT = _HEADER_AT + 8  # magic + uint64 header length

_DEFAULT_MAX_SEGMENTS = 128
_DEFAULT_MAX_BYTES = 256 * 1024 * 1024


def _env_int(name: str, default: int) -> int:
    raw = os.environ.get(name, "").strip()
    if not raw:
        return default
    try:
        value = int(raw)
    except ValueError:
        raise ValueError(f"{name}={raw!r} is not an integer") from None
    if value < 0:
        raise ValueError(f"{name} must be >= 0, got {value}")
    return value


#: Segments whose close() failed because numpy views still reference the
#: buffer.  Parking them here keeps SharedMemory.__del__ from running (it
#: would re-raise BufferError as an "Exception ignored" at GC); the OS
#: reclaims the mapping at process exit regardless.
_GRAVEYARD = []


def _close_quiet(shm) -> None:
    try:
        shm.close()
    except BufferError:
        _GRAVEYARD.append(shm)
    except OSError:
        pass


def segment_name(key: str) -> str:
    """Map a content-fingerprint key to a /dev/shm-safe segment name."""
    digest = hashlib.sha256(key.encode("utf-8")).hexdigest()[:24]
    return f"repro-store-{digest}"


class SharedArrayTier:
    """Publish/resolve named bundles of read-only numpy arrays.

    Content addressing makes coordination unnecessary: any process that
    computes an artifact may publish it, racing publishers write the
    same bytes, and ``FileExistsError`` on create simply means someone
    else won — we attach to their block instead.
    """

    def __init__(
        self,
        max_segments: Optional[int] = None,
        max_bytes: Optional[int] = None,
        enabled: Optional[bool] = None,
    ) -> None:
        if enabled is None:
            enabled = os.environ.get("REPRO_SHM_DISABLE", "").strip() not in (
                "1",
                "true",
                "yes",
            )
        if max_segments is None:
            max_segments = _env_int("REPRO_SHM_MAX_SEGMENTS", _DEFAULT_MAX_SEGMENTS)
        if max_bytes is None:
            max_bytes = _env_int("REPRO_SHM_MAX_BYTES", _DEFAULT_MAX_BYTES)
        self.enabled = enabled
        self.max_segments = max_segments
        self.max_bytes = max_bytes
        self._lock = threading.Lock()
        # name -> (SharedMemory, owner_pid); only the owner pid unlinks.
        self._owned: Dict[str, tuple] = {}
        # name -> SharedMemory attached (not owned); kept alive so the
        # views handed out by resolve() stay valid.
        self._attached: Dict[str, object] = {}
        # key -> resolved {array_name: ndarray}; repeat resolves are free.
        self._resolved: Dict[str, Dict[str, np.ndarray]] = {}
        self._bytes = 0
        self._stats = {
            "publishes": 0,
            "publish_skips": 0,
            "publish_errors": 0,
            "hits": 0,
            "attach_hits": 0,
            "misses": 0,
            "torn": 0,
        }
        self._atexit_registered = False

    # ------------------------------------------------------------------
    # publish
    # ------------------------------------------------------------------
    def publish(self, key: str, arrays: Dict[str, np.ndarray]) -> bool:
        """Publish a bundle of arrays under ``key``.

        Returns True when the bundle is available in shared memory after
        the call (whether this process published it or another already
        had).  Returns False when the tier is disabled, over budget, or
        the OS refused — callers keep their private copy in that case.
        """
        if not self.enabled or not arrays:
            return False
        name = segment_name(key)
        with self._lock:
            if name in self._owned or name in self._attached:
                return True
            payload_bytes = sum(int(a.nbytes) for a in arrays.values())
            if (
                len(self._owned) + len(self._attached) >= self.max_segments
                or self._bytes + payload_bytes > self.max_bytes
            ):
                self._stats["publish_skips"] += 1
                return False

        header_entries = []
        offset = 0
        contiguous = {}
        for arr_name, arr in arrays.items():
            flat = np.ascontiguousarray(arr)
            header_entries.append(
                {
                    "name": arr_name,
                    "dtype": str(flat.dtype),
                    "shape": list(flat.shape),
                    "offset": offset,
                    "nbytes": int(flat.nbytes),
                }
            )
            contiguous[arr_name] = flat
            offset += int(flat.nbytes)
        header = json.dumps({"arrays": header_entries}).encode("utf-8")
        total = _PAYLOAD_AT + len(header) + offset

        from multiprocessing import shared_memory

        try:
            shm = shared_memory.SharedMemory(name=name, create=True, size=total)
        except FileExistsError:
            # Another process won the race with identical content.
            return self.resolve(key) is not None
        except OSError:
            with self._lock:
                self._stats["publish_errors"] += 1
            return False

        buf = shm.buf
        for entry, arr_name in zip(header_entries, contiguous):
            start = _PAYLOAD_AT + len(header) + entry["offset"]
            buf[start : start + entry["nbytes"]] = contiguous[arr_name].tobytes()
        buf[_HEADER_AT:_PAYLOAD_AT] = struct.pack("<Q", len(header))
        buf[_PAYLOAD_AT : _PAYLOAD_AT + len(header)] = header
        # Seal last: a reader never trusts an unsealed block.
        buf[:_HEADER_AT] = _MAGIC

        with self._lock:
            self._owned[name] = (shm, os.getpid())
            self._bytes += total
            self._stats["publishes"] += 1
            self._ensure_atexit_locked()
        return True

    # ------------------------------------------------------------------
    # resolve
    # ------------------------------------------------------------------
    def resolve(self, key: str) -> Optional[Dict[str, np.ndarray]]:
        """Return the read-only arrays published under ``key``, or None."""
        if not self.enabled:
            return None
        with self._lock:
            cached = self._resolved.get(key)
            if cached is not None:
                self._stats["hits"] += 1
                return cached

        name = segment_name(key)
        with self._lock:
            owned = self._owned.get(name)
        shm = owned[0] if owned else None
        freshly_attached = False
        if shm is None:
            from multiprocessing import shared_memory

            try:
                shm = shared_memory.SharedMemory(name=name)
            except (FileNotFoundError, OSError):
                with self._lock:
                    self._stats["misses"] += 1
                return None
            freshly_attached = True
            # bpo-39959: 3.11 registers on attach too; without this the
            # resource tracker unlinks the block when *we* exit even
            # though we never owned it.
            try:
                from multiprocessing import resource_tracker

                resource_tracker.unregister(shm._name, "shared_memory")
            except Exception:
                pass

        arrays = self._decode(shm)
        if arrays is None:
            with self._lock:
                self._stats["torn"] += 1
                self._stats["misses"] += 1
            if freshly_attached:
                _close_quiet(shm)
            return None

        with self._lock:
            if freshly_attached:
                if name in self._attached or name in self._owned:
                    # Lost a resolve race with another thread; keep the
                    # first attachment, drop ours.  The views we decoded
                    # reference this buffer, so close via the graveyard.
                    _close_quiet(shm)
                else:
                    self._attached[name] = shm
                    self._bytes += shm.size
                    self._ensure_atexit_locked()
                self._stats["attach_hits"] += 1
            else:
                self._stats["hits"] += 1
            existing = self._resolved.get(key)
            if existing is not None:
                return existing
            self._resolved[key] = arrays
            return arrays

    @staticmethod
    def _decode(shm) -> Optional[Dict[str, np.ndarray]]:
        buf = shm.buf
        if len(buf) < _PAYLOAD_AT or bytes(buf[:_HEADER_AT]) != _MAGIC:
            return None
        (header_len,) = struct.unpack("<Q", bytes(buf[_HEADER_AT:_PAYLOAD_AT]))
        if _PAYLOAD_AT + header_len > len(buf):
            return None
        try:
            header = json.loads(bytes(buf[_PAYLOAD_AT : _PAYLOAD_AT + header_len]))
        except (ValueError, UnicodeDecodeError):
            return None
        arrays: Dict[str, np.ndarray] = {}
        base = _PAYLOAD_AT + header_len
        for entry in header.get("arrays", []):
            start = base + int(entry["offset"])
            nbytes = int(entry["nbytes"])
            if start + nbytes > len(buf):
                return None
            view = np.frombuffer(
                buf, dtype=np.dtype(entry["dtype"]), count=nbytes // np.dtype(entry["dtype"]).itemsize, offset=start
            ).reshape(entry["shape"])
            view.flags.writeable = False
            arrays[entry["name"]] = view
        return arrays

    # ------------------------------------------------------------------
    # lifecycle / telemetry
    # ------------------------------------------------------------------
    def _ensure_atexit_locked(self) -> None:
        if not self._atexit_registered:
            atexit.register(self.cleanup)
            self._atexit_registered = True

    def cleanup(self) -> None:
        """Unlink owned segments (pid-guarded) and drop attachments.

        Safe to call more than once; called automatically at interpreter
        exit.  Fork-inherited ``_owned`` entries belong to the parent and
        are skipped — only the creating pid unlinks.
        """
        pid = os.getpid()
        with self._lock:
            owned = dict(self._owned)
            attached = dict(self._attached)
            self._owned.clear()
            self._attached.clear()
            self._resolved.clear()
            self._bytes = 0
        for name, (shm, owner_pid) in owned.items():
            if owner_pid == pid:
                try:
                    shm.unlink()
                except (FileNotFoundError, OSError):
                    pass
            _close_quiet(shm)
        for shm in attached.values():
            _close_quiet(shm)

    def stats(self) -> Dict[str, object]:
        with self._lock:
            out = dict(self._stats)
            out["segments"] = len(self._owned) + len(self._attached)
            out["owned"] = len(self._owned)
            out["bytes"] = self._bytes
            out["enabled"] = self.enabled
            out["max_segments"] = self.max_segments
            out["max_bytes"] = self.max_bytes
            return out


_TIER: Optional[SharedArrayTier] = None
_TIER_LOCK = threading.Lock()


def shared_tier() -> SharedArrayTier:
    """The process-global shared-memory tier (created on first use).

    Created in the parent before the pool forks, so workers inherit the
    same instance — their owned/attached maps diverge after fork, which
    is exactly what the pid-guarded cleanup expects.
    """
    global _TIER
    with _TIER_LOCK:
        if _TIER is None:
            _TIER = SharedArrayTier()
        return _TIER


def _reset_shared_tier() -> None:
    """Test hook: unlink everything and forget the singleton."""
    global _TIER
    with _TIER_LOCK:
        tier = _TIER
        _TIER = None
    if tier is not None:
        tier.cleanup()
