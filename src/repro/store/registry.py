"""The in-process tier: a generic fingerprint-keyed bounded-LRU registry.

Extracted from the three hand-rolled ``OrderedDict`` + ``while len(...) >
capacity`` loops that grew in ``hardware/target.py`` (targets, couplings)
and ``sim/fastpath.py`` (cost diagonals).  One implementation, one set of
semantics: thread-safe interning keyed on content fingerprints, LRU
eviction against a configurable capacity, and hit/miss/eviction counters
every registry reports into :func:`repro.store.store_stats`.

Capacity resolution order (first match wins):

1. the ``capacity`` keyword;
2. the registry's environment variable (e.g. ``REPRO_REGISTRY_CAPACITY``),
   read at construction time;
3. the registry's built-in default.

``capacity`` may be ``None`` for an unbounded registry (tests, short-lived
scripts); every long-running-service registry in the repo sets a bound.
"""

from __future__ import annotations

import os
import threading
from collections import OrderedDict
from typing import Callable, Dict, Optional, Tuple, TypeVar

__all__ = ["FingerprintRegistry", "all_registries", "registry_capacity"]

V = TypeVar("V")

#: Every live registry by name, for aggregate telemetry.  Module-level on
#: purpose: registries are created at import time by the modules that own
#: them and live for the process.
_ALL: "Dict[str, FingerprintRegistry]" = {}
_ALL_LOCK = threading.Lock()


def registry_capacity(
    env_var: Optional[str], default: Optional[int]
) -> Optional[int]:
    """Resolve a registry capacity from the environment.

    ``env_var=None`` skips the environment entirely.  An empty or
    unparseable value falls back to ``default``; a non-positive value is
    rejected loudly (a silent cap of 0 would turn interning off).
    """
    if env_var is None:
        return default
    raw = os.environ.get(env_var, "").strip()
    if not raw:
        return default
    try:
        value = int(raw)
    except ValueError:
        raise ValueError(
            f"{env_var}={raw!r} is not an integer registry capacity"
        ) from None
    if value < 1:
        raise ValueError(f"{env_var} must be >= 1, got {value}")
    return value


class FingerprintRegistry:
    """Thread-safe bounded-LRU intern registry keyed on content digests.

    Args:
        name: Telemetry label; registries self-register under it in
            :func:`all_registries` (last construction wins).
        capacity: Explicit entry bound; overrides the environment.
            ``None`` defers to ``env_var``/``default_capacity``.
        env_var: Environment variable consulted when ``capacity`` is not
            given (e.g. ``REPRO_REGISTRY_CAPACITY``).
        default_capacity: Fallback bound; ``None`` = unbounded.
    """

    def __init__(
        self,
        name: str,
        capacity: Optional[int] = None,
        *,
        env_var: Optional[str] = None,
        default_capacity: Optional[int] = 256,
    ) -> None:
        if capacity is not None and capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.name = name
        self.env_var = env_var
        if capacity is None:
            capacity = registry_capacity(env_var, default_capacity)
        self._capacity = capacity
        self._lock = threading.Lock()
        self._entries: "OrderedDict[object, object]" = OrderedDict()
        self._hits = 0
        self._misses = 0
        self._evictions = 0
        with _ALL_LOCK:
            _ALL[name] = self

    # ------------------------------------------------------------------
    # core operations
    # ------------------------------------------------------------------
    @property
    def capacity(self) -> Optional[int]:
        return self._capacity

    def set_capacity(self, capacity: Optional[int]) -> None:
        """Re-bound the registry (evicting LRU entries down to the new
        cap immediately).  ``None`` unbounds it."""
        if capacity is not None and capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        with self._lock:
            self._capacity = capacity
            self._evict_locked()

    def get(self, key) -> Optional[object]:
        """Look up and LRU-promote; counts a hit or a miss."""
        with self._lock:
            value = self._entries.get(key)
            if value is None:
                self._misses += 1
                return None
            self._entries.move_to_end(key)
            self._hits += 1
            return value

    def peek(self, key) -> Optional[object]:
        """Look up without promoting or counting (telemetry-neutral)."""
        with self._lock:
            return self._entries.get(key)

    def put(self, key, value) -> None:
        """Insert (or refresh) an entry, evicting LRU beyond capacity."""
        with self._lock:
            if key in self._entries:
                self._entries.move_to_end(key)
            self._entries[key] = value
            self._evict_locked()

    def intern(
        self, key, factory: Callable[[], V]
    ) -> Tuple[V, bool]:
        """The canonical interning pattern: ``(value, hit)``.

        The factory runs *outside* the lock (it may be expensive — an
        eager Floyd–Warshall, a 2^n table) with a double-checked insert,
        so two racing threads may both build but exactly one value wins
        and is returned to both.
        """
        with self._lock:
            existing = self._entries.get(key)
            if existing is not None:
                self._entries.move_to_end(key)
                self._hits += 1
                return existing, True
        value = factory()
        with self._lock:
            existing = self._entries.get(key)
            if existing is not None:
                self._entries.move_to_end(key)
                self._hits += 1
                return existing, True
            self._entries[key] = value
            self._misses += 1
            self._evict_locked()
        return value, False

    def _evict_locked(self) -> None:
        if self._capacity is None:
            return
        while len(self._entries) > self._capacity:
            self._entries.popitem(last=False)
            self._evictions += 1

    # ------------------------------------------------------------------
    # maintenance / telemetry
    # ------------------------------------------------------------------
    def clear(self) -> None:
        """Empty the registry and reset its counters."""
        with self._lock:
            self._entries.clear()
            self._hits = 0
            self._misses = 0
            self._evictions = 0

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def __contains__(self, key) -> bool:
        with self._lock:
            return key in self._entries

    def stats(self) -> Dict[str, object]:
        with self._lock:
            return {
                "hits": self._hits,
                "misses": self._misses,
                "evictions": self._evictions,
                "size": len(self._entries),
                "capacity": self._capacity,
            }


def all_registries() -> Dict[str, FingerprintRegistry]:
    """Every live registry by name (aggregate telemetry)."""
    with _ALL_LOCK:
        return dict(_ALL)
