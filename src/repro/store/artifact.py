"""The facade: one object over the registry / shared-memory / disk tiers.

An :class:`ArtifactStore` is the composition point the rest of the repo
talks to: interning goes to a :class:`~repro.store.registry.FingerprintRegistry`,
large read-only numpy payloads go through the process-global
:class:`~repro.store.shm.SharedArrayTier`, and durable JSON entries go to
an optional :class:`~repro.store.disk.ShardedDiskTier`.  The hardware and
sim layers keep their own named registries (created at import time) and
use the shared tier directly; the store object exists so benchmarks,
tests, the CLI and telemetry have one handle and one stats snapshot.

:func:`store_stats` is the process-wide JSON-safe snapshot (every live
registry + the shared tier); :func:`diff_store_stats` turns two
snapshots into per-run deltas, which is how ``BatchReport.store_stats``
and ``FleetReport.store`` report what one batch actually did rather than
process-lifetime totals.
"""

from __future__ import annotations

import threading
from typing import Callable, Dict, Optional, Tuple

from .disk import ShardedDiskTier
from .registry import FingerprintRegistry, all_registries
from .shm import SharedArrayTier, shared_tier, _reset_shared_tier

__all__ = [
    "ArtifactStore",
    "diff_store_stats",
    "flatten_store_events",
    "get_store",
    "reset_store",
    "store_stats",
]

#: Snapshot keys that are gauges (current values), not monotonic
#: counters — a diff reports the *after* value for these.
_GAUGE_KEYS = {
    "size",
    "capacity",
    "segments",
    "owned",
    "bytes",
    "enabled",
    "max_segments",
    "max_bytes",
    "shards",
}


class ArtifactStore:
    """Fingerprint-keyed store over pluggable tiers.

    Args:
        name: Label for the store's own registry tier.
        registry: In-process tier; a fresh bounded registry by default.
        shared: Cross-process tier; the process-global one by default.
        disk: Optional durable tier (a sharded directory).
    """

    def __init__(
        self,
        name: str = "artifacts",
        registry: Optional[FingerprintRegistry] = None,
        shared: Optional[SharedArrayTier] = None,
        disk: Optional[ShardedDiskTier] = None,
    ) -> None:
        self.name = name
        self.registry = registry or FingerprintRegistry(
            name, env_var="REPRO_STORE_CAPACITY", default_capacity=256
        )
        self.shared = shared if shared is not None else shared_tier()
        self.disk = disk

    # -- in-process objects -------------------------------------------
    def intern(self, key, factory: Callable[[], object]) -> Tuple[object, bool]:
        return self.registry.intern(key, factory)

    # -- cross-process arrays -----------------------------------------
    def get_arrays(self, key: str):
        """Resolve a published numpy bundle (registry first, then shm)."""
        cached = self.registry.get(("arrays", key))
        if cached is not None:
            return cached
        arrays = self.shared.resolve(key)
        if arrays is not None:
            self.registry.put(("arrays", key), arrays)
        return arrays

    def put_arrays(self, key: str, arrays) -> bool:
        self.registry.put(("arrays", key), arrays)
        return self.shared.publish(key, arrays)

    # -- durable entries ----------------------------------------------
    def get_entry(self, key: str):
        if self.disk is None:
            return None
        lookup = self.disk.get(key)
        return lookup.payload if lookup.hit else None

    def put_entry(self, key: str, payload: dict) -> int:
        if self.disk is None:
            return 0
        return self.disk.put(key, payload)

    # -- telemetry -----------------------------------------------------
    def stats(self) -> Dict[str, object]:
        out: Dict[str, object] = {
            "registry": self.registry.stats(),
            "shm": self.shared.stats(),
        }
        if self.disk is not None:
            out["disk"] = self.disk.stats()
        return out


_STORE: Optional[ArtifactStore] = None
_STORE_LOCK = threading.Lock()


def get_store() -> ArtifactStore:
    """The process-global store (shared tier + a default registry)."""
    global _STORE
    with _STORE_LOCK:
        if _STORE is None:
            _STORE = ArtifactStore()
        return _STORE


def reset_store(clear_registries: bool = False) -> None:
    """Test hook: drop the global store and unlink its shared segments.

    ``clear_registries=True`` additionally empties every live
    :class:`FingerprintRegistry` (targets, couplings, diagonals, ...).
    """
    global _STORE
    with _STORE_LOCK:
        _STORE = None
    _reset_shared_tier()
    if clear_registries:
        for registry in all_registries().values():
            registry.clear()


def store_stats() -> Dict[str, object]:
    """Process-wide JSON-safe snapshot of every tier's counters."""
    return {
        "registries": {
            name: registry.stats() for name, registry in all_registries().items()
        },
        "shm": shared_tier().stats(),
    }


def flatten_store_events(before: Dict, after: Dict) -> Dict[str, int]:
    """Compact counter deltas between two :func:`store_stats` snapshots.

    This is the per-job event record workers stamp into result metrics
    (``store_events``) so the batch engine can see shared-memory and
    registry activity that happened in pool processes.  Registries are
    summed; zero-valued counters are dropped to keep envelopes small.
    """
    delta = diff_store_stats(before, after)
    shm = delta.get("shm", {})
    events = {
        "shm_hits": int(shm.get("hits", 0)) + int(shm.get("attach_hits", 0)),
        "shm_misses": int(shm.get("misses", 0)),
        "shm_publishes": int(shm.get("publishes", 0)),
        "shm_publish_skips": int(shm.get("publish_skips", 0)),
        "shm_torn": int(shm.get("torn", 0)),
    }
    registry_totals = {"registry_hits": 0, "registry_misses": 0, "registry_evictions": 0}
    for stats in delta.get("registries", {}).values():
        registry_totals["registry_hits"] += int(stats.get("hits", 0))
        registry_totals["registry_misses"] += int(stats.get("misses", 0))
        registry_totals["registry_evictions"] += int(stats.get("evictions", 0))
    events.update(registry_totals)
    return {k: v for k, v in events.items() if v}


def diff_store_stats(before: Dict, after: Dict) -> Dict[str, object]:
    """Delta between two :func:`store_stats` snapshots.

    Counters are diffed (clamped at zero, so a registry clear mid-run
    can't go negative); gauge keys report the *after* value; snapshot
    sections present only in ``after`` diff against zero.
    """
    out: Dict[str, object] = {}
    for key, after_value in after.items():
        before_value = before.get(key)
        if isinstance(after_value, dict):
            out[key] = diff_store_stats(
                before_value if isinstance(before_value, dict) else {}, after_value
            )
        elif isinstance(after_value, bool) or not isinstance(
            after_value, (int, float)
        ):
            out[key] = after_value
        elif key in _GAUGE_KEYS:
            out[key] = after_value
        else:
            prior = before_value if isinstance(before_value, (int, float)) else 0
            out[key] = max(0, after_value - prior)
    return out
