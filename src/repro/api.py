"""The package's single public front door.

The compilation stack grew several overlapping entry points
(``compile_qaoa``, ``compile_with_method``, ``compile_spec``,
tuple-unpackable ``METHOD_PRESETS``, ``execute_job``).  This module is
the one coherent surface new code should use:

* :func:`compile` — problem + target + method name in, typed
  :class:`CompileResult` out;
* :func:`evaluate` — compiled circuit in, typed :class:`EvalResult`
  (``r0``/``rh``/ARG and how they were obtained) out, served by the
  :mod:`repro.sim.fastpath` engine whenever the circuit proves
  ARG-equivalent and falling back to gate-by-gate simulation otherwise.

Both are re-exported from :mod:`repro`; the legacy top-level names
remain importable as :class:`DeprecationWarning`-emitting shims.

Quickstart::

    import repro

    problem = repro.MaxCutProblem(
        4, [(0, 1), (0, 2), (1, 3), (2, 3), (0, 3), (1, 2)]
    )
    result = repro.compile(
        problem, target="ibmq_16_melbourne", method="vic", calibration="auto"
    )
    scores = repro.evaluate(result, shots=4096, seed=7)
    print(scores.r0, scores.rh, scores.arg)
"""

from __future__ import annotations

import dataclasses
import warnings
from typing import Dict, Optional, Sequence, Tuple

import numpy as np

from .compiler.flow import METHOD_PRESETS
from .compiler.pipeline import PipelineSpec
from .compiler.registry import unknown_method_error
from .compiler.flow import compile_qaoa as _compile_qaoa_impl
from .compiler.flow import compile_with_method as _compile_with_method_impl
from .compiler.metrics import success_probability as _success_probability
from .hardware import get_device
from .hardware.calibration import Calibration
from .hardware.coupling import CouplingGraph
from .hardware.target import Target, intern_target
from .qaoa.ising import IsingProblem
from .qaoa.problems import MaxCutProblem, QAOAProgram
from .sim.fastpath import evaluate_fast
from .sim.noise import NoiseModel

__all__ = [
    "CompileResult",
    "EvalResult",
    "compile",
    "evaluate",
    "compile_qaoa",
    "compile_with_method",
]

#: Default p=1 angles — the harness's fixed paper-style parameters
#: (``repro.experiments.harness.DEFAULT_GAMMA`` / ``DEFAULT_BETA``).
_DEFAULT_GAMMAS: Tuple[float, ...] = (0.7,)
_DEFAULT_BETAS: Tuple[float, ...] = (0.35,)


def _auto_calibration(coupling: CouplingGraph) -> Calibration:
    """The paper's melbourne calibration for the melbourne device; a
    seeded random calibration for anything else (mirrors the service's
    ``calibration="auto"``)."""
    from .hardware.calibration import random_calibration
    from .hardware.devices import ibmq_16_melbourne, melbourne_calibration

    melbourne = ibmq_16_melbourne()
    if (
        coupling.num_qubits == melbourne.num_qubits
        and coupling.edges == melbourne.edges
    ):
        return melbourne_calibration()
    return random_calibration(coupling, rng=np.random.default_rng(0))


def _resolve_target(target, calibration) -> Target:
    """Coerce a device name / coupling / calibration / Target to a Target."""
    if isinstance(target, str):
        target = get_device(target)
    if calibration == "auto":
        calibration = (
            _auto_calibration(target)
            if isinstance(target, CouplingGraph)
            else None
        )
    if isinstance(target, Target):
        if calibration is not None and calibration is not target.calibration:
            raise ValueError(
                "calibration= conflicts with the Target's own calibration; "
                "build the Target from the calibration you want"
            )
        return target
    if isinstance(target, CouplingGraph):
        return intern_target(target, calibration)
    if isinstance(target, Calibration):
        if calibration is not None and calibration is not target:
            raise ValueError("two different calibrations given")
        return intern_target(target.coupling, target)
    raise TypeError(
        f"target must be a device name, CouplingGraph, Calibration or "
        f"Target, got {type(target).__name__}"
    )


def _resolve_program(
    problem,
    gammas: Optional[Sequence[float]],
    betas: Optional[Sequence[float]],
) -> Tuple[QAOAProgram, Optional[object]]:
    if isinstance(problem, QAOAProgram):
        if gammas is not None or betas is not None:
            raise ValueError(
                "gammas/betas are baked into a QAOAProgram; pass a "
                "problem instance to choose angles here"
            )
        return problem, None
    if isinstance(problem, (MaxCutProblem, IsingProblem)) or (
        not isinstance(problem, type) and hasattr(problem, "to_program")
    ):
        if (gammas is None) != (betas is None):
            raise ValueError("pass gammas and betas together")
        if gammas is None:
            gammas, betas = _DEFAULT_GAMMAS, _DEFAULT_BETAS
        if len(gammas) != len(betas):
            raise ValueError("gammas and betas must have equal length")
        return problem.to_program(gammas, betas), problem
    raise TypeError(
        f"problem must be a MaxCutProblem, IsingProblem, QAOAProgram or "
        f"any Problem with to_program, got {type(problem).__name__}"
    )


@dataclasses.dataclass(frozen=True)
class CompileResult:
    """What :func:`compile` returns.

    Attributes:
        compiled: The full :class:`~repro.compiler.flow.CompiledQAOA`
            (circuit, mappings, pass trace, ...).
        program: The logical program that was compiled (angles included).
        problem: The originating problem instance (MaxCut, Ising/QUBO, or
            any :class:`~repro.qaoa.frontend.Problem`) when one was
            passed (``None`` when :func:`compile` was given a raw
            program).
        target: The interned device view the compilation ran against.
        method: The method name requested (``"ic"``, ``"vic"``, ...), or
            the flow label (``placement+ordering``) when a
            :class:`~repro.compiler.pipeline.PipelineSpec` was compiled
            directly.
    """

    compiled: object
    program: QAOAProgram
    problem: Optional[object]
    target: Target
    method: str

    @property
    def circuit(self):
        """The physical circuit."""
        return self.compiled.circuit

    @property
    def swap_count(self) -> int:
        """SWAPs the router inserted."""
        return self.compiled.swap_count

    def depth(self) -> int:
        """Depth of the compiled circuit."""
        return self.compiled.depth()

    def gate_count(self) -> int:
        """Gate count of the compiled circuit."""
        return self.compiled.gate_count()

    @property
    def warnings(self):
        """Structured degradation warnings raised during compilation."""
        return self.compiled.warnings


@dataclasses.dataclass(frozen=True)
class EvalResult:
    """What :func:`evaluate` returns.

    Attributes:
        r0: Noiseless approximation ratio of the compiled circuit.
        rh: Noisy ("hardware") ratio; ``None`` when evaluated without a
            noise model.
        arg: ``100 * (r0 - rh) / r0`` — the paper's ARG; ``None`` without
            noise.
        shots: Samples per side (0 in ``exact`` mode).
        trajectories: Noise realisations averaged into ``rh``.
        mode: ``"sampled"`` or ``"exact"``.
        fastpath: Whether the vectorized engine served the numbers (else
            gate-by-gate fallback simulation did).
        fallback_reason: Why the fast path was refused (``None`` when
            taken).
        success_probability: Product of calibrated per-gate success rates
            of the circuit, when a calibration was available.
        timings: Per-stage wall seconds (``diagonal``/``ideal``/``noisy``).
    """

    r0: float
    rh: Optional[float]
    arg: Optional[float]
    shots: int
    trajectories: int
    mode: str
    fastpath: bool
    fallback_reason: Optional[str]
    success_probability: Optional[float]
    timings: Dict[str, float]


def compile(
    problem,
    *,
    target,
    method="ic",
    gammas: Optional[Sequence[float]] = None,
    betas: Optional[Sequence[float]] = None,
    calibration=None,
    seed: Optional[int] = 0,
    rng: Optional[np.random.Generator] = None,
    packing_limit: Optional[int] = None,
    router: str = "layered",
    qaim_radius: int = 2,
) -> CompileResult:
    """Compile a MaxCut problem (or prebuilt program) for a device.

    Args:
        problem: A :class:`~repro.qaoa.problems.MaxCutProblem` (angles
            from ``gammas``/``betas``, default the harness's fixed p=1
            parameters) or a ready :class:`~repro.qaoa.problems.QAOAProgram`.
        target: Device name (``"melbourne"``, ``"tokyo"``, ...), a
            :class:`~repro.hardware.coupling.CouplingGraph`, a
            :class:`~repro.hardware.calibration.Calibration`, or a
            prebuilt :class:`~repro.hardware.target.Target`.
        method: A registered method name (see
            :func:`repro.compiler.available_methods` — ``naive``,
            ``greedy_v``, ``greedy_e``, ``qaim``, ``ip``, ``ic``,
            ``vic``, ``swap_network``, ``parity``, plus anything
            installed via :func:`repro.compiler.register_method`), or a
            :class:`~repro.compiler.pipeline.PipelineSpec` instance
            compiled directly — in which case ``router``, ``qaim_radius``
            and ``packing_limit`` must stay at their defaults (they are
            fields of the spec).
        gammas / betas: Per-level QAOA angles when ``problem`` is a
            MaxCut instance.
        calibration: Device calibration (required for ``method="vic"``
            unless the target carries one), or ``"auto"`` — the paper's
            melbourne calibration for the melbourne device, a seeded
            random calibration otherwise.
        seed: Seed for the compilation's stochastic tie-breaks (ignored
            when ``rng`` is given).
        rng: Explicit random generator.
        packing_limit: Max CPHASE gates per formed layer (Figure 12).
        router: ``"layered"`` or ``"sabre"``.
        qaim_radius: QAIM connectivity-strength radius.
    """
    if isinstance(method, PipelineSpec):
        label = method.method
    else:
        if method not in METHOD_PRESETS:
            raise unknown_method_error(method)
        label = method
    program, maxcut = _resolve_program(problem, gammas, betas)
    resolved = _resolve_target(target, calibration)
    rng = rng if rng is not None else np.random.default_rng(seed)
    compiled = _compile_with_method_impl(
        program,
        method=method,
        packing_limit=packing_limit,
        rng=rng,
        router=router,
        qaim_radius=qaim_radius,
        target=resolved,
    )
    return CompileResult(
        compiled=compiled,
        program=program,
        problem=maxcut,
        target=resolved,
        method=label,
    )


def evaluate(
    compiled,
    *,
    noise="auto",
    shots: int = 4096,
    trajectories: int = 32,
    seed: Optional[int] = None,
    rng: Optional[np.random.Generator] = None,
    mode: str = "sampled",
    t2_ns: Optional[float] = None,
) -> EvalResult:
    """Evaluate ``r0``/``rh``/ARG of a compiled circuit in one pass.

    Args:
        compiled: A :class:`CompileResult` or a raw
            :class:`~repro.compiler.flow.CompiledQAOA`.
        noise: The ``rh``-side noise — a
            :class:`~repro.sim.noise.NoiseModel`, a
            :class:`~repro.hardware.calibration.Calibration` (converted
            via :meth:`~repro.sim.noise.NoiseModel.from_calibration` with
            ``t2_ns``), ``"auto"`` (derive from the compile target's
            calibration when present, else no noisy side), or ``None``
            (noiseless ``r0`` only).
        shots: Samples per side in ``sampled`` mode (paper: 40960).
        trajectories: Noise realisations averaged into ``rh``.
        seed: Seed for sampling and noise draws (ignored when ``rng`` is
            given).
        rng: Explicit random generator.
        mode: ``"sampled"`` (the paper's finite-shot procedure) or
            ``"exact"`` (expectation values, no sampling noise).
        t2_ns: T2 dephasing time used when deriving a noise model from a
            calibration.
    """
    result = compiled if isinstance(compiled, CompileResult) else None
    inner = result.compiled if result is not None else compiled
    calibration = result.target.calibration if result is not None else None

    if noise == "auto":
        noise = calibration
    if isinstance(noise, Calibration):
        noise_cal = noise
        noise = NoiseModel.from_calibration(noise, t2_ns=t2_ns)
    else:
        noise_cal = calibration
        if noise is not None and not isinstance(noise, NoiseModel):
            raise TypeError(
                f"noise must be a NoiseModel, Calibration, 'auto' or None, "
                f"got {type(noise).__name__}"
            )
        if noise is not None and t2_ns is not None:
            raise ValueError(
                "t2_ns only applies when deriving a NoiseModel from a "
                "calibration; set it on the NoiseModel instead"
            )

    rng = rng if rng is not None else np.random.default_rng(seed)
    outcome = evaluate_fast(
        inner,
        noise=noise,
        shots=shots,
        trajectories=trajectories,
        rng=rng,
        mode=mode,
    )
    success = None
    if noise_cal is not None:
        success = _success_probability(inner.circuit, noise_cal)
    return EvalResult(
        r0=outcome.r0,
        rh=outcome.rh,
        arg=outcome.arg,
        shots=outcome.shots,
        trajectories=outcome.trajectories,
        mode=outcome.mode,
        fastpath=outcome.fastpath,
        fallback_reason=outcome.reason,
        success_probability=success,
        timings=outcome.timings,
    )


# ----------------------------------------------------------------------
# deprecated top-level shims
# ----------------------------------------------------------------------
def compile_qaoa(*args, **kwargs):
    """Deprecated top-level alias for
    :func:`repro.compiler.flow.compile_qaoa`; use :func:`repro.api.compile`."""
    warnings.warn(
        "repro.compile_qaoa is deprecated; use repro.compile(problem, "
        "target=..., method=...) (repro.api facade), or import "
        "repro.compiler.compile_qaoa explicitly",
        DeprecationWarning,
        stacklevel=2,
    )
    return _compile_qaoa_impl(*args, **kwargs)


def compile_with_method(*args, **kwargs):
    """Deprecated top-level alias for
    :func:`repro.compiler.flow.compile_with_method`; use
    :func:`repro.api.compile`."""
    warnings.warn(
        "repro.compile_with_method is deprecated; use repro.compile("
        "problem, target=..., method=...) (repro.api facade), or import "
        "repro.compiler.compile_with_method explicitly",
        DeprecationWarning,
        stacklevel=2,
    )
    return _compile_with_method_impl(*args, **kwargs)
