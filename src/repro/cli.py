"""Command-line interface.

Subcommands::

    python -m repro devices                      # list the device library
    python -m repro profile ibmq_20_tokyo        # Fig 3(b) strength profile
    python -m repro compile --nodes 12 --family er --param 0.5 \
        --device ibmq_20_tokyo --method ic       # compile one instance
    python -m repro experiment fig9              # reproduce one figure
    python -m repro arg --nodes 10 --shots 4096  # ARG across methods
    python -m repro evaluate --nodes 10 --cache-dir .cache  # fast-path ARG
    python -m repro batch jobs.jsonl -o out.jsonl --workers 4  # batch service
    python -m repro fleet --synthetic 200        # SLO-aware fleet scheduling
    python -m repro chaos --nodes 8 --seed 0     # calibration-fault sweep
    python -m repro cache stats --dir .cache     # disk-cache maintenance

Every command takes ``--seed`` for reproducibility; ``compile`` can dump the
result as OpenQASM 2.0 with ``--qasm out.qasm`` or as machine-readable JSON
with ``--json``, and ``--trace`` prints the per-pass pipeline trace (wall
time, SWAPs inserted, depth/gate deltas for every compiler pass).
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

import numpy as np

from .compiler.registry import available_methods

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    """Construct the CLI argument parser."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="QAOA circuit-compilation methodologies (MICRO 2020 reproduction)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("devices", help="list the device library")

    profile = sub.add_parser(
        "profile", help="connectivity-strength profile of a device"
    )
    profile.add_argument("device")
    profile.add_argument("--radius", type=int, default=2)

    compile_p = sub.add_parser("compile", help="compile one random instance")
    compile_p.add_argument("--nodes", type=int, default=12)
    compile_p.add_argument(
        "--family", choices=["er", "regular", "er_m"], default="er"
    )
    compile_p.add_argument("--param", type=float, default=0.5)
    compile_p.add_argument("--device", default="ibmq_20_tokyo")
    compile_p.add_argument(
        "--method",
        choices=list(available_methods()),
        default="ic",
    )
    compile_p.add_argument("--p", type=int, default=1, help="QAOA levels")
    compile_p.add_argument("--packing-limit", type=int, default=None)
    compile_p.add_argument(
        "--router",
        choices=["layered", "sabre"],
        default="layered",
        help="backend SWAP router",
    )
    compile_p.add_argument(
        "--qaim-radius",
        type=int,
        default=2,
        help="QAIM connectivity-strength radius",
    )
    compile_p.add_argument(
        "--crosstalk",
        default=None,
        metavar="A-B:C-D[,...]",
        help="conflicting coupling pairs for the Section VI "
        "sequentialisation pass, e.g. '0-1:2-3,4-5:6-7'",
    )
    compile_p.add_argument("--seed", type=int, default=0)
    compile_p.add_argument("--qasm", default=None, help="write OpenQASM here")
    compile_p.add_argument(
        "--trace",
        action="store_true",
        help="print the per-pass trace (wall time, SWAPs, depth/gate deltas)",
    )
    compile_p.add_argument(
        "--draw", action="store_true", help="ASCII-draw the compiled circuit"
    )
    compile_p.add_argument(
        "--json",
        action="store_true",
        help="emit the result as a machine-readable JSON document "
        "(serialised circuit + metrics) instead of the text summary",
    )

    experiment = sub.add_parser(
        "experiment", help="reproduce a paper figure/table"
    )
    experiment.add_argument(
        "figure",
        choices=[
            "fig7", "fig8", "fig9", "fig10", "fig11a", "fig11b", "fig12",
            "sec6", "all",
        ],
    )
    experiment.add_argument("--instances", type=int, default=None)

    analyze = sub.add_parser(
        "analyze", help="structural analysis of one compiled instance"
    )
    analyze.add_argument("--nodes", type=int, default=12)
    analyze.add_argument(
        "--family", choices=["er", "regular", "er_m"], default="er"
    )
    analyze.add_argument("--param", type=float, default=0.5)
    analyze.add_argument("--device", default="ibmq_20_tokyo")
    analyze.add_argument(
        "--method",
        choices=list(available_methods()),
        default="ic",
    )
    analyze.add_argument("--seed", type=int, default=0)

    arg_p = sub.add_parser(
        "arg", help="measure ARG for one instance across methods"
    )
    arg_p.add_argument("--nodes", type=int, default=10)
    arg_p.add_argument("--edge-prob", type=float, default=0.5)
    arg_p.add_argument("--shots", type=int, default=4096)
    arg_p.add_argument("--seed", type=int, default=0)
    arg_p.add_argument("--trajectories", type=int, default=24)

    evaluate = sub.add_parser(
        "evaluate",
        help="fast-path ARG evaluation across methods via the batch engine",
    )
    evaluate.add_argument("--nodes", type=int, default=10)
    evaluate.add_argument(
        "--family", choices=["er", "regular", "er_m"], default="er"
    )
    evaluate.add_argument("--param", type=float, default=0.5)
    evaluate.add_argument("--device", default="ibmq_16_melbourne")
    evaluate.add_argument(
        "--methods",
        default="qaim,ip,ic,vic",
        help="comma-separated compilation methods",
    )
    evaluate.add_argument("--shots", type=int, default=4096)
    evaluate.add_argument("--trajectories", type=int, default=24)
    evaluate.add_argument(
        "--mode",
        choices=["sampled", "exact"],
        default="sampled",
        help="sampled: paper shot procedure; exact: expectation values",
    )
    evaluate.add_argument(
        "--noise-scale",
        type=float,
        default=1.0,
        help="multiplier on every calibrated error rate",
    )
    evaluate.add_argument(
        "--t2-ns", type=float, default=None, help="T2 dephasing time (ns)"
    )
    evaluate.add_argument("--seed", type=int, default=0)
    evaluate.add_argument(
        "--cache-dir", default=None, help="disk-tier cache directory"
    )
    evaluate.add_argument(
        "--no-cache", action="store_true", help="disable result caching"
    )
    evaluate.add_argument(
        "--json",
        action="store_true",
        help="emit per-method outcomes as a JSON document",
    )

    optimize = sub.add_parser(
        "optimize",
        help="variational QAOA optimization over the unified problem "
        "frontend via the batch engine",
    )
    optimize.add_argument(
        "jobs",
        nargs="?",
        default=None,
        help="JSONL optimize-job file (- for stdin); omit for one "
        "synthetic instance from --family",
    )
    optimize.add_argument(
        "--family",
        choices=["er", "regular", "er_m", "qubo"],
        default="qubo",
        help="synthetic workload family (qubo samples a random QUBO)",
    )
    optimize.add_argument("--nodes", type=int, default=8)
    optimize.add_argument(
        "--param",
        type=float,
        default=0.5,
        help="family parameter (edge probability / degree / density)",
    )
    optimize.add_argument("--p", type=int, default=1, help="QAOA levels")
    optimize.add_argument(
        "--optimizer",
        choices=["cobyla", "nelder-mead"],
        default="cobyla",
    )
    optimize.add_argument(
        "--maxiter", type=int, default=200, help="classical iteration bound"
    )
    optimize.add_argument(
        "--restarts",
        type=int,
        default=8,
        help="random starts scored through the batched fast path",
    )
    optimize.add_argument("--seed", type=int, default=0)
    optimize.add_argument(
        "--cache-dir", default=None, help="disk-tier cache directory"
    )
    optimize.add_argument(
        "--no-cache", action="store_true", help="disable result caching"
    )
    optimize.add_argument(
        "--json",
        action="store_true",
        help="emit per-job outcomes as a JSON document",
    )

    batch = sub.add_parser(
        "batch",
        help="run a JSONL job file through the batch compilation engine",
    )
    batch.add_argument("jobs", help="JSONL job file (- for stdin)")
    batch.add_argument(
        "-o", "--out", default=None, help="write JSONL results here"
    )
    batch.add_argument(
        "--workers",
        type=int,
        default=0,
        help="process-pool size (0 = serial in-process)",
    )
    batch.add_argument(
        "--timeout", type=float, default=None, help="per-job seconds"
    )
    batch.add_argument(
        "--retries", type=int, default=1, help="retries per transient failure"
    )
    batch.add_argument(
        "--cache-dir", default=None, help="disk-tier cache directory"
    )
    batch.add_argument(
        "--cache-entries", type=int, default=1024, help="memory-tier entries"
    )
    batch.add_argument(
        "--cache-bytes",
        type=int,
        default=64 * 1024 * 1024,
        help="memory-tier byte budget",
    )
    batch.add_argument(
        "--no-cache", action="store_true", help="disable result caching"
    )
    batch.add_argument(
        "--include-payload",
        action="store_true",
        help="embed the serialised circuit in each result line",
    )
    batch.add_argument("--seed", type=int, default=0, help="retry-jitter seed")

    fleet = sub.add_parser(
        "fleet",
        help="place a job stream across a multi-device fleet under SLOs",
    )
    fleet.add_argument(
        "jobs",
        nargs="?",
        default=None,
        help="fleet JSONL job file (- for stdin); omit with --synthetic",
    )
    fleet.add_argument(
        "--synthetic",
        type=int,
        default=None,
        metavar="N",
        help="generate a seeded N-job mixed compile/eval stream with "
        "tiered SLOs instead of reading a job file",
    )
    fleet.add_argument(
        "--nodes",
        type=int,
        default=8,
        help="problem size for --synthetic streams",
    )
    fleet.add_argument(
        "--fleet",
        default=None,
        metavar="SPEC.json",
        help="JSON fleet spec; default: the built-in 7-slot paper fleet "
        "(tokyo, melbourne, grid-36, ring-12, linear-16 + degraded "
        "variants)",
    )
    fleet.add_argument(
        "--policy",
        default="all",
        help="placement policy: greedy, best-fidelity, least-loaded, or "
        "'all' to score every policy on the same stream",
    )
    fleet.add_argument(
        "--queue-depth",
        type=int,
        default=256,
        help="fleet-wide admission bound on pending jobs",
    )
    fleet.add_argument(
        "--device-backlog",
        type=int,
        default=32,
        help="per-device pending-job saturation limit",
    )
    fleet.add_argument(
        "--interarrival-ms",
        type=float,
        default=0.0,
        help="virtual gap between job arrivals (0 = burst arrival)",
    )
    fleet.add_argument(
        "--cache-dir",
        default=None,
        help="disk-tier result cache root (one subdirectory per policy)",
    )
    fleet.add_argument("--seed", type=int, default=0)
    fleet.add_argument(
        "--journal",
        default=None,
        metavar="PATH",
        help="crash-safe scheduler journal (append-only JSONL, fsynced); "
        "requires a single --policy",
    )
    fleet.add_argument(
        "--resume",
        action="store_true",
        help="replay settled jobs from --journal and serve only the "
        "remainder (exact continuation of an interrupted run)",
    )
    fleet.add_argument(
        "--no-resilience",
        action="store_true",
        help="disable the recovery layer: permanent ineligibility after "
        "repeated failures, no migration, no degraded recompile",
    )
    fleet.add_argument(
        "--breaker-cooldown-ms",
        type=float,
        default=2000.0,
        help="virtual-clock cooldown before a tripped device half-opens "
        "for a recovery probe",
    )
    fleet.add_argument(
        "--max-migrations",
        type=int,
        default=2,
        help="re-placements allowed after a terminal device failure",
    )
    fleet.add_argument(
        "-o", "--out", default=None,
        help="write JSONL placement/rejection records here",
    )
    fleet.add_argument(
        "--json",
        action="store_true",
        help="emit the full report(s) as a JSON document",
    )

    chaos = sub.add_parser(
        "chaos",
        help="calibration-fault chaos sweep across methods and devices",
    )
    chaos.add_argument(
        "--methods",
        default="qaim,ip,ic,vic",
        help="comma-separated compilation methods",
    )
    chaos.add_argument(
        "--devices",
        default="ibmq_20_tokyo,ibmq_16_melbourne",
        help="comma-separated device names",
    )
    chaos.add_argument(
        "--scenarios",
        default=None,
        help="comma-separated scenario names (default: the full ladder); "
        "known: baseline, drift, dropout, poison, dead-coupler, blackout",
    )
    chaos.add_argument("--nodes", type=int, default=8)
    chaos.add_argument("--edge-prob", type=float, default=0.5)
    chaos.add_argument("--seed", type=int, default=0)
    chaos.add_argument(
        "--fleet",
        action="store_true",
        help="run the scripted *fleet* chaos suite instead (device death, "
        "latency spikes, flapping calibration) comparing the resilience "
        "layer against a breaker-less baseline",
    )
    chaos.add_argument(
        "--jobs",
        type=int,
        default=90,
        help="stream length for --fleet scenarios",
    )
    chaos.add_argument(
        "--json",
        action="store_true",
        help="emit per-cell outcomes as a JSON document",
    )

    cache_p = sub.add_parser(
        "cache", help="inspect or maintain a disk-tier result cache"
    )
    cache_p.add_argument(
        "action", choices=["stats", "prune", "clear"],
        help="stats: show size; prune: drop stale-format entries; "
        "clear: delete every entry",
    )
    cache_p.add_argument("--dir", required=True, help="cache directory")

    store_p = sub.add_parser(
        "store",
        help="inspect the content-addressed artifact store "
        "(registries, shared memory, sharded disk)",
    )
    store_p.add_argument(
        "action", choices=["stats", "prune", "clear"],
        help="stats: per-tier counters; prune: drop corrupt disk entries "
        "and writer debris; clear: delete every disk entry",
    )
    store_p.add_argument(
        "--dir",
        help="sharded disk-tier directory (stats work without it; "
        "prune/clear require it)",
    )
    store_p.add_argument(
        "--json",
        action="store_true",
        help="emit the stats snapshot as a JSON document",
    )

    return parser


def _cmd_devices(out) -> int:
    from .hardware.devices import DEVICE_BUILDERS

    from .experiments.reporting import format_table

    rows = []
    for name in sorted(DEVICE_BUILDERS):
        device = DEVICE_BUILDERS[name]()
        rows.append(
            [
                name,
                device.num_qubits,
                device.num_edges(),
                "yes" if device.is_connected() else "no",
            ]
        )
    print(
        format_table(["device", "qubits", "couplings", "connected"], rows),
        file=out,
    )
    return 0


def _cmd_profile(args, out) -> int:
    from .experiments.reporting import format_table
    from .hardware.devices import get_device

    device = get_device(args.device)
    profile = device.connectivity_profile(radius=args.radius)
    rows = [
        [q, device.degree(q), strength]
        for q, strength in sorted(profile.items())
    ]
    print(f"{device.name}: connectivity strength (radius {args.radius})", file=out)
    print(
        format_table(["qubit", "degree", "strength"], rows), file=out
    )
    return 0


def _parse_crosstalk(text: Optional[str]):
    """Parse ``'0-1:2-3,4-5:6-7'`` into conflicting coupling pairs."""
    if text is None:
        return None
    conflicts = []
    for chunk in text.split(","):
        chunk = chunk.strip()
        if not chunk:
            continue
        try:
            first, second = chunk.split(":")
            a, b = (int(q) for q in first.split("-"))
            c, d = (int(q) for q in second.split("-"))
        except ValueError:
            raise ValueError(
                f"bad crosstalk conflict {chunk!r}; expected 'A-B:C-D'"
            ) from None
        conflicts.append(((a, b), (c, d)))
    return conflicts


def _cmd_compile(args, out) -> int:
    from .compiler import compile_with_method, measure_compiled
    from .experiments.harness import make_problem
    from .hardware import random_calibration
    from .hardware.devices import get_device, melbourne_calibration

    rng = np.random.default_rng(args.seed)
    try:
        device = get_device(args.device)
    except KeyError as exc:
        print(f"error: {exc.args[0]}", file=sys.stderr)
        return 2
    problem = make_problem(args.family, args.nodes, args.param, rng)
    program = problem.to_program([0.7] * args.p, [0.35] * args.p)
    calibration = None
    if args.method == "vic":
        calibration = (
            melbourne_calibration()
            if device.name == "ibmq_16_melbourne"
            else random_calibration(device, rng=rng)
        )
    try:
        compiled = compile_with_method(
            program,
            device,
            args.method,
            calibration=calibration,
            packing_limit=args.packing_limit,
            rng=rng,
            router=args.router,
            qaim_radius=args.qaim_radius,
            crosstalk_conflicts=_parse_crosstalk(args.crosstalk),
        )
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    metrics = measure_compiled(compiled, calibration=calibration)
    if args.json:
        import dataclasses as _dataclasses
        import json as _json

        from .compiler.serialize import to_json

        document = {
            "problem": {
                "family": args.family,
                "nodes": args.nodes,
                "param": args.param,
                "seed": args.seed,
            },
            "metrics": _dataclasses.asdict(metrics),
            "result": _json.loads(to_json(compiled)),
        }
        print(_json.dumps(document, indent=2), file=out)
        return 0
    print(
        f"{problem} via {compiled.method} on {device.name}:", file=out
    )
    print(
        f"  depth={metrics.depth} gates={metrics.gate_count} "
        f"cnots={metrics.cnot_count} swaps={metrics.swap_count} "
        f"compile={metrics.compile_time * 1e3:.2f}ms",
        file=out,
    )
    if metrics.success_probability is not None:
        print(
            f"  success probability={metrics.success_probability:.3e}",
            file=out,
        )
    if args.trace:
        from .experiments.reporting import format_table

        rows = [
            [
                r.name,
                f"{r.seconds * 1e3:.3f}",
                r.swaps,
                f"{r.depth_delta:+d}",
                f"{r.gate_delta:+d}",
            ]
            for r in compiled.pass_trace
        ]
        accounted = sum(r.seconds for r in compiled.pass_trace)
        rows.append(
            [
                "(total)",
                f"{compiled.compile_time * 1e3:.3f}",
                compiled.swap_count,
                "",
                "",
            ]
        )
        print("  pass trace:", file=out)
        print(
            format_table(
                ["pass", "ms", "swaps", "Δdepth", "Δgates"], rows
            ),
            file=out,
        )
        overhead = compiled.compile_time - accounted
        print(
            f"  pipeline overhead: {overhead * 1e3:.3f} ms "
            f"({100 * overhead / compiled.compile_time:.1f}%)",
            file=out,
        )
    if args.qasm:
        from .circuits.qasm import dumps

        with open(args.qasm, "w") as fh:
            fh.write(dumps(compiled.circuit))
        print(f"  QASM written to {args.qasm}", file=out)
    if args.draw:
        from .circuits import draw_circuit

        active = compiled.circuit.active_qubits()
        compact = compiled.circuit.remap(
            {q: i for i, q in enumerate(active)}, num_qubits=len(active)
        )
        print(draw_circuit(compact), file=out)
    return 0


def _cmd_experiment(args, out) -> int:
    from .experiments import figures

    modules = {
        "fig7": figures.fig7,
        "fig8": figures.fig8,
        "fig9": figures.fig9,
        "fig10": figures.fig10,
        "fig11a": figures.fig11a,
        "fig11b": figures.fig11b,
        "fig12": figures.fig12,
        "sec6": figures.sec6_planner,
    }
    names = list(modules) if args.figure == "all" else [args.figure]
    for name in names:
        result = modules[name].run(instances=args.instances)
        print(result.render(), file=out)
        print(file=out)
    return 0


def _cmd_analyze(args, out) -> int:
    from .compiler import compile_with_method
    from .compiler.analysis import analyze_compiled
    from .experiments.harness import make_problem
    from .experiments.reporting import format_table
    from .hardware import random_calibration
    from .hardware.devices import get_device, melbourne_calibration

    rng = np.random.default_rng(args.seed)
    device = get_device(args.device)
    problem = make_problem(args.family, args.nodes, args.param, rng)
    program = problem.to_program([0.7], [0.35])
    calibration = None
    if args.method == "vic":
        calibration = (
            melbourne_calibration()
            if device.name == "ibmq_16_melbourne"
            else random_calibration(device, rng=rng)
        )
    compiled = compile_with_method(
        program, device, args.method, calibration=calibration, rng=rng
    )
    analysis = analyze_compiled(compiled)
    print(f"{problem} via {compiled.method} on {device.name}:", file=out)
    print(
        f"  native gates {analysis.total_native_gates} "
        f"({analysis.routing_native_gates} routing, "
        f"{100 * analysis.routing_overhead:.1f}% overhead), "
        f"mean concurrency {analysis.mean_concurrency:.2f}",
        file=out,
    )
    if analysis.hottest_qubits():
        rows = [[q, t] for q, t in analysis.hottest_qubits(top=5)]
        print("  hottest physical qubits (SWAP traffic):", file=out)
        print(format_table(["qubit", "swaps"], rows), file=out)
    rows = [[f"{a}-{b}", c] for (a, b), c in analysis.hottest_edges(top=5)]
    print("  hottest couplings (two-qubit gates):", file=out)
    print(format_table(["edge", "gates"], rows), file=out)
    moved = {
        q: d for q, d in sorted(analysis.displacement.items()) if d > 0
    }
    print(f"  displaced logical qubits: {moved or 'none'}", file=out)
    return 0


def _cmd_arg(args, out) -> int:
    from .compiler import compile_with_method
    from .experiments.harness import make_problem
    from .experiments.reporting import format_table
    from .hardware.devices import ibmq_16_melbourne, melbourne_calibration
    from .qaoa import evaluate_arg, optimize_qaoa
    from .sim import NoiseModel, NoisySimulator, StatevectorSimulator

    rng = np.random.default_rng(args.seed)
    problem = make_problem("er", args.nodes, args.edge_prob, rng)
    opt = optimize_qaoa(problem, p=1)
    program = problem.to_program(opt.gammas, opt.betas)
    calibration = melbourne_calibration()
    ideal = StatevectorSimulator()
    noisy = NoisySimulator(
        NoiseModel.from_calibration(calibration),
        trajectories=args.trajectories,
    )
    rows = []
    for method in ("qaim", "ip", "ic", "vic"):
        compiled = compile_with_method(
            program,
            ibmq_16_melbourne(),
            method,
            calibration=calibration,
            rng=rng,
        )
        result = evaluate_arg(
            compiled, problem, ideal, noisy, shots=args.shots, rng=rng
        )
        rows.append(
            [
                method.upper(),
                compiled.depth(),
                compiled.gate_count(),
                f"{result.r0:.3f}",
                f"{result.rh:.3f}",
                f"{result.arg:.2f}%",
            ]
        )
    print(
        f"{problem} on ibmq_16_melbourne (noisy sim), {args.shots} shots:",
        file=out,
    )
    print(
        format_table(["method", "depth", "gates", "r0", "rh", "ARG"], rows),
        file=out,
    )
    return 0


def _cmd_evaluate(args, out) -> int:
    from .experiments.harness import make_problem
    from .experiments.reporting import format_table
    from .qaoa import optimize_qaoa
    from .service import CompileJob, EvalJob, ResultCache, run_eval_batch

    rng = np.random.default_rng(args.seed)
    problem = make_problem(args.family, args.nodes, args.param, rng)
    opt = optimize_qaoa(problem, p=1)
    program = problem.to_program(opt.gammas, opt.betas)
    methods = [m.strip() for m in args.methods.split(",") if m.strip()]
    jobs = [
        EvalJob(
            compile_job=CompileJob(
                program=program,
                device=args.device,
                method=method,
                seed=args.seed,
                calibration="auto",
                job_id=method,
            ),
            shots=args.shots,
            trajectories=args.trajectories,
            noise_scale=args.noise_scale,
            t2_ns=args.t2_ns,
            mode=args.mode,
            eval_seed=args.seed,
            job_id=method,
        )
        for method in methods
    ]
    cache = None
    if not args.no_cache:
        from .compiler.serialize import FORMAT_VERSION

        cache = ResultCache(
            directory=args.cache_dir, expected_version=FORMAT_VERSION
        )
    report = run_eval_batch(jobs, cache=cache, seed=args.seed)
    by_id = {r.job.job_id: r for r in report.results}
    if args.json:
        import json as _json

        document = {
            "problem": {
                "family": args.family,
                "nodes": args.nodes,
                "param": args.param,
                "seed": args.seed,
            },
            "device": args.device,
            "results": [
                {
                    "method": method,
                    "ok": r.ok,
                    "cached": r.cached,
                    "error": r.error,
                    **{
                        k: r.metrics.get(k)
                        for k in (
                            "r0", "rh", "arg", "fastpath", "swap_count",
                            "success_probability",
                        )
                    },
                }
                for method in methods
                for r in (by_id[method],)
            ],
        }
        print(_json.dumps(document, indent=2), file=out)
        return 0 if not report.failed else 1
    rows = []
    for method in methods:
        result = by_id[method]
        if not result.ok:
            rows.append([method.upper(), "-", "-", "-", "-", result.error])
            continue
        m = result.metrics
        rows.append(
            [
                method.upper(),
                m["swap_count"],
                f"{m['r0']:.3f}",
                f"{m['rh']:.3f}",
                f"{m['arg']:.2f}%",
                "cached" if result.cached else f"{result.latency * 1e3:.0f}ms",
            ]
        )
    print(
        f"{problem} on {args.device} ({args.mode}, {args.shots} shots, "
        f"{args.trajectories} trajectories):",
        file=out,
    )
    print(
        format_table(["method", "swaps", "r0", "rh", "ARG", "source"], rows),
        file=out,
    )
    stages = report.eval_summary()
    if stages:
        print("  eval stage p50 latency:", file=out)
        srows = [
            [name, f"{summary['p50']:.2f}", summary["count"]]
            for name, summary in sorted(stages.items())
        ]
        print(format_table(["stage", "p50 ms", "samples"], srows), file=out)
    return 0 if not report.failed else 1


def _cmd_optimize(args, out) -> int:
    from .experiments.reporting import format_table
    from .service import (
        OptimizeJob,
        ResultCache,
        load_optimize_jobs_jsonl,
        run_optimize_batch,
    )

    if args.jobs is not None:
        if args.jobs == "-":
            lines = sys.stdin.readlines()
        else:
            try:
                with open(args.jobs) as fh:
                    lines = fh.readlines()
            except OSError as exc:
                print(f"error: cannot read job file: {exc}", file=sys.stderr)
                return 2
        try:
            jobs = load_optimize_jobs_jsonl(lines)
        except ValueError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
        if not jobs:
            print("error: job file contains no jobs", file=sys.stderr)
            return 2
    else:
        from .experiments.harness import make_problem

        rng = np.random.default_rng(args.seed)
        problem = make_problem(args.family, args.nodes, args.param, rng)
        jobs = [
            OptimizeJob(
                problem=problem,
                p=args.p,
                optimizer=args.optimizer,
                maxiter=args.maxiter,
                restarts=args.restarts,
                opt_seed=args.seed,
                job_id=f"{args.family}-{args.nodes}",
            )
        ]

    cache = None
    if not args.no_cache:
        from .compiler.serialize import FORMAT_VERSION

        cache = ResultCache(
            directory=args.cache_dir, expected_version=FORMAT_VERSION
        )
    report = run_optimize_batch(jobs, cache=cache, seed=args.seed)

    if args.json:
        import json as _json

        document = {
            "results": [
                {
                    "id": r.job.job_id,
                    "ok": r.ok,
                    "cached": r.cached,
                    "error": r.error,
                    **{
                        k: r.metrics.get(k)
                        for k in (
                            "expectation", "optimum", "approximation_ratio",
                            "evaluations", "optimizer", "p", "num_qubits",
                        )
                    },
                }
                for r in report.results
            ],
        }
        print(_json.dumps(document, indent=2), file=out)
        return 0 if not report.failed else 1

    rows = []
    for index, result in enumerate(report.results):
        label = result.job.job_id or f"job-{index}"
        if not result.ok:
            rows.append([label, "-", "-", "-", "-", result.error])
            continue
        m = result.metrics
        rows.append(
            [
                label,
                f"{m['expectation']:.4f}",
                f"{m['optimum']:.4f}",
                f"{m['approximation_ratio']:.3f}",
                m["evaluations"],
                "cached" if result.cached else f"{result.latency * 1e3:.0f}ms",
            ]
        )
    print(
        format_table(
            ["job", "expectation", "optimum", "ratio", "evals", "source"],
            rows,
        ),
        file=out,
    )
    stages = report.optimize_summary()
    if stages:
        print("  optimize stage p50 latency:", file=out)
        srows = [
            [name, f"{summary['p50']:.2f}", summary["count"]]
            for name, summary in sorted(stages.items())
        ]
        print(format_table(["stage", "p50 ms", "samples"], srows), file=out)
    return 0 if not report.failed else 1


def _cmd_batch(args, out) -> int:
    import json

    from .compiler.serialize import FORMAT_VERSION
    from .service import BatchEngine, ResultCache, load_jobs_jsonl

    if args.jobs == "-":
        lines = sys.stdin.readlines()
    else:
        try:
            with open(args.jobs) as fh:
                lines = fh.readlines()
        except OSError as exc:
            print(f"error: cannot read job file: {exc}", file=sys.stderr)
            return 2
    try:
        jobs = load_jobs_jsonl(lines)
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    if not jobs:
        print("error: job file contains no jobs", file=sys.stderr)
        return 2

    cache = None
    if not args.no_cache:
        cache = ResultCache(
            max_entries=args.cache_entries,
            max_bytes=args.cache_bytes,
            directory=args.cache_dir,
            expected_version=FORMAT_VERSION,
        )
    engine = BatchEngine(
        workers=args.workers,
        timeout=args.timeout,
        retries=args.retries,
        cache=cache,
        seed=args.seed,
    )
    report = engine.run(jobs)

    records = (
        r.to_record(include_payload=args.include_payload)
        for r in report.results
    )
    if args.out:
        with open(args.out, "w") as fh:
            for record in records:
                fh.write(json.dumps(record) + "\n")
        print(f"results written to {args.out}", file=out)
    else:
        for record in records:
            print(json.dumps(record), file=out)
    print(report.render(), file=out)
    return 0 if not report.failed else 1


def _cmd_fleet(args, out) -> int:
    import json

    from .experiments.reporting import format_table
    from .fleet import (
        POLICIES,
        Scheduler,
        default_fleet,
        fleet_jobs_from_jsonl,
        load_fleet_json,
        synthetic_stream,
    )

    if args.synthetic is not None and args.jobs is not None:
        print("error: pass a job file or --synthetic, not both", file=sys.stderr)
        return 2
    if args.synthetic is None and args.jobs is None:
        print("error: need a job file or --synthetic N", file=sys.stderr)
        return 2
    try:
        if args.synthetic is not None:
            jobs = synthetic_stream(
                args.synthetic, seed=args.seed, nodes=args.nodes
            )
        else:
            if args.jobs == "-":
                lines = sys.stdin.readlines()
            else:
                with open(args.jobs) as fh:
                    lines = fh.readlines()
            jobs = fleet_jobs_from_jsonl(lines)
        fleet = (
            load_fleet_json(args.fleet)
            if args.fleet
            else default_fleet(seed=args.seed)
        )
    except (OSError, ValueError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    if not jobs:
        print("error: job stream is empty", file=sys.stderr)
        return 2

    policies = (
        sorted(POLICIES) if args.policy == "all" else [args.policy]
    )
    unknown = [p for p in policies if p not in POLICIES]
    if unknown:
        print(
            f"error: unknown policy {unknown[0]!r}; known: "
            f"{', '.join(sorted(POLICIES))} (or 'all')",
            file=sys.stderr,
        )
        return 2
    if args.journal and len(policies) > 1:
        # One journal records one run; a policy comparison would
        # overwrite it three times and resume against the wrong stream.
        print(
            "error: --journal needs a single --policy (not 'all')",
            file=sys.stderr,
        )
        return 2
    if args.resume and not args.journal:
        print("error: --resume requires --journal", file=sys.stderr)
        return 2

    if args.no_resilience:
        recovery = dict(
            breaker_cooldown_ms=None, max_migrations=0, degrade_ladder=()
        )
    else:
        recovery = dict(
            breaker_cooldown_ms=args.breaker_cooldown_ms,
            max_migrations=args.max_migrations,
        )

    reports = []
    for policy in policies:
        cache = None
        if args.cache_dir:
            from .compiler.serialize import FORMAT_VERSION
            from .service import ResultCache

            # One cache per policy: shared warm entries would let the
            # second policy run on near-zero latencies and skew the race.
            cache = ResultCache(
                directory=f"{args.cache_dir}/{policy}",
                expected_version=FORMAT_VERSION,
            )
        scheduler = Scheduler(
            fleet,
            policy,
            queue_depth=args.queue_depth,
            device_backlog_limit=args.device_backlog,
            interarrival_ms=args.interarrival_ms,
            cache=cache,
            seed=args.seed,
            journal=args.journal,
            **recovery,
        )
        try:
            reports.append(scheduler.run(jobs, resume=args.resume))
        except ValueError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2

    if args.json:
        print(
            json.dumps({r.policy: r.to_dict() for r in reports}, indent=2),
            file=out,
        )
    else:
        for report in reports:
            print(report.render(), file=out)
            print(file=out)
        if len(reports) > 1:
            rows = [
                [
                    s["policy"],
                    f"{s['attained']}/{s['constrained']}",
                    f"{100 * s['attainment_rate']:.1f}%",
                    s["rejected"],
                    f"{s['p95_observed_ms']:.1f}",
                    f"{s['p95_promised_ms']:.1f}",
                    f"{s['makespan_ms']:.1f}",
                ]
                for s in (r.summary() for r in reports)
            ]
            print("policy comparison (same stream, same fleet):", file=out)
            print(
                format_table(
                    [
                        "policy", "SLO", "attainment", "rejected",
                        "p95 obs ms", "p95 promised ms", "makespan ms",
                    ],
                    rows,
                ),
                file=out,
            )
    if args.out:
        with open(args.out, "w") as fh:
            for report in reports:
                for record in report.records:
                    fh.write(
                        json.dumps({"policy": report.policy, **record.to_dict()})
                        + "\n"
                    )
                for rejection in report.rejections:
                    fh.write(
                        json.dumps(
                            {
                                "policy": report.policy,
                                "rejected": True,
                                **rejection.to_dict(),
                            }
                        )
                        + "\n"
                    )
        print(f"records written to {args.out}", file=out)
    failed = sum(s["failed"] for s in (r.summary() for r in reports))
    if any(r.placed == 0 for r in reports):
        # Admission refused the whole stream (e.g. an empty or fully
        # ineligible fleet) — the reports explain why, but a run that
        # served nothing is not a success.
        return 1
    return 0 if failed == 0 else 1


def _cmd_chaos(args, out) -> int:
    from .experiments.chaos import default_scenarios, run_chaos

    if args.fleet:
        return _cmd_chaos_fleet(args, out)
    scenarios = default_scenarios()
    if args.scenarios:
        wanted = [name.strip() for name in args.scenarios.split(",") if name.strip()]
        known = {s.name: s for s in scenarios}
        unknown = [name for name in wanted if name not in known]
        if unknown:
            print(
                f"error: unknown scenario(s) {', '.join(unknown)}; "
                f"known: {', '.join(known)}",
                file=sys.stderr,
            )
            return 2
        scenarios = [known[name] for name in wanted]
    methods = [m.strip() for m in args.methods.split(",") if m.strip()]
    devices = [d.strip() for d in args.devices.split(",") if d.strip()]
    try:
        report = run_chaos(
            methods=methods,
            devices=devices,
            scenarios=scenarios,
            nodes=args.nodes,
            edge_prob=args.edge_prob,
            seed=args.seed,
        )
    except (KeyError, ValueError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    if args.json:
        import dataclasses as _dataclasses
        import json as _json

        document = {
            "seed": report.seed,
            "nodes": report.nodes,
            "outcomes": [
                _dataclasses.asdict(o) for o in report.outcomes
            ],
            "contract_violations": [
                {"cell": f"{o.device}/{o.scenario}/{o.method}", "why": why}
                for o, why in report.contract_violations()
            ],
            "monotone_violations": [
                list(v) for v in report.monotone_violations()
            ],
        }
        print(_json.dumps(document, indent=2), file=out)
    else:
        print(report.render(), file=out)
    bad = report.contract_violations()
    return 0 if not bad else 1


def _cmd_chaos_fleet(args, out) -> int:
    from .experiments.chaos import (
        default_fleet_scenarios,
        render_fleet_chaos,
        run_fleet_chaos_suite,
    )

    scenarios = default_fleet_scenarios(args.jobs)
    if args.scenarios:
        wanted = [
            name.strip() for name in args.scenarios.split(",") if name.strip()
        ]
        known = {s.name: s for s in scenarios}
        unknown = [name for name in wanted if name not in known]
        if unknown:
            print(
                f"error: unknown fleet scenario(s) {', '.join(unknown)}; "
                f"known: {', '.join(known)}",
                file=sys.stderr,
            )
            return 2
        scenarios = [known[name] for name in wanted]
    comparisons = run_fleet_chaos_suite(
        scenarios, jobs=args.jobs, seed=args.seed
    )
    if args.json:
        document = {
            comp.scenario.name: {
                "description": comp.scenario.description,
                "baseline": comp.baseline.summary(),
                "resilient": comp.resilient.summary(),
                "margin": comp.margin,
            }
            for comp in comparisons
        }
        print(json.dumps(document, indent=2), file=out)
    else:
        print(render_fleet_chaos(comparisons), file=out)
    # The resilience layer must never make a faulted fleet *worse* off
    # in served jobs; a regression here fails the run.
    worse = [
        comp.scenario.name
        for comp in comparisons
        if comp.resilient.summary()["failed"]
        > comp.baseline.summary()["failed"]
    ]
    if worse:
        print(
            "resilience regression (more failed jobs than baseline): "
            + ", ".join(worse),
            file=sys.stderr,
        )
        return 1
    return 0


def _cmd_cache(args, out) -> int:
    from .compiler.serialize import FORMAT_VERSION
    from .experiments.reporting import format_table
    from .service import ResultCache

    cache = ResultCache(
        directory=args.dir, expected_version=FORMAT_VERSION
    )
    if args.action == "stats":
        rows = [
            ["directory", args.dir],
            ["entries", cache.disk_entries()],
            ["bytes", cache.disk_bytes()],
            ["format version", FORMAT_VERSION],
        ]
        print(format_table(["cache", "value"], rows), file=out)
    elif args.action == "prune":
        pruned = cache.prune_stale()
        print(
            f"pruned {pruned} stale entr{'y' if pruned == 1 else 'ies'} "
            f"({cache.disk_entries()} remain)",
            file=out,
        )
    else:
        before = cache.disk_entries()
        cache.clear(disk=True)
        print(f"cleared {before} entries from {args.dir}", file=out)
    return 0


def _cmd_store(args, out) -> int:
    import json as _json

    from .experiments.reporting import format_table
    from .store import ShardedDiskTier, store_stats

    disk = ShardedDiskTier(args.dir) if args.dir else None

    if args.action == "stats":
        snap = store_stats()
        if disk is not None:
            disk.bytes_used(refresh=True)  # populate entry counts lazily
            disk_stats = disk.stats()
            disk_stats["entries"] = disk.entries()
            disk_stats["bytes"] = disk.bytes_used()
            snap["disk"] = disk_stats
        if args.json:
            print(_json.dumps(snap, indent=2, sort_keys=True), file=out)
            return 0
        rows = []
        for name, stats in sorted(snap["registries"].items()):
            for key, value in sorted(stats.items()):
                rows.append([f"registry.{name}.{key}", value])
        for key, value in sorted(snap["shm"].items()):
            rows.append([f"shm.{key}", value])
        if "disk" in snap:
            for key, value in sorted(snap["disk"].items()):
                if key == "shards":
                    value = (
                        len(value) if isinstance(value, dict) else value
                    )
                rows.append([f"disk.{key}", value])
        print(format_table(["store", "value"], rows), file=out)
        return 0

    if disk is None:
        print(f"store {args.action} requires --dir", file=out)
        return 1
    if args.action == "prune":
        removed = disk.prune(lambda payload: False)
        debris = disk.sweep_debris()
        print(
            f"pruned {removed} corrupt entr{'y' if removed == 1 else 'ies'}, "
            f"swept {debris} debris file{'' if debris == 1 else 's'} "
            f"({disk.entries()} remain)",
            file=out,
        )
    else:
        removed = disk.clear(debris=True)
        print(f"cleared {removed} entries from {args.dir}", file=out)
    return 0


def main(argv: Optional[List[str]] = None, out=None) -> int:
    """CLI entry point; returns a process exit code."""
    out = out if out is not None else sys.stdout
    args = build_parser().parse_args(argv)
    if args.command == "devices":
        return _cmd_devices(out)
    if args.command == "profile":
        return _cmd_profile(args, out)
    if args.command == "compile":
        return _cmd_compile(args, out)
    if args.command == "experiment":
        return _cmd_experiment(args, out)
    if args.command == "analyze":
        return _cmd_analyze(args, out)
    if args.command == "arg":
        return _cmd_arg(args, out)
    if args.command == "evaluate":
        return _cmd_evaluate(args, out)
    if args.command == "optimize":
        return _cmd_optimize(args, out)
    if args.command == "batch":
        return _cmd_batch(args, out)
    if args.command == "fleet":
        return _cmd_fleet(args, out)
    if args.command == "chaos":
        return _cmd_chaos(args, out)
    if args.command == "cache":
        return _cmd_cache(args, out)
    if args.command == "store":
        return _cmd_store(args, out)
    raise AssertionError(f"unhandled command {args.command!r}")
