"""Quantum-circuit intermediate representation.

Public surface:

* :class:`~repro.circuits.gates.Instruction` and the gate registry,
* :class:`~repro.circuits.circuit.QuantumCircuit`,
* layering/depth helpers from :mod:`repro.circuits.dag`,
* basis lowering from :mod:`repro.circuits.decompose`.
"""

from .circuit import QuantumCircuit
from .dag import (
    asap_layers,
    circuit_depth,
    layer_qubit_sets,
    qubit_activity,
    two_qubit_depth,
)
from .decompose import (
    count_basis_gates,
    cphase_to_cnot,
    decompose_to_basis,
    expand_instruction,
    flip_cnot,
    swap_to_cnot,
)
from .draw import draw_circuit
from .optimize import (
    cancel_adjacent_self_inverse,
    merge_phase_gates,
    peephole_optimize,
)
from .qasm import QASMError
from .qasm import dumps as qasm_dumps
from .qasm import loads as qasm_loads
from .timing import (
    DurationModel,
    ScheduledGate,
    decoherence_factor,
    execution_time,
    schedule,
)
from .gates import (
    GATES,
    IBM_BASIS,
    QAOA_BASIS,
    GateSpec,
    Instruction,
    gate_spec,
    is_known_gate,
)

__all__ = [
    "QuantumCircuit",
    "Instruction",
    "GateSpec",
    "GATES",
    "IBM_BASIS",
    "QAOA_BASIS",
    "gate_spec",
    "is_known_gate",
    "asap_layers",
    "circuit_depth",
    "two_qubit_depth",
    "layer_qubit_sets",
    "qubit_activity",
    "decompose_to_basis",
    "expand_instruction",
    "cphase_to_cnot",
    "swap_to_cnot",
    "flip_cnot",
    "count_basis_gates",
    "draw_circuit",
    "peephole_optimize",
    "cancel_adjacent_self_inverse",
    "merge_phase_gates",
    "qasm_dumps",
    "qasm_loads",
    "QASMError",
    "DurationModel",
    "ScheduledGate",
    "schedule",
    "execution_time",
    "decoherence_factor",
]
