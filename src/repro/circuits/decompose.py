"""Lowering circuits to a hardware basis gate set.

IBM machines expose ``{U1, U2, U3, ID, CNOT}`` as native gates (Section II of
the paper).  A QAOA circuit is written in ``{H, RX, CPHASE}``, and the router
additionally inserts ``SWAP`` gates, so before execution we must rewrite:

* ``CPHASE(gamma) a b  ->  CNOT a b ; RZ(gamma) b ; CNOT a b``
  (Figure 1(d) — the ZZ-interaction decomposition; the RZ is *virtual* on
  IBM hardware, which is why VIC models CPHASE reliability as the product of
  two CNOT success rates),
* ``SWAP a b -> CNOT a b ; CNOT b a ; CNOT a b``,
* single-qubit gates -> the equivalent ``U1``/``U2``/``U3``.

The pass is a simple peephole rewriter: it walks the instruction list once
and replaces each non-native instruction by its expansion.  Directed-coupling
adjustment (flipping a CNOT with four Hadamards) is provided separately for
devices whose native CNOT is one-directional.
"""

from __future__ import annotations

import math
from typing import Callable, Dict, Iterable, List, Optional

from .circuit import QuantumCircuit
from .gates import IBM_BASIS, Instruction

__all__ = [
    "decompose_to_basis",
    "expand_instruction",
    "cphase_to_cnot",
    "swap_to_cnot",
    "flip_cnot",
    "count_basis_gates",
]

_PI = math.pi


def cphase_to_cnot(inst: Instruction) -> List[Instruction]:
    """Expand the paper's CPHASE (ZZ interaction) into CNOT . RZ . CNOT."""
    a, b = inst.qubits
    (gamma,) = inst.params
    return [
        Instruction("cnot", (a, b)),
        Instruction("rz", (b,), (gamma,)),
        Instruction("cnot", (a, b)),
    ]


def swap_to_cnot(inst: Instruction) -> List[Instruction]:
    """Expand SWAP into three alternating CNOTs."""
    a, b = inst.qubits
    return [
        Instruction("cnot", (a, b)),
        Instruction("cnot", (b, a)),
        Instruction("cnot", (a, b)),
    ]


def _cu1_to_native(inst: Instruction) -> List[Instruction]:
    """Textbook controlled-phase via two CNOTs and three U1s."""
    a, b = inst.qubits
    (lam,) = inst.params
    half = lam / 2.0
    return [
        Instruction("u1", (a,), (half,)),
        Instruction("cnot", (a, b)),
        Instruction("u1", (b,), (-half,)),
        Instruction("cnot", (a, b)),
        Instruction("u1", (b,), (half,)),
    ]


def _cz_to_native(inst: Instruction) -> List[Instruction]:
    a, b = inst.qubits
    return [
        Instruction("u2", (b,), (0.0, _PI)),  # H
        Instruction("cnot", (a, b)),
        Instruction("u2", (b,), (0.0, _PI)),  # H
    ]


# Single-qubit rewrites into the U1/U2/U3 family.  U1(l)=diag(1,e^{il});
# U2(phi,lam) = U3(pi/2, phi, lam); U3 is the generic single-qubit gate.
# RZ differs from U1 only by a global phase, which is unobservable.
_SINGLE_QUBIT_TO_U: Dict[str, Callable[[Instruction], List[Instruction]]] = {
    "h": lambda i: [Instruction("u2", i.qubits, (0.0, _PI))],
    "x": lambda i: [Instruction("u3", i.qubits, (_PI, 0.0, _PI))],
    "y": lambda i: [Instruction("u3", i.qubits, (_PI, _PI / 2, _PI / 2))],
    "z": lambda i: [Instruction("u1", i.qubits, (_PI,))],
    "s": lambda i: [Instruction("u1", i.qubits, (_PI / 2,))],
    "sdg": lambda i: [Instruction("u1", i.qubits, (-_PI / 2,))],
    "t": lambda i: [Instruction("u1", i.qubits, (_PI / 4,))],
    "rx": lambda i: [
        Instruction("u3", i.qubits, (i.params[0], -_PI / 2, _PI / 2))
    ],
    "ry": lambda i: [Instruction("u3", i.qubits, (i.params[0], 0.0, 0.0))],
    "rz": lambda i: [Instruction("u1", i.qubits, (i.params[0],))],
}

_TWO_QUBIT_EXPANSIONS: Dict[str, Callable[[Instruction], List[Instruction]]] = {
    "cphase": cphase_to_cnot,
    "swap": swap_to_cnot,
    "cu1": _cu1_to_native,
    "cz": _cz_to_native,
}


def expand_instruction(inst: Instruction) -> List[Instruction]:
    """One rewrite step for ``inst`` toward the IBM basis.

    Native instructions come back as a one-element list unchanged.
    """
    if inst.name in IBM_BASIS:
        return [inst]
    if inst.name in _SINGLE_QUBIT_TO_U:
        return _SINGLE_QUBIT_TO_U[inst.name](inst)
    if inst.name in _TWO_QUBIT_EXPANSIONS:
        return _TWO_QUBIT_EXPANSIONS[inst.name](inst)
    raise ValueError(f"no decomposition to IBM basis for gate {inst.name!r}")


def decompose_to_basis(
    circuit: QuantumCircuit, basis: Optional[Iterable[str]] = None
) -> QuantumCircuit:
    """Lower ``circuit`` to ``basis`` (defaults to the IBM basis).

    The rewrite iterates until a fixed point so chained expansions
    (e.g. ``swap -> cnot`` then nothing further) terminate in one or two
    sweeps.  The result is validated against the basis.
    """
    target = frozenset(basis) if basis is not None else IBM_BASIS
    out: List[Instruction] = list(circuit.instructions)
    for _ in range(4):  # expansions chain at most a couple of levels
        if all(inst.name in target for inst in out):
            break
        next_out: List[Instruction] = []
        for inst in out:
            if inst.name in target:
                next_out.append(inst)
            else:
                next_out.extend(expand_instruction(inst))
        out = next_out
    result = QuantumCircuit(circuit.num_qubits, out, name=circuit.name)
    result.validate_basis(target)
    return result


def flip_cnot(inst: Instruction) -> List[Instruction]:
    """Reverse a CNOT's direction using four Hadamards (as U2 gates).

    Needed for devices whose coupling graph permits a native CNOT in only
    one direction along an edge.
    """
    if inst.name != "cnot":
        raise ValueError(f"flip_cnot expects a cnot, got {inst.name!r}")
    c, t = inst.qubits
    h_c = Instruction("u2", (c,), (0.0, _PI))
    h_t = Instruction("u2", (t,), (0.0, _PI))
    return [h_c, h_t, Instruction("cnot", (t, c)), h_c, h_t]


def count_basis_gates(circuit: QuantumCircuit) -> Dict[str, int]:
    """Gate histogram of the circuit lowered to the IBM basis.

    Convenience wrapper used by the metrics module so depth/gate-count are
    always reported on hardware-native circuits, matching the paper.
    """
    return decompose_to_basis(circuit).count_ops()
