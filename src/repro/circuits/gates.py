"""Gate definitions for the quantum-circuit intermediate representation.

The gate set mirrors what the paper needs end to end:

* the QAOA-level gates ``H``, ``RX`` and the commuting two-qubit
  ``CPHASE``/``ZZ`` interaction that makes up the cost Hamiltonian,
* the IBM-style native basis ``{U1, U2, U3, CNOT}`` that compiled circuits
  are lowered to (Section II, "Basis Gates and Coupling Constraints"),
* the ``SWAP`` gate the router inserts to satisfy coupling constraints,
* ``measure`` and ``barrier`` pseudo-gates.

Every unitary gate knows how to produce its matrix, which is what the
statevector simulator consumes.  Matrices follow the little-endian qubit
convention used throughout :mod:`repro.sim`: for a two-qubit gate acting on
``(q0, q1)``, ``q0`` is the least-significant bit of the 4x4 matrix index.

Note on naming: the paper calls the two-qubit cost-Hamiltonian interaction a
"CPHASE" gate.  Functionally it is the ZZ interaction
``exp(-i * theta/2 * Z (x) Z)`` — Figure 1(d) of the paper shows exactly the
``CNOT . RZ . CNOT`` decomposition of that gate.  We keep the paper's name
(:data:`CPHASE`) and document the semantics here.
"""

from __future__ import annotations

import dataclasses
import math
from typing import Callable, Dict, Optional, Sequence, Tuple

import numpy as np

__all__ = [
    "GateSpec",
    "Instruction",
    "GATES",
    "gate_spec",
    "is_known_gate",
    "IBM_BASIS",
    "QAOA_BASIS",
]


def _mat_i() -> np.ndarray:
    return np.eye(2, dtype=complex)


def _mat_x() -> np.ndarray:
    return np.array([[0, 1], [1, 0]], dtype=complex)


def _mat_y() -> np.ndarray:
    return np.array([[0, -1j], [1j, 0]], dtype=complex)


def _mat_z() -> np.ndarray:
    return np.array([[1, 0], [0, -1]], dtype=complex)


def _mat_h() -> np.ndarray:
    return np.array([[1, 1], [1, -1]], dtype=complex) / math.sqrt(2.0)


def _mat_s() -> np.ndarray:
    return np.array([[1, 0], [0, 1j]], dtype=complex)


def _mat_sdg() -> np.ndarray:
    return np.array([[1, 0], [0, -1j]], dtype=complex)


def _mat_t() -> np.ndarray:
    return np.array([[1, 0], [0, np.exp(1j * math.pi / 4)]], dtype=complex)


def _mat_rx(theta: float) -> np.ndarray:
    c, s = math.cos(theta / 2.0), math.sin(theta / 2.0)
    return np.array([[c, -1j * s], [-1j * s, c]], dtype=complex)


def _mat_ry(theta: float) -> np.ndarray:
    c, s = math.cos(theta / 2.0), math.sin(theta / 2.0)
    return np.array([[c, -s], [s, c]], dtype=complex)


def _mat_rz(theta: float) -> np.ndarray:
    return np.array(
        [[np.exp(-1j * theta / 2.0), 0], [0, np.exp(1j * theta / 2.0)]],
        dtype=complex,
    )


def _mat_u1(lam: float) -> np.ndarray:
    return np.array([[1, 0], [0, np.exp(1j * lam)]], dtype=complex)


def _mat_u2(phi: float, lam: float) -> np.ndarray:
    inv_sqrt2 = 1.0 / math.sqrt(2.0)
    return inv_sqrt2 * np.array(
        [
            [1, -np.exp(1j * lam)],
            [np.exp(1j * phi), np.exp(1j * (phi + lam))],
        ],
        dtype=complex,
    )


def _mat_u3(theta: float, phi: float, lam: float) -> np.ndarray:
    c, s = math.cos(theta / 2.0), math.sin(theta / 2.0)
    return np.array(
        [
            [c, -np.exp(1j * lam) * s],
            [np.exp(1j * phi) * s, np.exp(1j * (phi + lam)) * c],
        ],
        dtype=complex,
    )


def _mat_cnot() -> np.ndarray:
    # Control is qubit index 0 (least significant bit), target is qubit 1.
    m = np.eye(4, dtype=complex)
    m[[1, 3]] = m[[3, 1]]
    return m


def _mat_cz() -> np.ndarray:
    m = np.eye(4, dtype=complex)
    m[3, 3] = -1
    return m


def _mat_swap() -> np.ndarray:
    m = np.eye(4, dtype=complex)
    m[[1, 2]] = m[[2, 1]]
    return m


def _mat_cphase(theta: float) -> np.ndarray:
    """ZZ interaction exp(-i*theta/2 * Z(x)Z) — the paper's "CPHASE"."""
    e_minus = np.exp(-1j * theta / 2.0)
    e_plus = np.exp(1j * theta / 2.0)
    return np.diag([e_minus, e_plus, e_plus, e_minus]).astype(complex)


def _mat_cu1(lam: float) -> np.ndarray:
    """Controlled phase (diag(1,1,1,e^{i lam})) — the textbook CPHASE."""
    return np.diag([1, 1, 1, np.exp(1j * lam)]).astype(complex)


@dataclasses.dataclass(frozen=True)
class GateSpec:
    """Static description of a gate type.

    Attributes:
        name: Canonical lower-case gate name used in :class:`Instruction`.
        num_qubits: Arity of the gate (0 means "any", used by barrier).
        num_params: Number of real parameters the gate takes.
        matrix_fn: Callable producing the unitary for given parameters, or
            ``None`` for non-unitary pseudo-gates (measure, barrier).
        self_inverse: True when ``G . G == I`` for all parameter values.
        directive: True for pseudo-gates that do not touch the state.
    """

    name: str
    num_qubits: int
    num_params: int
    matrix_fn: Optional[Callable[..., np.ndarray]] = None
    self_inverse: bool = False
    directive: bool = False

    @property
    def is_unitary(self) -> bool:
        """Whether this gate has a matrix representation."""
        return self.matrix_fn is not None

    def matrix(self, params: Sequence[float] = ()) -> np.ndarray:
        """Return the gate unitary for ``params``.

        Raises:
            ValueError: if the gate is non-unitary or the parameter count
                does not match :attr:`num_params`.
        """
        if self.matrix_fn is None:
            raise ValueError(f"gate {self.name!r} has no matrix")
        if len(params) != self.num_params:
            raise ValueError(
                f"gate {self.name!r} takes {self.num_params} parameter(s), "
                f"got {len(params)}"
            )
        return self.matrix_fn(*params)


GATES: Dict[str, GateSpec] = {
    spec.name: spec
    for spec in (
        GateSpec("id", 1, 0, _mat_i, self_inverse=True),
        GateSpec("x", 1, 0, _mat_x, self_inverse=True),
        GateSpec("y", 1, 0, _mat_y, self_inverse=True),
        GateSpec("z", 1, 0, _mat_z, self_inverse=True),
        GateSpec("h", 1, 0, _mat_h, self_inverse=True),
        GateSpec("s", 1, 0, _mat_s),
        GateSpec("sdg", 1, 0, _mat_sdg),
        GateSpec("t", 1, 0, _mat_t),
        GateSpec("rx", 1, 1, _mat_rx),
        GateSpec("ry", 1, 1, _mat_ry),
        GateSpec("rz", 1, 1, _mat_rz),
        GateSpec("u1", 1, 1, _mat_u1),
        GateSpec("u2", 1, 2, _mat_u2),
        GateSpec("u3", 1, 3, _mat_u3),
        GateSpec("cnot", 2, 0, _mat_cnot, self_inverse=True),
        GateSpec("cz", 2, 0, _mat_cz, self_inverse=True),
        GateSpec("swap", 2, 0, _mat_swap, self_inverse=True),
        GateSpec("cphase", 2, 1, _mat_cphase),
        GateSpec("cu1", 2, 1, _mat_cu1),
        GateSpec("measure", 1, 0, None, directive=False),
        GateSpec("barrier", 0, 0, None, directive=True),
    )
}

#: The IBM-style native basis the backend compiler lowers to (Section II).
IBM_BASIS = frozenset({"u1", "u2", "u3", "id", "cnot", "measure", "barrier"})

#: The high-level gate set QAOA circuits are written in (Figure 1(b)).
QAOA_BASIS = frozenset({"h", "rx", "cphase", "measure", "barrier"})

#: Gate names that are symmetric under qubit exchange.
SYMMETRIC_TWO_QUBIT = frozenset({"cz", "swap", "cphase", "cu1"})


def gate_spec(name: str) -> GateSpec:
    """Look up the :class:`GateSpec` for ``name``.

    Raises:
        KeyError: for unknown gate names, with a helpful message.
    """
    try:
        return GATES[name]
    except KeyError:
        known = ", ".join(sorted(GATES))
        raise KeyError(f"unknown gate {name!r}; known gates: {known}") from None


def is_known_gate(name: str) -> bool:
    """Whether ``name`` is a registered gate type."""
    return name in GATES


@dataclasses.dataclass(frozen=True)
class Instruction:
    """One gate application inside a circuit.

    Instructions are immutable value objects: two instructions compare equal
    when the gate name, the qubits and the parameters all match.

    Attributes:
        name: Gate name; must be registered in :data:`GATES`.
        qubits: Qubit indices the gate acts on, in gate order (for ``cnot``
            that is ``(control, target)``).
        params: Real gate parameters (angles).
    """

    name: str
    qubits: Tuple[int, ...]
    params: Tuple[float, ...] = ()

    def __post_init__(self) -> None:
        spec = gate_spec(self.name)
        object.__setattr__(self, "qubits", tuple(int(q) for q in self.qubits))
        object.__setattr__(self, "params", tuple(float(p) for p in self.params))
        if spec.num_qubits and len(self.qubits) != spec.num_qubits:
            raise ValueError(
                f"gate {self.name!r} acts on {spec.num_qubits} qubit(s), "
                f"got qubits={self.qubits}"
            )
        if len(set(self.qubits)) != len(self.qubits):
            raise ValueError(f"duplicate qubits in {self.name!r}: {self.qubits}")
        if len(self.params) != spec.num_params:
            raise ValueError(
                f"gate {self.name!r} takes {spec.num_params} parameter(s), "
                f"got params={self.params}"
            )
        if any(q < 0 for q in self.qubits):
            raise ValueError(f"negative qubit index in {self.qubits}")

    @property
    def spec(self) -> GateSpec:
        """The static gate description."""
        return gate_spec(self.name)

    @property
    def num_qubits(self) -> int:
        """Number of qubits this instruction touches."""
        return len(self.qubits)

    @property
    def is_two_qubit(self) -> bool:
        """True for two-qubit unitary gates (the coupling-constrained ones)."""
        return len(self.qubits) == 2 and self.spec.is_unitary

    @property
    def is_measurement(self) -> bool:
        """True for measurement pseudo-gates."""
        return self.name == "measure"

    @property
    def is_directive(self) -> bool:
        """True for barrier-like directives that do not act on the state."""
        return self.spec.directive

    def matrix(self) -> np.ndarray:
        """Unitary matrix of this instruction (little-endian qubit order)."""
        return self.spec.matrix(self.params)

    def remap(self, qubit_map: Dict[int, int]) -> "Instruction":
        """Return a copy acting on ``qubit_map[q]`` for each qubit ``q``.

        Qubits absent from ``qubit_map`` are left unchanged.
        """
        return Instruction(
            self.name,
            tuple(qubit_map.get(q, q) for q in self.qubits),
            self.params,
        )

    def commutes_trivially_with(self, other: "Instruction") -> bool:
        """True when the two instructions share no qubits.

        Disjoint-support gates always commute; this is the cheap test the
        layering pass uses.  It deliberately does *not* try to detect
        algebraic commutation on overlapping supports — the QAOA-specific
        commutation of CPHASE gates is handled at the compilation-flow level
        where it is known by construction.
        """
        return not set(self.qubits) & set(other.qubits)

    def __str__(self) -> str:
        args = ", ".join(str(q) for q in self.qubits)
        if self.params:
            angles = ", ".join(f"{p:.4g}" for p in self.params)
            return f"{self.name}({angles}) {args}"
        return f"{self.name} {args}"
