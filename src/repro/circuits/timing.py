"""Gate-duration model and circuit execution-time estimation.

The paper uses depth as a proxy for execution time ("the circuit depth is
correlated to the circuit execution time on real hardware") and motivates
lower depth by decoherence.  This module makes both quantitative:

* :class:`DurationModel` — per-gate-type durations (defaults are typical
  superconducting-transmon magnitudes in nanoseconds: ~35 ns single-qubit,
  ~300 ns CNOT, ~0 ns virtual U1/RZ, ~3.5 us readout);
* :func:`schedule` — ASAP schedule with real durations: each gate starts
  when all its qubits are free, not at integer layer boundaries;
* :func:`execution_time` — the makespan of that schedule;
* :func:`decoherence_factor` — a crude survival estimate
  ``exp(-sum_q idle_plus_busy(q) / T2)``, quantifying the "less decoherence
  time for the qubits" benefit the paper claims for shallow circuits.
"""

from __future__ import annotations

import dataclasses
import math
from typing import Dict, List, Optional

from .circuit import QuantumCircuit
from .gates import Instruction

__all__ = [
    "DurationModel",
    "ScheduledGate",
    "schedule",
    "execution_time",
    "decoherence_factor",
]


@dataclasses.dataclass(frozen=True)
class DurationModel:
    """Gate durations in nanoseconds.

    Attributes:
        single_qubit: Physical single-qubit pulse duration (u2/u3/rx/...).
        virtual: Duration of frame-update gates (u1/rz) — 0 on IBM hardware.
        two_qubit: CNOT/CZ duration.
        swap: SWAP duration (defaults to three CNOTs).
        measure: Readout duration.
    """

    single_qubit: float = 35.0
    virtual: float = 0.0
    two_qubit: float = 300.0
    swap: Optional[float] = None
    measure: float = 3500.0

    def duration(self, inst: Instruction) -> float:
        """Duration of one instruction under this model."""
        if inst.is_directive:
            return 0.0
        if inst.name == "measure":
            return self.measure
        if inst.name in ("u1", "rz", "z", "s", "sdg", "t", "id"):
            return self.virtual
        if inst.name == "swap":
            return (
                self.swap if self.swap is not None else 3.0 * self.two_qubit
            )
        if len(inst.qubits) == 2:
            return self.two_qubit
        return self.single_qubit


@dataclasses.dataclass(frozen=True)
class ScheduledGate:
    """One instruction with its start/end times (ns)."""

    instruction: Instruction
    start: float
    end: float


def schedule(
    circuit: QuantumCircuit, model: Optional[DurationModel] = None
) -> List[ScheduledGate]:
    """ASAP schedule of ``circuit`` under a duration model.

    Every gate starts at the latest free-time of its qubits; barriers
    synchronise the qubits they span without taking time.
    """
    model = model or DurationModel()
    free_at: Dict[int, float] = {}
    out: List[ScheduledGate] = []
    for inst in circuit:
        start = max((free_at.get(q, 0.0) for q in inst.qubits), default=0.0)
        if inst.is_directive:
            for q in inst.qubits:
                free_at[q] = max(free_at.get(q, 0.0), start)
            continue
        end = start + model.duration(inst)
        for q in inst.qubits:
            free_at[q] = end
        out.append(ScheduledGate(inst, start, end))
    return out


def execution_time(
    circuit: QuantumCircuit, model: Optional[DurationModel] = None
) -> float:
    """Total wall-clock execution time (ns) of the ASAP schedule."""
    scheduled = schedule(circuit, model)
    return max((g.end for g in scheduled), default=0.0)


def decoherence_factor(
    circuit: QuantumCircuit,
    t2_ns: float = 70_000.0,
    model: Optional[DurationModel] = None,
) -> float:
    """Rough state-survival estimate under T2 dephasing.

    Every *active* qubit is exposed from its first gate's start to its last
    gate's end; the factor is ``prod_q exp(-exposure(q) / T2)``.  This is
    deliberately simple — it is the quantity that motivates depth reduction
    in the paper's argument, not a full noise model (that lives in
    :mod:`repro.sim.noise`).

    Args:
        circuit: The circuit to analyse.
        t2_ns: Dephasing time constant in ns (default 70 us, typical for
            the devices of the paper's era).
        model: Duration model (defaults to :class:`DurationModel`).
    """
    if t2_ns <= 0:
        raise ValueError(f"t2_ns must be positive, got {t2_ns}")
    scheduled = schedule(circuit, model)
    first_seen: Dict[int, float] = {}
    last_seen: Dict[int, float] = {}
    for g in scheduled:
        for q in g.instruction.qubits:
            first_seen.setdefault(q, g.start)
            last_seen[q] = g.end
    total_exposure = sum(
        last_seen[q] - first_seen[q] for q in first_seen
    )
    return math.exp(-total_exposure / t2_ns)
