"""Peephole optimisation of native circuits.

After lowering, compiled circuits contain easy wins the backend does not
chase:

* **CNOT cancellation** — two identical CNOTs with nothing between them on
  either qubit are the identity.  This happens systematically at CPHASE /
  SWAP seams: ``cphase(a,b); swap(a,b)`` lowers to
  ``cx cx; u1; cx cx cx`` patterns with adjacent equal CNOTs.
* **Phase merging** — consecutive ``u1``/``rz`` rotations on the same qubit
  add their angles.
* **Null-rotation removal** — ``u1(0)``, ``rz(0)``, ``rx(0)``, ``ry(0)``
  and ``id`` do nothing (up to global phase).

The pass iterates to a fixed point; it only ever removes or merges gates,
so every rewrite strictly shrinks the instruction list and termination is
guaranteed.  State equivalence (up to global phase) is enforced by the test
suite on random circuits.
"""

from __future__ import annotations

import math
from typing import List, Optional

from .circuit import QuantumCircuit
from .gates import Instruction

__all__ = ["peephole_optimize", "cancel_adjacent_self_inverse", "merge_phase_gates"]

_SELF_INVERSE_TWO_QUBIT = {"cnot", "cz", "swap"}
_PHASE_GATES = {"u1", "rz"}
_NULL_IF_ZERO = {"u1", "rz", "rx", "ry"}
_TWO_PI = 2.0 * math.pi


def _angles_equal_mod_2pi(angle: float, target: float, tol: float) -> bool:
    diff = (angle - target) % _TWO_PI
    return min(diff, _TWO_PI - diff) < tol


def cancel_adjacent_self_inverse(
    circuit: QuantumCircuit, tol: float = 1e-12
) -> QuantumCircuit:
    """One sweep of adjacent-inverse cancellation.

    Two gates cancel when they are the same self-inverse gate on the same
    qubits (same order for CNOT) and no intervening instruction touches
    either qubit.
    """
    pending: List[Optional[Instruction]] = list(circuit.instructions)
    last_on = {}  # qubit -> index of last surviving instruction touching it

    for i, inst in enumerate(pending):
        if inst is None:
            continue
        if inst.is_directive:
            for q in inst.qubits:
                last_on[q] = i
            continue
        prev_indices = {last_on.get(q) for q in inst.qubits}
        if (
            inst.name in _SELF_INVERSE_TWO_QUBIT
            and len(prev_indices) == 1
        ):
            (j,) = prev_indices
            if j is not None and pending[j] is not None:
                prev = pending[j]
                same = prev.name == inst.name and (
                    prev.qubits == inst.qubits
                    or (
                        inst.name in ("cz", "swap")
                        and set(prev.qubits) == set(inst.qubits)
                    )
                )
                if same:
                    pending[i] = None
                    pending[j] = None
                    for q in inst.qubits:
                        last_on.pop(q, None)
                    continue
        for q in inst.qubits:
            last_on[q] = i
    return QuantumCircuit(
        circuit.num_qubits,
        (inst for inst in pending if inst is not None),
        name=circuit.name,
    )


def merge_phase_gates(
    circuit: QuantumCircuit, tol: float = 1e-12
) -> QuantumCircuit:
    """One sweep merging consecutive u1/rz gates and dropping null rotations.

    ``u1`` and ``rz`` differ only by global phase, so a merged pair keeps
    the first gate's name with the summed angle.
    """
    out: List[Instruction] = []
    last_on = {}  # qubit -> index into out
    for inst in circuit:
        if inst.is_directive:
            out.append(inst)
            for q in inst.qubits:
                last_on[q] = len(out) - 1
            continue
        if (
            inst.name in _NULL_IF_ZERO
            and _angles_equal_mod_2pi(inst.params[0], 0.0, tol)
        ) or inst.name == "id":
            continue  # identity, drop (tracking not updated: nothing ran)
        if inst.name in _PHASE_GATES:
            q = inst.qubits[0]
            j = last_on.get(q)
            if (
                j is not None
                and out[j] is not None
                and out[j].name in _PHASE_GATES
                and out[j].qubits == inst.qubits
            ):
                merged_angle = out[j].params[0] + inst.params[0]
                if _angles_equal_mod_2pi(merged_angle, 0.0, tol):
                    out.pop(j)
                    # Rebuild index map after removal.
                    last_on = {
                        qq: idx
                        for qq, idx in last_on.items()
                        if idx != j
                    }
                    last_on = {
                        qq: (idx - 1 if idx > j else idx)
                        for qq, idx in last_on.items()
                    }
                    last_on.pop(q, None)
                else:
                    out[j] = Instruction(
                        out[j].name, out[j].qubits, (merged_angle,)
                    )
                continue
        out.append(inst)
        for q in inst.qubits:
            last_on[q] = len(out) - 1
    return QuantumCircuit(circuit.num_qubits, out, name=circuit.name)


def peephole_optimize(
    circuit: QuantumCircuit, max_sweeps: int = 20, tol: float = 1e-12
) -> QuantumCircuit:
    """Run cancellation + phase merging to a fixed point.

    Args:
        circuit: Any circuit (typically a native compiled one).
        max_sweeps: Safety bound; each sweep strictly shrinks or the loop
            stops, so a handful suffices.
        tol: Angle tolerance for null-rotation detection.

    Returns:
        An equivalent (up to global phase) circuit with at most as many
        gates.
    """
    current = circuit
    for _ in range(max_sweeps):
        reduced = merge_phase_gates(
            cancel_adjacent_self_inverse(current, tol), tol
        )
        if len(reduced) == len(current):
            return reduced
        current = reduced
    return current
