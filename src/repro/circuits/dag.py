"""Scheduling structure of a circuit: ASAP layers and depth metrics.

The conventional backend compiler (Section III, "SWAP Insertion") partitions
circuits into *layers* of gates that can execute concurrently — gates within a
layer act on disjoint qubits.  This module provides that partition plus the
depth metrics used throughout the evaluation:

* :func:`asap_layers` — as-soon-as-possible greedy layering respecting
  program order per qubit (this is how qiskit-style compilers form layers);
* :func:`circuit_depth` — critical-path length, the paper's "circuit depth";
* :func:`two_qubit_depth` — depth counting only two-qubit gates, a common
  NISQ proxy since two-qubit gates dominate both duration and error.

Barriers act as full synchronisation points across their qubits.
"""

from __future__ import annotations

from typing import Dict, List, Sequence

from .circuit import QuantumCircuit
from .gates import Instruction

__all__ = [
    "asap_layers",
    "circuit_depth",
    "two_qubit_depth",
    "layer_qubit_sets",
    "qubit_activity",
]


def asap_layers(circuit: QuantumCircuit) -> List[List[Instruction]]:
    """Partition ``circuit`` into ASAP layers.

    Each instruction is placed in the earliest layer after the last layer
    that used any of its qubits.  Directives (barriers) advance the frontier
    of every qubit they span but are not emitted into any layer.

    Returns:
        A list of layers; each layer is a list of instructions acting on
        pairwise-disjoint qubits, in program order.
    """
    frontier: Dict[int, int] = {}  # qubit -> first layer index it is free at
    layers: List[List[Instruction]] = []
    for inst in circuit:
        qubits = inst.qubits
        start = max((frontier.get(q, 0) for q in qubits), default=0)
        if inst.is_directive:
            # Barrier: everything it spans must finish before later gates.
            for q in qubits:
                frontier[q] = max(frontier.get(q, 0), start)
            continue
        while len(layers) <= start:
            layers.append([])
        layers[start].append(inst)
        for q in qubits:
            frontier[q] = start + 1
    return layers


def circuit_depth(circuit: QuantumCircuit) -> int:
    """Critical-path depth of ``circuit`` (number of ASAP layers).

    This is the paper's circuit-depth metric: "the length of the critical
    path in a quantum circuit (the path with the highest number of gate
    operations)".  Measurements count as gates; barriers do not.
    """
    frontier: Dict[int, int] = {}
    depth = 0
    for inst in circuit:
        start = max((frontier.get(q, 0) for q in inst.qubits), default=0)
        if inst.is_directive:
            for q in inst.qubits:
                frontier[q] = max(frontier.get(q, 0), start)
            continue
        for q in inst.qubits:
            frontier[q] = start + 1
        depth = max(depth, start + 1)
    return depth


def two_qubit_depth(circuit: QuantumCircuit) -> int:
    """Depth counting only two-qubit gates along the critical path."""
    frontier: Dict[int, int] = {}
    depth = 0
    for inst in circuit:
        if inst.is_directive:
            start = max((frontier.get(q, 0) for q in inst.qubits), default=0)
            for q in inst.qubits:
                frontier[q] = max(frontier.get(q, 0), start)
            continue
        start = max((frontier.get(q, 0) for q in inst.qubits), default=0)
        advance = 1 if inst.is_two_qubit else 0
        for q in inst.qubits:
            frontier[q] = start + advance
        depth = max(depth, start + advance)
    return depth


def layer_qubit_sets(layers: Sequence[Sequence[Instruction]]) -> List[set]:
    """The set of qubits each layer touches (sanity/validation helper)."""
    return [set(q for inst in layer for q in inst.qubits) for layer in layers]


def qubit_activity(circuit: QuantumCircuit) -> Dict[int, int]:
    """Number of non-directive instructions touching each qubit.

    This is the "program profile" statistic of Figure 3(c) when restricted
    to CPHASE gates; here we count all gate types so the helper is reusable
    for arbitrary circuits.
    """
    counts: Dict[int, int] = {q: 0 for q in range(circuit.num_qubits)}
    for inst in circuit:
        if inst.is_directive:
            continue
        for q in inst.qubits:
            counts[q] += 1
    return counts
