"""ASCII circuit rendering.

A small, dependency-free drawer used by the examples and for debugging
compilation passes.  One text row per qubit; gates are placed in their ASAP
layer so concurrency is visible at a glance — which is exactly what the
paper's Figure 1(b)/(c) comparison is about.
"""

from __future__ import annotations

from typing import List

from .circuit import QuantumCircuit
from .dag import asap_layers

__all__ = ["draw_circuit"]

_WIRE = "-"


def _gate_label(name: str, params) -> str:
    if params:
        angles = ",".join(f"{p:.2f}" for p in params)
        return f"{name}({angles})"
    return name


def draw_circuit(circuit: QuantumCircuit, max_width: int = 120) -> str:
    """Render ``circuit`` as ASCII art, one row per qubit.

    Two-qubit gates show the first qubit as ``*`` (control for CNOT) and the
    second carrying the label.  Layers are separated by ``|`` so the depth
    can be read off directly.  Long circuits wrap at ``max_width`` columns.
    """
    layers = asap_layers(circuit)
    n = circuit.num_qubits
    rows: List[List[str]] = [[] for _ in range(n)]

    for layer in layers:
        cells = [_WIRE] * n
        for inst in layer:
            label = _gate_label(inst.name, inst.params)
            if len(inst.qubits) == 1:
                cells[inst.qubits[0]] = label
            else:
                a, b = inst.qubits
                cells[a] = "*"
                cells[b] = label
        width = max(len(c) for c in cells)
        for q in range(n):
            rows[q].append(cells[q].center(width, _WIRE))

    lines = []
    # Wrap into banks of layers that fit max_width.
    start = 0
    while start < len(layers):
        end = start
        used = 6  # label prefix
        while end < len(layers):
            cell = len(rows[0][end]) + 1
            if used + cell > max_width and end > start:
                break
            used += cell
            end += 1
        for q in range(n):
            segment = "|".join(rows[q][start:end])
            lines.append(f"q{q:<3}: {segment}")
        lines.append("")
        start = end
    return "\n".join(lines).rstrip("\n")
