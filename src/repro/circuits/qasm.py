"""OpenQASM 2.0 export / import.

Compiled circuits should be portable to real toolchains; OpenQASM 2.0 is the
interchange format IBM devices of the paper's era consumed.  The exporter
emits standard-library gates (``qelib1.inc`` names); the importer accepts the
same subset back, so ``loads(dumps(qc))`` round-trips every circuit this
package produces.

Name mapping (ours -> QASM): ``cnot -> cx``, ``cphase -> rzz``,
``cu1 -> cu1``, everything else keeps its name.  Our ``cphase`` is the ZZ
interaction ``exp(-i*theta/2 Z(x)Z)``, which is exactly qelib1's ``rzz``.
"""

from __future__ import annotations

import math
import re
from typing import Dict, List, Optional, Tuple

from .circuit import QuantumCircuit
from .gates import Instruction

__all__ = ["dumps", "loads", "QASMError"]


class QASMError(ValueError):
    """Raised on malformed or unsupported QASM input."""


_TO_QASM = {
    "cnot": "cx",
    "cphase": "rzz",
}
_FROM_QASM = {v: k for k, v in _TO_QASM.items()}

#: QASM gate name -> (our gate name, num params, num qubits)
_SUPPORTED: Dict[str, Tuple[str, int, int]] = {
    "id": ("id", 0, 1),
    "x": ("x", 0, 1),
    "y": ("y", 0, 1),
    "z": ("z", 0, 1),
    "h": ("h", 0, 1),
    "s": ("s", 0, 1),
    "sdg": ("sdg", 0, 1),
    "t": ("t", 0, 1),
    "rx": ("rx", 1, 1),
    "ry": ("ry", 1, 1),
    "rz": ("rz", 1, 1),
    "u1": ("u1", 1, 1),
    "u2": ("u2", 2, 1),
    "u3": ("u3", 3, 1),
    "cx": ("cnot", 0, 2),
    "cz": ("cz", 0, 2),
    "swap": ("swap", 0, 2),
    "rzz": ("cphase", 1, 2),
    "cu1": ("cu1", 1, 2),
}


def dumps(circuit: QuantumCircuit) -> str:
    """Serialise a circuit to OpenQASM 2.0 text.

    Barriers and measurements are emitted; measurement results go to a
    classical register of the same size, bit ``i`` from qubit ``i``.
    """
    lines = [
        "OPENQASM 2.0;",
        'include "qelib1.inc";',
        f"qreg q[{circuit.num_qubits}];",
        f"creg c[{circuit.num_qubits}];",
    ]
    for inst in circuit:
        if inst.name == "barrier":
            args = ", ".join(f"q[{q}]" for q in inst.qubits)
            lines.append(f"barrier {args};")
            continue
        if inst.name == "measure":
            q = inst.qubits[0]
            lines.append(f"measure q[{q}] -> c[{q}];")
            continue
        name = _TO_QASM.get(inst.name, inst.name)
        if name not in _SUPPORTED:
            raise QASMError(f"gate {inst.name!r} has no QASM 2.0 mapping")
        params = (
            "(" + ",".join(repr(p) for p in inst.params) + ")"
            if inst.params
            else ""
        )
        args = ",".join(f"q[{q}]" for q in inst.qubits)
        lines.append(f"{name}{params} {args};")
    return "\n".join(lines) + "\n"


_HEADER_RE = re.compile(r"^OPENQASM\s+2(\.\d+)?\s*$")
_QREG_RE = re.compile(r"^qreg\s+(\w+)\[(\d+)\]$")
_CREG_RE = re.compile(r"^creg\s+(\w+)\[(\d+)\]$")
_MEASURE_RE = re.compile(r"^measure\s+(\w+)\[(\d+)\]\s*->\s*(\w+)\[(\d+)\]$")
_GATE_RE = re.compile(r"^(\w+)\s*(\(([^)]*)\))?\s*(.+)$")
_ARG_RE = re.compile(r"^(\w+)\[(\d+)\]$")

_CONSTANTS = {"pi": math.pi}


def _eval_param(text: str) -> float:
    """Evaluate a numeric QASM parameter expression (numbers, pi, + - * /)."""
    expr = text.strip()
    if not re.fullmatch(r"[0-9eE\.\+\-\*/\s\(\)pi]*", expr):
        raise QASMError(f"unsupported parameter expression {text!r}")
    try:
        return float(eval(expr, {"__builtins__": {}}, _CONSTANTS))  # noqa: S307
    except Exception as exc:  # pragma: no cover - defensive
        raise QASMError(f"cannot evaluate parameter {text!r}: {exc}") from exc


def loads(text: str) -> QuantumCircuit:
    """Parse OpenQASM 2.0 text (the subset :func:`dumps` emits).

    Supports one quantum register, one classical register, the qelib1 gates
    of :data:`_SUPPORTED`, ``barrier`` and ``measure``.
    """
    statements: List[str] = []
    # Strip comments, split on semicolons.
    cleaned = re.sub(r"//[^\n]*", "", text)
    for raw in cleaned.split(";"):
        stmt = raw.strip()
        if stmt:
            statements.append(stmt)

    if not statements or not _HEADER_RE.match(statements[0]):
        raise QASMError("missing OPENQASM 2.0 header")
    num_qubits: Optional[int] = None
    qreg_name = "q"
    instructions: List[Instruction] = []

    for stmt in statements[1:]:
        if stmt.startswith("include"):
            continue
        qreg = _QREG_RE.match(stmt)
        if qreg:
            if num_qubits is not None:
                raise QASMError("multiple qreg declarations are unsupported")
            qreg_name, num_qubits = qreg.group(1), int(qreg.group(2))
            continue
        if _CREG_RE.match(stmt):
            continue
        if num_qubits is None:
            raise QASMError(f"statement {stmt!r} before qreg declaration")
        measure = _MEASURE_RE.match(stmt)
        if measure:
            if measure.group(1) != qreg_name:
                raise QASMError(f"unknown register in {stmt!r}")
            instructions.append(
                Instruction("measure", (int(measure.group(2)),))
            )
            continue
        gate = _GATE_RE.match(stmt)
        if not gate:
            raise QASMError(f"cannot parse statement {stmt!r}")
        name, _, params_text, args_text = gate.groups()
        qubits = []
        for arg in args_text.split(","):
            m = _ARG_RE.match(arg.strip())
            if not m or m.group(1) != qreg_name:
                raise QASMError(f"bad qubit argument {arg!r} in {stmt!r}")
            qubits.append(int(m.group(2)))
        if name == "barrier":
            instructions.append(Instruction("barrier", tuple(qubits)))
            continue
        if name not in _SUPPORTED:
            raise QASMError(f"unsupported gate {name!r}")
        our_name, n_params, n_qubits = _SUPPORTED[name]
        params = (
            tuple(_eval_param(p) for p in params_text.split(","))
            if params_text
            else ()
        )
        if len(params) != n_params:
            raise QASMError(
                f"gate {name!r} takes {n_params} parameter(s), got {stmt!r}"
            )
        if len(qubits) != n_qubits:
            raise QASMError(
                f"gate {name!r} takes {n_qubits} qubit(s), got {stmt!r}"
            )
        instructions.append(Instruction(our_name, tuple(qubits), params))

    if num_qubits is None:
        raise QASMError("no qreg declaration found")
    return QuantumCircuit(num_qubits, instructions, name="from_qasm")
