"""The :class:`QuantumCircuit` container.

A circuit is an ordered list of :class:`~repro.circuits.gates.Instruction`
objects over ``num_qubits`` qubits.  It is deliberately a thin, explicit data
structure: compilation passes build new circuits rather than mutating shared
state, and anything structural (layers, depth) lives in
:mod:`repro.circuits.dag`.
"""

from __future__ import annotations

from collections import Counter
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Tuple

from .gates import Instruction

__all__ = ["QuantumCircuit"]


class QuantumCircuit:
    """An ordered sequence of gate instructions on ``num_qubits`` qubits.

    The builder methods (:meth:`h`, :meth:`cnot`, :meth:`cphase`, ...) append
    instructions and return ``self`` so construction chains naturally::

        qc = QuantumCircuit(3).h(0).cnot(0, 1).cphase(0.4, 1, 2).measure_all()
    """

    def __init__(
        self,
        num_qubits: int,
        instructions: Optional[Iterable[Instruction]] = None,
        name: str = "circuit",
    ) -> None:
        if num_qubits < 1:
            raise ValueError(f"num_qubits must be positive, got {num_qubits}")
        self.num_qubits = int(num_qubits)
        self.name = name
        self._instructions: List[Instruction] = []
        if instructions is not None:
            for inst in instructions:
                self.append(inst)

    # ------------------------------------------------------------------
    # container protocol
    # ------------------------------------------------------------------
    @property
    def instructions(self) -> Tuple[Instruction, ...]:
        """The instructions in program order (read-only view)."""
        return tuple(self._instructions)

    def __len__(self) -> int:
        return len(self._instructions)

    def __iter__(self) -> Iterator[Instruction]:
        return iter(self._instructions)

    def __getitem__(self, index: int) -> Instruction:
        return self._instructions[index]

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, QuantumCircuit):
            return NotImplemented
        return (
            self.num_qubits == other.num_qubits
            and self._instructions == other._instructions
        )

    def __repr__(self) -> str:
        return (
            f"QuantumCircuit(name={self.name!r}, num_qubits={self.num_qubits},"
            f" num_instructions={len(self)})"
        )

    # ------------------------------------------------------------------
    # generic appends
    # ------------------------------------------------------------------
    def _check_qubits(self, qubits: Sequence[int]) -> None:
        for q in qubits:
            if not 0 <= q < self.num_qubits:
                raise ValueError(
                    f"qubit {q} out of range for {self.num_qubits}-qubit circuit"
                )

    def append(self, instruction: Instruction) -> "QuantumCircuit":
        """Append an already-built :class:`Instruction`."""
        self._check_qubits(instruction.qubits)
        self._instructions.append(instruction)
        return self

    def add(
        self,
        name: str,
        qubits: Sequence[int],
        params: Sequence[float] = (),
    ) -> "QuantumCircuit":
        """Append a gate by name; validates arity against the gate spec."""
        return self.append(Instruction(name, tuple(qubits), tuple(params)))

    def extend(self, instructions: Iterable[Instruction]) -> "QuantumCircuit":
        """Append many instructions in order."""
        for inst in instructions:
            self.append(inst)
        return self

    def compose(self, other: "QuantumCircuit") -> "QuantumCircuit":
        """Append every instruction of ``other`` (must fit this register)."""
        if other.num_qubits > self.num_qubits:
            raise ValueError(
                f"cannot compose a {other.num_qubits}-qubit circuit onto a "
                f"{self.num_qubits}-qubit one"
            )
        return self.extend(other.instructions)

    # ------------------------------------------------------------------
    # named builders
    # ------------------------------------------------------------------
    def h(self, qubit: int) -> "QuantumCircuit":
        """Hadamard."""
        return self.add("h", (qubit,))

    def x(self, qubit: int) -> "QuantumCircuit":
        """Pauli-X."""
        return self.add("x", (qubit,))

    def y(self, qubit: int) -> "QuantumCircuit":
        """Pauli-Y."""
        return self.add("y", (qubit,))

    def z(self, qubit: int) -> "QuantumCircuit":
        """Pauli-Z."""
        return self.add("z", (qubit,))

    def s(self, qubit: int) -> "QuantumCircuit":
        """Phase gate S = sqrt(Z)."""
        return self.add("s", (qubit,))

    def sdg(self, qubit: int) -> "QuantumCircuit":
        """Inverse phase gate."""
        return self.add("sdg", (qubit,))

    def t(self, qubit: int) -> "QuantumCircuit":
        """T gate (pi/8)."""
        return self.add("t", (qubit,))

    def rx(self, theta: float, qubit: int) -> "QuantumCircuit":
        """X rotation by ``theta``."""
        return self.add("rx", (qubit,), (theta,))

    def ry(self, theta: float, qubit: int) -> "QuantumCircuit":
        """Y rotation by ``theta``."""
        return self.add("ry", (qubit,), (theta,))

    def rz(self, theta: float, qubit: int) -> "QuantumCircuit":
        """Z rotation by ``theta``."""
        return self.add("rz", (qubit,), (theta,))

    def u1(self, lam: float, qubit: int) -> "QuantumCircuit":
        """IBM U1 (phase) gate."""
        return self.add("u1", (qubit,), (lam,))

    def u2(self, phi: float, lam: float, qubit: int) -> "QuantumCircuit":
        """IBM U2 gate."""
        return self.add("u2", (qubit,), (phi, lam))

    def u3(self, theta: float, phi: float, lam: float, qubit: int) -> "QuantumCircuit":
        """IBM U3 (generic single-qubit) gate."""
        return self.add("u3", (qubit,), (theta, phi, lam))

    def cnot(self, control: int, target: int) -> "QuantumCircuit":
        """CNOT with explicit control/target order."""
        return self.add("cnot", (control, target))

    def cz(self, a: int, b: int) -> "QuantumCircuit":
        """Controlled-Z (symmetric)."""
        return self.add("cz", (a, b))

    def swap(self, a: int, b: int) -> "QuantumCircuit":
        """SWAP (symmetric)."""
        return self.add("swap", (a, b))

    def cphase(self, gamma: float, a: int, b: int) -> "QuantumCircuit":
        """The paper's commuting two-qubit cost gate: exp(-i*gamma/2 Z(x)Z)."""
        return self.add("cphase", (a, b), (gamma,))

    def cu1(self, lam: float, control: int, target: int) -> "QuantumCircuit":
        """Textbook controlled-phase diag(1,1,1,e^{i lam})."""
        return self.add("cu1", (control, target), (lam,))

    def measure(self, qubit: int) -> "QuantumCircuit":
        """Measure one qubit in the computational basis."""
        return self.add("measure", (qubit,))

    def measure_all(self) -> "QuantumCircuit":
        """Measure every qubit."""
        for q in range(self.num_qubits):
            self.measure(q)
        return self

    def barrier(self, *qubits: int) -> "QuantumCircuit":
        """Scheduling barrier across ``qubits`` (all qubits when empty)."""
        qs = tuple(qubits) if qubits else tuple(range(self.num_qubits))
        return self.append(Instruction("barrier", qs))

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def count_ops(self) -> Dict[str, int]:
        """Histogram of gate names, e.g. ``{"cnot": 12, "u3": 7}``."""
        return dict(Counter(inst.name for inst in self._instructions))

    def gate_count(self, include_directives: bool = False) -> int:
        """Total number of gate operations.

        Measurements count (the paper's time-step accounting includes them);
        barriers do not unless ``include_directives`` is set.
        """
        if include_directives:
            return len(self._instructions)
        return sum(1 for inst in self._instructions if not inst.is_directive)

    def two_qubit_gates(self) -> List[Instruction]:
        """All two-qubit unitary instructions, in program order."""
        return [inst for inst in self._instructions if inst.is_two_qubit]

    def num_two_qubit_gates(self) -> int:
        """Count of two-qubit unitary gates."""
        return len(self.two_qubit_gates())

    def active_qubits(self) -> Tuple[int, ...]:
        """Sorted tuple of qubits touched by at least one instruction."""
        used = set()
        for inst in self._instructions:
            used.update(inst.qubits)
        return tuple(sorted(used))

    def depth(self) -> int:
        """Critical-path depth (directives excluded).

        Delegates to :func:`repro.circuits.dag.circuit_depth`; exposed here
        because depth is the paper's headline circuit-quality metric.
        """
        from .dag import circuit_depth

        return circuit_depth(self)

    # ------------------------------------------------------------------
    # transforms
    # ------------------------------------------------------------------
    def copy(self, name: Optional[str] = None) -> "QuantumCircuit":
        """Shallow copy (instructions are immutable, so this is safe)."""
        return QuantumCircuit(
            self.num_qubits, self._instructions, name=name or self.name
        )

    def remap(self, qubit_map: Dict[int, int], num_qubits: Optional[int] = None) -> "QuantumCircuit":
        """Relabel qubits through ``qubit_map``.

        Args:
            qubit_map: old-index -> new-index; missing qubits keep their index.
            num_qubits: register size of the result (defaults to current size,
                grown if the map targets larger indices).
        """
        remapped = [inst.remap(qubit_map) for inst in self._instructions]
        needed = 1 + max(
            (q for inst in remapped for q in inst.qubits), default=0
        )
        size = num_qubits if num_qubits is not None else max(self.num_qubits, needed)
        if size < needed:
            raise ValueError(
                f"num_qubits={size} too small for remapped circuit needing {needed}"
            )
        return QuantumCircuit(size, remapped, name=self.name)

    def reversed_ops(self) -> "QuantumCircuit":
        """Circuit with the instruction order reversed (no inversion of gates).

        Useful for reverse-traversal style mapping experiments (Section III,
        "Initial Mapping").
        """
        return QuantumCircuit(
            self.num_qubits,
            reversed(self._instructions),
            name=f"{self.name}_reversed",
        )

    def without(self, names: Iterable[str]) -> "QuantumCircuit":
        """Copy of the circuit with all gates named in ``names`` dropped."""
        drop = set(names)
        return QuantumCircuit(
            self.num_qubits,
            (inst for inst in self._instructions if inst.name not in drop),
            name=self.name,
        )

    def only_unitary(self) -> "QuantumCircuit":
        """Copy without measurements and barriers (for simulation pre-pass)."""
        return QuantumCircuit(
            self.num_qubits,
            (
                inst
                for inst in self._instructions
                if inst.spec.is_unitary and not inst.is_directive
            ),
            name=self.name,
        )

    def validate_basis(self, basis: Iterable[str]) -> None:
        """Raise ``ValueError`` if any instruction is outside ``basis``."""
        allowed = set(basis)
        for inst in self._instructions:
            if inst.name not in allowed:
                raise ValueError(
                    f"instruction {inst} not in basis {sorted(allowed)}"
                )

    def draw(self) -> str:
        """ASCII rendering (delegates to :mod:`repro.circuits.draw`)."""
        from .draw import draw_circuit

        return draw_circuit(self)
