"""Simulators: ideal statevector and noisy Monte-Carlo trajectory sampling."""

from .density import DensityMatrixSimulator
from .fastpath import (
    CostDiagonal,
    EvalOutcome,
    FastPathPlan,
    clear_diagonal_registry,
    cost_diagonal,
    diagonal_registry_stats,
    evaluate_fast,
    expectation_batch,
    fastpath_plan,
    logical_trajectory,
    qaoa_statevector,
    qaoa_statevector_batch,
)
from .noise import NoiseModel, NoisySimulator
from .sampler import (
    bitstring_to_index,
    counts_to_probabilities,
    expectation_from_counts,
    index_to_bitstring,
    marginal_counts,
    merge_counts,
    most_frequent,
    total_shots,
)
from .statevector import StatevectorSimulator, apply_gate, zero_state

__all__ = [
    "StatevectorSimulator",
    "apply_gate",
    "zero_state",
    "NoiseModel",
    "NoisySimulator",
    "DensityMatrixSimulator",
    "CostDiagonal",
    "EvalOutcome",
    "FastPathPlan",
    "clear_diagonal_registry",
    "cost_diagonal",
    "diagonal_registry_stats",
    "evaluate_fast",
    "expectation_batch",
    "fastpath_plan",
    "logical_trajectory",
    "qaoa_statevector",
    "qaoa_statevector_batch",
    "bitstring_to_index",
    "counts_to_probabilities",
    "expectation_from_counts",
    "index_to_bitstring",
    "marginal_counts",
    "merge_counts",
    "most_frequent",
    "total_shots",
]
