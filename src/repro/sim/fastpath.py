"""QAOA-specialised fast-path evaluation engine.

The paper's headline quality metric — ARG, Section V-A — needs every
compiled circuit simulated twice (noiseless and noisy).  Gate-by-gate
statevector evolution pays one tensordot per gate over the *physical*
register (2^16 amplitudes on melbourne), yet a QAOA circuit has rigid
algebraic structure this module exploits:

* every cost block is **diagonal** in the computational basis — applying
  all of a level's CPHASE gates equals one elementwise multiply by
  ``exp(-i * gamma * D(z))`` with ``D(z) = c(z) - W/2 + sum_i h_i s_i(z)``
  where ``c(z)`` is the cut value, ``W`` the total edge weight and
  ``s_i = 1 - 2 bit_i`` (exact, global phase included);
* the mixer is a tensor product of identical ``RX`` rotations — ``n``
  axis-wise 2x2 multiplies, no per-gate matrices;
* SWAPs inserted by routing are pure qubit relocations — in the *logical*
  frame they are bookkeeping, not linear algebra, so the state never
  leaves the ``2^n`` logical subspace (n = problem qubits, not device
  qubits).

The cost diagonal is computed once per problem and interned in a bounded
registry keyed by content hash (mirroring
:func:`repro.hardware.target.intern_target`), so parameter sweeps and
batches over the same instance share one table.

Compiled circuits are only admitted to the fast path after
:func:`fastpath_plan` proves ARG-equivalence: the physical instruction
stream must be the Hadamard prefix, ``p`` complete cost blocks (the
level's CPHASE/RZ multiset, SWAP-tracked), and per-level mixers, ending
in the recorded ``final_mapping``.  Anything else falls back to the
gate-by-gate simulators, so the fast path can never silently change
semantics.

For noisy evaluation, :func:`logical_trajectory` replays the physical
instruction stream in the logical frame while consuming **exactly** the
same random draws as :meth:`repro.sim.noise.NoisySimulator.run_trajectory`
— same dephasing draws, same Pauli injections at the same points — so a
shared generator produces the identical noise realisation on both paths.
Pauli noise landing on an unmapped physical qubit cannot reach any
decoded logical bit (cost gates never couple mapped and unmapped qubits;
SWAPs only relocate), so it degrades to a classical "dirt bit" tracked
per physical qubit.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import time
from collections import Counter
from typing import Dict, Mapping, Optional, Tuple

import numpy as np

from .noise import _ONE_QUBIT_PAULIS, _TWO_QUBIT_PAULIS, NoiseModel
from ..store.registry import FingerprintRegistry
from ..store.shm import shared_tier

__all__ = [
    "CostDiagonal",
    "EvalOutcome",
    "FastPathPlan",
    "clear_diagonal_registry",
    "cost_diagonal",
    "decode_indices",
    "diagonal_registry_stats",
    "evaluate_fast",
    "expectation_batch",
    "fastpath_plan",
    "logical_trajectory",
    "parity_plan",
    "qaoa_statevector",
    "qaoa_statevector_batch",
]

#: Matches the brute-force ceiling of ``MaxCutProblem.cut_values``.
_MAX_DIAGONAL_QUBITS = 26

_FINGERPRINT_VERSION = 1

_PAULI_X = np.array([[0.0, 1.0], [1.0, 0.0]], dtype=complex)
_PAULI_Y = np.array([[0.0, -1.0j], [1.0j, 0.0]], dtype=complex)
_HADAMARD = np.array([[1.0, 1.0], [1.0, -1.0]], dtype=complex) / np.sqrt(2.0)


def _digest(payload: dict) -> str:
    text = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(text.encode("utf-8")).hexdigest()


# ----------------------------------------------------------------------
# the cost diagonal
# ----------------------------------------------------------------------
class CostDiagonal:
    """Per-problem diagonal tables, computed lazily and served read-only.

    Args:
        num_qubits: Number of logical qubits (26 at most — the tables are
            dense over ``2^n`` basis states).
        edges: ``(a, b, weight)`` triples; endpoint order and duplicate
            accumulation are canonicalised so content-equal problems
            fingerprint identically.
        linear: Optional per-qubit linear Ising fields ``{i: h_i}``.

    The tables:

    * :attr:`cut` — ``c(z)``, the cut value of every little-endian basis
      index (what ``r0``/``rh`` expectations are taken against);
    * :attr:`phase` — ``D(z) = c(z) - W/2 + sum_i h_i s_i(z)``, the exact
      per-unit-gamma phase of one cost block *including global phase*, so
      fast-path statevectors match gate-by-gate evolution bit-for-bit up
      to float rounding;
    * :meth:`sign` / :meth:`szz` — ``s_q(z)`` and ``s_a s_b`` sign
      vectors, the elementwise form of Z and ZZ rotations.
    """

    def __init__(
        self,
        num_qubits: int,
        edges,
        linear: Optional[Mapping[int, float]] = None,
    ) -> None:
        num_qubits = int(num_qubits)
        if num_qubits < 1:
            raise ValueError("num_qubits must be positive")
        if num_qubits > _MAX_DIAGONAL_QUBITS:
            raise ValueError(
                f"dense cost diagonal infeasible for {num_qubits} qubits "
                f"(limit {_MAX_DIAGONAL_QUBITS})"
            )
        self.num_qubits = num_qubits
        accum: Dict[Tuple[int, int], float] = {}
        for a, b, w in edges:
            key = (min(int(a), int(b)), max(int(a), int(b)))
            if key[0] == key[1]:
                raise ValueError(f"self-loop edge {key}")
            if not 0 <= key[0] < num_qubits or not key[1] < num_qubits:
                raise ValueError(f"edge {key} out of range")
            accum[key] = accum.get(key, 0.0) + float(w)
        self.edges: Tuple[Tuple[int, int, float], ...] = tuple(
            (a, b, w) for (a, b), w in sorted(accum.items())
        )
        self.linear: Tuple[Tuple[int, float], ...] = tuple(
            sorted((int(q), float(h)) for q, h in (linear or {}).items())
        )
        for q, _ in self.linear:
            if not 0 <= q < num_qubits:
                raise ValueError(f"linear term index {q} out of range")
        self.fingerprint = _digest(
            {
                "fingerprint_version": _FINGERPRINT_VERSION,
                "num_qubits": self.num_qubits,
                "edges": [[a, b, repr(w)] for a, b, w in self.edges],
                "linear": [[q, repr(h)] for q, h in self.linear],
            }
        )
        self._cut: Optional[np.ndarray] = None
        self._phase: Optional[np.ndarray] = None
        self._signs: Dict[int, np.ndarray] = {}
        self._szz: Dict[Tuple[int, int], np.ndarray] = {}
        self._phase_groups: Optional[Tuple[np.ndarray, np.ndarray]] = None
        self._phase_groups_known = False

    @property
    def dim(self) -> int:
        """Number of basis states (``2^n``)."""
        return 1 << self.num_qubits

    @property
    def total_weight(self) -> float:
        """Sum of edge weights."""
        return sum(w for _, _, w in self.edges)

    @property
    def cut(self) -> np.ndarray:
        """``c(z)`` for every little-endian basis index (read-only)."""
        if self._cut is None:
            indices = np.arange(self.dim, dtype=np.int64)
            values = np.zeros(self.dim)
            for a, b, w in self.edges:
                values += w * (((indices >> a) & 1) ^ ((indices >> b) & 1))
            values.flags.writeable = False
            self._cut = values
        return self._cut

    @property
    def max_value(self) -> float:
        """The exact maximum cut (the ``r`` denominator)."""
        return float(self.cut.max())

    def sign(self, q: int) -> np.ndarray:
        """``s_q(z) = 1 - 2 bit_q(z)`` — the Z eigenvalue sign vector."""
        cached = self._signs.get(q)
        if cached is None:
            indices = np.arange(self.dim, dtype=np.int64)
            cached = 1.0 - 2.0 * ((indices >> q) & 1)
            cached.flags.writeable = False
            self._signs[q] = cached
        return cached

    def szz(self, a: int, b: int) -> np.ndarray:
        """``s_a(z) * s_b(z)`` — the ZZ eigenvalue sign vector."""
        key = (min(a, b), max(a, b))
        cached = self._szz.get(key)
        if cached is None:
            cached = self.sign(key[0]) * self.sign(key[1])
            cached.flags.writeable = False
            self._szz[key] = cached
        return cached

    @property
    def phase(self) -> np.ndarray:
        """``D(z)`` such that one cost block is exactly
        ``exp(-i * gamma * D(z))``, global phase included."""
        if self._phase is None:
            values = self.cut - self.total_weight / 2.0
            for q, h in self.linear:
                values = values + h * self.sign(q)
            values.flags.writeable = False
            self._phase = values
        return self._phase

    @property
    def phase_groups(self) -> Optional[Tuple[np.ndarray, np.ndarray]]:
        """``(values, inverse)`` with ``phase == values[inverse]``.

        Real cost diagonals are massively degenerate — an unweighted
        ``m``-edge cut takes at most ``m + 1`` distinct values over
        ``2^n`` basis states — so batched evolution can exponentiate one
        small table per angle row and gather, instead of taking a dense
        ``batch x 2^n`` complex exponential.  ``None`` when the phase has
        too many distinct values for the factorisation to pay off
        (gather + table would cost about as much as the dense ``exp``).
        """
        if not self._phase_groups_known:
            values, inverse = np.unique(self.phase, return_inverse=True)
            if values.size * 4 <= self.dim:
                values.flags.writeable = False
                inverse.flags.writeable = False
                self._phase_groups = (values, inverse)
            self._phase_groups_known = True
        return self._phase_groups

    def readout_adjusted(self, flip_probs: Mapping[int, float]) -> np.ndarray:
        """The cut diagonal after an analytic readout-error channel.

        ``flip_probs`` maps a *logical* qubit to its classical bit-flip
        probability (for a compiled circuit, the readout error of the
        physical qubit it is measured on).  Returns ``c'`` with
        ``c'(z) = E[c(y)]`` over independent per-bit flips of ``z`` —
        exact, no readout sampling needed.
        """
        values = np.array(self.cut, dtype=float)
        indices = np.arange(self.dim, dtype=np.int64)
        for q in sorted(flip_probs):
            p = float(flip_probs[q])
            if p <= 0.0:
                continue
            values = (1.0 - p) * values + p * values[indices ^ (1 << q)]
        return values

    def __repr__(self) -> str:
        return (
            f"CostDiagonal(num_qubits={self.num_qubits}, "
            f"num_edges={len(self.edges)}, "
            f"fingerprint={self.fingerprint[:12]})"
        )


# ----------------------------------------------------------------------
# interning registry (the store's in-process tier)
# ----------------------------------------------------------------------
_DIAGONALS = FingerprintRegistry(
    "diagonals", env_var="REPRO_DIAGONAL_CAPACITY", default_capacity=128
)

#: Don't publish diagonals above this many qubits into shared memory:
#: cut+phase are 2 * 2^n * 8 bytes, and one 2^24 pair is already 256 MiB.
_SHM_DIAGONAL_MAX_QUBITS = 20


def _adopt_shared_tables(diagonal: CostDiagonal) -> None:
    """Resolve cut/phase vectors zero-copy from the shared-memory tier."""
    arrays = shared_tier().resolve(f"diag:{diagonal.fingerprint}")
    if arrays is None:
        return
    cut = arrays.get("cut")
    phase = arrays.get("phase")
    if (
        cut is not None
        and phase is not None
        and cut.shape == (diagonal.dim,)
        and phase.shape == (diagonal.dim,)
    ):
        diagonal._cut = cut
        diagonal._phase = phase


def _publish_shared_tables(diagonal: CostDiagonal) -> None:
    """Compute and publish cut/phase for other processes to adopt.

    The tables are forced eagerly here — on the intern-miss path only —
    so pool workers that later adopt them never materialise their own
    2^n vectors.  Oversized diagonals stay process-private.
    """
    if diagonal.num_qubits > _SHM_DIAGONAL_MAX_QUBITS:
        return
    shared_tier().publish(
        f"diag:{diagonal.fingerprint}",
        {"cut": diagonal.cut, "phase": diagonal.phase},
    )


def cost_diagonal(problem) -> CostDiagonal:
    """The shared :class:`CostDiagonal` for this problem content.

    Accepts a :class:`~repro.qaoa.problems.QAOAProgram` or a
    :class:`~repro.qaoa.problems.MaxCutProblem` (duck-typed on
    ``num_qubits``/``num_nodes``, ``edges`` and optional ``linear``).
    Content-equal problems — even across distinct objects, edge orders or
    QAOA parameter sets — return the *same* diagonal, so its tables are
    computed once.  The registry is a bounded LRU
    (``REPRO_DIAGONAL_CAPACITY``, default 128); on an intern miss the
    2^n cut/phase tables are adopted zero-copy from the shared-memory
    tier when any process already published them, and published
    otherwise.
    """
    num_qubits = getattr(problem, "num_qubits", None)
    if num_qubits is None:
        num_qubits = problem.num_nodes
    candidate = CostDiagonal(
        num_qubits, problem.edges, getattr(problem, "linear", None)
    )
    diagonal, hit = _DIAGONALS.intern(candidate.fingerprint, lambda: candidate)
    if not hit:
        _adopt_shared_tables(diagonal)
        if diagonal._cut is None:
            _publish_shared_tables(diagonal)
    return diagonal


def clear_diagonal_registry() -> None:
    """Empty the diagonal registry and reset its counters (tests and
    cold-start benchmarking)."""
    _DIAGONALS.clear()


def diagonal_registry_stats() -> dict:
    """Registry size and hit/miss counters (telemetry).  The same
    counters appear in :func:`repro.store.store_stats` under
    ``diagonals``."""
    stats = _DIAGONALS.stats()
    return {
        "hits": stats["hits"],
        "misses": stats["misses"],
        "evictions": stats["evictions"],
        "diagonals": stats["size"],
        "capacity": stats["capacity"],
    }


# ----------------------------------------------------------------------
# noiseless fast path
# ----------------------------------------------------------------------
def _apply_single(
    state: np.ndarray, matrix: np.ndarray, qubit: int, num_qubits: int
) -> np.ndarray:
    """Apply a 2x2 matrix to one qubit of a flat ``2^n`` state."""
    axis = num_qubits - 1 - qubit
    tensor = np.moveaxis(state.reshape((2,) * num_qubits), axis, 0)
    out = np.empty_like(tensor)
    out[0] = matrix[0, 0] * tensor[0] + matrix[0, 1] * tensor[1]
    out[1] = matrix[1, 0] * tensor[0] + matrix[1, 1] * tensor[1]
    return np.moveaxis(out, 0, axis).reshape(-1)


def _rx_matrix(theta: float) -> np.ndarray:
    c, s = np.cos(theta / 2.0), np.sin(theta / 2.0)
    return np.array([[c, -1.0j * s], [-1.0j * s, c]], dtype=complex)


def qaoa_statevector(program, diagonal: Optional[CostDiagonal] = None) -> np.ndarray:
    """The exact logical QAOA statevector in ``O(p)`` dense passes.

    Equals gate-by-gate evolution of the logical circuit *including global
    phase*: uniform superposition, then per level one elementwise
    ``exp(-i * gamma * D)`` multiply and ``n`` axis-wise RX mixers.
    Returns a flat ``2^n`` little-endian vector.
    """
    n = program.num_qubits
    diag = diagonal if diagonal is not None else cost_diagonal(program)
    if diag.num_qubits != n:
        raise ValueError(
            f"diagonal is over {diag.num_qubits} qubits, program has {n}"
        )
    dim = 1 << n
    state = np.full(dim, 1.0 / np.sqrt(dim), dtype=complex)
    phase = diag.phase
    for level in range(program.p):
        gamma = program.levels[level].gamma
        state = state * np.exp(-1j * gamma * phase)
        mixer = _rx_matrix(program.mixer_angle(level))
        for q in range(n):
            state = _apply_single(state, mixer, q, n)
    return state


def _apply_rx_batch(
    src: np.ndarray,
    dst: np.ndarray,
    cos_half: np.ndarray,
    sin_half: np.ndarray,
    num_qubits: int,
) -> Tuple[np.ndarray, np.ndarray]:
    """Apply per-column RX mixers to every qubit of a ``(2^n, batch)``
    stack.

    The batch axis sits *last* so every ufunc below streams over
    contiguous batch-length runs regardless of which qubit is being
    mixed — with batch-first layout the ``qubit = 0`` butterfly
    degenerates to stride-one-element views and the pass goes scalar.
    ``cos_half``/``sin_half`` hold cos/sin of each column's half-angle
    and broadcast against that last axis.  Ping-pongs between ``src``
    and ``dst`` (one butterfly per qubit, two fused multiply-adds per
    output half, no temporaries beyond the pair); returns the
    ``(result, scratch)`` buffer pair.
    """
    batch = src.shape[-1]
    s = -1.0j * sin_half
    for qubit in range(num_qubits):
        s4 = src.reshape(-1, 2, 1 << qubit, batch)
        d4 = dst.reshape(-1, 2, 1 << qubit, batch)
        lo, hi = s4[:, 0], s4[:, 1]
        np.multiply(lo, cos_half, out=d4[:, 0])
        d4[:, 0] += hi * s
        np.multiply(lo, s, out=d4[:, 1])
        d4[:, 1] += hi * cos_half
        src, dst = dst, src
    return src, dst


def _angle_matrix(angles, levels: Optional[int], name: str) -> np.ndarray:
    out = np.asarray(angles, dtype=float)
    if out.ndim == 1:
        out = out[:, None]
    if out.ndim != 2:
        raise ValueError(f"{name} must be 1-D or 2-D, got shape {out.shape}")
    if levels is not None and out.shape[1] != levels:
        raise ValueError(
            f"{name} has {out.shape[1]} levels per row, expected {levels}"
        )
    return out


def qaoa_statevector_batch(
    problem,
    gammas,
    betas,
    diagonal: Optional[CostDiagonal] = None,
) -> np.ndarray:
    """Exact logical QAOA statevectors for a *batch* of angle points.

    ``gammas``/``betas`` are ``(n_angles, p)`` (or ``(n_angles,)`` for
    ``p = 1``): row ``k`` is one full parameter assignment.  All rows
    evolve together — one ``exp(-i * gamma_k * D)`` broadcast against the
    shared cost diagonal per level, then batched axis-wise RX mixers —
    so a 32-point angle grid costs one numpy pass instead of 32 circuit
    evaluations.  Returns a ``(n_angles, 2^n)`` little-endian array whose
    row ``k`` equals ``qaoa_statevector(problem.to_program(row_k))`` to
    machine precision.

    ``problem`` is anything :func:`cost_diagonal` accepts: a
    ``QAOAProgram``, ``MaxCutProblem``, ``IsingProblem``, or any object
    with ``num_qubits``/``edges``/``linear``.
    """
    diag = diagonal if diagonal is not None else cost_diagonal(problem)
    gamma_rows = _angle_matrix(gammas, None, "gammas")
    beta_rows = _angle_matrix(betas, gamma_rows.shape[1], "betas")
    if beta_rows.shape[0] != gamma_rows.shape[0]:
        raise ValueError(
            f"gammas has {gamma_rows.shape[0]} rows, betas has "
            f"{beta_rows.shape[0]}"
        )
    n = diag.num_qubits
    n_angles, levels = gamma_rows.shape
    dim = 1 << n
    # Work in (2^n, batch) layout — batch contiguous innermost — and
    # transpose on return; see _apply_rx_batch for why.
    states = np.full((dim, n_angles), 1.0 / np.sqrt(dim), dtype=complex)
    scratch = np.empty_like(states)
    groups = diag.phase_groups
    for level in range(levels):
        coeff = -1j * gamma_rows[:, level]
        if groups is None:
            states *= np.exp(np.multiply.outer(diag.phase, coeff))
        else:
            # Degenerate diagonal: exponentiate one row per distinct
            # phase value and gather, instead of a dense 2^n exp.
            values, inverse = groups
            states *= np.exp(np.multiply.outer(values, coeff))[inverse]
        # mixer_angle = 2 * beta, so the RX half-angle is beta itself
        states, scratch = _apply_rx_batch(
            states,
            scratch,
            np.cos(beta_rows[:, level]),
            np.sin(beta_rows[:, level]),
            n,
        )
    return states.T


def expectation_batch(
    problem,
    gammas,
    betas,
    values: Optional[np.ndarray] = None,
    diagonal: Optional[CostDiagonal] = None,
    max_batch_amplitudes: int = 1 << 22,
) -> np.ndarray:
    """Batched exact expectations ``<psi_k| V |psi_k>`` over angle rows.

    ``values`` is the diagonal observable per basis state; it defaults
    to the problem's own classical cost vector (``cost_values()`` when
    the problem exposes one — offset and linear fields included — else
    the shared diagonal's cut values).  Large grids are processed in
    chunks of at most ``max_batch_amplitudes`` amplitudes so an n-qubit
    sweep never materialises more than ~64 MiB of statevectors at once
    while keeping every chunk fully vectorized.
    """
    diag = diagonal if diagonal is not None else cost_diagonal(problem)
    gamma_rows = _angle_matrix(gammas, None, "gammas")
    beta_rows = _angle_matrix(betas, gamma_rows.shape[1], "betas")
    if beta_rows.shape[0] != gamma_rows.shape[0]:
        raise ValueError(
            f"gammas has {gamma_rows.shape[0]} rows, betas has "
            f"{beta_rows.shape[0]}"
        )
    if values is None:
        cost_fn = getattr(problem, "cost_values", None)
        obs = cost_fn() if cost_fn is not None else diag.cut
    else:
        obs = np.asarray(values, dtype=float)
    dim = 1 << diag.num_qubits
    if obs.shape != (dim,):
        raise ValueError(f"values must have shape ({dim},), got {obs.shape}")
    n_angles = gamma_rows.shape[0]
    chunk = max(1, int(max_batch_amplitudes) // dim)
    out = np.empty(n_angles, dtype=float)
    for start in range(0, n_angles, chunk):
        stop = min(start + chunk, n_angles)
        states = qaoa_statevector_batch(
            problem,
            gamma_rows[start:stop],
            beta_rows[start:stop],
            diagonal=diag,
        )
        # Weighted probabilities in C layout, then a per-row pairwise
        # sum over the contiguous last axis: each angle point's
        # reduction sees only its own row, in a fixed order, so the
        # grid is bit-identical whatever chunk size it ran at.
        probs = np.empty(states.shape)
        np.multiply(states.real, states.real, out=probs)
        probs += states.imag**2
        probs *= obs
        out[start:stop] = probs.sum(axis=1)
    return out


# ----------------------------------------------------------------------
# ARG-equivalence verification of compiled circuits
# ----------------------------------------------------------------------
@dataclasses.dataclass(frozen=True)
class FastPathPlan:
    """Verdict of :func:`fastpath_plan`.

    Attributes:
        ok: Whether the compiled circuit is ARG-equivalent to the logical
            program (permutation via the recorded final mapping).
        reason: Why the fast path was refused (``None`` when ``ok``).
    """

    ok: bool
    reason: Optional[str] = None


def fastpath_plan(compiled) -> FastPathPlan:
    """Prove a compiled circuit ARG-equivalent to its logical program.

    Walks the physical instruction stream tracking the SWAP-updated
    physical→logical ownership and, per logical qubit, its progress
    through the canonical sequence ``H → level-0 diagonals → RX →
    level-1 diagonals → RX → ... → measure``.  Physical schedulers
    interleave gates on disjoint qubits freely (they commute), so the
    only ordering the proof needs is *per qubit*: a CPHASE requires both
    endpoints at the same level with that level's gate still pending, a
    mixer RX requires every pending diagonal touching its qubit consumed.
    Any reordering the walk accepts therefore differs from the canonical
    level sequence only by transpositions of commuting gates — disjoint
    supports, or same-level diagonals — hence is unitary-equal.  The walk
    must end in the recorded ``final_mapping`` with every logical qubit
    measured; any other structure refuses the fast path and the caller
    falls back to gate-by-gate simulation.
    """
    encoding = getattr(compiled, "encoding", "direct")
    if encoding != "direct":
        return FastPathPlan(
            False, f"encoding {encoding!r} has its own verifier"
        )
    program = compiled.program
    n = program.num_qubits
    p_levels = program.p

    initial = {int(q): int(p) for q, p in compiled.initial_mapping.items()}
    if sorted(initial) != list(range(n)):
        return FastPathPlan(False, "initial mapping must cover logical qubits")
    if len(set(initial.values())) != n:
        return FastPathPlan(False, "initial mapping is not injective")
    owner: Dict[int, int] = {p: q for q, p in initial.items()}

    h_seen: set = set()
    # mixer RXs consumed so far per logical qubit == its current level
    level_of = [0] * n
    # per level: pending diagonal-gate multisets and per-qubit touch counts
    pending_cphase = []
    pending_rz = []
    touches = []  # touches[lv][q] = pending diagonal gates involving q
    for lv in range(p_levels):
        cp = Counter(
            ((min(a, b), max(a, b)), angle)
            for a, b, angle in program.cphase_gates(lv)
        )
        rz = Counter(program.rz_gates(lv))
        touch = [0] * n
        for (a, b), count in Counter(k[0] for k in cp.elements()).items():
            touch[a] += count
            touch[b] += count
        for q, count in Counter(k[0] for k in rz.elements()).items():
            touch[q] += count
        pending_cphase.append(cp)
        pending_rz.append(rz)
        touches.append(touch)
    measured: set = set()

    for inst in compiled.circuit:
        name = inst.name
        if name == "barrier":
            continue
        if name == "measure":
            q = owner.get(inst.qubits[0])
            if q is not None and level_of[q] != p_levels:
                return FastPathPlan(
                    False, f"logical qubit {q} measured before its last mixer"
                )
            measured.add(inst.qubits[0])
            continue
        if name == "swap":
            pa, pb = inst.qubits
            oa, ob = owner.pop(pa, None), owner.pop(pb, None)
            if ob is not None:
                owner[pa] = ob
            if oa is not None:
                owner[pb] = oa
            continue
        if name == "h":
            q = owner.get(inst.qubits[0])
            if q is None:
                return FastPathPlan(False, "H on an unmapped physical qubit")
            if q in h_seen:
                return FastPathPlan(False, "duplicate Hadamard")
            h_seen.add(q)
            continue
        if name == "cphase":
            qa = owner.get(inst.qubits[0])
            qb = owner.get(inst.qubits[1])
            if qa is None or qb is None:
                return FastPathPlan(False, "CPHASE on an unmapped qubit")
            if qa not in h_seen or qb not in h_seen:
                return FastPathPlan(False, "CPHASE before Hadamard")
            lv = level_of[qa]
            if lv != level_of[qb]:
                return FastPathPlan(
                    False,
                    f"CPHASE across mixer levels {lv}/{level_of[qb]}",
                )
            if lv >= p_levels:
                return FastPathPlan(False, "CPHASE after the final mixer")
            key = ((min(qa, qb), max(qa, qb)), inst.params[0])
            if pending_cphase[lv][key] <= 0:
                return FastPathPlan(
                    False, f"unexpected CPHASE {key} in level {lv}"
                )
            pending_cphase[lv][key] -= 1
            touches[lv][qa] -= 1
            touches[lv][qb] -= 1
            continue
        if name == "rz":
            q = owner.get(inst.qubits[0])
            if q is None:
                return FastPathPlan(False, "RZ on an unmapped qubit")
            if q not in h_seen:
                return FastPathPlan(False, "RZ before Hadamard")
            lv = level_of[q]
            if lv >= p_levels:
                return FastPathPlan(False, "RZ after the final mixer")
            key = (q, inst.params[0])
            if pending_rz[lv][key] <= 0:
                return FastPathPlan(
                    False, f"unexpected RZ {key} in level {lv}"
                )
            pending_rz[lv][key] -= 1
            touches[lv][q] -= 1
            continue
        if name == "rx":
            q = owner.get(inst.qubits[0])
            if q is None:
                return FastPathPlan(False, "RX on an unmapped qubit")
            if q not in h_seen:
                return FastPathPlan(False, "RX before Hadamard")
            lv = level_of[q]
            if lv >= p_levels:
                return FastPathPlan(False, "RX after the final mixer")
            if inst.params[0] != program.mixer_angle(lv):
                return FastPathPlan(False, f"mixer angle mismatch in level {lv}")
            if touches[lv][q] > 0:
                return FastPathPlan(
                    False,
                    f"mixer on logical qubit {q} before its level-{lv} "
                    f"cost gates completed",
                )
            level_of[q] = lv + 1
            continue
        return FastPathPlan(
            False, f"gate {name!r} outside the QAOA fast-path gate set"
        )

    if len(h_seen) != n:
        return FastPathPlan(False, "incomplete Hadamard prefix")
    if any(lv != p_levels for lv in level_of):
        return FastPathPlan(False, "circuit ended before the final mixer")
    if any(
        v > 0
        for lv in range(p_levels)
        for counter in (pending_cphase[lv], pending_rz[lv])
        for v in counter.values()
    ):
        return FastPathPlan(False, "cost gates missing from the circuit")
    final = {q: p for p, q in owner.items()}
    recorded = {int(q): int(p) for q, p in compiled.final_mapping.items()}
    if final != recorded:
        return FastPathPlan(False, "final mapping mismatch")
    unmeasured = [q for q in range(n) if final[q] not in measured]
    if unmeasured:
        return FastPathPlan(
            False, f"logical qubit(s) {unmeasured} never measured"
        )
    return FastPathPlan(True, None)


def parity_plan(compiled) -> FastPathPlan:
    """Prove a parity-encoded compiled circuit equivalent to its program.

    The parity circuit is CNOT-conjugated diagonal rotations plus local
    mixers, so the proof is a phase-polynomial walk: each physical wire
    carries a GF(2) mask over parity slots (``H`` on slot ``s``'s home
    initialises mask ``1 << s``; ``CNOT(a, b)`` XORs ``mask[a]`` into
    ``mask[b]``; SWAPs relocate masks).  Every ``RZ`` must consume a
    pending phase term of its wire's exact current mask — the per-level
    multiset of field terms ``(1 << s, -gamma * w_s)`` and constraint
    terms ``(XOR of cycle slots, -gamma * Omega)`` derived from
    :class:`~repro.compiler.parity.ParityLayout` — and every mixer
    ``RX`` requires its wire restored to a singleton mask no other wire
    shares, with that slot's pending terms drained.  The walk must end
    with all masks singleton, matching the recorded ``final_mapping``,
    and every slot's home measured.  Any accepted circuit therefore
    implements exactly ``prod_levels [mixer . exp(-i gamma D(y))]`` over
    the parity basis, which :func:`_evaluate_parity` evolves directly.
    """
    from ..compiler.parity import (
        ParityLayout,
        parity_constraint_angle,
        parity_field_angle,
    )

    program = compiled.program
    try:
        layout = ParityLayout.from_program(program)
    except ValueError as exc:
        return FastPathPlan(False, str(exc))
    info = getattr(compiled, "encoding_info", None) or {}
    strength = float(info.get("constraint_strength", 2.0))
    K = layout.num_slots
    p_levels = program.p

    initial = {int(s): int(p) for s, p in compiled.initial_mapping.items()}
    if sorted(initial) != list(range(K)):
        return FastPathPlan(False, "initial mapping must cover parity slots")
    if len(set(initial.values())) != K:
        return FastPathPlan(False, "initial mapping is not injective")
    owner: Dict[int, int] = {p: s for s, p in initial.items()}
    masks: Dict[int, int] = {}

    h_seen: set = set()
    level_of = [0] * K
    # per level: pending (mask, angle) multisets and per-slot touch counts
    pending = []
    touches = []
    for lv in range(p_levels):
        gamma = program.levels[lv].gamma
        terms: Counter = Counter()
        for s, w in enumerate(layout.weights):
            terms[(1 << s, parity_field_angle(gamma, w))] += 1
        angle = parity_constraint_angle(gamma, strength)
        for cycle in layout.constraints:
            mask = 0
            for s in cycle:
                mask ^= 1 << s
            terms[(mask, angle)] += 1
        touch = [0] * K
        for (mask, _), count in terms.items():
            for s in range(K):
                if (mask >> s) & 1:
                    touch[s] += count
        pending.append(terms)
        touches.append(touch)
    measured: set = set()

    for inst in compiled.circuit:
        name = inst.name
        if name == "barrier":
            continue
        if name == "measure":
            phys = inst.qubits[0]
            mask = masks.get(phys)
            if mask is not None:
                if mask == 0 or mask & (mask - 1):
                    return FastPathPlan(
                        False, "measurement of an unrestored parity line"
                    )
                s = mask.bit_length() - 1
                if level_of[s] != p_levels:
                    return FastPathPlan(
                        False,
                        f"parity slot {s} measured before its last mixer",
                    )
            measured.add(phys)
            continue
        if name == "swap":
            pa, pb = inst.qubits
            oa, ob = owner.pop(pa, None), owner.pop(pb, None)
            ma, mb = masks.pop(pa, None), masks.pop(pb, None)
            if ob is not None:
                owner[pa] = ob
            if oa is not None:
                owner[pb] = oa
            if mb is not None:
                masks[pa] = mb
            if ma is not None:
                masks[pb] = ma
            continue
        if name == "h":
            s = owner.get(inst.qubits[0])
            if s is None:
                return FastPathPlan(False, "H on an unmapped physical qubit")
            if s in h_seen:
                return FastPathPlan(False, "duplicate Hadamard")
            h_seen.add(s)
            masks[inst.qubits[0]] = 1 << s
            continue
        if name == "cnot":
            ma = masks.get(inst.qubits[0])
            mb = masks.get(inst.qubits[1])
            if ma is None or mb is None:
                return FastPathPlan(
                    False, "CNOT before Hadamard or on an unmapped qubit"
                )
            masks[inst.qubits[1]] = mb ^ ma
            continue
        if name == "rz":
            mask = masks.get(inst.qubits[0])
            if mask is None:
                return FastPathPlan(
                    False, "RZ before Hadamard or on an unmapped qubit"
                )
            if mask == 0:
                return FastPathPlan(False, "RZ on a cancelled parity line")
            slots = [s for s in range(K) if (mask >> s) & 1]
            lv = level_of[slots[0]]
            if any(level_of[s] != lv for s in slots):
                return FastPathPlan(False, "RZ mask spans mixer levels")
            if lv >= p_levels:
                return FastPathPlan(False, "RZ after the final mixer")
            key = (mask, inst.params[0])
            if pending[lv][key] <= 0:
                return FastPathPlan(
                    False,
                    f"unexpected phase term (mask {mask:#x}, "
                    f"angle {inst.params[0]!r}) in level {lv}",
                )
            pending[lv][key] -= 1
            for s in slots:
                touches[lv][s] -= 1
            continue
        if name == "rx":
            phys = inst.qubits[0]
            mask = masks.get(phys)
            if mask is None:
                return FastPathPlan(
                    False, "RX before Hadamard or on an unmapped qubit"
                )
            if mask == 0 or mask & (mask - 1):
                return FastPathPlan(False, "mixer on an unrestored parity line")
            s = mask.bit_length() - 1
            if any(
                q != phys and (m >> s) & 1 for q, m in masks.items()
            ):
                return FastPathPlan(
                    False, f"mixer on slot {s} while another wire carries it"
                )
            lv = level_of[s]
            if lv >= p_levels:
                return FastPathPlan(False, "RX after the final mixer")
            if inst.params[0] != program.mixer_angle(lv):
                return FastPathPlan(
                    False, f"mixer angle mismatch in level {lv}"
                )
            if touches[lv][s] > 0:
                return FastPathPlan(
                    False,
                    f"mixer on parity slot {s} before its level-{lv} "
                    f"phase terms completed",
                )
            level_of[s] = lv + 1
            continue
        return FastPathPlan(
            False, f"gate {name!r} outside the parity fast-path gate set"
        )

    if len(h_seen) != K:
        return FastPathPlan(False, "incomplete Hadamard prefix")
    if any(lv != p_levels for lv in level_of):
        return FastPathPlan(False, "circuit ended before the final mixer")
    if any(
        v > 0 for lv in range(p_levels) for v in pending[lv].values()
    ):
        return FastPathPlan(False, "phase terms missing from the circuit")
    final: Dict[int, int] = {}
    for phys, mask in masks.items():
        if mask == 0 or mask & (mask - 1):
            return FastPathPlan(
                False, "parity line not restored to a single slot"
            )
        s = mask.bit_length() - 1
        if s in final:
            return FastPathPlan(False, f"slot {s} carried by two wires")
        final[s] = phys
    recorded = {int(s): int(p) for s, p in compiled.final_mapping.items()}
    if final != recorded:
        return FastPathPlan(False, "final mapping mismatch")
    unmeasured = [s for s in range(K) if final[s] not in measured]
    if unmeasured:
        return FastPathPlan(
            False, f"parity slot(s) {unmeasured} never measured"
        )
    return FastPathPlan(True, None)


# ----------------------------------------------------------------------
# noisy logical-frame trajectories
# ----------------------------------------------------------------------
def logical_trajectory(
    compiled,
    noise: NoiseModel,
    rng: np.random.Generator,
    diagonal: Optional[CostDiagonal] = None,
    durations=None,
) -> Tuple[np.ndarray, int]:
    """One noisy Pauli trajectory evolved in the ``2^n`` logical frame.

    Replays the physical instruction stream of ``compiled.circuit`` —
    SWAPs become ownership bookkeeping, CPHASE/RZ become accumulated
    diagonal phases (flushed in one ``exp`` when a non-diagonal operation
    arrives), H/RX become axis-wise 2x2 multiplies — while consuming
    random draws in **exactly** the order of
    :meth:`~repro.sim.noise.NoisySimulator.run_trajectory`, so the same
    generator realises the same noise on both paths.  Pauli noise on
    unmapped physical qubits cannot reach decoded logical bits; X/Y there
    toggle a classical dirt bit, Z is a global phase.

    Requires a circuit that :func:`fastpath_plan` accepts.

    Returns:
        ``(state, dirt_mask)`` — the flat logical statevector and the
        basis-state content of the unmapped physical qubits (bit ``p``
        set when physical qubit ``p`` was flipped to ``|1>`` by noise),
        enough to reconstruct the full physical distribution.
    """
    circuit = compiled.circuit
    program = compiled.program
    n = program.num_qubits
    n_phys = circuit.num_qubits
    diag = diagonal if diagonal is not None else cost_diagonal(program)
    track_time = noise.t2_ns is not None
    if durations is None and track_time:
        from ..circuits.timing import DurationModel

        durations = DurationModel()

    owner: Dict[int, int] = {
        int(p): int(q) for q, p in compiled.initial_mapping.items()
    }
    dirt: Dict[int, int] = {}
    state = np.zeros(1 << n, dtype=complex)
    state[0] = 1.0
    acc: Optional[np.ndarray] = None  # pending diagonal phase angles

    def flush() -> None:
        nonlocal state, acc
        if acc is not None:
            state = state * np.exp(-1j * acc)
            acc = None

    def add_diag(coeff: float, vector: np.ndarray) -> None:
        nonlocal acc
        if acc is None:
            acc = coeff * vector
        else:
            acc += coeff * vector

    def apply_pauli(pauli: str, phys: int) -> None:
        nonlocal state
        q = owner.get(phys)
        if q is None:
            # Unreachable by any decoded logical bit: X/Y flip the dirt
            # bit, Z is a global phase on a basis state.
            if pauli in ("x", "y"):
                dirt[phys] = dirt.get(phys, 0) ^ 1
            return
        if pauli == "z":
            state = state * diag.sign(q)  # diagonal — no flush needed
            return
        flush()
        matrix = _PAULI_X if pauli == "x" else _PAULI_Y
        state = _apply_single(state, matrix, q, n)

    clocks = [0.0] * n_phys if track_time else None

    def dephase(phys: int, idle_ns: float) -> None:
        if idle_ns <= 0.0:
            return
        p_flip = 0.5 * (1.0 - np.exp(-idle_ns / noise.t2_ns))
        if rng.random() < p_flip:
            apply_pauli("z", phys)

    for inst in circuit:
        if inst.is_directive or inst.is_measurement:
            if track_time and inst.is_directive and inst.qubits:
                sync = max(clocks[q] for q in inst.qubits)
                for q in inst.qubits:
                    clocks[q] = sync
            continue
        if track_time:
            start = max(clocks[q] for q in inst.qubits)
            for q in inst.qubits:
                dephase(q, start - clocks[q])
            duration = durations.duration(inst)
            for q in inst.qubits:
                clocks[q] = start + duration
        name = inst.name
        if name == "swap":
            pa, pb = inst.qubits
            oa, ob = owner.pop(pa, None), owner.pop(pb, None)
            da, db = dirt.pop(pa, 0), dirt.pop(pb, 0)
            if ob is not None:
                owner[pa] = ob
            elif db:
                dirt[pa] = db
            if oa is not None:
                owner[pb] = oa
            elif da:
                dirt[pb] = da
        elif name == "cphase":
            qa, qb = owner[inst.qubits[0]], owner[inst.qubits[1]]
            add_diag(0.5 * inst.params[0], diag.szz(qa, qb))
        elif name == "rz":
            add_diag(0.5 * inst.params[0], diag.sign(owner[inst.qubits[0]]))
        elif name == "h":
            flush()
            state = _apply_single(state, _HADAMARD, owner[inst.qubits[0]], n)
        elif name == "rx":
            flush()
            state = _apply_single(
                state, _rx_matrix(inst.params[0]), owner[inst.qubits[0]], n
            )
        else:
            raise ValueError(
                f"gate {name!r} outside the fast-path gate set; run "
                f"fastpath_plan() before logical_trajectory()"
            )
        # Noise draws, in run_trajectory's exact order.
        if inst.is_two_qubit:
            p = noise.two_qubit_prob(*inst.qubits)
            if p > 0.0 and rng.random() < p:
                pauli_a, pauli_b = _TWO_QUBIT_PAULIS[int(rng.integers(15))]
                if pauli_a != "i":
                    apply_pauli(pauli_a, inst.qubits[0])
                if pauli_b != "i":
                    apply_pauli(pauli_b, inst.qubits[1])
        else:
            q = inst.qubits[0]
            p = noise.single_qubit_depol.get(q, 0.0)
            if p > 0.0 and rng.random() < p:
                apply_pauli(_ONE_QUBIT_PAULIS[int(rng.integers(3))], q)
    if track_time:
        end = max(clocks) if clocks else 0.0
        for q in range(n_phys):
            dephase(q, end - clocks[q])
    flush()
    dirt_mask = 0
    for phys, bit in dirt.items():
        if bit:
            dirt_mask |= 1 << phys
    return state, dirt_mask


# ----------------------------------------------------------------------
# index plumbing between the logical and physical frames
# ----------------------------------------------------------------------
def decode_indices(
    indices: np.ndarray, final_mapping: Mapping[int, int], num_logical: int
) -> np.ndarray:
    """Physical little-endian basis indices → logical indices (vectorised
    form of :func:`repro.qaoa.evaluation.decode_physical_counts`)."""
    indices = np.asarray(indices, dtype=np.int64)
    out = np.zeros_like(indices)
    for q in range(num_logical):
        out |= ((indices >> final_mapping[q]) & 1) << q
    return out


def _physical_index_map(
    final_mapping: Mapping[int, int], num_logical: int
) -> np.ndarray:
    """Logical basis index → physical basis index under a final mapping."""
    logical = np.arange(1 << num_logical, dtype=np.int64)
    phys = np.zeros_like(logical)
    for q in range(num_logical):
        phys |= ((logical >> q) & 1) << final_mapping[q]
    return phys


# ----------------------------------------------------------------------
# parity-frame evaluation
# ----------------------------------------------------------------------
def _evaluate_parity(
    compiled,
    *,
    noise,
    shots,
    trajectories,
    rng,
    mode,
    durations,
    use_fastpath,
):
    """Evaluate a parity-encoded compiled circuit (``encoding="parity"``).

    The fast ideal path evolves the ``2^K`` parity register directly —
    one elementwise ``exp(-i gamma D(y))`` multiply per level against
    :meth:`~repro.compiler.parity.ParityLayout.phase_vector` plus
    axis-wise RX mixers — admitted only after :func:`parity_plan` proves
    the physical stream implements exactly that product.  Measured slot
    bits decode to logical assignments by XOR along spanning-tree paths
    before the cut table is consulted, so ``r0``/``rh`` are directly
    comparable with direct-encoding evaluations of the same problem.
    The noisy side is always gate-by-gate (the dense parity constraint
    gadgets have no cheap logical-frame replay), with readout applied
    analytically in ``exact`` mode on the slot homes only — flips on
    unmapped physical qubits cannot reach any decoded bit.
    """
    from ..compiler.parity import ParityLayout, parity_decode_indices

    program = compiled.program
    n_phys = compiled.circuit.num_qubits
    layout = ParityLayout.from_program(program)
    K = layout.num_slots
    info = getattr(compiled, "encoding_info", None) or {}
    strength = float(info.get("constraint_strength", 2.0))
    mapping = {int(s): int(p) for s, p in compiled.final_mapping.items()}
    timings: Dict[str, float] = {}

    tick = time.perf_counter()
    diag = cost_diagonal(program)
    max_cut = diag.max_value
    if max_cut == 0.0:
        raise ValueError("problem has zero maximum cut")
    # cut value of every parity-basis index, through the decode gauge
    slot_cut = diag.cut[
        parity_decode_indices(np.arange(1 << K, dtype=np.int64), layout)
    ]
    timings["diagonal"] = time.perf_counter() - tick

    if use_fastpath:
        plan = parity_plan(compiled)
    else:
        plan = FastPathPlan(False, "fast path disabled by caller")
    fast = plan.ok
    phys_map = _physical_index_map(mapping, K) if fast else None

    # -- ideal side ----------------------------------------------------
    tick = time.perf_counter()
    if fast:
        phase = layout.phase_vector(strength)
        state = np.full(1 << K, 1.0 / np.sqrt(1 << K), dtype=complex)
        for level in range(program.p):
            gamma = program.levels[level].gamma
            state = state * np.exp(-1j * gamma * phase)
            mixer = _rx_matrix(program.mixer_angle(level))
            for s in range(K):
                state = _apply_single(state, mixer, s, K)
        probs_slots = np.abs(state) ** 2
        if mode == "exact":
            r0 = float(np.dot(probs_slots, slot_cut)) / max_cut
        else:
            probs_phys = np.zeros(1 << n_phys)
            probs_phys[phys_map] = probs_slots
            probs_phys /= probs_phys.sum()
            sampled = rng.choice(1 << n_phys, size=shots, p=probs_phys)
            r0 = float(
                slot_cut[decode_indices(sampled, mapping, K)].mean()
            ) / max_cut
    else:
        from .statevector import StatevectorSimulator

        sim = StatevectorSimulator(max_qubits=max(n_phys, 24))
        if mode == "exact":
            probs_phys = sim.probabilities(compiled.circuit)
            phys_cut = slot_cut[
                decode_indices(np.arange(1 << n_phys), mapping, K)
            ]
            r0 = float(np.dot(probs_phys, phys_cut)) / max_cut
        else:
            sampled = sim.sample_indices(compiled.circuit, shots, rng)
            r0 = float(
                slot_cut[decode_indices(sampled, mapping, K)].mean()
            ) / max_cut
    timings["ideal"] = time.perf_counter() - tick

    # -- noisy side ----------------------------------------------------
    rh = None
    arg = None
    n_traj = trajectories
    if noise is not None:
        from .noise import NoisySimulator

        tick = time.perf_counter()
        nsim = NoisySimulator(
            noise, trajectories=trajectories, durations=durations
        )
        if mode == "exact":
            readout = slot_cut[
                decode_indices(np.arange(1 << n_phys), mapping, K)
            ].astype(float)
            indices = np.arange(1 << n_phys, dtype=np.int64)
            for s in range(K):
                p = noise.readout_flip.get(mapping[s], 0.0)
                if p <= 0.0:
                    continue
                readout = (1.0 - p) * readout + p * readout[
                    indices ^ (1 << mapping[s])
                ]
            total = 0.0
            for _ in range(n_traj):
                state = nsim.run_trajectory(compiled.circuit, rng)
                probs = np.abs(state) ** 2
                probs /= probs.sum()
                total += float(np.dot(probs, readout))
            rh = total / n_traj / max_cut
        else:
            n_traj = min(trajectories, shots)
            indices = nsim.sample_indices(compiled.circuit, shots, rng)
            rh = float(
                slot_cut[decode_indices(indices, mapping, K)].mean()
            ) / max_cut
        if r0 == 0.0:
            raise ValueError("noiseless approximation ratio r0 is zero")
        arg = 100.0 * (r0 - rh) / r0
        timings["noisy"] = time.perf_counter() - tick

    return EvalOutcome(
        r0=r0,
        rh=rh,
        arg=arg,
        shots=shots if mode == "sampled" else 0,
        trajectories=n_traj if noise is not None else 0,
        mode=mode,
        fastpath=fast,
        reason=plan.reason,
        timings=timings,
    )


# ----------------------------------------------------------------------
# the evaluation driver
# ----------------------------------------------------------------------
@dataclasses.dataclass
class EvalOutcome:
    """Result of one :func:`evaluate_fast` call.

    Attributes:
        r0: Noiseless approximation ratio of the compiled circuit.
        rh: Noisy ("hardware") approximation ratio; ``None`` when no
            noise model was supplied.
        arg: ``100 * (r0 - rh) / r0``; ``None`` without noise.
        shots: Samples per side (``sampled`` mode; 0 in ``exact`` mode).
        trajectories: Noise realisations averaged for ``rh``.
        mode: ``"sampled"`` (paper procedure, finite shots) or
            ``"exact"`` (expectation values, no sampling noise).
        fastpath: Whether the fast path was taken (else gate-by-gate
            fallback simulation produced the numbers).
        reason: Why the fast path was refused (``None`` when taken).
        timings: Per-stage wall seconds (``diagonal``/``ideal``/``noisy``).
    """

    r0: float
    rh: Optional[float]
    arg: Optional[float]
    shots: int
    trajectories: int
    mode: str
    fastpath: bool
    reason: Optional[str]
    timings: Dict[str, float]


def evaluate_fast(
    compiled,
    *,
    noise: Optional[NoiseModel] = None,
    shots: int = 4096,
    trajectories: int = 32,
    rng: Optional[np.random.Generator] = None,
    mode: str = "sampled",
    durations=None,
    use_fastpath: bool = True,
) -> EvalOutcome:
    """Evaluate ``r0``/``rh``/ARG of a compiled QAOA circuit in one pass.

    The cost diagonal is interned once per problem and reused for the
    ideal expectation, every noisy trajectory, and the analytic readout
    channel.  In ``sampled`` mode the random-draw order matches the
    gate-by-gate simulators exactly (ideal sampling, then per-trajectory
    noise draws and sampling, then readout flips), so a seeded generator
    reproduces the legacy pipeline's stream whether or not the fast path
    is taken.  In ``exact`` mode no sampling happens: ``r0`` is the exact
    expectation and ``rh`` averages exact per-trajectory expectations
    under the same noise realisations, with readout applied analytically
    to the diagonal.

    Args:
        compiled: A compiled result exposing ``circuit``, ``program``,
            ``initial_mapping``, ``final_mapping`` (e.g.
            :class:`repro.compiler.flow.CompiledQAOA`).
        noise: Noise model for the ``rh`` side; ``None`` evaluates only
            ``r0``.
        shots: Samples per side in ``sampled`` mode.
        trajectories: Noise realisations for ``rh``.
        rng: Random generator (shared across both sides, like the legacy
            pipeline).
        mode: ``"sampled"`` or ``"exact"``.
        durations: Gate-duration model for T2 timing (defaults to
            :class:`~repro.circuits.timing.DurationModel` when needed).
        use_fastpath: Force the gate-by-gate fallback when ``False``
            (benchmark baselines).
    """
    if mode not in ("sampled", "exact"):
        raise ValueError(f"unknown evaluation mode {mode!r}")
    if mode == "sampled" and shots < 1:
        raise ValueError(f"shots must be positive, got {shots}")
    if trajectories < 1:
        raise ValueError("need at least one trajectory")
    rng = rng if rng is not None else np.random.default_rng()
    encoding = getattr(compiled, "encoding", "direct")
    if encoding == "parity":
        return _evaluate_parity(
            compiled,
            noise=noise,
            shots=shots,
            trajectories=trajectories,
            rng=rng,
            mode=mode,
            durations=durations,
            use_fastpath=use_fastpath,
        )
    if encoding != "direct":
        raise ValueError(f"unknown circuit encoding {encoding!r}")
    program = compiled.program
    n = program.num_qubits
    n_phys = compiled.circuit.num_qubits
    mapping = {int(q): int(p) for q, p in compiled.final_mapping.items()}
    timings: Dict[str, float] = {}

    tick = time.perf_counter()
    diag = cost_diagonal(program)
    cut = diag.cut
    max_cut = diag.max_value
    if max_cut == 0.0:
        raise ValueError("problem has zero maximum cut")
    timings["diagonal"] = time.perf_counter() - tick

    if use_fastpath:
        plan = fastpath_plan(compiled)
    else:
        plan = FastPathPlan(False, "fast path disabled by caller")
    fast = plan.ok
    phys_map = _physical_index_map(mapping, n) if fast else None

    # -- ideal side ----------------------------------------------------
    tick = time.perf_counter()
    if fast:
        probs_logical = np.abs(qaoa_statevector(program, diag)) ** 2
        if mode == "exact":
            r0 = float(np.dot(probs_logical, cut)) / max_cut
        else:
            probs_phys = np.zeros(1 << n_phys)
            probs_phys[phys_map] = probs_logical
            probs_phys /= probs_phys.sum()
            sampled = rng.choice(1 << n_phys, size=shots, p=probs_phys)
            r0 = float(cut[decode_indices(sampled, mapping, n)].mean()) / max_cut
    else:
        from .statevector import StatevectorSimulator

        sim = StatevectorSimulator(max_qubits=max(n_phys, 24))
        if mode == "exact":
            probs_phys = sim.probabilities(compiled.circuit)
            phys_cut = cut[
                decode_indices(np.arange(1 << n_phys), mapping, n)
            ]
            r0 = float(np.dot(probs_phys, phys_cut)) / max_cut
        else:
            sampled = sim.sample_indices(compiled.circuit, shots, rng)
            r0 = float(cut[decode_indices(sampled, mapping, n)].mean()) / max_cut
    timings["ideal"] = time.perf_counter() - tick

    # -- noisy side ----------------------------------------------------
    rh = None
    arg = None
    n_traj = trajectories
    if noise is not None:
        tick = time.perf_counter()
        if mode == "exact":
            readout = diag.readout_adjusted(
                {q: noise.readout_flip.get(mapping[q], 0.0) for q in range(n)}
            )
            total = 0.0
            if fast:
                for _ in range(n_traj):
                    state, _ = logical_trajectory(
                        compiled, noise, rng, diag, durations
                    )
                    probs = np.abs(state) ** 2
                    probs /= probs.sum()
                    total += float(np.dot(probs, readout))
            else:
                from .noise import NoisySimulator

                nsim = NoisySimulator(
                    noise, trajectories=n_traj, durations=durations
                )
                phys_readout = readout[
                    decode_indices(np.arange(1 << n_phys), mapping, n)
                ]
                for _ in range(n_traj):
                    state = nsim.run_trajectory(compiled.circuit, rng)
                    probs = np.abs(state) ** 2
                    probs /= probs.sum()
                    total += float(np.dot(probs, phys_readout))
            rh = total / n_traj / max_cut
        else:
            n_traj = min(trajectories, shots)
            if fast:
                base, extra = divmod(shots, n_traj)
                chunks = []
                for t in range(n_traj):
                    state, dirt_mask = logical_trajectory(
                        compiled, noise, rng, diag, durations
                    )
                    probs_phys = np.zeros(1 << n_phys)
                    probs_phys[phys_map | dirt_mask] = np.abs(state) ** 2
                    probs_phys /= probs_phys.sum()
                    traj_shots = base + (1 if t < extra else 0)
                    if traj_shots == 0:
                        continue
                    chunks.append(
                        rng.choice(1 << n_phys, size=traj_shots, p=probs_phys)
                    )
                indices = np.concatenate(chunks)
                # Readout flips in NoisySimulator's exact draw order —
                # unmapped qubits consume draws too, for stream parity.
                for q in range(n_phys):
                    p = noise.readout_flip.get(q, 0.0)
                    if p <= 0.0:
                        continue
                    flips = rng.random(len(indices)) < p
                    indices[flips] ^= 1 << q
            else:
                from .noise import NoisySimulator

                nsim = NoisySimulator(
                    noise, trajectories=trajectories, durations=durations
                )
                indices = nsim.sample_indices(compiled.circuit, shots, rng)
            rh = float(cut[decode_indices(indices, mapping, n)].mean()) / max_cut
        if r0 == 0.0:
            raise ValueError("noiseless approximation ratio r0 is zero")
        arg = 100.0 * (r0 - rh) / r0
        timings["noisy"] = time.perf_counter() - tick

    return EvalOutcome(
        r0=r0,
        rh=rh,
        arg=arg,
        shots=shots if mode == "sampled" else 0,
        trajectories=n_traj if noise is not None else 0,
        mode=mode,
        fastpath=fast,
        reason=plan.reason,
        timings=timings,
    )
