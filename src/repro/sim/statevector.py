"""Dense statevector simulator.

This is the "noiseless simulator" role that qiskit plays in the paper: it
produces the ideal output distribution of a (compiled or uncompiled) QAOA
circuit, from which the noiseless approximation ratio ``r0`` of the ARG
metric is computed (Section V-A).

Conventions:

* Little-endian qubit order — basis state index ``i`` stores qubit ``q`` in
  bit ``(i >> q) & 1``; bitstrings returned by sampling are written
  most-significant-qubit first (``q_{n-1} ... q_1 q_0``), matching the
  common hardware convention.
* Measurements and barriers are skipped during state evolution; sampling
  measures every qubit at the end.  This is sufficient for QAOA circuits,
  which are measure-at-the-end by construction.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence

import numpy as np

from ..circuits import QuantumCircuit

__all__ = ["apply_gate", "StatevectorSimulator", "zero_state"]

_MAX_DENSE_QUBITS = 24  # 2^24 complex128 = 256 MiB; refuse beyond this.


def zero_state(num_qubits: int) -> np.ndarray:
    """The ``|0...0>`` state as a rank-``num_qubits`` tensor of shape (2,)*n."""
    state = np.zeros((2,) * num_qubits, dtype=complex)
    state[(0,) * num_qubits] = 1.0
    return state


def apply_gate(
    state: np.ndarray, matrix: np.ndarray, qubits: Sequence[int]
) -> np.ndarray:
    """Apply a k-qubit unitary ``matrix`` to ``state`` on ``qubits``.

    ``state`` is a rank-n tensor where tensor axis ``n-1-q`` holds qubit
    ``q`` (so that flattening yields little-endian indices).  ``matrix`` is
    ``(2^k, 2^k)`` with gate-qubit 0 as the least-significant bit of the
    matrix index, matching :mod:`repro.circuits.gates`.
    """
    n = state.ndim
    k = len(qubits)
    tensor = matrix.reshape((2,) * (2 * k))
    # Matrix-row bit j corresponds to gate qubit j (little endian), so the
    # reshaped output/input axes run over gate qubits k-1 .. 0.
    in_axes = [n - 1 - q for q in reversed(qubits)]
    moved = np.tensordot(tensor, state, axes=(list(range(k, 2 * k)), in_axes))
    return np.moveaxis(moved, range(k), in_axes)


class StatevectorSimulator:
    """Ideal (noise-free) circuit execution.

    Example::

        sim = StatevectorSimulator()
        probs = sim.probabilities(circuit)
        counts = sim.sample_counts(circuit, shots=1024, rng=rng)
    """

    def __init__(self, max_qubits: int = _MAX_DENSE_QUBITS) -> None:
        self.max_qubits = max_qubits

    def _check_size(self, circuit: QuantumCircuit) -> None:
        if circuit.num_qubits > self.max_qubits:
            raise ValueError(
                f"{circuit.num_qubits}-qubit circuit exceeds dense-simulation "
                f"limit of {self.max_qubits} qubits"
            )

    def run(
        self, circuit: QuantumCircuit, initial_state: Optional[np.ndarray] = None
    ) -> np.ndarray:
        """Evolve ``|0...0>`` (or ``initial_state``) through the circuit.

        Returns the final state as a flat ``2**n`` vector (little-endian).
        Measurements/barriers are ignored.
        """
        self._check_size(circuit)
        n = circuit.num_qubits
        if initial_state is not None:
            state = np.asarray(initial_state, dtype=complex).reshape((2,) * n)
        else:
            state = zero_state(n)
        for inst in circuit:
            if inst.is_directive or inst.is_measurement:
                continue
            state = apply_gate(state, inst.matrix(), inst.qubits)
        return state.reshape(-1)

    def probabilities(self, circuit: QuantumCircuit) -> np.ndarray:
        """Output probability of each little-endian basis index."""
        amplitudes = self.run(circuit)
        probs = np.abs(amplitudes) ** 2
        total = probs.sum()
        if not np.isclose(total, 1.0, atol=1e-8):
            raise RuntimeError(f"state norm drifted to {total}")
        return probs / total

    def sample_indices(
        self,
        circuit: QuantumCircuit,
        shots: int,
        rng: Optional[np.random.Generator] = None,
    ) -> np.ndarray:
        """Sample ``shots`` basis-state indices from the output distribution."""
        if shots < 1:
            raise ValueError(f"shots must be positive, got {shots}")
        rng = rng if rng is not None else np.random.default_rng()
        probs = self.probabilities(circuit)
        return rng.choice(len(probs), size=shots, p=probs)

    def sample_counts(
        self,
        circuit: QuantumCircuit,
        shots: int,
        rng: Optional[np.random.Generator] = None,
    ) -> Dict[str, int]:
        """Sample and histogram bitstrings (``q_{n-1}...q_0`` order)."""
        indices = self.sample_indices(circuit, shots, rng)
        n = circuit.num_qubits
        counts: Dict[str, int] = {}
        for idx, freq in zip(*np.unique(indices, return_counts=True)):
            bits = format(int(idx), f"0{n}b")
            counts[bits] = int(freq)
        return counts

    def expectation_diagonal(
        self, circuit: QuantumCircuit, values: np.ndarray
    ) -> float:
        """Exact expectation of a computational-basis-diagonal observable.

        Args:
            circuit: Circuit to run.
            values: ``2**n`` array; ``values[i]`` is the observable's value
                on basis state ``i`` (little-endian).  For QAOA-MaxCut this
                is the cut value of each bitstring.
        """
        probs = self.probabilities(circuit)
        if len(values) != len(probs):
            raise ValueError(
                f"observable has {len(values)} entries for {len(probs)} states"
            )
        return float(np.dot(probs, values))
