"""Noisy circuit execution via Monte-Carlo Pauli trajectories.

This module is the stand-in for the paper's real-hardware runs (Section V-G
validates on ``ibmq_16_melbourne``; we have no QPU).  The noise model is the
standard NISQ abstraction consistent with how the paper itself reasons about
errors:

* after every **two-qubit gate** on coupling ``(a, b)``, a two-qubit
  depolarizing channel fires with probability derived from the calibrated
  CNOT error rate of that coupling;
* after every **single-qubit gate**, a single-qubit depolarizing channel
  fires with the calibrated single-qubit error rate;
* at **measurement**, each classical bit flips independently with the
  calibrated readout error.

Depolarizing channels are unravelled as stochastic Pauli insertions, so each
trajectory is a pure-state simulation with random Pauli gates injected.  The
sampler averages over ``trajectories`` noise realisations and draws
``shots / trajectories`` bitstrings from each — noise realisations and shot
noise are independent, so this converges to the same distribution as one
trajectory per shot at a fraction of the cost.

Why this preserves the paper's experiment: ARG compares the *same* logical
problem compiled different ways; the compiled circuit with more two-qubit
gates on less-reliable couplings accumulates more depolarization and its
sampled approximation ratio drops further below the noiseless one.  That
monotone relationship is exactly what the hardware experiment measures.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Optional, Tuple

import numpy as np

from ..circuits import QuantumCircuit
from ..circuits.gates import gate_spec
from ..hardware import Calibration
from .statevector import apply_gate, zero_state

__all__ = ["NoiseModel", "NoisySimulator"]

_PAULIS = {
    "i": None,
    "x": gate_spec("x").matrix(),
    "y": gate_spec("y").matrix(),
    "z": gate_spec("z").matrix(),
}
_ONE_QUBIT_PAULIS = ["x", "y", "z"]
_TWO_QUBIT_PAULIS = [
    (p, q) for p in ("i", "x", "y", "z") for q in ("i", "x", "y", "z")
][1:]  # all 15 non-identity pairs


@dataclasses.dataclass
class NoiseModel:
    """Stochastic-Pauli noise parameters for a device.

    Attributes:
        two_qubit_depol: Per-edge probability that a depolarizing event
            follows a two-qubit gate on that edge.
        single_qubit_depol: Per-qubit probability after single-qubit gates.
        readout_flip: Per-qubit classical bit-flip probability at readout.
        t2_ns: Optional dephasing time constant.  When set, the simulator
            tracks wall-clock time per qubit through a
            :class:`~repro.circuits.timing.DurationModel` and applies a
            stochastic Z flip with probability ``(1 - exp(-dt/T2)) / 2``
            for every idle interval ``dt`` — this is what makes circuit
            *depth* (not just gate count) degrade fidelity, the paper's
            decoherence argument made operational.
    """

    two_qubit_depol: Dict[Tuple[int, int], float]
    single_qubit_depol: Dict[int, float]
    readout_flip: Dict[int, float]
    t2_ns: Optional[float] = None

    @classmethod
    def from_calibration(
        cls, calibration: Calibration, t2_ns: Optional[float] = None
    ) -> "NoiseModel":
        """Build a noise model directly from device calibration data.

        The calibrated CNOT *error rate* is used as the depolarizing-event
        probability for that coupling — i.e. a gate with error rate ``e``
        succeeds (acts ideally) with probability ``1 - e``, matching the
        paper's success-probability definition (Section II).  Pass
        ``t2_ns`` to additionally model idle dephasing.
        """
        return cls(
            two_qubit_depol={
                e: calibration.cnot_error[e] for e in calibration.coupling.edges
            },
            single_qubit_depol={
                q: calibration.single_qubit_error.get(q, 0.0)
                for q in range(calibration.coupling.num_qubits)
            },
            readout_flip={
                q: calibration.readout_error.get(q, 0.0)
                for q in range(calibration.coupling.num_qubits)
            },
            t2_ns=t2_ns,
        )

    @classmethod
    def ideal(cls, num_qubits: int) -> "NoiseModel":
        """A noise model that never fires (for testing)."""
        return cls(
            two_qubit_depol={},
            single_qubit_depol={q: 0.0 for q in range(num_qubits)},
            readout_flip={q: 0.0 for q in range(num_qubits)},
        )

    def two_qubit_prob(self, a: int, b: int) -> float:
        """Depolarizing probability for a two-qubit gate on ``a - b``."""
        return self.two_qubit_depol.get(
            (min(a, b), max(a, b)), 0.0
        )

    def scaled(self, factor: float) -> "NoiseModel":
        """A copy with every error probability multiplied by ``factor``.

        Useful for noise-sensitivity sweeps; probabilities are clipped to
        [0, 1).
        """

        def clip(p: float) -> float:
            return min(max(p * factor, 0.0), 0.999999)

        return NoiseModel(
            two_qubit_depol={e: clip(p) for e, p in self.two_qubit_depol.items()},
            single_qubit_depol={
                q: clip(p) for q, p in self.single_qubit_depol.items()
            },
            readout_flip={q: clip(p) for q, p in self.readout_flip.items()},
            t2_ns=(self.t2_ns / factor if self.t2_ns and factor > 0 else self.t2_ns),
        )


class NoisySimulator:
    """Monte-Carlo trajectory sampler standing in for real hardware.

    Args:
        noise: The stochastic-Pauli noise model.
        trajectories: Number of independent noise realisations to average
            over when sampling; shots are split evenly across them.
        durations: Gate-duration model used for idle-dephasing timing when
            ``noise.t2_ns`` is set (defaults to
            :class:`~repro.circuits.timing.DurationModel`).
    """

    def __init__(
        self,
        noise: NoiseModel,
        trajectories: int = 32,
        durations=None,
    ) -> None:
        if trajectories < 1:
            raise ValueError("need at least one trajectory")
        self.noise = noise
        self.trajectories = trajectories
        if durations is None and noise.t2_ns is not None:
            from ..circuits.timing import DurationModel

            durations = DurationModel()
        self.durations = durations

    # ------------------------------------------------------------------
    # single-trajectory evolution
    # ------------------------------------------------------------------
    def _inject_single(self, state, qubit: int, rng) -> np.ndarray:
        pauli = _ONE_QUBIT_PAULIS[rng.integers(3)]
        return apply_gate(state, _PAULIS[pauli], (qubit,))

    def _inject_double(self, state, qubits: Tuple[int, int], rng) -> np.ndarray:
        pa, pb = _TWO_QUBIT_PAULIS[rng.integers(15)]
        if pa != "i":
            state = apply_gate(state, _PAULIS[pa], (qubits[0],))
        if pb != "i":
            state = apply_gate(state, _PAULIS[pb], (qubits[1],))
        return state

    def _maybe_dephase(
        self,
        state: np.ndarray,
        qubit: int,
        idle_ns: float,
        rng: np.random.Generator,
    ) -> np.ndarray:
        """Stochastic Z flip for an idle interval under T2 dephasing."""
        if idle_ns <= 0.0:
            return state
        p_flip = 0.5 * (1.0 - np.exp(-idle_ns / self.noise.t2_ns))
        if rng.random() < p_flip:
            state = apply_gate(state, _PAULIS["z"], (qubit,))
        return state

    def run_trajectory(
        self, circuit: QuantumCircuit, rng: np.random.Generator
    ) -> np.ndarray:
        """One noisy pure-state evolution; returns the flat final state.

        With ``noise.t2_ns`` set, per-qubit wall clocks (from the duration
        model) are tracked and every idle gap triggers a stochastic Z flip
        — so deeper circuits decohere more even at equal gate count.
        """
        state = zero_state(circuit.num_qubits)
        track_time = self.noise.t2_ns is not None
        clocks = [0.0] * circuit.num_qubits if track_time else None
        for inst in circuit:
            if inst.is_directive or inst.is_measurement:
                if track_time and inst.is_directive and inst.qubits:
                    sync = max(clocks[q] for q in inst.qubits)
                    for q in inst.qubits:
                        clocks[q] = sync
                continue
            if track_time:
                start = max(clocks[q] for q in inst.qubits)
                for q in inst.qubits:
                    state = self._maybe_dephase(
                        state, q, start - clocks[q], rng
                    )
                duration = self.durations.duration(inst)
                for q in inst.qubits:
                    clocks[q] = start + duration
            state = apply_gate(state, inst.matrix(), inst.qubits)
            if inst.is_two_qubit:
                p = self.noise.two_qubit_prob(*inst.qubits)
                if p > 0.0 and rng.random() < p:
                    state = self._inject_double(state, inst.qubits, rng)
            else:
                q = inst.qubits[0]
                p = self.noise.single_qubit_depol.get(q, 0.0)
                if p > 0.0 and rng.random() < p:
                    state = self._inject_single(state, q, rng)
        if track_time:
            # Final alignment: every qubit idles until the global end time
            # (all qubits are measured together at the circuit's end).
            end = max(clocks) if clocks else 0.0
            for q in range(circuit.num_qubits):
                state = self._maybe_dephase(state, q, end - clocks[q], rng)
        return state.reshape(-1)

    # ------------------------------------------------------------------
    # sampling
    # ------------------------------------------------------------------
    def _apply_readout_error(
        self, indices: np.ndarray, num_qubits: int, rng: np.random.Generator
    ) -> np.ndarray:
        out = indices.copy()
        for q in range(num_qubits):
            p = self.noise.readout_flip.get(q, 0.0)
            if p <= 0.0:
                continue
            flips = rng.random(len(out)) < p
            out[flips] ^= 1 << q
        return out

    def sample_indices(
        self,
        circuit: QuantumCircuit,
        shots: int,
        rng: Optional[np.random.Generator] = None,
    ) -> np.ndarray:
        """Sample ``shots`` little-endian basis indices under noise."""
        if shots < 1:
            raise ValueError(f"shots must be positive, got {shots}")
        rng = rng if rng is not None else np.random.default_rng()
        n_traj = min(self.trajectories, shots)
        base, extra = divmod(shots, n_traj)
        all_indices: List[np.ndarray] = []
        dim = 2 ** circuit.num_qubits
        for t in range(n_traj):
            state = self.run_trajectory(circuit, rng)
            probs = np.abs(state) ** 2
            probs /= probs.sum()
            traj_shots = base + (1 if t < extra else 0)
            if traj_shots == 0:
                continue
            all_indices.append(rng.choice(dim, size=traj_shots, p=probs))
        indices = np.concatenate(all_indices)
        return self._apply_readout_error(indices, circuit.num_qubits, rng)

    def sample_counts(
        self,
        circuit: QuantumCircuit,
        shots: int,
        rng: Optional[np.random.Generator] = None,
    ) -> Dict[str, int]:
        """Sample and histogram bitstrings (``q_{n-1}...q_0`` order)."""
        indices = self.sample_indices(circuit, shots, rng)
        n = circuit.num_qubits
        counts: Dict[str, int] = {}
        for idx, freq in zip(*np.unique(indices, return_counts=True)):
            counts[format(int(idx), f"0{n}b")] = int(freq)
        return counts
