"""Exact density-matrix simulation of the stochastic-Pauli noise model.

The Monte-Carlo trajectory sampler (:mod:`repro.sim.noise`) approximates the
noisy output distribution; this module computes it *exactly* for small
circuits by evolving the density matrix through the same channels:

* unitary gates: ``rho -> U rho U^dagger``;
* two-qubit depolarizing with probability ``p``: the uniform mixture of the
  15 non-identity two-qubit Paulis on the gate's qubits;
* single-qubit depolarizing: uniform mixture of X, Y, Z;
* readout error: classical bit-flip confusion applied to the outcome
  distribution.

Memory is O(4^n), so the simulator refuses beyond ``max_qubits`` (default
10: a 2 MB matrix).  Its role is validation — the test suite checks that
trajectory sampling converges to these exact probabilities — and exact
small-instance studies where Monte-Carlo noise would blur comparisons.
"""

from __future__ import annotations

from typing import Dict, Optional

import numpy as np

from ..circuits import QuantumCircuit
from ..circuits.gates import gate_spec
from .noise import NoiseModel
from .statevector import apply_gate

__all__ = ["DensityMatrixSimulator"]

_PAULI_1Q = [
    gate_spec("x").matrix(),
    gate_spec("y").matrix(),
    gate_spec("z").matrix(),
]


def _apply_to_density(rho: np.ndarray, matrix: np.ndarray, qubits, n: int):
    """``rho -> U rho U^dagger`` with rho as a rank-2n tensor."""
    # Left multiplication: treat the first n axes as the ket side.
    rho = apply_gate(rho, matrix, qubits)
    # Right multiplication by U^dagger: act on the bra side (axes n..2n-1)
    # with the conjugate matrix.
    bra_qubits = tuple(q + n for q in qubits)
    rho = apply_gate(rho, matrix.conj(), bra_qubits)
    return rho


class DensityMatrixSimulator:
    """Exact mixed-state evolution under a :class:`NoiseModel`.

    Args:
        noise: The stochastic-Pauli noise model (T2 idle dephasing is not
            supported here — it requires time tracking better suited to the
            trajectory sampler; passing a model with ``t2_ns`` set raises).
        max_qubits: Refuse circuits larger than this (4^n scaling).
    """

    def __init__(self, noise: NoiseModel, max_qubits: int = 10) -> None:
        if noise.t2_ns is not None:
            raise ValueError(
                "DensityMatrixSimulator does not support T2 idle dephasing; "
                "use the trajectory sampler for timed noise"
            )
        self.noise = noise
        self.max_qubits = max_qubits

    # ------------------------------------------------------------------
    def _depolarize_single(self, rho, qubit: int, p: float, n: int):
        if p <= 0.0:
            return rho
        mixed = np.zeros_like(rho)
        for pauli in _PAULI_1Q:
            mixed = mixed + _apply_to_density(rho, pauli, (qubit,), n)
        return (1.0 - p) * rho + (p / 3.0) * mixed

    def _depolarize_double(self, rho, qubits, p: float, n: int):
        if p <= 0.0:
            return rho
        mixed = np.zeros_like(rho)
        identity = np.eye(2)
        paulis = [identity] + _PAULI_1Q
        for i, pa in enumerate(paulis):
            for j, pb in enumerate(paulis):
                if i == 0 and j == 0:
                    continue
                term = rho
                if i:
                    term = _apply_to_density(term, pa, (qubits[0],), n)
                if j:
                    term = _apply_to_density(term, pb, (qubits[1],), n)
                mixed = mixed + term
        return (1.0 - p) * rho + (p / 15.0) * mixed

    def run(self, circuit: QuantumCircuit) -> np.ndarray:
        """Evolve ``|0..0><0..0|`` through the noisy circuit.

        Returns the final density matrix as a ``(2^n, 2^n)`` array.
        """
        n = circuit.num_qubits
        if n > self.max_qubits:
            raise ValueError(
                f"{n}-qubit density matrix exceeds limit {self.max_qubits}"
            )
        dim = 2 ** n
        rho = np.zeros((dim, dim), dtype=complex)
        rho[0, 0] = 1.0
        rho = rho.reshape((2,) * (2 * n))
        for inst in circuit:
            if inst.is_directive or inst.is_measurement:
                continue
            rho = _apply_to_density(rho, inst.matrix(), inst.qubits, n)
            if inst.is_two_qubit:
                p = self.noise.two_qubit_prob(*inst.qubits)
                rho = self._depolarize_double(rho, inst.qubits, p, n)
            else:
                q = inst.qubits[0]
                p = self.noise.single_qubit_depol.get(q, 0.0)
                rho = self._depolarize_single(rho, q, p, n)
        return rho.reshape(dim, dim)

    def probabilities(self, circuit: QuantumCircuit) -> np.ndarray:
        """Exact outcome distribution (readout error included)."""
        rho = self.run(circuit)
        probs = np.real(np.diag(rho)).copy()
        probs = np.clip(probs, 0.0, None)
        probs /= probs.sum()
        return self._apply_readout(probs, circuit.num_qubits)

    def _apply_readout(self, probs: np.ndarray, n: int) -> np.ndarray:
        out = probs
        for q in range(n):
            p = self.noise.readout_flip.get(q, 0.0)
            if p <= 0.0:
                continue
            flipped = out.reshape(-1).copy()
            idx = np.arange(len(flipped))
            partner = idx ^ (1 << q)
            out = (1.0 - p) * flipped + p * flipped[partner]
        return out

    def sample_counts(
        self,
        circuit: QuantumCircuit,
        shots: int,
        rng: Optional[np.random.Generator] = None,
    ) -> Dict[str, int]:
        """Sample bitstrings from the exact noisy distribution."""
        if shots < 1:
            raise ValueError("shots must be positive")
        rng = rng if rng is not None else np.random.default_rng()
        probs = self.probabilities(circuit)
        indices = rng.choice(len(probs), size=shots, p=probs)
        counts: Dict[str, int] = {}
        n = circuit.num_qubits
        for idx, freq in zip(*np.unique(indices, return_counts=True)):
            counts[format(int(idx), f"0{n}b")] = int(freq)
        return counts
