"""Bitstring-count utilities shared by the simulators and QAOA evaluation."""

from __future__ import annotations

from typing import Dict, Iterable, Mapping

__all__ = [
    "counts_to_probabilities",
    "merge_counts",
    "expectation_from_counts",
    "most_frequent",
    "bitstring_to_index",
    "index_to_bitstring",
    "marginal_counts",
    "total_shots",
]


def bitstring_to_index(bits: str) -> int:
    """Convert a ``q_{n-1}...q_0`` bitstring to a little-endian index."""
    return int(bits, 2)


def index_to_bitstring(index: int, num_qubits: int) -> str:
    """Convert a little-endian index to a ``q_{n-1}...q_0`` bitstring."""
    return format(index, f"0{num_qubits}b")


def total_shots(counts: Mapping[str, int]) -> int:
    """Total number of samples in a counts histogram."""
    return sum(counts.values())


def counts_to_probabilities(counts: Mapping[str, int]) -> Dict[str, float]:
    """Normalise a counts histogram to relative frequencies."""
    total = total_shots(counts)
    if total <= 0:
        raise ValueError("empty counts")
    return {bits: c / total for bits, c in counts.items()}


def merge_counts(*histograms: Mapping[str, int]) -> Dict[str, int]:
    """Sum several counts histograms key-wise."""
    merged: Dict[str, int] = {}
    for hist in histograms:
        for bits, c in hist.items():
            merged[bits] = merged.get(bits, 0) + c
    return merged


def expectation_from_counts(
    counts: Mapping[str, int], value_fn
) -> float:
    """Sample mean of ``value_fn(bitstring)`` over the histogram.

    This mirrors the paper's QAOA evaluation: "the expectation value of the
    cost function is calculated by taking its mean over a finite number of
    samples from the QAOA-circuit output".
    """
    total = total_shots(counts)
    if total <= 0:
        raise ValueError("empty counts")
    acc = 0.0
    for bits, c in counts.items():
        acc += value_fn(bits) * c
    return acc / total


def most_frequent(counts: Mapping[str, int]) -> str:
    """The modal bitstring; ties break lexicographically for determinism."""
    if not counts:
        raise ValueError("empty counts")
    best = max(counts.values())
    return min(bits for bits, c in counts.items() if c == best)


def marginal_counts(
    counts: Mapping[str, int], keep_qubits: Iterable[int]
) -> Dict[str, int]:
    """Marginalise a histogram onto ``keep_qubits``.

    Bitstrings are ``q_{n-1}...q_0``; the marginal keeps the listed qubits
    in descending-qubit order.  Used when a compiled circuit occupies more
    physical qubits than the logical problem and only the data qubits'
    outcomes matter.
    """
    keep = sorted(set(keep_qubits), reverse=True)
    out: Dict[str, int] = {}
    for bits, c in counts.items():
        n = len(bits)
        for q in keep:
            if q >= n:
                raise ValueError(f"qubit {q} outside {n}-bit strings")
        sub = "".join(bits[n - 1 - q] for q in keep)
        out[sub] = out.get(sub, 0) + c
    return out
