"""repro — reproduction of "Circuit Compilation Methodologies for QAOA"
(Alam, Ash-Saki, Ghosh; MICRO 2020).

The package implements, from scratch on numpy/scipy/networkx:

* a quantum-circuit IR with IBM-basis lowering (:mod:`repro.circuits`),
* device models with calibration data (:mod:`repro.hardware`),
* ideal and noisy simulators (:mod:`repro.sim`),
* a conventional layer-partitioning SWAP-insertion backend plus the paper's
  four methodologies — QAIM, IP, IC, VIC (:mod:`repro.compiler`),
* QAOA-MaxCut problems, the hybrid optimisation loop, and the ARG metric
  (:mod:`repro.qaoa`),
* the experiment harness regenerating every figure/table
  (:mod:`repro.experiments`).

Quickstart (the :mod:`repro.api` facade is the front door)::

    import repro

    problem = repro.MaxCutProblem(
        4, [(0, 1), (0, 2), (1, 3), (2, 3), (0, 3), (1, 2)]
    )
    result = repro.compile(
        problem, target="ibmq_16_melbourne", method="vic", calibration="auto"
    )
    scores = repro.evaluate(result, shots=4096, seed=7)
    print(result.swap_count, scores.r0, scores.rh, scores.arg)

The legacy top-level entry points (``repro.compile_qaoa``,
``repro.compile_with_method``) still work but emit
:class:`DeprecationWarning`; the silent originals live on under
:mod:`repro.compiler`.
"""

from .api import (
    CompileResult,
    EvalResult,
    compile,
    compile_qaoa,
    compile_with_method,
    evaluate,
)
from .circuits import (
    IBM_BASIS,
    QAOA_BASIS,
    Instruction,
    QuantumCircuit,
    circuit_depth,
    decompose_to_basis,
    draw_circuit,
)
from .compiler import (
    METHOD_PRESETS,
    CircuitMetrics,
    CompiledCircuit,
    CompiledQAOA,
    ConventionalBackend,
    IncrementalCompiler,
    Mapping,
    PassContext,
    PassRecord,
    Pipeline,
    PipelineSpec,
    VariationAwareCompiler,
    build_pipeline,
    compile_spec,
    greedy_e_placement,
    greedy_v_placement,
    measure_compiled,
    parallelize,
    qaim_placement,
    random_placement,
    sequentialize_crosstalk,
    success_probability,
    trivial_placement,
)
from .hardware import (
    Calibration,
    CouplingGraph,
    get_device,
    grid_device,
    ibmq_16_melbourne,
    ibmq_20_tokyo,
    linear_device,
    melbourne_calibration,
    random_calibration,
    ring_device,
    uniform_calibration,
)
from .qaoa import (
    ARGResult,
    IsingProblem,
    MaxCutProblem,
    Problem,
    QAOAProgram,
    VariationalResult,
    analytic_expectation,
    analytic_optimal_parameters,
    approximation_ratio,
    approximation_ratio_gap,
    build_qaoa_circuit,
    decode_physical_counts,
    erdos_renyi_graph,
    evaluate_arg,
    maxcut_to_ising,
    optimize_problem,
    optimize_qaoa,
    problem_from_spec,
    qaoa_expectation,
    qubo_to_ising,
    random_regular_graph,
)
from .sim import (
    EvalOutcome,
    NoiseModel,
    NoisySimulator,
    StatevectorSimulator,
    evaluate_fast,
)

__version__ = "1.2.0"

__all__ = [
    "__version__",
    # api facade
    "compile",
    "evaluate",
    "CompileResult",
    "EvalResult",
    # circuits
    "QuantumCircuit",
    "Instruction",
    "IBM_BASIS",
    "QAOA_BASIS",
    "circuit_depth",
    "decompose_to_basis",
    "draw_circuit",
    # hardware
    "CouplingGraph",
    "Calibration",
    "ibmq_20_tokyo",
    "ibmq_16_melbourne",
    "melbourne_calibration",
    "grid_device",
    "linear_device",
    "ring_device",
    "get_device",
    "random_calibration",
    "uniform_calibration",
    # sim
    "StatevectorSimulator",
    "NoisySimulator",
    "NoiseModel",
    "evaluate_fast",
    "EvalOutcome",
    # compiler
    "Mapping",
    "ConventionalBackend",
    "CompiledCircuit",
    "CompiledQAOA",
    "compile_qaoa",
    "compile_spec",
    "compile_with_method",
    "METHOD_PRESETS",
    "PassContext",
    "PassRecord",
    "Pipeline",
    "PipelineSpec",
    "build_pipeline",
    "qaim_placement",
    "greedy_v_placement",
    "greedy_e_placement",
    "random_placement",
    "trivial_placement",
    "parallelize",
    "IncrementalCompiler",
    "VariationAwareCompiler",
    "CircuitMetrics",
    "measure_compiled",
    "success_probability",
    "sequentialize_crosstalk",
    # qaoa
    "MaxCutProblem",
    "IsingProblem",
    "Problem",
    "QAOAProgram",
    "VariationalResult",
    "build_qaoa_circuit",
    "maxcut_to_ising",
    "optimize_problem",
    "optimize_qaoa",
    "problem_from_spec",
    "qubo_to_ising",
    "qaoa_expectation",
    "analytic_expectation",
    "analytic_optimal_parameters",
    "approximation_ratio",
    "approximation_ratio_gap",
    "decode_physical_counts",
    "evaluate_arg",
    "ARGResult",
    "erdos_renyi_graph",
    "random_regular_graph",
]
