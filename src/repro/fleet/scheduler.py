"""The SLO-aware fleet scheduler: admission, placement, recovery.

One :class:`Scheduler` owns a :class:`~repro.fleet.spec.FleetSpec`, a
placement :class:`~repro.fleet.policy.Policy`, and per-device runtime
state — a serial :class:`~repro.service.engine.BatchEngine` (cache,
retries, and telemetry all apply per slot), an EWMA latency model per
job kind and method, an online ARG quality model, a virtual-clock
backlog, and a :class:`~repro.fleet.resilience.CircuitBreaker`.

**The clock.**  Jobs arrive on a deterministic virtual timeline
(``interarrival_ms`` apart); each device is a serial server whose
virtual clock advances by the execution time of every job placed on it
— the *measured* wall time, unless the result carries a
``virtual_exec_ms`` metric, in which case that scripted value is used
instead (what the chaos fleet scenarios and journal-resume tests rely
on for exact determinism).  Queue waits, backlogs, promised and
observed latencies, utilization and makespan all derive from this
timeline, so a run is a faithful discrete-event simulation of the fleet
serving the stream concurrently — while the work itself really executes
one job at a time in submission order.

**Admission.**  Every job is admitted or rejected *with a structured
reason* (:data:`~repro.fleet.report.REJECTION_KINDS`): an empty fleet,
no available device (administratively ineligible or circuit-breaker
open), a full fleet-wide queue, every device saturated at its backlog
limit, or an SLO no device is predicted to satisfy — in which case the
detail names each device's shortfall.

**Recovery.**  Three mechanisms close the loop that PR 6 left open
(a failing device was ineligible *forever*, so "recovers on success"
was unreachable):

* a per-device **circuit breaker** — after ``max_consecutive_failures``
  the device opens for ``breaker_cooldown_ms`` of virtual time, then
  half-opens and admits one probe job (best-effort traffic is routed
  there preferentially); a probe success closes the breaker and the
  device re-earns traffic, a probe failure re-opens it;
* **failure-triggered migration** — a job whose placement fails
  terminally re-enters admission with the devices it already burned
  excluded and is re-placed on a survivor, up to ``max_migrations``
  times, with the full attempt trail in its
  :class:`~repro.fleet.report.PlacementRecord`;
* **SLO-aware degraded recompile** — when *no* device is predicted to
  satisfy the SLO, admission retries with the ``degrade_ladder``'s
  cheaper method presets / relaxed packing before rejecting, stamping
  the downgrade as a structured warning.

**The journal.**  With ``journal=`` set, every admission, placement,
migration, breaker transition, and final record is appended (fsynced,
one JSON line each) to a :class:`~repro.fleet.resilience.
SchedulerJournal`; ``run(jobs, resume=True)`` replays the settled
prefix — device clocks, models, breakers, counts — and continues with
the unserved remainder, so a ``SIGKILL``'d ``repro fleet`` run picks up
where it died instead of restarting.
"""

from __future__ import annotations

import dataclasses
import pathlib
import time
from collections import deque
from typing import (
    Deque,
    Dict,
    FrozenSet,
    List,
    Optional,
    Sequence,
    Tuple,
    Union,
)

from ..service.cache import ResultCache
from ..service.engine import BatchEngine
from ..service.evaluate import EvalJob, execute_eval_job
from ..service.optimize import OptimizeJob, execute_optimize_job
from ..service.job import (
    JobResult,
    decode_envelope,
    encode_envelope,
    execute_job,
)
from ..service.telemetry import Telemetry
from ..store import diff_store_stats, store_stats
from .estimate import estimate_success_probability
from .jobs import FleetJob, bind_job
from .latency import EwmaLatencyModel, EwmaQualityModel
from .policy import Candidate, Policy, get_policy
from .report import (
    DeviceSnapshot,
    FleetReport,
    PlacementRecord,
    Rejection,
)
from .resilience import (
    BREAKER_HALF_OPEN,
    JOURNAL_VERSION,
    BreakerTransition,
    CircuitBreaker,
    DEFAULT_DEGRADE_LADDER,
    SchedulerJournal,
    downgrade_job,
    stream_fingerprint,
)
from .spec import FleetSpec

__all__ = ["Scheduler", "run_fleet"]


def _execute_fleet_job(job) -> JobResult:
    """Kind-dispatching executor: one engine serves every workload."""
    if isinstance(job, OptimizeJob):
        return execute_optimize_job(job)
    if isinstance(job, EvalJob):
        return execute_eval_job(job)
    return execute_job(job)


@dataclasses.dataclass
class _DeviceState:
    """Runtime accounting for one fleet slot."""

    label: str
    order: int
    hardware: bool
    degraded: bool
    target: object
    engine: BatchEngine
    latency: EwmaLatencyModel
    quality: EwmaQualityModel
    breaker: CircuitBreaker
    available_at_ms: float = 0.0
    busy_ms: float = 0.0
    placed: int = 0
    ok: int = 0
    failed: int = 0
    cached: int = 0
    eligible: bool = True
    ineligible_reason: Optional[str] = None
    pending: Deque[float] = dataclasses.field(default_factory=deque)

    def backlog(self, now_ms: float) -> int:
        """Jobs placed here whose virtual finish is still in the future."""
        while self.pending and self.pending[0] <= now_ms:
            self.pending.popleft()
        return len(self.pending)

    def unavailable_reason(self, now_ms: float) -> str:
        """Why this device is out of the candidate set right now."""
        if not self.eligible:
            return self.ineligible_reason or "marked ineligible"
        return self.breaker.describe()


class Scheduler:
    """Place a stream of :class:`FleetJob` across a device fleet.

    Args:
        fleet: The device slots to schedule onto.
        policy: Placement policy name or instance (see
            :data:`repro.fleet.policy.POLICIES`).
        queue_depth: Fleet-wide bound on admitted-but-unfinished jobs;
            admission rejects ``queue_full`` beyond it.
        device_backlog_limit: Per-device pending-job bound; a device at
            the limit is *saturated* and drops out of the candidate set.
        interarrival_ms: Virtual gap between consecutive job arrivals.
        max_consecutive_failures: Failures in a row before the device's
            circuit breaker opens.
        breaker_cooldown_ms: Virtual cooldown before an open breaker
            half-opens for a recovery probe; ``None`` keeps the device
            out for the rest of the stream (the pre-resilience
            semantics, and what the chaos baseline measures against).
        half_open_max_probes: Recovery probes a half-open breaker window
            admits before failures re-open it (K concurrent-probe
            headroom; 1 = classic single-probe gate).
        max_migrations: How many times a terminally failed placement may
            re-enter admission and be re-placed on another device (``0``
            disables migration).
        degrade_ladder: Downgrade rungs (dicts with ``method`` /
            ``packing_limit`` keys) tried in order when an SLO is
            predicted unsatisfiable on every device; ``None`` uses
            :data:`~repro.fleet.resilience.DEFAULT_DEGRADE_LADDER`, an
            empty tuple disables degraded recompiles.
        max_eval_qubits: Largest device an *eval* job may be placed on.
            Evaluation materialises probability vectors in the physical
            index space (``2**num_qubits`` doubles), so a 36-qubit slot
            would ask for 512 GiB; such devices stay compile-only.
        cache: Optional shared :class:`ResultCache` for all per-device
            engines.
        retries: Per-device engine retry budget for transient faults.
        execute_fn: Job executor override (tests inject fakes); defaults
            to the kind-dispatching compile/eval executor.
        seed: Retry-jitter seed for the per-device engines.
        journal: Path (or :class:`SchedulerJournal`) for the crash-safe
            run journal; ``None`` disables journaling.
        sleep: Backoff-sleep hook forwarded to the per-device engines
            (tests inject a no-op for deterministic retry runs).
    """

    def __init__(
        self,
        fleet: FleetSpec,
        policy: Union[str, Policy] = "least-loaded",
        *,
        queue_depth: int = 256,
        device_backlog_limit: int = 32,
        interarrival_ms: float = 0.0,
        max_consecutive_failures: int = 3,
        breaker_cooldown_ms: Optional[float] = 2000.0,
        half_open_max_probes: int = 1,
        max_migrations: int = 2,
        degrade_ladder: Optional[Sequence[dict]] = None,
        max_eval_qubits: int = 24,
        cache: Optional[ResultCache] = None,
        retries: int = 0,
        execute_fn=None,
        seed: int = 0,
        journal: Union[str, pathlib.Path, SchedulerJournal, None] = None,
        sleep=None,
    ) -> None:
        if queue_depth < 1:
            raise ValueError("queue_depth must be >= 1")
        if device_backlog_limit < 1:
            raise ValueError("device_backlog_limit must be >= 1")
        if interarrival_ms < 0:
            raise ValueError("interarrival_ms must be >= 0")
        if max_consecutive_failures < 1:
            raise ValueError("max_consecutive_failures must be >= 1")
        if max_migrations < 0:
            raise ValueError("max_migrations must be >= 0")
        self.fleet = fleet
        self.policy: Policy = (
            get_policy(policy) if isinstance(policy, str) else policy
        )
        self.queue_depth = queue_depth
        self.device_backlog_limit = device_backlog_limit
        self.interarrival_ms = float(interarrival_ms)
        self.max_consecutive_failures = max_consecutive_failures
        self.max_migrations = max_migrations
        self.degrade_ladder: Tuple[dict, ...] = tuple(
            DEFAULT_DEGRADE_LADDER if degrade_ladder is None
            else degrade_ladder
        )
        self.max_eval_qubits = max_eval_qubits
        if journal is None or isinstance(journal, SchedulerJournal):
            self._journal = journal
        else:
            self._journal = SchedulerJournal(journal)
        self._replaying = False
        self._states: Dict[str, _DeviceState] = {}
        for order, slot in enumerate(fleet):
            target = fleet.target(slot.label)
            self._states[slot.label] = _DeviceState(
                label=slot.label,
                order=order,
                hardware=bool(slot.hardware),
                degraded=bool(slot.faults),
                target=target,
                engine=BatchEngine(
                    workers=0,
                    retries=retries,
                    cache=cache,
                    telemetry=Telemetry(),
                    seed=seed,
                    execute_fn=execute_fn or _execute_fleet_job,
                    sleep=sleep,
                ),
                latency=EwmaLatencyModel(),
                quality=EwmaQualityModel(),
                breaker=CircuitBreaker(
                    device=slot.label,
                    failure_threshold=max_consecutive_failures,
                    cooldown_ms=breaker_cooldown_ms,
                    half_open_max_probes=half_open_max_probes,
                    on_transition=self._on_breaker_transition,
                ),
            )

    # ------------------------------------------------------------------
    # eligibility
    # ------------------------------------------------------------------
    def mark_ineligible(self, label: str, reason: str) -> None:
        """Administratively remove a device from the candidate set for
        the rest of the stream (maintenance windows, operator action).
        Transient failures are the circuit breaker's job — they open the
        breaker and the device re-earns traffic via a half-open probe."""
        state = self._states[label]
        state.eligible = False
        state.ineligible_reason = reason

    # ------------------------------------------------------------------
    # admission control
    # ------------------------------------------------------------------
    def admit(
        self,
        job: FleetJob,
        now_ms: float = 0.0,
        *,
        exclude: FrozenSet[str] = frozenset(),
    ) -> Tuple[Optional[Candidate], Optional[Rejection]]:
        """Admission decision for one job at one virtual instant.

        Returns ``(candidate, None)`` on admission — the policy's pick —
        or ``(None, rejection)`` with a structured reason.  ``exclude``
        removes devices a migrating job already failed on.
        """
        if not self._states:
            return None, Rejection(
                job.job_id, "empty_fleet",
                "fleet has no device slots", now_ms,
            )
        if job.kind in ("compile", "eval"):
            # Validate the method against the live registry at admission —
            # an unknown preset would only surface as a per-device
            # "invalid" failure after queueing, wait, and dispatch.
            # Inline PipelineSpec methods are self-describing and skip
            # the name check.
            from ..compiler.registry import available_methods

            raw_method = getattr(job.job, "method", None)
            if isinstance(raw_method, str) and (
                raw_method not in available_methods()
            ):
                return None, Rejection(
                    job.job_id, "unknown_method",
                    f"unknown method {raw_method!r}; options: "
                    f"{sorted(available_methods())}",
                    now_ms,
                )
        available: List[_DeviceState] = []
        for state in self._states.values():
            if state.eligible and state.breaker.allows(now_ms):
                available.append(state)
        if not available:
            why = "; ".join(
                f"{s.label}: {s.unavailable_reason(now_ms)}"
                for s in self._states.values()
            )
            return None, Rejection(
                job.job_id, "no_eligible_device",
                f"all {len(self._states)} devices ineligible ({why})",
                now_ms,
            )
        eligible = [s for s in available if s.label not in exclude]
        if not eligible:
            return None, Rejection(
                job.job_id, "no_eligible_device",
                "all surviving devices already tried by this job "
                f"({', '.join(sorted(exclude))})",
                now_ms,
            )
        pending_total = sum(s.backlog(now_ms) for s in eligible)
        if pending_total >= self.queue_depth:
            return None, Rejection(
                job.job_id, "queue_full",
                f"{pending_total} jobs pending >= queue depth "
                f"{self.queue_depth}",
                now_ms,
            )
        unsaturated = [
            s for s in eligible
            if s.backlog(now_ms) < self.device_backlog_limit
        ]
        if not unsaturated:
            return None, Rejection(
                job.job_id, "saturated",
                f"all {len(eligible)} eligible devices at backlog limit "
                f"{self.device_backlog_limit}",
                now_ms,
            )

        if job.kind in ("eval", "optimize"):
            # Both workloads hold dense statevectors: evaluations per
            # trajectory, optimizations per population member.
            feasible = [
                s for s in unsaturated
                if s.target.num_qubits <= self.max_eval_qubits
            ]
            if not feasible:
                oversized = ", ".join(
                    f"{s.label} ({s.target.num_qubits}q)"
                    for s in sorted(unsaturated, key=lambda s: s.order)
                )
                return None, Rejection(
                    job.job_id, "no_eligible_device",
                    f"{job.kind} needs a statevector-simulable device "
                    f"(<= {self.max_eval_qubits} qubits); only {oversized} "
                    "available",
                    now_ms,
                )
        else:
            feasible = unsaturated

        slo = job.slo
        candidates: List[Candidate] = []
        shortfalls: List[str] = []
        for state in sorted(feasible, key=lambda s: s.order):
            wait_ms = max(0.0, state.available_at_ms - now_ms)
            exec_ms = state.latency.predict_ms(job.kind, method=job.method)
            latency_ms = wait_ms + exec_ms
            success = estimate_success_probability(
                job.num_edges, job.levels, state.target
            )
            arg = state.quality.predict()
            reasons: List[str] = []
            if (
                slo.max_latency_ms is not None
                and latency_ms > slo.max_latency_ms
            ):
                reasons.append(
                    f"predicted latency {latency_ms:.1f}ms > "
                    f"{slo.max_latency_ms:.1f}ms"
                )
            if slo.min_success_prob is not None:
                if success is None:
                    reasons.append("no calibration, no fidelity promise")
                elif success < slo.min_success_prob:
                    reasons.append(
                        f"predicted success {success:.3e} < "
                        f"{slo.min_success_prob:.3e}"
                    )
            if (
                slo.max_arg is not None
                and arg is not None
                and arg > slo.max_arg
            ):
                reasons.append(
                    f"observed ARG ewma {arg:.2f}% > {slo.max_arg:.2f}%"
                )
            if reasons:
                shortfalls.append(f"{state.label}: {'; '.join(reasons)}")
            else:
                candidates.append(
                    Candidate(
                        label=state.label,
                        order=state.order,
                        hardware=state.hardware,
                        backlog=state.backlog(now_ms),
                        wait_ms=wait_ms,
                        exec_ms=exec_ms,
                        predicted_latency_ms=latency_ms,
                        predicted_success=success,
                        predicted_arg=arg,
                        probe=(
                            state.breaker.poll(now_ms) == BREAKER_HALF_OPEN
                        ),
                    )
                )
        if not candidates:
            return None, Rejection(
                job.job_id, "slo_unsatisfiable",
                "no device predicted to satisfy SLO "
                f"{slo.to_dict()}: {' | '.join(shortfalls)}",
                now_ms,
            )
        # Half-open devices need K probes (half_open_max_probes) to
        # decide recovery: volunteer best-effort traffic for probing,
        # and keep
        # SLO-constrained jobs off unproven devices entirely — a probe
        # that fails would burn the job's promise on a device that just
        # tripped, so a constrained job with only probe candidates is
        # reported unsatisfiable (giving the degrade ladder a chance to
        # fit it on a proven survivor instead).
        probes = [c for c in candidates if c.probe]
        solid = [c for c in candidates if not c.probe]
        if probes and job.slo.is_trivial:
            return min(probes, key=lambda c: c.order), None
        if solid:
            return self.policy.place(solid), None
        return None, Rejection(
            job.job_id, "slo_unsatisfiable",
            "only half-open probe devices "
            f"({', '.join(sorted(c.label for c in probes))}) predict SLO "
            f"{slo.to_dict()}; constrained jobs are not risked on "
            "recovery probes",
            now_ms,
        )

    # ------------------------------------------------------------------
    # the run loop
    # ------------------------------------------------------------------
    def run(
        self, jobs: Sequence[FleetJob], *, resume: bool = False
    ) -> FleetReport:
        """Serve a job stream; one placement record or rejection per job.

        With a journal configured, ``resume=True`` first replays every
        settled job from the journal (verifying it was written for this
        policy, pacing, and exact job stream) and then serves only the
        remainder; ``resume=False`` truncates the journal and starts
        fresh.
        """
        jobs = list(jobs)
        start = time.perf_counter()
        store_before = store_stats()
        records: List[PlacementRecord] = []
        rejections: List[Rejection] = []
        start_index = 0
        if self._journal is not None:
            if resume:
                start_index, records, rejections = self._replay(jobs)
            else:
                self._journal.reset()
                self._journal.append(self._meta_record(jobs))
        elif resume:
            raise ValueError("resume=True requires a journal")
        try:
            for index in range(start_index, len(jobs)):
                job = jobs[index]
                now_ms = index * self.interarrival_ms
                self._jlog({
                    "kind": "admit", "index": index,
                    "job_id": job.job_id, "at_ms": round(now_ms, 3),
                })
                candidate, rejection = self.admit(job, now_ms)
                downgrades: List[str] = []
                if (
                    rejection is not None
                    and rejection.kind == "slo_unsatisfiable"
                ):
                    job, candidate, rejection, downgrades = self._degrade(
                        job, rejection, now_ms
                    )
                if rejection is not None:
                    self._jlog({
                        "kind": "reject", "index": index,
                        "rejection": rejection.to_dict(),
                    })
                    rejections.append(rejection)
                    continue
                record = self._place(
                    job, candidate, now_ms,
                    index=index, downgrades=downgrades,
                )
                self._jlog({
                    "kind": "complete", "index": index,
                    "record": record.to_dict(),
                })
                records.append(record)
        finally:
            if self._journal is not None:
                self._journal.close()
        elapsed = time.perf_counter() - start
        makespan = max(
            (s.available_at_ms for s in self._states.values()), default=0.0
        )
        return FleetReport(
            policy=self.policy.name,
            records=records,
            rejections=rejections,
            devices=self._snapshot_devices(makespan),
            elapsed_s=elapsed,
            makespan_ms=makespan,
            resumed=start_index,
            cache_quarantined=sum(
                s.engine.telemetry.counter("cache_quarantined")
                for s in self._states.values()
            ),
            store={
                "process": diff_store_stats(store_before, store_stats()),
                "jobs": self._sum_store_counters(),
            },
        )

    # ------------------------------------------------------------------
    # degraded recompile
    # ------------------------------------------------------------------
    def _degrade(
        self, job: FleetJob, rejection: Rejection, now_ms: float
    ) -> Tuple[
        FleetJob, Optional[Candidate], Optional[Rejection], List[str]
    ]:
        """Walk the degrade ladder after an ``slo_unsatisfiable``.

        Returns the (possibly downgraded) job plus the first rung's
        admission result that produced a candidate; the original
        rejection stands when no rung helps.
        """
        for rung in self.degrade_ladder:
            downgraded = downgrade_job(job, rung)
            if downgraded is None:
                continue  # rung would not change the job
            alt_job, note = downgraded
            candidate, _ = self.admit(alt_job, now_ms)
            if candidate is not None:
                return alt_job, candidate, None, [note]
        return job, None, rejection, []

    def _rescue_candidate(
        self, job: FleetJob, now_ms: float, exclude: FrozenSet[str]
    ) -> Optional[Candidate]:
        """Best-effort migration target when no survivor honours the SLO.

        Admission promises are for *new* jobs; a job that already failed
        mid-run is better served late (and recorded as an SLO miss) than
        dropped, so the promise checks are waived and the fastest
        untried device that can physically run the job is chosen.
        """
        states = [
            s for s in self._states.values()
            if s.label not in exclude
            and s.eligible
            and s.breaker.allows(now_ms)
            and s.backlog(now_ms) < self.device_backlog_limit
        ]
        if job.kind in ("eval", "optimize"):
            states = [
                s for s in states
                if s.target.num_qubits <= self.max_eval_qubits
            ]
        if not states:
            return None

        def latency(state: _DeviceState) -> float:
            wait = max(0.0, state.available_at_ms - now_ms)
            return wait + state.latency.predict_ms(
                job.kind, method=job.method
            )

        best = min(states, key=lambda s: (latency(s), s.order))
        wait_ms = max(0.0, best.available_at_ms - now_ms)
        exec_ms = best.latency.predict_ms(job.kind, method=job.method)
        return Candidate(
            label=best.label,
            order=best.order,
            hardware=best.hardware,
            backlog=best.backlog(now_ms),
            wait_ms=wait_ms,
            exec_ms=exec_ms,
            predicted_latency_ms=wait_ms + exec_ms,
            predicted_success=None,
            predicted_arg=None,
            probe=(best.breaker.poll(now_ms) == BREAKER_HALF_OPEN),
        )

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------
    def _place(
        self,
        job: FleetJob,
        candidate: Candidate,
        now_ms: float,
        *,
        index: Optional[int] = None,
        downgrades: Sequence[str] = (),
    ) -> PlacementRecord:
        downgrades = list(downgrades)
        attempts: List[dict] = []
        tried: List[str] = []
        current = candidate
        result: Optional[JobResult] = None
        final_state: Optional[_DeviceState] = None
        last_finish = now_ms
        final_exec_ms = 0.0
        while True:
            state = self._states[current.label]
            final_state = state
            tried.append(state.label)
            self._jlog({
                "kind": "place", "index": index, "job_id": job.job_id,
                "device": state.label, "at_ms": round(now_ms, 3),
                "attempt": len(attempts), "probe": bool(current.probe),
            })
            result, exec_ms, finish = self._execute_on(state, job, now_ms)
            last_finish = finish
            final_exec_ms = exec_ms
            metrics = result.metrics or {}
            attempts.append({
                "device_label": state.label,
                "exec_ms": round(exec_ms, 6),
                "ok": result.ok,
                "cached": result.cached,
                "probe": bool(current.probe),
                "error_kind": result.error_kind,
                "arg": metrics.get("arg"),
            })
            if result.ok or len(attempts) > self.max_migrations:
                break
            # Terminal failure with migration budget left: re-enter
            # admission, excluding every device this job already burned.
            next_candidate, _why = self.admit(
                job, now_ms, exclude=frozenset(tried)
            )
            if next_candidate is None:
                # No survivor can honour the SLO any more — but the job
                # was already accepted, so serve it late rather than
                # drop it: any untried device that can run it at all.
                next_candidate = self._rescue_candidate(
                    job, now_ms, frozenset(tried)
                )
            if next_candidate is None:
                break
            self._jlog({
                "kind": "migrate", "index": index, "job_id": job.job_id,
                "from": state.label, "to": next_candidate.label,
                "at_ms": round(now_ms, 3),
            })
            current = next_candidate

        observed_ms = last_finish - now_ms
        metrics = result.metrics or {}
        success_prob = metrics.get("success_probability")
        arg = metrics.get("arg")

        if downgrades and result.ok:
            for note in downgrades:
                if note not in result.warnings:
                    result.warnings.append(note)

        placement = {
            "device_label": final_state.label,
            "policy": self.policy.name,
            "wait_ms": round(current.wait_ms, 3),
            "promised_latency_ms": round(
                candidate.predicted_latency_ms, 3
            ),
        }
        if len(attempts) > 1:
            placement["migrations"] = len(attempts) - 1
            placement["original_device"] = attempts[0]["device_label"]
        if downgrades:
            placement["downgrades"] = list(downgrades)
        if current.probe:
            placement["probe"] = True
        _stamp_placement(result, placement, cache=final_state.engine.cache)

        if result.ok:
            misses = job.slo.misses(observed_ms, success_prob, arg)
        else:
            misses = [f"failed: {result.error_kind}"]
        return PlacementRecord(
            job_id=job.job_id,
            kind=job.kind,
            device_label=final_state.label,
            arrival_ms=now_ms,
            wait_ms=current.wait_ms,
            exec_ms=final_exec_ms,
            observed_ms=observed_ms,
            promised_ms=candidate.predicted_latency_ms,
            ok=result.ok,
            cached=result.cached,
            constrained=not job.slo.is_trivial,
            attained=result.ok and not misses,
            slo=job.slo.to_dict(),
            misses=misses,
            success_probability=success_prob,
            arg=arg,
            error=result.error,
            error_kind=result.error_kind,
            method=job.method,
            migrations=len(attempts) - 1,
            original_device=(
                attempts[0]["device_label"] if len(attempts) > 1 else None
            ),
            attempts=attempts,
            downgrades=downgrades,
            probe=bool(current.probe),
        )

    def _execute_on(
        self, state: _DeviceState, job: FleetJob, now_ms: float
    ) -> Tuple[JobResult, float, float]:
        """Run one placement attempt and account it on the device.

        Returns ``(result, exec_ms, virtual_finish_ms)``.  The virtual
        service time is the measured wall latency unless the result
        carries a scripted ``virtual_exec_ms`` metric (chaos scenarios,
        resume-equality tests).
        """
        bound = bind_job(job, state.target)
        result = state.engine.run([bound]).results[0]
        metrics = result.metrics or {}
        if "virtual_exec_ms" in metrics:
            exec_ms = float(metrics["virtual_exec_ms"])
        else:
            exec_ms = result.latency * 1e3

        begin = max(now_ms, state.available_at_ms)
        finish = begin + exec_ms
        state.available_at_ms = finish
        state.pending.append(finish)
        state.busy_ms += exec_ms
        state.placed += 1
        state.latency.observe(job.kind, exec_ms, method=job.method)
        arg = metrics.get("arg")
        if arg is not None:
            state.quality.observe(float(arg))
        if result.ok:
            state.ok += 1
            if result.cached:
                state.cached += 1
            state.breaker.record_success(now_ms)
        else:
            state.failed += 1
            state.breaker.record_failure(
                now_ms, result.error_kind or "unknown"
            )
        return result, exec_ms, finish

    # ------------------------------------------------------------------
    # journal + resume
    # ------------------------------------------------------------------
    def _jlog(self, record: dict) -> None:
        if self._journal is not None and not self._replaying:
            self._journal.append(record)

    def _on_breaker_transition(self, transition: BreakerTransition) -> None:
        self._jlog({"kind": "breaker", **transition.to_dict()})

    def _meta_record(self, jobs: Sequence[FleetJob]) -> dict:
        ordered = sorted(self._states.values(), key=lambda s: s.order)
        return {
            "kind": "meta",
            "journal_version": JOURNAL_VERSION,
            "policy": self.policy.name,
            "interarrival_ms": self.interarrival_ms,
            "labels": [s.label for s in ordered],
            "job_count": len(jobs),
            "fingerprint": stream_fingerprint(jobs),
        }

    def _replay(
        self, jobs: Sequence[FleetJob]
    ) -> Tuple[int, List[PlacementRecord], List[Rejection]]:
        """Rebuild scheduler state from the journal's settled prefix.

        Returns ``(next_index, records, rejections)``.  An absent or
        empty journal degrades to a fresh run.  A journal written for a
        different stream, policy, or pacing raises — resuming it would
        silently produce a report that corresponds to no real run.
        """
        entries = self._journal.read()
        meta, outcomes = SchedulerJournal.settled(entries)
        if meta is None:
            self._journal.reset()
            self._journal.append(self._meta_record(jobs))
            return 0, [], []
        if meta.get("journal_version") != JOURNAL_VERSION:
            raise ValueError(
                f"journal {self._journal.path} has version "
                f"{meta.get('journal_version')}, expected {JOURNAL_VERSION}"
            )
        expected = self._meta_record(jobs)
        for field in ("policy", "interarrival_ms", "labels", "fingerprint"):
            if meta.get(field) != expected[field]:
                raise ValueError(
                    f"journal {self._journal.path} was written for a "
                    f"different run: {field} is {meta.get(field)!r}, this "
                    f"run has {expected[field]!r}"
                )
        records: List[PlacementRecord] = []
        rejections: List[Rejection] = []
        self._replaying = True
        try:
            next_index = 0
            while next_index in outcomes:
                kind, payload = outcomes[next_index]
                if kind == "rejection":
                    rejections.append(Rejection.from_dict(payload))
                else:
                    record = PlacementRecord.from_dict(payload)
                    self._apply_replayed(record)
                    records.append(record)
                next_index += 1
        finally:
            self._replaying = False
        return next_index, records, rejections

    def _apply_replayed(self, record: PlacementRecord) -> None:
        """Re-run one settled placement's accounting (no execution)."""
        now_ms = record.arrival_ms
        for attempt in record.attempts:
            state = self._states[attempt["device_label"]]
            exec_ms = float(attempt["exec_ms"])
            begin = max(now_ms, state.available_at_ms)
            finish = begin + exec_ms
            state.available_at_ms = finish
            state.pending.append(finish)
            state.busy_ms += exec_ms
            state.placed += 1
            state.latency.observe(record.kind, exec_ms, method=record.method)
            arg = attempt.get("arg")
            if arg is not None:
                state.quality.observe(float(arg))
            if attempt["ok"]:
                state.ok += 1
                if attempt.get("cached"):
                    state.cached += 1
                state.breaker.record_success(now_ms)
            else:
                state.failed += 1
                state.breaker.record_failure(
                    now_ms, attempt.get("error_kind") or "unknown"
                )

    def _sum_store_counters(self) -> Dict[str, int]:
        """Total per-job artifact-store events (``store.*`` counters)
        across every device engine's telemetry."""
        prefix = "store."
        totals: Dict[str, int] = {}
        for state in self._states.values():
            counters = state.engine.telemetry.snapshot().get("counters", {})
            for name, value in counters.items():
                if name.startswith(prefix):
                    short = name[len(prefix):]
                    totals[short] = totals.get(short, 0) + int(value)
        return totals

    def _snapshot_devices(self, makespan_ms: float) -> List[DeviceSnapshot]:
        out = []
        for state in sorted(self._states.values(), key=lambda s: s.order):
            breaker = state.breaker.snapshot()
            available = state.eligible and breaker["state"] != "open"
            out.append(
                DeviceSnapshot(
                    label=state.label,
                    device=state.target.name,
                    num_qubits=state.target.num_qubits,
                    hardware=state.hardware,
                    degraded=state.degraded,
                    placed=state.placed,
                    ok=state.ok,
                    failed=state.failed,
                    cached=state.cached,
                    busy_ms=state.busy_ms,
                    utilization=(
                        state.busy_ms / makespan_ms if makespan_ms > 0 else 0.0
                    ),
                    eligible=available,
                    ineligible_reason=(
                        None if available
                        else state.unavailable_reason(makespan_ms)
                    ),
                    latency_model=state.latency.snapshot(),
                    quality_model=state.quality.snapshot(),
                    breaker=breaker,
                )
            )
        return out


def _stamp_placement(
    result: JobResult, placement: dict, cache: Optional[ResultCache]
) -> None:
    """Thread the placement into the result and its cached envelope.

    The envelope format is unchanged (an extra ``metrics`` key, same
    ``format_version``), so stamped and unstamped entries interoperate —
    no cache break.  Cache hits get re-stamped with the *current*
    placement: the cached circuit is placement-agnostic, the audit trail
    is per-run.
    """
    result.placement = placement
    if result.metrics is not None:
        result.metrics["placement"] = placement
    if result.payload is None:
        return
    try:
        metrics, compiled_json = decode_envelope(result.payload)
    except ValueError:
        return
    metrics["placement"] = placement
    if result.warnings:
        merged = list(metrics.get("warnings") or [])
        for note in result.warnings:
            if note not in merged:
                merged.append(note)
        metrics["warnings"] = merged
    result.payload = encode_envelope(compiled_json, metrics)
    if cache is not None:
        cache.put(result.key, result.payload)


def run_fleet(
    jobs: Sequence[FleetJob],
    fleet: FleetSpec,
    policy: Union[str, Policy] = "least-loaded",
    **scheduler_kwargs,
) -> FleetReport:
    """One-shot convenience: ``Scheduler(fleet, policy, ...).run(jobs)``."""
    return Scheduler(fleet, policy, **scheduler_kwargs).run(jobs)
