"""The SLO-aware fleet scheduler: admission control, placement, accounting.

One :class:`Scheduler` owns a :class:`~repro.fleet.spec.FleetSpec`, a
placement :class:`~repro.fleet.policy.Policy`, and per-device runtime
state — a serial :class:`~repro.service.engine.BatchEngine` (cache,
retries, and telemetry all apply per slot), an EWMA latency model per
job kind, an online ARG quality model, and a virtual-clock backlog.

**The clock.**  Jobs arrive on a deterministic virtual timeline
(``interarrival_ms`` apart); each device is a serial server whose
virtual clock advances by the *measured* execution time of every job
placed on it.  Queue waits, backlogs, promised and observed latencies,
utilization and makespan are all derived from this timeline, so a run
is a faithful discrete-event simulation of the fleet serving the stream
concurrently — while the work itself really executes (real compiles,
real evaluations, real cache hits) one job at a time in submission
order, keeping runs reproducible and the accounting honest.

**Admission.**  Every job is admitted or rejected *with a structured
reason* (:data:`~repro.fleet.report.REJECTION_KINDS`): an empty fleet,
no eligible device left (devices lose eligibility after repeated
failures — a fault-injected slot that keeps crashing drops out of the
candidate set mid-stream), a full fleet-wide queue, every device
saturated at its backlog limit, or an SLO no device is predicted to
satisfy — in which case the detail names each device's shortfall.
"""

from __future__ import annotations

import dataclasses
import time
from collections import deque
from typing import Deque, Dict, List, Optional, Sequence, Tuple, Union

from ..service.cache import ResultCache
from ..service.engine import BatchEngine
from ..service.evaluate import EvalJob, execute_eval_job
from ..service.job import (
    JobResult,
    decode_envelope,
    encode_envelope,
    execute_job,
)
from ..service.telemetry import Telemetry
from .estimate import estimate_success_probability
from .jobs import FleetJob, bind_job
from .latency import EwmaLatencyModel, EwmaQualityModel
from .policy import Candidate, Policy, get_policy
from .report import (
    DeviceSnapshot,
    FleetReport,
    PlacementRecord,
    Rejection,
)
from .spec import FleetSpec

__all__ = ["Scheduler", "run_fleet"]


def _execute_fleet_job(job) -> JobResult:
    """Kind-dispatching executor: one engine serves both workloads."""
    if isinstance(job, EvalJob):
        return execute_eval_job(job)
    return execute_job(job)


@dataclasses.dataclass
class _DeviceState:
    """Runtime accounting for one fleet slot."""

    label: str
    order: int
    hardware: bool
    degraded: bool
    target: object
    engine: BatchEngine
    latency: EwmaLatencyModel
    quality: EwmaQualityModel
    available_at_ms: float = 0.0
    busy_ms: float = 0.0
    placed: int = 0
    ok: int = 0
    failed: int = 0
    cached: int = 0
    consecutive_failures: int = 0
    eligible: bool = True
    ineligible_reason: Optional[str] = None
    pending: Deque[float] = dataclasses.field(default_factory=deque)

    def backlog(self, now_ms: float) -> int:
        """Jobs placed here whose virtual finish is still in the future."""
        while self.pending and self.pending[0] <= now_ms:
            self.pending.popleft()
        return len(self.pending)


class Scheduler:
    """Place a stream of :class:`FleetJob` across a device fleet.

    Args:
        fleet: The device slots to schedule onto.
        policy: Placement policy name or instance (see
            :data:`repro.fleet.policy.POLICIES`).
        queue_depth: Fleet-wide bound on admitted-but-unfinished jobs;
            admission rejects ``queue_full`` beyond it.
        device_backlog_limit: Per-device pending-job bound; a device at
            the limit is *saturated* and drops out of the candidate set.
        interarrival_ms: Virtual gap between consecutive job arrivals.
        max_consecutive_failures: Failures in a row before a device
            loses eligibility for the rest of the stream.
        max_eval_qubits: Largest device an *eval* job may be placed on.
            Evaluation materialises probability vectors in the physical
            index space (``2**num_qubits`` doubles), so a 36-qubit slot
            would ask for 512 GiB; such devices stay compile-only.
        cache: Optional shared :class:`ResultCache` for all per-device
            engines.
        retries: Per-device engine retry budget for transient faults.
        execute_fn: Job executor override (tests inject fakes); defaults
            to the kind-dispatching compile/eval executor.
        seed: Retry-jitter seed for the per-device engines.
    """

    def __init__(
        self,
        fleet: FleetSpec,
        policy: Union[str, Policy] = "least-loaded",
        *,
        queue_depth: int = 256,
        device_backlog_limit: int = 32,
        interarrival_ms: float = 0.0,
        max_consecutive_failures: int = 3,
        max_eval_qubits: int = 24,
        cache: Optional[ResultCache] = None,
        retries: int = 0,
        execute_fn=None,
        seed: int = 0,
    ) -> None:
        if queue_depth < 1:
            raise ValueError("queue_depth must be >= 1")
        if device_backlog_limit < 1:
            raise ValueError("device_backlog_limit must be >= 1")
        if interarrival_ms < 0:
            raise ValueError("interarrival_ms must be >= 0")
        if max_consecutive_failures < 1:
            raise ValueError("max_consecutive_failures must be >= 1")
        self.fleet = fleet
        self.policy: Policy = (
            get_policy(policy) if isinstance(policy, str) else policy
        )
        self.queue_depth = queue_depth
        self.device_backlog_limit = device_backlog_limit
        self.interarrival_ms = float(interarrival_ms)
        self.max_consecutive_failures = max_consecutive_failures
        self.max_eval_qubits = max_eval_qubits
        self._states: Dict[str, _DeviceState] = {}
        for order, slot in enumerate(fleet):
            target = fleet.target(slot.label)
            self._states[slot.label] = _DeviceState(
                label=slot.label,
                order=order,
                hardware=bool(slot.hardware),
                degraded=bool(slot.faults),
                target=target,
                engine=BatchEngine(
                    workers=0,
                    retries=retries,
                    cache=cache,
                    telemetry=Telemetry(),
                    seed=seed,
                    execute_fn=execute_fn or _execute_fleet_job,
                ),
                latency=EwmaLatencyModel(),
                quality=EwmaQualityModel(),
            )

    # ------------------------------------------------------------------
    # eligibility
    # ------------------------------------------------------------------
    def mark_ineligible(self, label: str, reason: str) -> None:
        """Remove a device from the candidate set for the rest of the
        stream (mid-stream fault handling; also called automatically
        after ``max_consecutive_failures``)."""
        state = self._states[label]
        state.eligible = False
        state.ineligible_reason = reason

    # ------------------------------------------------------------------
    # admission control
    # ------------------------------------------------------------------
    def admit(
        self, job: FleetJob, now_ms: float = 0.0
    ) -> Tuple[Optional[Candidate], Optional[Rejection]]:
        """Admission decision for one job at one virtual instant.

        Returns ``(candidate, None)`` on admission — the policy's pick —
        or ``(None, rejection)`` with a structured reason.
        """
        if not self._states:
            return None, Rejection(
                job.job_id, "empty_fleet",
                "fleet has no device slots", now_ms,
            )
        eligible = [s for s in self._states.values() if s.eligible]
        if not eligible:
            why = "; ".join(
                f"{s.label}: {s.ineligible_reason}"
                for s in self._states.values()
            )
            return None, Rejection(
                job.job_id, "no_eligible_device",
                f"all {len(self._states)} devices ineligible ({why})",
                now_ms,
            )
        pending_total = sum(s.backlog(now_ms) for s in eligible)
        if pending_total >= self.queue_depth:
            return None, Rejection(
                job.job_id, "queue_full",
                f"{pending_total} jobs pending >= queue depth "
                f"{self.queue_depth}",
                now_ms,
            )
        unsaturated = [
            s for s in eligible
            if s.backlog(now_ms) < self.device_backlog_limit
        ]
        if not unsaturated:
            return None, Rejection(
                job.job_id, "saturated",
                f"all {len(eligible)} eligible devices at backlog limit "
                f"{self.device_backlog_limit}",
                now_ms,
            )

        if job.kind == "eval":
            feasible = [
                s for s in unsaturated
                if s.target.num_qubits <= self.max_eval_qubits
            ]
            if not feasible:
                oversized = ", ".join(
                    f"{s.label} ({s.target.num_qubits}q)"
                    for s in sorted(unsaturated, key=lambda s: s.order)
                )
                return None, Rejection(
                    job.job_id, "no_eligible_device",
                    "eval needs a statevector-simulable device "
                    f"(<= {self.max_eval_qubits} qubits); only {oversized} "
                    "available",
                    now_ms,
                )
        else:
            feasible = unsaturated

        slo = job.slo
        candidates: List[Candidate] = []
        shortfalls: List[str] = []
        for state in sorted(feasible, key=lambda s: s.order):
            wait_ms = max(0.0, state.available_at_ms - now_ms)
            exec_ms = state.latency.predict_ms(job.kind)
            latency_ms = wait_ms + exec_ms
            success = estimate_success_probability(
                job.num_edges, job.levels, state.target
            )
            arg = state.quality.predict()
            reasons: List[str] = []
            if (
                slo.max_latency_ms is not None
                and latency_ms > slo.max_latency_ms
            ):
                reasons.append(
                    f"predicted latency {latency_ms:.1f}ms > "
                    f"{slo.max_latency_ms:.1f}ms"
                )
            if slo.min_success_prob is not None:
                if success is None:
                    reasons.append("no calibration, no fidelity promise")
                elif success < slo.min_success_prob:
                    reasons.append(
                        f"predicted success {success:.3e} < "
                        f"{slo.min_success_prob:.3e}"
                    )
            if (
                slo.max_arg is not None
                and arg is not None
                and arg > slo.max_arg
            ):
                reasons.append(
                    f"observed ARG ewma {arg:.2f}% > {slo.max_arg:.2f}%"
                )
            if reasons:
                shortfalls.append(f"{state.label}: {'; '.join(reasons)}")
            else:
                candidates.append(
                    Candidate(
                        label=state.label,
                        order=state.order,
                        hardware=state.hardware,
                        backlog=state.backlog(now_ms),
                        wait_ms=wait_ms,
                        exec_ms=exec_ms,
                        predicted_latency_ms=latency_ms,
                        predicted_success=success,
                        predicted_arg=arg,
                    )
                )
        if not candidates:
            return None, Rejection(
                job.job_id, "slo_unsatisfiable",
                "no device predicted to satisfy SLO "
                f"{slo.to_dict()}: {' | '.join(shortfalls)}",
                now_ms,
            )
        return self.policy.place(candidates), None

    # ------------------------------------------------------------------
    # the run loop
    # ------------------------------------------------------------------
    def run(self, jobs: Sequence[FleetJob]) -> FleetReport:
        """Serve a job stream; one placement record or rejection per job."""
        start = time.perf_counter()
        records: List[PlacementRecord] = []
        rejections: List[Rejection] = []
        for index, job in enumerate(jobs):
            now_ms = index * self.interarrival_ms
            candidate, rejection = self.admit(job, now_ms)
            if rejection is not None:
                rejections.append(rejection)
                continue
            records.append(self._place(job, candidate, now_ms))
        elapsed = time.perf_counter() - start
        makespan = max(
            (s.available_at_ms for s in self._states.values()), default=0.0
        )
        return FleetReport(
            policy=self.policy.name,
            records=records,
            rejections=rejections,
            devices=self._snapshot_devices(makespan),
            elapsed_s=elapsed,
            makespan_ms=makespan,
        )

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------
    def _place(
        self, job: FleetJob, candidate: Candidate, now_ms: float
    ) -> PlacementRecord:
        state = self._states[candidate.label]
        bound = bind_job(job, state.target)
        result = state.engine.run([bound]).results[0]
        exec_ms = result.latency * 1e3

        begin = max(now_ms, state.available_at_ms)
        finish = begin + exec_ms
        observed_ms = finish - now_ms
        state.available_at_ms = finish
        state.pending.append(finish)
        state.busy_ms += exec_ms
        state.placed += 1
        state.latency.observe(job.kind, exec_ms)

        metrics = result.metrics or {}
        success_prob = metrics.get("success_probability")
        arg = metrics.get("arg")
        if arg is not None:
            state.quality.observe(float(arg))

        if result.ok:
            state.ok += 1
            state.consecutive_failures = 0
            if result.cached:
                state.cached += 1
        else:
            state.failed += 1
            state.consecutive_failures += 1
            if (
                state.eligible
                and state.consecutive_failures
                >= self.max_consecutive_failures
            ):
                self.mark_ineligible(
                    state.label,
                    f"{state.consecutive_failures} consecutive failures "
                    f"(last: {result.error_kind})",
                )

        placement = {
            "device_label": state.label,
            "policy": self.policy.name,
            "wait_ms": round(candidate.wait_ms, 3),
            "promised_latency_ms": round(
                candidate.predicted_latency_ms, 3
            ),
        }
        _stamp_placement(result, placement, cache=state.engine.cache)

        if result.ok:
            misses = job.slo.misses(observed_ms, success_prob, arg)
        else:
            misses = [f"failed: {result.error_kind}"]
        return PlacementRecord(
            job_id=job.job_id,
            kind=job.kind,
            device_label=state.label,
            arrival_ms=now_ms,
            wait_ms=candidate.wait_ms,
            exec_ms=exec_ms,
            observed_ms=observed_ms,
            promised_ms=candidate.predicted_latency_ms,
            ok=result.ok,
            cached=result.cached,
            constrained=not job.slo.is_trivial,
            attained=result.ok and not misses,
            slo=job.slo.to_dict(),
            misses=misses,
            success_probability=success_prob,
            arg=arg,
            error=result.error,
            error_kind=result.error_kind,
        )

    def _snapshot_devices(self, makespan_ms: float) -> List[DeviceSnapshot]:
        out = []
        for state in sorted(self._states.values(), key=lambda s: s.order):
            out.append(
                DeviceSnapshot(
                    label=state.label,
                    device=state.target.name,
                    num_qubits=state.target.num_qubits,
                    hardware=state.hardware,
                    degraded=state.degraded,
                    placed=state.placed,
                    ok=state.ok,
                    failed=state.failed,
                    cached=state.cached,
                    busy_ms=state.busy_ms,
                    utilization=(
                        state.busy_ms / makespan_ms if makespan_ms > 0 else 0.0
                    ),
                    eligible=state.eligible,
                    ineligible_reason=state.ineligible_reason,
                    latency_model=state.latency.snapshot(),
                    quality_model=state.quality.snapshot(),
                )
            )
        return out


def _stamp_placement(
    result: JobResult, placement: dict, cache: Optional[ResultCache]
) -> None:
    """Thread the placement into the result and its cached envelope.

    The envelope format is unchanged (an extra ``metrics`` key, same
    ``format_version``), so stamped and unstamped entries interoperate —
    no cache break.  Cache hits get re-stamped with the *current*
    placement: the cached circuit is placement-agnostic, the audit trail
    is per-run.
    """
    result.placement = placement
    if result.metrics is not None:
        result.metrics["placement"] = placement
    if result.payload is None:
        return
    try:
        metrics, compiled_json = decode_envelope(result.payload)
    except ValueError:
        return
    metrics["placement"] = placement
    result.payload = encode_envelope(compiled_json, metrics)
    if cache is not None:
        cache.put(result.key, result.payload)


def run_fleet(
    jobs: Sequence[FleetJob],
    fleet: FleetSpec,
    policy: Union[str, Policy] = "least-loaded",
    **scheduler_kwargs,
) -> FleetReport:
    """One-shot convenience: ``Scheduler(fleet, policy, ...).run(jobs)``."""
    return Scheduler(fleet, policy, **scheduler_kwargs).run(jobs)
