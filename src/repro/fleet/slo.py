"""Per-job service-level objectives for fleet placement.

A fleet job carries an :class:`SLO` naming what the requester is owed:

* ``max_latency_ms`` — end-to-end latency bound (queue wait + execution),
  the time side of the promise.  The scheduler compares it against the
  device's EWMA-predicted completion time at admission and against the
  observed completion afterwards.
* ``min_success_prob`` — minimum predicted circuit success probability,
  the fidelity side.  Admission uses the calibration-derived estimate
  (:mod:`repro.fleet.estimate`); attainment uses the compiled circuit's
  measured ``success_probability``.
* ``max_arg`` — maximum tolerated approximation-ratio gap
  (``100 * (r0 - rh) / r0``, percent; lower is better).  The ROADMAP
  phrases this bound "min ARG" — a minimum *quality* bar — but ARG is a
  gap, so the bound is a maximum.  ARG is only measurable post-hoc, so
  admission filters on the per-device online EWMA of observed gaps
  (optimistic until a device has produced one) while attainment uses the
  job's own measured gap.

``None`` disables a dimension; ``SLO()`` is the best-effort job.  The
tier presets (``gold``/``silver``/``bronze``) are what the synthetic
stream generator and the benchmarks hand out.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Optional

__all__ = ["SLO", "SLO_TIERS", "slo_from_dict"]


@dataclasses.dataclass(frozen=True)
class SLO:
    """What one fleet job is owed (``None`` disables a dimension)."""

    max_latency_ms: Optional[float] = None
    min_success_prob: Optional[float] = None
    max_arg: Optional[float] = None

    def __post_init__(self) -> None:
        if self.max_latency_ms is not None and self.max_latency_ms <= 0:
            raise ValueError("max_latency_ms must be positive or None")
        if self.min_success_prob is not None and not (
            0.0 <= self.min_success_prob <= 1.0
        ):
            raise ValueError("min_success_prob must sit in [0, 1] or None")
        if self.max_arg is not None and self.max_arg < 0:
            raise ValueError("max_arg must be >= 0 or None")

    @property
    def is_trivial(self) -> bool:
        """True for the best-effort job (no dimension constrained)."""
        return (
            self.max_latency_ms is None
            and self.min_success_prob is None
            and self.max_arg is None
        )

    def misses(
        self,
        observed_latency_ms: float,
        success_prob: Optional[float],
        arg: Optional[float],
    ) -> List[str]:
        """The post-hoc attainment check: one entry per violated
        dimension (empty list = SLO attained).

        A constrained dimension the result could not measure (no
        calibration → no success probability; a compile-only job → no
        ARG) counts as a miss: the promise was not demonstrably kept.
        """
        out: List[str] = []
        if (
            self.max_latency_ms is not None
            and observed_latency_ms > self.max_latency_ms
        ):
            out.append(
                f"latency {observed_latency_ms:.1f}ms > "
                f"{self.max_latency_ms:.1f}ms"
            )
        if self.min_success_prob is not None:
            if success_prob is None:
                out.append("success probability unmeasured")
            elif success_prob < self.min_success_prob:
                out.append(
                    f"success {success_prob:.3e} < "
                    f"{self.min_success_prob:.3e}"
                )
        if self.max_arg is not None:
            if arg is None:
                out.append("ARG unmeasured")
            elif arg > self.max_arg:
                out.append(f"ARG {arg:.2f}% > {self.max_arg:.2f}%")
        return out

    def to_dict(self) -> dict:
        return {
            "max_latency_ms": self.max_latency_ms,
            "min_success_prob": self.min_success_prob,
            "max_arg": self.max_arg,
        }


#: Tiered presets for the synthetic streams and benchmarks.  Gold buys a
#: tight latency bound *and* a quality bar; silver a looser latency bound
#: plus a fidelity floor; bronze is latency-only; best-effort is free.
#: Gold's ARG bar (8%) sits between the clean 20-qubit topologies
#: (typically 2-5% on 8-node problems) and the sparse/degraded slots
#: (often 7-18%), so where a gold job lands genuinely decides whether
#: the quality promise holds.
SLO_TIERS: Dict[str, SLO] = {
    "gold": SLO(max_latency_ms=250.0, min_success_prob=1e-4, max_arg=8.0),
    "silver": SLO(max_latency_ms=1000.0, min_success_prob=1e-6),
    "bronze": SLO(max_latency_ms=4000.0),
    "best-effort": SLO(),
}


def slo_from_dict(spec) -> SLO:
    """Parse an SLO from a JSONL job line.

    Accepts a tier name (``"gold"``), a dict of bounds, or ``None``
    (best-effort).
    """
    if spec is None:
        return SLO()
    if isinstance(spec, str):
        try:
            return SLO_TIERS[spec]
        except KeyError:
            known = ", ".join(sorted(SLO_TIERS))
            raise ValueError(
                f"unknown SLO tier {spec!r}; known: {known}"
            ) from None
    if isinstance(spec, dict):
        unknown = set(spec) - {
            "max_latency_ms", "min_success_prob", "max_arg",
        }
        if unknown:
            raise ValueError(f"unknown SLO field(s): {sorted(unknown)}")
        return SLO(
            max_latency_ms=(
                None
                if spec.get("max_latency_ms") is None
                else float(spec["max_latency_ms"])
            ),
            min_success_prob=(
                None
                if spec.get("min_success_prob") is None
                else float(spec["min_success_prob"])
            ),
            max_arg=(
                None
                if spec.get("max_arg") is None
                else float(spec["max_arg"])
            ),
        )
    raise ValueError(f"unsupported SLO spec {spec!r}")
