"""Per-device online models: EWMA latency and EWMA quality.

The scheduler promises latency at admission time, before a job runs, so
each device carries an exponentially weighted moving average of observed
execution time per job kind (``compile`` is much cheaper than ``eval``,
so the kinds never share a stream).  The same machinery tracks observed
ARG per device: approximation-ratio gaps are only measurable after an
evaluation, so the fleet *learns* each device's quality online and uses
the running estimate to steer quality-constrained jobs away from devices
that have demonstrated bad gaps (e.g. fault-injected variants).

EWMA (rather than a percentile reservoir) because placement needs a
point prediction that tracks drift quickly — a device that just slowed
down (cold cache, noisy neighbour) should immediately look slower to the
admission check, and one observation per job keeps this O(1).
"""

from __future__ import annotations

from typing import Dict, Optional

__all__ = ["EwmaLatencyModel", "EwmaQualityModel", "METHOD_COST_FACTORS"]

#: Cold-start execution priors (ms) per job kind: roughly one paper-size
#: compile and one fast-path evaluation on commodity hardware.  They only
#: matter until the first observation lands.
_DEFAULT_PRIORS_MS = {"compile": 50.0, "eval": 250.0, "optimize": 400.0}

#: Cold-start *relative* cost of the paper's method presets against the
#: kind prior, from the bench_service_throughput / pass-trace numbers:
#: random ordering is nearly free, IP adds routing over a random order,
#: IC interleaves, QAIM adds placement, VIC pays the variation-aware
#: distance resolution.  These scale the prior until a per-method stream
#: has real observations, which is what makes an SLO-aware *degraded
#: recompile* (retry admission with a cheaper method) predict cheaper
#: before the method has ever run on that device.
METHOD_COST_FACTORS = {
    "random": 0.5,
    "swap_network": 0.6,
    "ip": 0.7,
    "ic": 1.0,
    "qaim": 1.1,
    "parity": 1.2,
    "vic": 1.4,
}


class EwmaLatencyModel:
    """Per-kind (and optionally per-method) EWMA of execution ms.

    Predictions resolve most-specific-first: a ``"{kind}:{method}"``
    stream once that method has run on the device, then the plain kind
    stream, then the cold-start prior (scaled by
    :data:`METHOD_COST_FACTORS` when a method is named).  Observations
    feed both the kind stream and — when the method is known — the
    method stream, so kind-level predictions stay exactly as before for
    callers that never pass a method.

    Args:
        alpha: Smoothing factor in (0, 1]; higher = faster tracking.
        priors_ms: Cold-start predictions per job kind.
    """

    def __init__(
        self,
        alpha: float = 0.3,
        priors_ms: Optional[Dict[str, float]] = None,
    ) -> None:
        if not 0.0 < alpha <= 1.0:
            raise ValueError("alpha must sit in (0, 1]")
        self.alpha = float(alpha)
        self.priors_ms = dict(priors_ms or _DEFAULT_PRIORS_MS)
        self._mean: Dict[str, float] = {}
        self._count: Dict[str, int] = {}

    def predict_ms(self, kind: str, method: Optional[str] = None) -> float:
        """Predicted execution time; the prior until data arrives."""
        if method is not None:
            value = self._mean.get(f"{kind}:{method}")
            if value is not None:
                return value
        value = self._mean.get(kind)
        if value is not None:
            return value
        prior = self.priors_ms.get(kind, 100.0)
        if method is not None:
            prior *= METHOD_COST_FACTORS.get(method, 1.0)
        return prior

    def observe(
        self, kind: str, value_ms: float, method: Optional[str] = None
    ) -> None:
        value_ms = float(value_ms)
        if value_ms < 0:
            raise ValueError("latency observation must be >= 0")
        streams = [kind]
        if method is not None:
            streams.append(f"{kind}:{method}")
        for stream in streams:
            current = self._mean.get(stream)
            if current is None:
                self._mean[stream] = value_ms  # first sample beats the prior
            else:
                self._mean[stream] = (
                    self.alpha * value_ms + (1.0 - self.alpha) * current
                )
            self._count[stream] = self._count.get(stream, 0) + 1

    def observations(self, kind: str) -> int:
        return self._count.get(kind, 0)

    def snapshot(self) -> dict:
        return {
            kind: {"ewma_ms": self._mean[kind], "count": self._count[kind]}
            for kind in sorted(self._mean)
        }


class EwmaQualityModel:
    """EWMA of an observed quality signal (ARG percent, lower = better).

    ``predict()`` returns ``None`` until the first observation — the
    scheduler treats an unknown device optimistically (admission cannot
    reject on a number nobody has measured yet).
    """

    def __init__(self, alpha: float = 0.3) -> None:
        if not 0.0 < alpha <= 1.0:
            raise ValueError("alpha must sit in (0, 1]")
        self.alpha = float(alpha)
        self._mean: Optional[float] = None
        self._count = 0

    def predict(self) -> Optional[float]:
        return self._mean

    def observe(self, value: float) -> None:
        value = float(value)
        if self._mean is None:
            self._mean = value
        else:
            self._mean = self.alpha * value + (1.0 - self.alpha) * self._mean
        self._count += 1

    def observations(self) -> int:
        return self._count

    def snapshot(self) -> dict:
        return {"ewma": self._mean, "count": self._count}
