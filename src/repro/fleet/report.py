"""Fleet telemetry: placements, rejections, attainment, utilization.

A :class:`FleetReport` is everything one scheduler run produced — one
:class:`PlacementRecord` per placed job, one :class:`Rejection` per job
admission refused (always with a structured reason), and a
:class:`DeviceSnapshot` per slot.  The headline numbers the ROADMAP asks
operators to watch all derive from these records:

* **SLO attainment rate** — attained / SLO-constrained placements;
* **per-device utilization** — busy time over the fleet makespan;
* **p95 observed vs promised latency** — did the admission-time promise
  hold at the tail?;
* **rejection counts by kind** — where admission control pushed back.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Optional

from ..service.telemetry import percentile

__all__ = [
    "REJECTION_KINDS",
    "Rejection",
    "PlacementRecord",
    "DeviceSnapshot",
    "FleetReport",
]

#: Every structured reason admission control can refuse a job with.
REJECTION_KINDS = (
    "empty_fleet",
    "unknown_method",
    "no_eligible_device",
    "queue_full",
    "saturated",
    "slo_unsatisfiable",
)


@dataclasses.dataclass(frozen=True)
class Rejection:
    """One refused admission.

    Attributes:
        job_id: The refused job's correlation id.
        kind: One of :data:`REJECTION_KINDS`.
        detail: Human-readable account of *why* — for
            ``slo_unsatisfiable`` it names each device's shortfall.
        arrival_ms: Virtual arrival time of the refused job.
    """

    job_id: Optional[str]
    kind: str
    detail: str
    arrival_ms: float = 0.0

    def to_dict(self) -> dict:
        return {
            "job_id": self.job_id,
            "kind": self.kind,
            "detail": self.detail,
            "arrival_ms": round(self.arrival_ms, 3),
        }

    @classmethod
    def from_dict(cls, data: dict) -> "Rejection":
        """Rebuild from :meth:`to_dict` output (journal replay)."""
        names = {f.name for f in dataclasses.fields(cls)}
        return cls(**{k: v for k, v in data.items() if k in names})


@dataclasses.dataclass
class PlacementRecord:
    """One placed job's full audit trail.

    Resilience fields (all defaulted, so pre-resilience constructors
    keep working):

    * ``method`` — the compile method that actually ran (differs from
      the submitted one after a degraded recompile).
    * ``migrations`` / ``original_device`` / ``attempts`` — how many
      times the job was re-placed after a terminal device failure, where
      it started, and one entry per attempt (device, virtual exec time,
      outcome) — enough to replay the run's accounting from a journal.
    * ``downgrades`` — structured degraded-recompile warnings (empty
      when the job ran as submitted).
    * ``probe`` — the final placement was a half-open circuit-breaker
      recovery probe.
    """

    job_id: Optional[str]
    kind: str
    device_label: str
    arrival_ms: float
    wait_ms: float
    exec_ms: float
    observed_ms: float
    promised_ms: float
    ok: bool
    cached: bool
    constrained: bool
    attained: bool
    slo: dict
    misses: List[str]
    success_probability: Optional[float] = None
    arg: Optional[float] = None
    error: Optional[str] = None
    error_kind: Optional[str] = None
    method: Optional[str] = None
    migrations: int = 0
    original_device: Optional[str] = None
    attempts: List[dict] = dataclasses.field(default_factory=list)
    downgrades: List[str] = dataclasses.field(default_factory=list)
    probe: bool = False

    def to_dict(self) -> dict:
        out = dataclasses.asdict(self)
        for key in ("arrival_ms", "wait_ms", "exec_ms", "observed_ms",
                    "promised_ms"):
            out[key] = round(out[key], 3)
        return out

    @classmethod
    def from_dict(cls, data: dict) -> "PlacementRecord":
        """Rebuild from :meth:`to_dict` output (journal replay).

        Unknown keys are dropped so a journal written by a slightly
        newer minor version still replays.
        """
        names = {f.name for f in dataclasses.fields(cls)}
        return cls(**{k: v for k, v in data.items() if k in names})


@dataclasses.dataclass
class DeviceSnapshot:
    """End-of-run state of one fleet slot."""

    label: str
    device: str
    num_qubits: int
    hardware: bool
    degraded: bool
    placed: int
    ok: int
    failed: int
    cached: int
    busy_ms: float
    utilization: float
    eligible: bool
    ineligible_reason: Optional[str]
    latency_model: dict
    quality_model: dict
    breaker: dict = dataclasses.field(default_factory=dict)

    def to_dict(self) -> dict:
        out = dataclasses.asdict(self)
        out["busy_ms"] = round(out["busy_ms"], 3)
        out["utilization"] = round(out["utilization"], 4)
        return out


@dataclasses.dataclass
class FleetReport:
    """Everything one fleet run produced."""

    policy: str
    records: List[PlacementRecord]
    rejections: List[Rejection]
    devices: List[DeviceSnapshot]
    elapsed_s: float
    makespan_ms: float
    #: Jobs whose outcome was replayed from a scheduler journal rather
    #: than served in this process (``Scheduler.run(..., resume=True)``).
    resumed: int = 0
    #: Corrupt cache entries quarantined by the per-device engines.
    cache_quarantined: int = 0
    #: Artifact-store activity for the run: ``"process"`` — the
    #: :func:`repro.store.diff_store_stats` delta of this process's
    #: registries and shared-memory tier; ``"jobs"`` — summed per-job
    #: ``store.*`` counters from every device engine's telemetry.
    store: dict = dataclasses.field(default_factory=dict)

    # ------------------------------------------------------------------
    # headline metrics
    # ------------------------------------------------------------------
    @property
    def placed(self) -> int:
        return len(self.records)

    @property
    def constrained(self) -> List[PlacementRecord]:
        """Placements that carried at least one SLO bound."""
        return [r for r in self.records if r.constrained]

    @property
    def attained(self) -> List[PlacementRecord]:
        return [r for r in self.records if r.constrained and r.attained]

    def attainment_rate(self) -> float:
        """Attained / SLO-constrained placements (1.0 when none were
        constrained — nothing was promised, nothing was broken)."""
        constrained = self.constrained
        if not constrained:
            return 1.0
        return len(self.attained) / len(constrained)

    def rejection_counts(self) -> Dict[str, int]:
        counts: Dict[str, int] = {}
        for rejection in self.rejections:
            counts[rejection.kind] = counts.get(rejection.kind, 0) + 1
        return counts

    def miss_counts(self) -> Dict[str, int]:
        """SLO misses bucketed by dimension (latency/success/ARG/failed)."""
        counts: Dict[str, int] = {}
        for record in self.records:
            for miss in record.misses:
                bucket = miss.split(" ", 1)[0].rstrip(":").lower()
                counts[bucket] = counts.get(bucket, 0) + 1
        return counts

    def p95_observed_ms(self) -> float:
        if not self.records:
            return 0.0
        return percentile([r.observed_ms for r in self.records], 95.0)

    def p95_promised_ms(self) -> float:
        if not self.records:
            return 0.0
        return percentile([r.promised_ms for r in self.records], 95.0)

    def utilization(self) -> Dict[str, float]:
        return {d.label: d.utilization for d in self.devices}

    def migrations(self) -> int:
        """Total failure-triggered re-placements across the run."""
        return sum(r.migrations for r in self.records)

    def downgrades(self) -> int:
        """Jobs served via an SLO-aware degraded recompile."""
        return sum(1 for r in self.records if r.downgrades)

    def breaker_counts(self) -> Dict[str, int]:
        """Fleet-wide circuit-breaker trips/recoveries/probes."""
        totals = {"trips": 0, "recoveries": 0, "probes": 0}
        for device in self.devices:
            for key in totals:
                totals[key] += int((device.breaker or {}).get(key, 0))
        return totals

    def summary(self) -> dict:
        return {
            "policy": self.policy,
            "jobs": self.placed + len(self.rejections),
            "placed": self.placed,
            "ok": sum(1 for r in self.records if r.ok),
            "failed": sum(1 for r in self.records if not r.ok),
            "cached": sum(1 for r in self.records if r.cached),
            "constrained": len(self.constrained),
            "attained": len(self.attained),
            "attainment_rate": self.attainment_rate(),
            "rejected": len(self.rejections),
            "rejections": self.rejection_counts(),
            "misses": self.miss_counts(),
            "migrations": self.migrations(),
            "downgrades": self.downgrades(),
            "breaker": self.breaker_counts(),
            "resumed": self.resumed,
            "cache_quarantined": self.cache_quarantined,
            "store": self.store.get("jobs", {}),
            "p95_observed_ms": self.p95_observed_ms(),
            "p95_promised_ms": self.p95_promised_ms(),
            "makespan_ms": self.makespan_ms,
            "elapsed_s": self.elapsed_s,
            "utilization": self.utilization(),
        }

    def to_dict(self) -> dict:
        return {
            "summary": self.summary(),
            "devices": [d.to_dict() for d in self.devices],
            "placements": [r.to_dict() for r in self.records],
            "rejections": [r.to_dict() for r in self.rejections],
        }

    def render(self) -> str:
        """Terminal tables: headline, per-device, rejections."""
        from ..experiments.reporting import format_table

        s = self.summary()
        breaker = s["breaker"]
        headline = [
            ["policy", s["policy"]],
            ["jobs", s["jobs"]],
            ["placed", f"{s['placed']} ({s['cached']} cached)"],
            ["failed", s["failed"]],
            ["rejected", s["rejected"]],
            [
                "SLO attainment",
                f"{s['attained']}/{s['constrained']} "
                f"({100 * s['attainment_rate']:.1f}%)",
            ],
            ["migrations", s["migrations"]],
            ["degraded recompiles", s["downgrades"]],
            [
                "breaker",
                f"{breaker['trips']} trips, "
                f"{breaker['recoveries']} recoveries",
            ],
            ["p95 observed", f"{s['p95_observed_ms']:.1f} ms"],
            ["p95 promised", f"{s['p95_promised_ms']:.1f} ms"],
            ["makespan", f"{s['makespan_ms']:.1f} ms"],
            ["wall elapsed", f"{s['elapsed_s']:.3f} s"],
        ]
        if s["resumed"]:
            headline.insert(2, ["resumed from journal", s["resumed"]])
        if s["cache_quarantined"]:
            headline.append(["cache quarantined", s["cache_quarantined"]])
        store = s["store"]
        if store:
            headline.append(
                [
                    "store shm hits/publishes",
                    f"{store.get('shm_hits', 0)}/"
                    f"{store.get('shm_publishes', 0)}",
                ]
            )
        blocks = [format_table(["fleet", "value"], headline)]

        rows = [
            [
                d.label,
                d.device,
                "hw" if d.hardware else "sim",
                "degraded" if d.degraded else "clean",
                d.placed,
                d.failed,
                f"{100 * d.utilization:.1f}%",
                "yes" if d.eligible else f"no ({d.ineligible_reason})",
            ]
            for d in self.devices
        ]
        blocks.append(
            format_table(
                [
                    "device", "topology", "kind", "state", "placed",
                    "failed", "util", "eligible",
                ],
                rows,
            )
        )

        if self.rejections:
            rows = [
                [kind, count]
                for kind, count in sorted(self.rejection_counts().items())
            ]
            blocks.append(format_table(["rejection", "count"], rows))
        if s["misses"]:
            rows = [
                [bucket, count]
                for bucket, count in sorted(s["misses"].items())
            ]
            blocks.append(format_table(["slo miss", "count"], rows))
        return "\n\n".join(blocks)
