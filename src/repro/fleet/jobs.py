"""Fleet jobs: device-free work units the scheduler binds at placement.

A :class:`FleetJob` wraps one service-layer job — a
:class:`~repro.service.job.CompileJob` or
:class:`~repro.service.evaluate.EvalJob` — plus the :class:`SLO` the
requester bought.  The wrapped job's ``device``/``calibration`` fields
are placeholders: placement *binds* the job to the chosen slot's target
(coupling + calibration) via :func:`bind_job`, producing a normal
service job that flows through the per-device
:class:`~repro.service.engine.BatchEngine` unchanged, content hash and
cache included.

JSONL lines reuse the ``repro batch`` job grammar
(:func:`repro.service.job.job_from_dict`) with three fleet extensions::

    {"problem": {...}, "slo": "gold"}
    {"program": {...}, "slo": {"max_latency_ms": 500},
     "eval": {"shots": 1024, "trajectories": 8}}
    {"qubo": {"matrix": [[1, -1], [-1, 1]]}, "slo": "silver",
     "optimize": {"p": 1, "optimizer": "cobyla", "maxiter": 150}}

``"slo"`` is a tier name or bound dict; a present ``"eval"`` object
turns the line into an evaluation job, a present ``"optimize"`` object
into a variational :class:`~repro.service.optimize.OptimizeJob` over any
unified-frontend problem form.  ``"device"`` entries are ignored — the
scheduler owns placement (optimize jobs run device-free on the exact
fast path, but stay memory-constrained like evaluations).
"""

from __future__ import annotations

import dataclasses
import json
from typing import List, Optional, Sequence, Union

import numpy as np

from ..hardware.target import Target
from ..service.evaluate import EvalJob
from ..service.job import CompileJob, job_from_dict
from ..service.optimize import OptimizeJob, optimize_job_from_dict
from .slo import SLO, SLO_TIERS, slo_from_dict

__all__ = [
    "FleetJob",
    "bind_job",
    "fleet_jobs_from_jsonl",
    "synthetic_stream",
]


@dataclasses.dataclass(frozen=True)
class FleetJob:
    """One unit of fleet work: a service job plus its SLO."""

    job: Union[CompileJob, EvalJob, OptimizeJob]
    slo: SLO = SLO()

    @property
    def kind(self) -> str:
        """``"compile"``, ``"eval"`` or ``"optimize"`` (what the latency
        model keys on)."""
        if isinstance(self.job, OptimizeJob):
            return "optimize"
        return "eval" if isinstance(self.job, EvalJob) else "compile"

    @property
    def job_id(self) -> Optional[str]:
        return self.job.job_id

    @property
    def method(self) -> Optional[str]:
        """Compile method label (EvalJob proxies its compile job's;
        OptimizeJob reports its classical optimizer; inline
        PipelineSpec methods read as their flow label)."""
        method = getattr(self.job, "method", None)
        if method is None or isinstance(method, str):
            return method
        from ..service.job import method_label

        return method_label(method)

    @property
    def program(self):
        """The wrapped program (``None`` for optimize jobs — the
        variational loop picks its own angles)."""
        if isinstance(self.job, OptimizeJob):
            return None
        return self.job.program

    @property
    def levels(self) -> int:
        if isinstance(self.job, OptimizeJob):
            return int(self.job.p)
        return len(self.job.program.levels)

    @property
    def num_edges(self) -> int:
        if isinstance(self.job, OptimizeJob):
            return len(self.job.problem.edges)
        return len(self.job.program.edges)


def bind_job(
    fleet_job: FleetJob, target: Target
) -> Union[CompileJob, EvalJob, OptimizeJob]:
    """The concrete service job for one placement decision.

    Rebinds the wrapped job's device and calibration to the slot's
    target content; everything else (program, method, seeds, eval knobs)
    is preserved, so the content hash — and therefore the cache key —
    depends on *where* the job landed, never on scheduler state.
    Optimize jobs are device-free (exact fast path) and pass through
    unchanged — their hash never depends on placement.
    """
    if isinstance(fleet_job.job, OptimizeJob):
        return fleet_job.job
    if isinstance(fleet_job.job, EvalJob):
        compile_job = dataclasses.replace(
            fleet_job.job.compile_job,
            device=target.coupling,
            calibration=target.calibration,
        )
        return dataclasses.replace(fleet_job.job, compile_job=compile_job)
    return dataclasses.replace(
        fleet_job.job,
        device=target.coupling,
        calibration=target.calibration,
    )


def fleet_jobs_from_jsonl(lines: Sequence[str]) -> List[FleetJob]:
    """Parse a fleet JSONL job stream (blank lines / ``#`` comments
    skipped); raises ``ValueError`` naming the offending line."""
    out: List[FleetJob] = []
    for lineno, line in enumerate(lines, start=1):
        line = line.strip()
        if not line or line.startswith("#"):
            continue
        try:
            spec = json.loads(line)
            slo = slo_from_dict(spec.pop("slo", None))
            if "optimize" in spec:
                out.append(
                    FleetJob(job=optimize_job_from_dict(spec), slo=slo)
                )
                continue
            eval_spec = spec.pop("eval", None)
            compile_job = job_from_dict(spec)
            if eval_spec is None:
                out.append(FleetJob(job=compile_job, slo=slo))
                continue
            if not isinstance(eval_spec, dict):
                raise ValueError("'eval' must be an object")
            out.append(
                FleetJob(
                    job=EvalJob(
                        compile_job=compile_job,
                        shots=int(eval_spec.get("shots", 4096)),
                        trajectories=int(eval_spec.get("trajectories", 32)),
                        noise_scale=float(eval_spec.get("noise_scale", 1.0)),
                        t2_ns=(
                            None
                            if eval_spec.get("t2_ns") is None
                            else float(eval_spec["t2_ns"])
                        ),
                        mode=str(eval_spec.get("mode", "sampled")),
                        eval_seed=int(eval_spec.get("eval_seed", 0)),
                        job_id=compile_job.job_id,
                    ),
                    slo=slo,
                )
            )
        except (ValueError, KeyError, TypeError) as exc:
            raise ValueError(f"bad fleet job on line {lineno}: {exc}") from exc
    return out


#: Tier mix of the synthetic stream: mostly bronze/best-effort traffic
#: with a paying minority, like any real service.
_TIER_WEIGHTS = (
    ("gold", 0.2),
    ("silver", 0.3),
    ("bronze", 0.3),
    ("best-effort", 0.2),
)


def synthetic_stream(
    count: int,
    seed: int = 0,
    nodes: int = 8,
    eval_fraction: float = 0.3,
    shots: int = 512,
    trajectories: int = 8,
    methods: Sequence[str] = ("ic", "qaim", "ip"),
    tier_weights: Optional[Sequence] = None,
) -> List[FleetJob]:
    """A seeded mixed compile/eval job stream with tiered SLOs.

    Problems are Erdős–Rényi instances of ``nodes-1 .. nodes+1`` vertices
    at p=0.5, methods cycle through ``methods``, roughly
    ``eval_fraction`` of the jobs are evaluations (the expensive kind),
    and tiers are drawn from ``tier_weights`` (``(name, weight)`` pairs;
    defaults to the service-like mix above).  Fully deterministic under
    ``seed`` — benchmarks compare policies on byte-identical streams.
    """
    if count < 1:
        raise ValueError("count must be >= 1")
    from ..experiments.harness import make_problem

    weights = _TIER_WEIGHTS if tier_weights is None else list(tier_weights)
    rng = np.random.default_rng(seed)
    tier_names = [name for name, _ in weights]
    for name in tier_names:
        if name not in SLO_TIERS:
            raise ValueError(f"unknown SLO tier {name!r} in tier_weights")
    tier_probs = np.array([w for _, w in weights])
    tier_probs = tier_probs / tier_probs.sum()
    jobs: List[FleetJob] = []
    for i in range(count):
        n = int(nodes + rng.integers(-1, 2))
        problem = make_problem("er", max(4, n), 0.5, rng)
        program = problem.to_program([0.7], [0.35])
        is_eval = bool(rng.random() < eval_fraction)
        tier = tier_names[int(rng.choice(len(tier_names), p=tier_probs))]
        if tier == "gold" and not is_eval:
            # Gold's ARG bound needs an evaluation to be measurable; a
            # compile-only job can never demonstrably attain it.
            tier = "silver"
        method = methods[i % len(methods)]
        compile_job = CompileJob(
            program=program,
            device="ibmq_20_tokyo",  # placeholder; the scheduler binds
            method=method,
            seed=int(rng.integers(0, 2**31)),
            job_id=f"job-{i:04d}-{tier}",
        )
        if is_eval:
            job: Union[CompileJob, EvalJob] = EvalJob(
                compile_job=compile_job,
                shots=shots,
                trajectories=trajectories,
                eval_seed=int(rng.integers(0, 2**31)),
                job_id=compile_job.job_id,
            )
        else:
            job = compile_job
        jobs.append(FleetJob(job=job, slo=SLO_TIERS[tier]))
    return jobs
