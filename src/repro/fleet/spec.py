"""Fleet description: named device slots, fault-injected variants, targets.

A :class:`FleetSpec` is the static half of the fleet scheduler — *what
devices exist*.  Each :class:`DeviceSlot` names one schedulable device:
a library topology (or a parametric ``ring_N``/``linear_N``/``grid_RxC``
name), a calibration spec, and optionally a seeded fault-injection recipe.
Faulted slots model the degraded hardware of a real fleet: the recipe is
fed through :class:`~repro.hardware.faults.FaultInjector`, repaired by
:func:`~repro.hardware.faults.repair_calibration` (pruning dead couplers,
imputing poisoned entries), and the repaired device is interned as a
:class:`~repro.hardware.target.Target` carrying its repair warnings — so a
degraded slot never aliases its clean twin and every job placed on it
shares one memoized device analysis.

Slots are built lazily and memoized per spec: constructing a
:class:`FleetSpec` is free; the first scheduler that runs against it pays
one target build per slot.
"""

from __future__ import annotations

import dataclasses
import json
import re
from typing import Dict, List, Optional, Sequence, Union

import numpy as np

from ..hardware.calibration import Calibration, random_calibration
from ..hardware.coupling import CouplingGraph
from ..hardware.faults import FaultInjector, RawCalibration, repair_calibration
from ..hardware.target import Target, intern_target

__all__ = [
    "DeviceSlot",
    "FleetSpec",
    "default_fleet",
    "fleet_from_dict",
    "load_fleet_json",
    "resolve_device_name",
]

#: FaultInjector.degrade keyword arguments a slot recipe may use.
FAULT_KNOBS = (
    "dead_qubits",
    "dead_edges",
    "drift_sigma",
    "dropout",
    "nan_entries",
    "out_of_range_entries",
    "inflate",
)

_PARAMETRIC = (
    re.compile(r"^ring_(\d+)$"),
    re.compile(r"^linear_(\d+)$"),
    re.compile(r"^grid_(\d+)x(\d+)$"),
)


def resolve_device_name(name: str) -> CouplingGraph:
    """Resolve a device name, accepting parametric families.

    ``ring_N``, ``linear_N`` and ``grid_RxC`` build synthetic topologies
    of any size; everything else goes through the library
    (:func:`repro.hardware.devices.get_device`).
    """
    from ..hardware.devices import (
        get_device,
        grid_device,
        linear_device,
        ring_device,
    )

    m = _PARAMETRIC[0].match(name)
    if m:
        return ring_device(int(m.group(1)))
    m = _PARAMETRIC[1].match(name)
    if m:
        return linear_device(int(m.group(1)))
    m = _PARAMETRIC[2].match(name)
    if m:
        return grid_device(int(m.group(1)), int(m.group(2)))
    try:
        return get_device(name)
    except KeyError:
        raise ValueError(
            f"unknown device {name!r} (not a library device and not a "
            "parametric ring_N/linear_N/grid_RxC family)"
        ) from None


@dataclasses.dataclass
class DeviceSlot:
    """One schedulable device in the fleet.

    Attributes:
        label: Unique fleet-local name (what placements record).
        device: Device name (library or parametric) or an inline
            :class:`CouplingGraph`.
        calibration: ``None`` (uncalibrated), ``"auto"`` (the paper's
            melbourne feed for melbourne, else a seeded random one),
            ``{"seed": n}`` for an explicit random calibration, or a
            concrete :class:`Calibration`.
        faults: Optional :meth:`FaultInjector.degrade` keyword recipe;
            a non-empty recipe makes this a degraded variant slot.
        fault_seed: Seed for the slot's private fault injector.
        hardware: Whether this slot models real IBM hardware (the
            HW-preferred policy's tie-break).  Defaults to ``True`` for
            ``ibmq_*`` device names.
        calibration_seed: Seed used when ``calibration`` asks for a
            random feed via ``"auto"``.
    """

    label: str
    device: Union[str, CouplingGraph]
    calibration: Union[None, str, dict, Calibration] = "auto"
    faults: Optional[dict] = None
    fault_seed: int = 0
    hardware: Optional[bool] = None
    calibration_seed: int = 0

    def __post_init__(self) -> None:
        if not self.label:
            raise ValueError("slot label must be non-empty")
        if self.faults:
            unknown = set(self.faults) - set(FAULT_KNOBS)
            if unknown:
                raise ValueError(
                    f"slot {self.label!r}: unknown fault knob(s) "
                    f"{sorted(unknown)}; known: {list(FAULT_KNOBS)}"
                )
        if self.hardware is None:
            name = (
                self.device.name
                if isinstance(self.device, CouplingGraph)
                else str(self.device)
            )
            self.hardware = name.startswith("ibmq_")

    # ------------------------------------------------------------------
    def resolve_coupling(self) -> CouplingGraph:
        if isinstance(self.device, CouplingGraph):
            return self.device
        return resolve_device_name(self.device)

    def resolve_calibration(
        self, coupling: CouplingGraph
    ) -> Optional[Calibration]:
        spec = self.calibration
        if spec is None or isinstance(spec, Calibration):
            return spec
        if spec == "auto":
            if coupling.name == "ibmq_16_melbourne":
                from ..hardware.devices import melbourne_calibration

                return melbourne_calibration()
            return random_calibration(
                coupling, rng=np.random.default_rng(self.calibration_seed)
            )
        if isinstance(spec, dict) and "seed" in spec:
            return random_calibration(
                coupling, rng=np.random.default_rng(int(spec["seed"]))
            )
        raise ValueError(
            f"slot {self.label!r}: unsupported calibration spec {spec!r}"
        )

    def build_target(self) -> Target:
        """The interned :class:`Target` this slot schedules onto.

        Faulted slots run injection + repair first, so the target is the
        *repaired* device (possibly pruned coupling) with the repair
        provenance in its warnings — exactly what the compiler would see
        if that feed arrived over the wire.
        """
        coupling = self.resolve_coupling()
        calibration = self.resolve_calibration(coupling)
        if not self.faults:
            return intern_target(coupling, calibration)
        if calibration is None:
            raise ValueError(
                f"slot {self.label!r}: fault injection needs a calibration"
            )
        injector = FaultInjector(seed=self.fault_seed)
        raw = injector.degrade(
            RawCalibration.from_calibration(calibration), **self.faults
        )
        repair = repair_calibration(raw)
        return intern_target(
            repair.coupling,
            repair.calibration,
            warnings=tuple(repair.warnings),
        )

    def to_dict(self) -> dict:
        if isinstance(self.device, CouplingGraph):
            device = {
                "name": self.device.name,
                "num_qubits": self.device.num_qubits,
                "edges": sorted(list(e) for e in self.device.edges),
            }
        else:
            device = str(self.device)
        spec: dict = {"label": self.label, "device": device}
        if isinstance(self.calibration, Calibration):
            spec["calibration"] = {"seed": None}  # concrete feeds don't round-trip
        elif self.calibration != "auto":
            spec["calibration"] = self.calibration
        if self.faults:
            spec["faults"] = dict(self.faults)
            spec["fault_seed"] = self.fault_seed
        spec["hardware"] = self.hardware
        spec["calibration_seed"] = self.calibration_seed
        return spec


class FleetSpec:
    """An ordered set of uniquely labelled device slots.

    Slot order matters: it is the greedy policy's preference order and
    every policy's deterministic tie-break.
    """

    def __init__(self, slots: Sequence[DeviceSlot]) -> None:
        labels = [s.label for s in slots]
        dupes = {x for x in labels if labels.count(x) > 1}
        if dupes:
            raise ValueError(f"duplicate slot label(s): {sorted(dupes)}")
        self.slots: List[DeviceSlot] = list(slots)
        self._targets: Dict[str, Target] = {}

    def __len__(self) -> int:
        return len(self.slots)

    def __iter__(self):
        return iter(self.slots)

    def labels(self) -> List[str]:
        return [s.label for s in self.slots]

    def slot(self, label: str) -> DeviceSlot:
        for s in self.slots:
            if s.label == label:
                return s
        raise KeyError(f"no slot labelled {label!r}")

    def target(self, label: str) -> Target:
        """The slot's (memoized) interned target."""
        cached = self._targets.get(label)
        if cached is None:
            cached = self.slot(label).build_target()
            self._targets[label] = cached
        return cached

    def to_dict(self) -> dict:
        return {"slots": [s.to_dict() for s in self.slots]}


# ----------------------------------------------------------------------
# construction helpers
# ----------------------------------------------------------------------
def default_fleet(seed: int = 0) -> FleetSpec:
    """The built-in 7-slot paper fleet.

    The paper's three architectures (tokyo, melbourne, the 6x6 grid) plus
    two synthetic chains, and a seeded fault-injected variant of each IBM
    device (calibration drift + dead couplers, repaired before interning)
    — a heterogeneous fleet where fidelity, latency, and degradation all
    vary by slot.
    """
    return FleetSpec(
        [
            DeviceSlot(
                "tokyo",
                "ibmq_20_tokyo",
                calibration={"seed": seed + 11},
            ),
            DeviceSlot("melbourne", "ibmq_16_melbourne", calibration="auto"),
            DeviceSlot(
                "grid-36",
                "grid_6x6",
                calibration={"seed": seed + 13},
            ),
            DeviceSlot(
                "ring-12", "ring_12", calibration={"seed": seed + 17}
            ),
            DeviceSlot(
                "linear-16", "linear_16", calibration={"seed": seed + 19}
            ),
            DeviceSlot(
                "tokyo-degraded",
                "ibmq_20_tokyo",
                calibration={"seed": seed + 11},
                faults={"drift_sigma": 0.6, "dead_edges": 3, "inflate": 2.5},
                fault_seed=seed + 23,
            ),
            DeviceSlot(
                "melbourne-degraded",
                "ibmq_16_melbourne",
                calibration="auto",
                faults={"drift_sigma": 0.4, "dead_edges": 2, "inflate": 2.0},
                fault_seed=seed + 29,
            ),
        ]
    )


def fleet_from_dict(spec: dict) -> FleetSpec:
    """Build a fleet from a JSON spec (``{"slots": [...]}``)."""
    entries = spec.get("slots")
    if not isinstance(entries, list):
        raise ValueError("fleet spec needs a 'slots' list")
    slots = []
    for i, entry in enumerate(entries):
        if not isinstance(entry, dict):
            raise ValueError(f"slot {i} must be an object")
        device = entry.get("device")
        if isinstance(device, dict):
            from ..hardware.target import intern_coupling

            device = intern_coupling(
                int(device["num_qubits"]),
                [tuple(e) for e in device["edges"]],
                name=device.get("name", "inline"),
            )
        elif not isinstance(device, str):
            raise ValueError(f"slot {i} needs a 'device' name or object")
        try:
            slots.append(
                DeviceSlot(
                    label=str(entry.get("label") or device),
                    device=device,
                    calibration=entry.get("calibration", "auto"),
                    faults=entry.get("faults"),
                    fault_seed=int(entry.get("fault_seed", 0)),
                    hardware=entry.get("hardware"),
                    calibration_seed=int(entry.get("calibration_seed", 0)),
                )
            )
        except (TypeError, ValueError) as exc:
            raise ValueError(f"bad slot {i}: {exc}") from exc
    return FleetSpec(slots)


def load_fleet_json(path: str) -> FleetSpec:
    """Load a fleet spec from a JSON file."""
    with open(path) as fh:
        return fleet_from_dict(json.load(fh))
