"""Calibration-derived placement-time fidelity estimates.

Admission control must judge "will this job's circuit survive on that
device?" *before* compiling anything — compiling on every candidate to
find out would cost more than the job itself.  This module provides the
cheap proxy: an expected native-CNOT count from the device's memoized
hop-distance oracle (mean pairwise distance → expected SWAP chain per
interaction) times the calibration's mean per-CNOT success rate.

The estimate is deliberately simple and monotone in the things that
matter — more program edges, more QAOA levels, sparser topology, and
worse calibration all push it down — so ranking devices by it agrees
with ranking by the compiled circuit's measured success probability far
more often than not, while costing one O(n²) mean over an already
memoized table.  Attainment is always judged on the measured number;
the estimate only steers placement.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..hardware.target import Target

__all__ = ["estimate_native_cnots", "estimate_success_probability"]


def estimate_native_cnots(
    num_edges: int, levels: int, target: Target
) -> float:
    """Expected native CNOT count of a compiled QAOA circuit.

    Each of the program's ``num_edges * levels`` ZZ interactions lowers
    to one CPHASE (2 CNOTs) plus an expected SWAP chain (3 CNOTs per
    SWAP).  With placements unknown at admission time, the expected chain
    length is the device's mean pairwise hop distance minus one (adjacent
    pairs need no SWAPs), floored at zero.  Routers do much better than
    random placement, so this over-counts in absolute terms — but it
    over-counts *consistently across devices*, which is all a ranking
    needs.
    """
    if num_edges <= 0 or levels <= 0:
        return 0.0
    dist = target.hop_distances()
    n = target.num_qubits
    if n < 2:
        return 2.0 * num_edges * levels
    upper = dist[np.triu_indices(n, k=1)]
    finite = upper[np.isfinite(upper)]
    mean_dist = float(finite.mean()) if finite.size else 1.0
    swaps_per_interaction = max(0.0, mean_dist - 1.0)
    return num_edges * levels * (2.0 + 3.0 * swaps_per_interaction)


def estimate_success_probability(
    num_edges: int, levels: int, target: Target
) -> Optional[float]:
    """Predicted circuit success probability on this device.

    ``mean_cnot_success ** expected_cnots`` — the CNOT term dominates the
    measured metric (:func:`repro.compiler.metrics.success_probability`),
    so single-qubit and readout factors are ignored.  ``None`` when the
    target carries no calibration: an uncalibrated device can make no
    fidelity promise, and the scheduler treats it as unable to satisfy
    any ``min_success_prob`` bound.
    """
    calibration = target.calibration
    if calibration is None:
        return None
    rates = [
        calibration.cnot_success(a, b) for a, b in target.coupling.edges
    ]
    if not rates:
        return None
    mean_success = float(np.mean(rates))
    if mean_success <= 0.0:
        return 0.0
    cnots = estimate_native_cnots(num_edges, levels, target)
    return float(mean_success**cnots)
