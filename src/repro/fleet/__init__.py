"""SLO-aware multi-device fleet scheduling.

The service layer (:mod:`repro.service`) executes jobs against *one*
device per job, chosen by the caller.  This package adds the missing
production layer above it: a *fleet* of heterogeneous, possibly
fault-injected devices (:mod:`~repro.fleet.spec`), per-job service-level
objectives over latency, predicted success probability, and ARG
(:mod:`~repro.fleet.slo`), admission control with structured rejections,
pluggable placement policies scored against each other
(:mod:`~repro.fleet.policy`), and a scheduler that binds each job to the
slot its SLO can live on — using the Target layer's memoized oracles and
calibration-derived fidelity estimates (:mod:`~repro.fleet.estimate`)
for the quality side and per-device EWMA models
(:mod:`~repro.fleet.latency`) for the time side.  Execution flows
through one :class:`~repro.service.engine.BatchEngine` per device, so
caching, retries, and telemetry apply unchanged; fleet-level outcomes —
SLO attainment, per-device utilization, p95 observed-vs-promised
latency, rejection counts — land in a :class:`~repro.fleet.report.
FleetReport` (also behind ``repro fleet`` on the CLI).

The resilience layer (:mod:`~repro.fleet.resilience`) closes the
recovery loop: per-device circuit breakers (closed → open → half-open
with a virtual-clock cooldown and a recovery probe), failure-triggered
job migration with the attempt trail stamped into placements, an
SLO-aware degraded-recompile ladder, and a crash-safe append-only
scheduler journal behind ``repro fleet --journal`` / ``--resume``.
"""

from .estimate import estimate_native_cnots, estimate_success_probability
from .jobs import (
    FleetJob,
    bind_job,
    fleet_jobs_from_jsonl,
    synthetic_stream,
)
from .latency import METHOD_COST_FACTORS, EwmaLatencyModel, EwmaQualityModel
from .policy import (
    POLICIES,
    BestFidelity,
    Candidate,
    GreedyFirstFit,
    LeastLoaded,
    Policy,
    get_policy,
)
from .report import (
    REJECTION_KINDS,
    DeviceSnapshot,
    FleetReport,
    PlacementRecord,
    Rejection,
)
from .resilience import (
    BREAKER_CLOSED,
    BREAKER_HALF_OPEN,
    BREAKER_OPEN,
    DEFAULT_DEGRADE_LADDER,
    BreakerTransition,
    CircuitBreaker,
    SchedulerJournal,
    downgrade_job,
    stream_fingerprint,
)
from .scheduler import Scheduler, run_fleet
from .slo import SLO, SLO_TIERS, slo_from_dict
from .spec import (
    DeviceSlot,
    FleetSpec,
    default_fleet,
    fleet_from_dict,
    load_fleet_json,
    resolve_device_name,
)

__all__ = [
    "SLO",
    "SLO_TIERS",
    "slo_from_dict",
    "DeviceSlot",
    "FleetSpec",
    "default_fleet",
    "fleet_from_dict",
    "load_fleet_json",
    "resolve_device_name",
    "FleetJob",
    "bind_job",
    "fleet_jobs_from_jsonl",
    "synthetic_stream",
    "EwmaLatencyModel",
    "EwmaQualityModel",
    "METHOD_COST_FACTORS",
    "estimate_native_cnots",
    "estimate_success_probability",
    "Candidate",
    "Policy",
    "GreedyFirstFit",
    "BestFidelity",
    "LeastLoaded",
    "POLICIES",
    "get_policy",
    "REJECTION_KINDS",
    "Rejection",
    "PlacementRecord",
    "DeviceSnapshot",
    "FleetReport",
    "Scheduler",
    "run_fleet",
    "BREAKER_CLOSED",
    "BREAKER_OPEN",
    "BREAKER_HALF_OPEN",
    "BreakerTransition",
    "CircuitBreaker",
    "DEFAULT_DEGRADE_LADDER",
    "SchedulerJournal",
    "downgrade_job",
    "stream_fingerprint",
]
