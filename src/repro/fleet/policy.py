"""Placement policies: pick one device from the SLO-feasible candidates.

The scheduler does the hard filtering — building one
:class:`Candidate` per eligible, unsaturated device whose *predicted*
latency/fidelity/quality satisfy the job's SLO — and then delegates the
final pick to a :class:`Policy`.  Policies are pure functions of the
candidate list, so they can be scored against each other on identical
job streams (``repro fleet --policy all``,
``benchmarks/bench_fleet_slo.py``):

* ``greedy`` — first feasible slot in fleet declaration order.  The
  baseline: cheapest decision, piles load onto early slots until their
  predicted latency blows the bound.
* ``best-fidelity`` — highest predicted success probability, preferring
  real-hardware slots on ties.  Hedges against estimation error on
  quality-constrained jobs by always buying the best device available.
* ``least-loaded`` — earliest predicted completion ("min-bounce"): the
  load balancer, trading fidelity headroom for queue-wait smoothing.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Optional, Protocol

__all__ = [
    "Candidate",
    "Policy",
    "GreedyFirstFit",
    "BestFidelity",
    "LeastLoaded",
    "POLICIES",
    "get_policy",
]


@dataclasses.dataclass(frozen=True)
class Candidate:
    """One SLO-feasible placement option for one job.

    Attributes:
        label: Slot label.
        order: Fleet declaration index (every policy's final tie-break).
        hardware: Whether the slot models real IBM hardware.
        backlog: Jobs placed on the device and not yet finished.
        wait_ms: Predicted queue wait before the job would start.
        exec_ms: EWMA-predicted execution time for the job's kind.
        predicted_latency_ms: ``wait_ms + exec_ms`` — the promise the
            scheduler records for the observed-vs-promised comparison.
        predicted_success: Calibration-derived success estimate
            (``None`` on uncalibrated slots).
        predicted_arg: Online EWMA of observed ARG on this device
            (``None`` until the device has evaluated something).
        probe: The device's circuit breaker is half-open: placing here
            is the recovery probe that decides whether it re-earns
            traffic.  The scheduler routes best-effort jobs to probe
            candidates preferentially and keeps SLO-constrained jobs on
            proven devices whenever one exists, so policies themselves
            never need to look at this flag.
    """

    label: str
    order: int
    hardware: bool
    backlog: int
    wait_ms: float
    exec_ms: float
    predicted_latency_ms: float
    predicted_success: Optional[float]
    predicted_arg: Optional[float]
    probe: bool = False


class Policy(Protocol):
    """A placement policy: choose among SLO-feasible candidates."""

    name: str

    def place(self, candidates: List[Candidate]) -> Candidate:
        """Pick one candidate (the list is non-empty)."""
        ...


class GreedyFirstFit:
    """First feasible device in fleet declaration order."""

    name = "greedy"

    def place(self, candidates: List[Candidate]) -> Candidate:
        return min(candidates, key=lambda c: c.order)


class BestFidelity:
    """Highest predicted success probability, hardware-preferred.

    Candidates without a fidelity estimate rank last; ties fall to real
    hardware first (the paper's devices over synthetic topologies), then
    declaration order.
    """

    name = "best-fidelity"

    def place(self, candidates: List[Candidate]) -> Candidate:
        return min(
            candidates,
            key=lambda c: (
                -(c.predicted_success
                  if c.predicted_success is not None
                  else -1.0),
                not c.hardware,
                c.order,
            ),
        )


class LeastLoaded:
    """Earliest predicted completion, then smallest backlog."""

    name = "least-loaded"

    def place(self, candidates: List[Candidate]) -> Candidate:
        return min(
            candidates,
            key=lambda c: (c.predicted_latency_ms, c.backlog, c.order),
        )


POLICIES: Dict[str, type] = {
    GreedyFirstFit.name: GreedyFirstFit,
    BestFidelity.name: BestFidelity,
    LeastLoaded.name: LeastLoaded,
}


def get_policy(name: str) -> Policy:
    """Instantiate a policy by name."""
    try:
        return POLICIES[name]()
    except KeyError:
        known = ", ".join(sorted(POLICIES))
        raise ValueError(
            f"unknown policy {name!r}; known: {known}"
        ) from None
