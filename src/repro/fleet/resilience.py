"""Fleet fault recovery: circuit breakers, degraded recompile, the journal.

PR 6's scheduler handled a failing device with *permanent* ineligibility:
after ``max_consecutive_failures`` the slot left the candidate set "for
the rest of the stream", its jobs were recorded as failures, and nothing
could ever send it traffic again — so the documented "recovery on
success" was unreachable.  This module supplies the recovery layer the
scheduler threads through placement:

* :class:`CircuitBreaker` — the classic closed → open → half-open state
  machine on the fleet's *virtual* clock.  ``failure_threshold``
  consecutive failures open the breaker; after ``cooldown_ms`` of
  virtual time it half-opens and admits one probe job; a probe success
  closes it (the device re-earns traffic), a probe failure re-opens it
  for a fresh cooldown.  ``cooldown_ms=None`` reproduces the legacy
  open-forever semantics and is what the resilience-off baseline uses.
* :func:`downgrade_job` — the SLO-aware degraded-recompile ladder: when
  *no* device is predicted to satisfy a job's SLO, the scheduler retries
  admission with a cheaper method preset or a relaxed packing limit
  before rejecting, recording the downgrade as a structured warning
  (the same ``warnings`` plumbing calibration repairs use).
* :class:`SchedulerJournal` — an append-only JSONL log of admissions,
  placements, completions, migrations, and breaker transitions.  Every
  record is one line, flushed and fsynced before the scheduler moves on,
  so a ``SIGKILL``'d run leaves at worst one torn trailing line — which
  :meth:`SchedulerJournal.read` tolerates — and
  ``Scheduler.run(jobs, resume=True)`` replays the settled prefix to a
  consistent state (device clocks, EWMA models, breaker states) and
  continues with the unserved remainder.  The :class:`~repro.service.
  cache.ResultCache` disk tier gets atomicity from a temp-file rename;
  a journal is append-only, so its crash-safety idiom is the dual:
  fsynced whole-line appends plus torn-tail-tolerant replay.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import os
import pathlib
from typing import Callable, Dict, List, Optional, Sequence, Tuple, Union

from .jobs import FleetJob

__all__ = [
    "BREAKER_CLOSED",
    "BREAKER_OPEN",
    "BREAKER_HALF_OPEN",
    "BreakerTransition",
    "CircuitBreaker",
    "DEFAULT_DEGRADE_LADDER",
    "downgrade_job",
    "JOURNAL_VERSION",
    "SchedulerJournal",
    "stream_fingerprint",
]

BREAKER_CLOSED = "closed"
BREAKER_OPEN = "open"
BREAKER_HALF_OPEN = "half-open"

#: Journal format version; bumped when record shapes change so a resume
#: against an incompatible journal fails loudly instead of replaying junk.
JOURNAL_VERSION = 1


# ----------------------------------------------------------------------
# circuit breaker
# ----------------------------------------------------------------------
@dataclasses.dataclass(frozen=True)
class BreakerTransition:
    """One breaker state change (journaled and kept for the audit trail)."""

    device: str
    from_state: str
    to_state: str
    at_ms: float
    reason: str

    def to_dict(self) -> dict:
        return {
            "device": self.device,
            "from": self.from_state,
            "to": self.to_state,
            "at_ms": round(self.at_ms, 3),
            "reason": self.reason,
        }


class CircuitBreaker:
    """Closed → open → half-open failure gate for one fleet device.

    All timing is the scheduler's deterministic virtual clock, so breaker
    behaviour replays exactly from a journal.  State promotion from open
    to half-open is lazy: the first ``allows``/``record_*`` call at or
    after ``open_until_ms`` performs the transition.

    Args:
        device: Slot label (stamped into transitions).
        failure_threshold: Consecutive failures that open the breaker.
        cooldown_ms: Virtual milliseconds an open breaker waits before
            half-opening for a probe; ``None`` never half-opens (the
            legacy permanent-ineligibility semantics).
        half_open_max_probes: Recovery probes a half-open window admits
            before failures re-open the breaker.  1 (the default) is the
            classic single-probe gate; K > 1 tolerates K - 1 probe
            failures per window, so one unlucky job on a recovered but
            flaky device doesn't cost another full cooldown.  A single
            success still closes immediately.
        on_transition: Optional hook called with each
            :class:`BreakerTransition` (the scheduler journals them).
    """

    def __init__(
        self,
        device: str = "",
        failure_threshold: int = 3,
        cooldown_ms: Optional[float] = 2000.0,
        half_open_max_probes: int = 1,
        on_transition: Optional[Callable[[BreakerTransition], None]] = None,
    ) -> None:
        if failure_threshold < 1:
            raise ValueError("failure_threshold must be >= 1")
        if cooldown_ms is not None and cooldown_ms <= 0:
            raise ValueError("cooldown_ms must be positive or None")
        if half_open_max_probes < 1:
            raise ValueError("half_open_max_probes must be >= 1")
        self.device = device
        self.failure_threshold = failure_threshold
        self.cooldown_ms = cooldown_ms
        self.half_open_max_probes = half_open_max_probes
        self.on_transition = on_transition
        self.state = BREAKER_CLOSED
        self.consecutive_failures = 0
        self.half_open_failures = 0
        self.open_until_ms: Optional[float] = None
        self.last_reason: Optional[str] = None
        self.trips = 0
        self.recoveries = 0
        self.probes = 0
        self.transitions: List[BreakerTransition] = []

    # ------------------------------------------------------------------
    def poll(self, now_ms: float) -> str:
        """Current state at ``now_ms`` (promotes open → half-open)."""
        if (
            self.state == BREAKER_OPEN
            and self.open_until_ms is not None
            and now_ms >= self.open_until_ms
        ):
            self._transition(
                BREAKER_HALF_OPEN, now_ms,
                f"cooldown elapsed after {self.cooldown_ms:.0f}ms",
            )
        return self.state

    def allows(self, now_ms: float) -> bool:
        """Whether a job may be placed on this device right now."""
        return self.poll(now_ms) != BREAKER_OPEN

    def record_success(self, now_ms: float) -> None:
        self.consecutive_failures = 0
        if self.poll(now_ms) == BREAKER_HALF_OPEN:
            self.recoveries += 1
            self._transition(
                BREAKER_CLOSED, now_ms, "half-open probe succeeded"
            )

    def record_failure(self, now_ms: float, reason: str) -> None:
        state = self.poll(now_ms)
        if state == BREAKER_HALF_OPEN:
            self.consecutive_failures += 1
            self.half_open_failures += 1
            self.last_reason = (
                f"half-open probe failed ({reason}; "
                f"{self.half_open_failures}/{self.half_open_max_probes} "
                "probes spent)"
            )
            if self.half_open_failures >= self.half_open_max_probes:
                self._open(now_ms, self.last_reason)
            return
        self.consecutive_failures += 1
        if state == BREAKER_CLOSED and (
            self.consecutive_failures >= self.failure_threshold
        ):
            self.last_reason = (
                f"{self.consecutive_failures} consecutive failures "
                f"(last: {reason})"
            )
            self._open(now_ms, self.last_reason)

    # ------------------------------------------------------------------
    def _open(self, now_ms: float, reason: str) -> None:
        self.trips += 1
        self.open_until_ms = (
            None if self.cooldown_ms is None else now_ms + self.cooldown_ms
        )
        self._transition(BREAKER_OPEN, now_ms, reason)

    def _transition(self, to_state: str, now_ms: float, reason: str) -> None:
        transition = BreakerTransition(
            device=self.device,
            from_state=self.state,
            to_state=to_state,
            at_ms=now_ms,
            reason=reason,
        )
        self.state = to_state
        if to_state == BREAKER_HALF_OPEN:
            self.probes += 1
            self.half_open_failures = 0
        self.transitions.append(transition)
        if self.on_transition is not None:
            self.on_transition(transition)

    # ------------------------------------------------------------------
    def describe(self) -> str:
        """Human-readable account of a non-closed breaker."""
        if self.state == BREAKER_OPEN:
            return f"breaker open ({self.last_reason})"
        if self.state == BREAKER_HALF_OPEN:
            return (
                "breaker half-open (awaiting probe "
                f"{self.half_open_failures + 1}/{self.half_open_max_probes})"
            )
        return "breaker closed"

    def snapshot(self) -> dict:
        return {
            "state": self.state,
            "consecutive_failures": self.consecutive_failures,
            "half_open_failures": self.half_open_failures,
            "half_open_max_probes": self.half_open_max_probes,
            "trips": self.trips,
            "recoveries": self.recoveries,
            "probes": self.probes,
            "open_until_ms": self.open_until_ms,
            "last_reason": self.last_reason,
        }


# ----------------------------------------------------------------------
# SLO-aware degraded recompile
# ----------------------------------------------------------------------
#: The default downgrade ladder, tried in order when a job's SLO is
#: predicted unsatisfiable on every device: first a cheaper method
#: preset (IP's random ordering + routing is the cheapest paper flow —
#: see METHOD_COST_FACTORS in :mod:`repro.fleet.latency`), then the
#: same preset with the packing limit relaxed (unbounded layer packing
#: minimises depth, recovering some of the quality the cheaper method
#: gives up).
DEFAULT_DEGRADE_LADDER: Tuple[dict, ...] = (
    {"method": "ip"},
    {"method": "ip", "packing_limit": None},
)

_UNSET = object()


def downgrade_job(
    fleet_job: FleetJob, rung: dict
) -> Optional[Tuple[FleetJob, str]]:
    """Apply one degrade-ladder rung to a fleet job.

    Returns ``(downgraded_job, note)`` where ``note`` is the structured
    warning the scheduler stamps into the result (e.g. ``"slo degraded
    recompile: method vic->ip"``), or ``None`` when the rung would not
    change the job (already at that method/packing) so re-admission
    would be pointless.
    """
    unknown = set(rung) - {"method", "packing_limit"}
    if unknown:
        raise ValueError(
            f"unknown degrade knob(s) {sorted(unknown)}; "
            "known: method, packing_limit"
        )
    compile_job = (
        fleet_job.job.compile_job
        if hasattr(fleet_job.job, "compile_job")
        else fleet_job.job
    )
    changes = {}
    notes = []
    method = rung.get("method")
    if method is not None and method != compile_job.method:
        changes["method"] = method
        notes.append(f"method {compile_job.method}->{method}")
    packing = rung.get("packing_limit", _UNSET)
    if packing is not _UNSET and packing != compile_job.packing_limit:
        changes["packing_limit"] = packing
        notes.append(
            f"packing_limit {compile_job.packing_limit}->{packing}"
        )
    if not changes:
        return None
    new_compile = dataclasses.replace(compile_job, **changes)
    if hasattr(fleet_job.job, "compile_job"):
        new_job = dataclasses.replace(
            fleet_job.job, compile_job=new_compile
        )
    else:
        new_job = new_compile
    note = "slo degraded recompile: " + ", ".join(notes)
    return dataclasses.replace(fleet_job, job=new_job), note


# ----------------------------------------------------------------------
# crash-safe scheduler journal
# ----------------------------------------------------------------------
def stream_fingerprint(jobs: Sequence[FleetJob]) -> str:
    """Cheap identity of a job stream (ids + kinds, order-sensitive).

    A resumed run must serve the *same* stream the journal was written
    against; this fingerprint catches the common mistakes (different
    ``--synthetic`` count or seed, edited job file) without paying for
    full content hashes on every start.
    """
    text = json.dumps(
        [[j.job_id, j.kind] for j in jobs], separators=(",", ":")
    )
    return hashlib.sha256(text.encode("utf-8")).hexdigest()[:16]


class SchedulerJournal:
    """Append-only JSONL journal with fsynced whole-line appends.

    Record kinds written by the scheduler:

    * ``meta`` — run configuration (policy, interarrival, fleet labels,
      stream fingerprint); always the first line of a fresh journal.
    * ``admit`` — a job reached admission control.
    * ``place`` — a job (or a migration attempt) started executing on a
      device; a ``place`` with no matching ``complete`` marks the job
      that was in flight when the process died.
    * ``migrate`` — a failed job re-entered admission and was re-placed.
    * ``breaker`` — a circuit-breaker transition.
    * ``complete`` — the job's final :class:`~repro.fleet.report.
      PlacementRecord` (the replay unit: it carries every attempt's
      device, virtual execution time and outcome).
    * ``reject`` — the job's structured :class:`~repro.fleet.report.
      Rejection`.

    Appends are flushed and fsynced before returning, so after a crash
    at most the final line is torn; :meth:`read` drops a torn tail and
    raises on corruption anywhere else.
    """

    def __init__(self, path: Union[str, pathlib.Path]) -> None:
        self.path = pathlib.Path(path)
        self._fh = None

    # ------------------------------------------------------------------
    def reset(self) -> None:
        """Truncate the journal (a fresh, non-resumed run)."""
        self.close()
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self._fh = open(self.path, "w")

    def append(self, record: dict) -> None:
        if self._fh is None:
            self.path.parent.mkdir(parents=True, exist_ok=True)
            self._fh = open(self.path, "a")
        self._fh.write(json.dumps(record, separators=(",", ":")) + "\n")
        self._fh.flush()
        os.fsync(self._fh.fileno())

    def close(self) -> None:
        if self._fh is not None:
            self._fh.close()
            self._fh = None

    def __enter__(self) -> "SchedulerJournal":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # ------------------------------------------------------------------
    def read(self) -> List[dict]:
        """All journal records, tolerating one torn trailing line.

        A line that fails to decode anywhere *except* the tail means the
        file was corrupted (not merely crash-truncated) and raises
        ``ValueError`` naming the line.
        """
        if not self.path.exists():
            return []
        records: List[dict] = []
        lines = self.path.read_text().split("\n")
        # A well-formed journal ends with "\n", so the final split piece
        # is empty; anything non-empty there is a torn tail candidate.
        for lineno, line in enumerate(lines, start=1):
            if not line.strip():
                continue
            try:
                records.append(json.loads(line))
            except json.JSONDecodeError:
                if lineno == len(lines) or all(
                    not rest.strip() for rest in lines[lineno:]
                ):
                    break  # torn tail from a mid-append crash: ignore
                raise ValueError(
                    f"corrupt journal {self.path}: undecodable line "
                    f"{lineno} is not the tail"
                ) from None
        return records

    @staticmethod
    def settled(
        records: Sequence[dict],
    ) -> Tuple[Optional[dict], Dict[int, Tuple[str, dict]]]:
        """Split records into ``(meta, {index: (kind, payload)})``.

        Only ``complete``/``reject`` records settle a job; a trailing
        ``place`` without its ``complete`` (the in-flight job at crash
        time) is deliberately absent so resume re-executes it.
        """
        meta = None
        outcomes: Dict[int, Tuple[str, dict]] = {}
        for record in records:
            kind = record.get("kind")
            if kind == "meta":
                meta = record
            elif kind == "complete":
                outcomes[int(record["index"])] = ("record", record["record"])
            elif kind == "reject":
                outcomes[int(record["index"])] = (
                    "rejection", record["rejection"],
                )
        return meta, outcomes
