"""Compilation service layer: batch engine, result cache, telemetry.

The compiler packages under :mod:`repro.compiler` answer "compile this one
program"; this package is the serving layer that makes that cheap at scale
(the ROADMAP's production-traffic north star, and the paper's Section V-H
advice to recompile with many configurations and keep per-workload
winners):

* :mod:`repro.service.job` — the :class:`CompileJob` unit of work and its
  canonical content hash (stable under commuting-term reorderings);
* :mod:`repro.service.evaluate` — the :class:`EvalJob` ARG-evaluation
  workload (compile + fast-path ``r0``/``rh``/ARG), same engine, cache
  and telemetry;
* :mod:`repro.service.optimize` — the :class:`OptimizeJob` variational
  workload (bounded COBYLA / Nelder-Mead over any unified-frontend
  problem, restart population scored through the batched fast path),
  same engine, cache and telemetry;
* :mod:`repro.service.cache` — content-addressed LRU result cache with
  entry/byte budgets and an optional disk tier;
* :mod:`repro.service.engine` — process-pool batch execution with per-job
  timeout, jittered retry, and structured per-job failure;
* :mod:`repro.service.telemetry` — counters and p50/p95/p99 latency
  histograms for observing all of the above.
"""

from .cache import CacheStats, ResultCache
from .engine import BatchEngine, BatchReport, run_batch
from .evaluate import (
    EVAL_HASH_VERSION,
    EvalJob,
    execute_eval_job,
    run_eval_batch,
)
from .job import (
    HASH_VERSION,
    CompileJob,
    JobResult,
    decode_envelope,
    encode_envelope,
    execute_job,
    job_from_dict,
    job_to_dict,
    load_jobs_jsonl,
    resolve_job_environment,
)
from .optimize import (
    OPTIMIZE_HASH_VERSION,
    OptimizeJob,
    execute_optimize_job,
    load_optimize_jobs_jsonl,
    optimize_job_from_dict,
    run_optimize_batch,
)
from .telemetry import Histogram, Telemetry, percentile

__all__ = [
    "HASH_VERSION",
    "EVAL_HASH_VERSION",
    "OPTIMIZE_HASH_VERSION",
    "CompileJob",
    "EvalJob",
    "OptimizeJob",
    "JobResult",
    "execute_eval_job",
    "run_eval_batch",
    "execute_optimize_job",
    "run_optimize_batch",
    "optimize_job_from_dict",
    "load_optimize_jobs_jsonl",
    "execute_job",
    "resolve_job_environment",
    "job_from_dict",
    "job_to_dict",
    "load_jobs_jsonl",
    "encode_envelope",
    "decode_envelope",
    "ResultCache",
    "CacheStats",
    "BatchEngine",
    "BatchReport",
    "run_batch",
    "Histogram",
    "Telemetry",
    "percentile",
]
