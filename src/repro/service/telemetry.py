"""Service telemetry: counters and latency histograms.

The batch engine (and anything else in the serving path) records two kinds
of signal:

* **counters** — monotone event counts (jobs completed, retries, cache
  hits, timeouts);
* **histograms** — latency-style value streams summarised by count, mean,
  min/max and the p50/p95/p99 percentiles operators actually alert on;
* **gauges** — last-written point-in-time values (resident store bytes,
  shared-memory segment counts) where only the current level matters.

Everything is process-local and lock-protected; :meth:`Telemetry.snapshot`
returns a plain nested dict (JSON-safe) and :meth:`Telemetry.render`
formats the same numbers as the text tables the CLI prints after a batch.
Histograms keep a bounded reservoir (default 4096 values, uniform
reservoir sampling beyond that) so a long-running service cannot grow
memory linearly with traffic while percentiles stay representative.
"""

from __future__ import annotations

import random
import threading
from typing import Dict, List, Optional

__all__ = ["Histogram", "Telemetry", "percentile"]

_DEFAULT_RESERVOIR = 4096
_QUANTILES = (50.0, 95.0, 99.0)


def percentile(values: List[float], q: float) -> float:
    """Linear-interpolated percentile (``q`` in [0, 100]) of ``values``.

    Matches numpy's default ("linear") method without requiring the values
    to be a numpy array; raises on an empty list.
    """
    if not values:
        raise ValueError("percentile of empty value list")
    if not 0.0 <= q <= 100.0:
        raise ValueError(f"percentile {q} outside [0, 100]")
    ordered = sorted(values)
    if len(ordered) == 1:
        return float(ordered[0])
    rank = (q / 100.0) * (len(ordered) - 1)
    low = int(rank)
    high = min(low + 1, len(ordered) - 1)
    frac = rank - low
    return float(ordered[low] * (1.0 - frac) + ordered[high] * frac)


class Histogram:
    """Bounded-reservoir value stream with percentile summaries."""

    def __init__(self, reservoir_size: int = _DEFAULT_RESERVOIR, seed: int = 0):
        if reservoir_size < 1:
            raise ValueError("reservoir_size must be positive")
        self._reservoir_size = reservoir_size
        self._rng = random.Random(seed)
        self._values: List[float] = []
        self.count = 0
        self.total = 0.0
        self.min: Optional[float] = None
        self.max: Optional[float] = None

    def record(self, value: float) -> None:
        value = float(value)
        self.count += 1
        self.total += value
        self.min = value if self.min is None else min(self.min, value)
        self.max = value if self.max is None else max(self.max, value)
        if len(self._values) < self._reservoir_size:
            self._values.append(value)
        else:
            # Vitter's algorithm R: keep each seen value with equal chance.
            slot = self._rng.randrange(self.count)
            if slot < self._reservoir_size:
                self._values[slot] = value

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def quantile(self, q: float) -> float:
        return percentile(self._values, q)

    def summary(self) -> Dict[str, float]:
        """count/mean/min/max plus p50/p95/p99 (zeros when empty)."""
        if not self.count:
            base = {"count": 0, "mean": 0.0, "min": 0.0, "max": 0.0}
            base.update({f"p{q:g}": 0.0 for q in _QUANTILES})
            return base
        base = {
            "count": self.count,
            "mean": self.mean,
            "min": self.min,
            "max": self.max,
        }
        base.update({f"p{q:g}": self.quantile(q) for q in _QUANTILES})
        return base


class Telemetry:
    """Named counters + named histograms behind one lock."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._counters: Dict[str, int] = {}
        self._histograms: Dict[str, Histogram] = {}
        self._gauges: Dict[str, float] = {}

    def incr(self, name: str, by: int = 1) -> None:
        with self._lock:
            self._counters[name] = self._counters.get(name, 0) + by

    def set_gauge(self, name: str, value: float) -> None:
        """Record a point-in-time level (last write wins)."""
        with self._lock:
            self._gauges[name] = float(value)

    def gauge(self, name: str) -> float:
        with self._lock:
            return self._gauges.get(name, 0.0)

    def observe(self, name: str, value: float) -> None:
        with self._lock:
            hist = self._histograms.get(name)
            if hist is None:
                hist = self._histograms[name] = Histogram()
            hist.record(value)

    def counter(self, name: str) -> int:
        with self._lock:
            return self._counters.get(name, 0)

    def snapshot(self) -> dict:
        """All counters and histogram summaries as one JSON-safe dict."""
        with self._lock:
            snap = {
                "counters": dict(sorted(self._counters.items())),
                "histograms": {
                    name: hist.summary()
                    for name, hist in sorted(self._histograms.items())
                },
            }
            if self._gauges:
                snap["gauges"] = dict(sorted(self._gauges.items()))
            return snap

    def render(self) -> str:
        """Text tables for terminal output."""
        from ..experiments.reporting import format_table

        snap = self.snapshot()
        blocks = []
        if snap["counters"]:
            rows = [[k, v] for k, v in snap["counters"].items()]
            blocks.append(format_table(["counter", "value"], rows))
        if snap.get("gauges"):
            rows = [[k, v] for k, v in snap["gauges"].items()]
            blocks.append(format_table(["gauge", "value"], rows))
        if snap["histograms"]:
            rows = [
                [
                    name,
                    s["count"],
                    s["mean"],
                    s["p50"],
                    s["p95"],
                    s["p99"],
                    s["max"],
                ]
                for name, s in snap["histograms"].items()
            ]
            blocks.append(
                format_table(
                    ["histogram", "count", "mean", "p50", "p95", "p99", "max"],
                    rows,
                )
            )
        return "\n\n".join(blocks) if blocks else "(no telemetry recorded)"
