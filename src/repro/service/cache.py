"""Content-addressed result cache: in-memory LRU plus an optional disk tier.

Keys are :meth:`CompileJob.content_hash` digests; values are opaque payload
strings (the metric envelopes of :mod:`repro.service.job`, which embed the
:mod:`repro.compiler.serialize` JSON document).  The cache never interprets
a payload beyond one check: when ``expected_version`` is set, a payload's
top-level ``"format_version"`` must match, and disk entries written by an
older serialisation format are deleted instead of served (format-version
invalidation — a stale cache degrades to a cold cache, never to wrong
results).

The memory tier is a straight LRU over an :class:`~collections.OrderedDict`
with two eviction budgets — entry count and total payload bytes — so a
long-running service bounds both object churn and resident size.  The disk
tier is a :class:`repro.store.disk.ShardedDiskTier`: entries fan out over
256 shard directories keyed by the SHA-256 of the key (a pre-refactor
flat-layout directory is still read, and entries migrate into their shard
on first hit), writes are atomic, corrupt entries are quarantined, and an
optional ``max_disk_bytes`` budget evicts oldest-first.  ``repro cache``
and ``repro store`` manage it from the CLI.
"""

from __future__ import annotations

import json
import pathlib
import threading
from collections import OrderedDict
from typing import Dict, Optional

from ..store.disk import ShardedDiskTier

__all__ = ["CacheStats", "ResultCache"]


class CacheStats:
    """Mutable hit/miss/eviction counters for one cache instance."""

    __slots__ = (
        "hits",
        "memory_hits",
        "disk_hits",
        "misses",
        "evictions",
        "invalidations",
        "quarantines",
        "puts",
    )

    def __init__(self) -> None:
        self.hits = 0
        self.memory_hits = 0
        self.disk_hits = 0
        self.misses = 0
        self.evictions = 0
        self.invalidations = 0
        self.quarantines = 0
        self.puts = 0

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        """Hits over lookups (0.0 when nothing was looked up)."""
        return self.hits / self.lookups if self.lookups else 0.0

    def snapshot(self) -> Dict[str, float]:
        return {
            "hits": self.hits,
            "memory_hits": self.memory_hits,
            "disk_hits": self.disk_hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "invalidations": self.invalidations,
            "quarantines": self.quarantines,
            "puts": self.puts,
            "hit_rate": self.hit_rate,
        }


class ResultCache:
    """LRU payload cache with entry/byte budgets and a disk tier.

    Args:
        max_entries: Memory-tier entry budget (``None`` = unbounded).
        max_bytes: Memory-tier byte budget over UTF-8 payload sizes
            (``None`` = unbounded).  A payload larger than the whole budget
            is never memory-resident (it still reaches the disk tier).
        directory: Disk-tier directory (created on first write); ``None``
            disables the tier.
        expected_version: When set, payloads must carry this top-level
            ``"format_version"``; mismatching disk entries are deleted.
        max_disk_bytes: Disk-tier byte budget; exceeding it evicts the
            oldest entries across shards (``None`` = unbounded, the
            pre-refactor behaviour).
    """

    def __init__(
        self,
        max_entries: Optional[int] = 1024,
        max_bytes: Optional[int] = 64 * 1024 * 1024,
        directory: Optional[str] = None,
        expected_version: Optional[int] = None,
        max_disk_bytes: Optional[int] = None,
    ) -> None:
        if max_entries is not None and max_entries < 1:
            raise ValueError("max_entries must be positive or None")
        if max_bytes is not None and max_bytes < 1:
            raise ValueError("max_bytes must be positive or None")
        if max_disk_bytes is not None and max_disk_bytes < 1:
            raise ValueError("max_disk_bytes must be positive or None")
        self.max_entries = max_entries
        self.max_bytes = max_bytes
        self.directory = (
            pathlib.Path(directory) if directory is not None else None
        )
        self.expected_version = expected_version
        self.stats = CacheStats()
        self._lock = threading.Lock()
        self._entries: "OrderedDict[str, str]" = OrderedDict()
        self._bytes = 0
        self._disk: Optional[ShardedDiskTier] = (
            ShardedDiskTier(self.directory, max_bytes=max_disk_bytes)
            if self.directory is not None
            else None
        )

    # ------------------------------------------------------------------
    # core operations
    # ------------------------------------------------------------------
    def get(self, key: str) -> Optional[str]:
        """Look up a payload; promotes memory hits, faults in disk hits."""
        with self._lock:
            payload = self._entries.get(key)
            if payload is not None:
                self._entries.move_to_end(key)
                self.stats.hits += 1
                self.stats.memory_hits += 1
                return payload
        payload = self._disk_get(key)
        with self._lock:
            if payload is None:
                self.stats.misses += 1
                return None
            self.stats.hits += 1
            self.stats.disk_hits += 1
            self._memory_put(key, payload)
            return payload

    def put(self, key: str, payload: str) -> None:
        """Insert write-through (memory budgets enforced, disk mirrored)."""
        if self._check_version(payload) is False:
            raise ValueError(
                f"payload for {key[:12]} does not carry format_version "
                f"{self.expected_version}"
            )
        with self._lock:
            self.stats.puts += 1
            self._memory_put(key, payload)
        if self._disk is not None:
            self._disk.put_text(key, payload)

    def __contains__(self, key: str) -> bool:
        with self._lock:
            if key in self._entries:
                return True
        return self._disk is not None and self._disk.contains(key)

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    @property
    def current_bytes(self) -> int:
        """Bytes resident in the memory tier."""
        with self._lock:
            return self._bytes

    def clear(self, disk: bool = False) -> None:
        """Drop the memory tier (and the disk tier when ``disk=True``)."""
        with self._lock:
            self._entries.clear()
            self._bytes = 0
        if disk and self._disk is not None:
            self._disk.clear(debris=True)

    # ------------------------------------------------------------------
    # disk-tier maintenance (used by ``repro cache``)
    # ------------------------------------------------------------------
    def disk_entries(self) -> int:
        """Entry count — a shard-aware scan (existing shard dirs plus the
        legacy root only, not a full directory walk)."""
        if self._disk is None:
            return 0
        return self._disk.entries()

    def disk_bytes(self) -> int:
        if self._disk is None:
            return 0
        return self._disk.bytes_used(refresh=True)

    def shard_stats(self) -> Dict[str, Dict[str, int]]:
        """Per-shard hit/miss/eviction/quarantine counters (the ``""``
        shard is the legacy flat root)."""
        if self._disk is None:
            return {}
        return {
            shard: stats.as_dict()
            for shard, stats in self._disk.shard_stats().items()
        }

    def prune_stale(self) -> int:
        """Delete stale/corrupt disk entries and writer debris; return count.

        Removes entries whose format version is stale, entries that are
        not valid JSON (truncated writes), quarantined ``.corrupt`` files,
        and orphaned ``.tmp`` files left by crashed writers — walking only
        shard directories that exist (plus the legacy root).
        """
        if self._disk is None:
            return 0

        def _stale(payload: dict) -> bool:
            if self.expected_version is None:
                return False
            return payload.get("format_version") != self.expected_version

        pruned = self._disk.prune(_stale, quarantine_corrupt=False)
        pruned += self._disk.sweep_debris()
        self.stats.invalidations += pruned
        return pruned

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------
    def _memory_put(self, key: str, payload: str) -> None:
        size = len(payload.encode("utf-8"))
        if self.max_bytes is not None and size > self.max_bytes:
            return  # larger than the whole budget — disk-tier only
        if key in self._entries:
            self._bytes -= len(self._entries[key].encode("utf-8"))
            self._entries.move_to_end(key)
        self._entries[key] = payload
        self._bytes += size
        while self._entries and (
            (self.max_entries is not None and len(self._entries) > self.max_entries)
            or (self.max_bytes is not None and self._bytes > self.max_bytes)
        ):
            evicted_key, evicted = self._entries.popitem(last=False)
            if evicted_key == key:
                self._bytes -= len(evicted.encode("utf-8"))
                break
            self._bytes -= len(evicted.encode("utf-8"))
            self.stats.evictions += 1

    def _disk_get(self, key: str) -> Optional[str]:
        if self._disk is None:
            return None
        lookup = self._disk.get(key)
        if lookup.quarantined:
            # Corrupt or truncated entry (e.g. a crash mid-write by a
            # pre-atomic-rename writer, bit rot, manual tampering): the
            # tier moved it to ``.corrupt``; report a miss.
            with self._lock:
                self.stats.quarantines += 1
                self.stats.invalidations += 1
            return None
        if not lookup.hit:
            return None
        if self._check_version(lookup.text) is False:
            self._disk.delete(key)
            with self._lock:
                self.stats.invalidations += 1
            return None
        return lookup.text

    def _check_version(self, payload: str) -> Optional[bool]:
        """``None`` when unchecked, else whether the version matches."""
        if self.expected_version is None:
            return None
        try:
            version = json.loads(payload).get("format_version")
        except (json.JSONDecodeError, AttributeError):
            return False
        return version == self.expected_version
