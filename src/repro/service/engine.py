"""Batch compilation engine: fan jobs across processes, degrade gracefully.

:class:`BatchEngine` turns a list of :class:`~repro.service.job.CompileJob`
into one :class:`JobResult` per job — always, in input order.  A job can
fail (bad device name, a crashing pass, a timeout); its result is then a
structured error entry, and the rest of the batch is unaffected.

Execution modes:

* ``workers=0`` — serial, in-process.  Deterministic and overhead-free;
  what :func:`repro.compiler.portfolio.compile_portfolio` uses by default.
* ``workers>=1`` — a ``ProcessPoolExecutor`` fan-out with at most
  ``workers`` jobs in flight, a per-job wall-clock ``timeout``, and bounded
  retry with exponential backoff and jitter.  A timed-out job's worker
  process cannot be interrupted mid-pass; the engine abandons the future
  (its eventual result is discarded) and shuts the pool down without
  waiting on stragglers.

The engine consults a :class:`~repro.service.cache.ResultCache` before
executing anything and write-through-populates it with every success, and
it feeds a :class:`~repro.service.telemetry.Telemetry` instance throughout:
``jobs.*`` counters, end-to-end ``job_latency_ms`` / execution-only
``execute_ms`` / pure ``compile_ms`` histograms, and one
``pass_ms.<pass-name>`` histogram per compiler-pipeline pass (fed from
each successful result's pass trace), so batch telemetry reports where
compile time goes — p50/p95/p99 per pass, not just per job.  Evaluation
jobs (:mod:`repro.service.evaluate`) additionally feed one
``eval_ms.<stage>`` histogram per fast-path evaluation stage.

The engine is job-flavour agnostic: anything with ``content_hash()`` and
the record fields (``job_id``/``device``/``method``/...) schedules the
same way — ``execute_fn`` picks the workload
(:func:`~repro.service.job.execute_job` compiles,
:func:`~repro.service.evaluate.execute_eval_job` compiles + evaluates).

Retries apply to transient faults (worker exceptions, broken pools,
timeouts).  Deterministic rejections (``error_kind="invalid"`` — unknown
device, malformed program) never retry: they would fail identically again.
"""

from __future__ import annotations

import dataclasses
import time
from collections import deque
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from concurrent.futures.process import BrokenProcessPool
from typing import Callable, List, Optional, Sequence

import numpy as np

from ..store import diff_store_stats, store_stats
from .cache import ResultCache
from .job import CompileJob, JobResult, decode_envelope, execute_job
from .telemetry import Telemetry

__all__ = ["BatchEngine", "BatchReport", "run_batch"]

_RETRYABLE = ("exception", "timeout", "pool")


def _sum_store_events(results: Sequence[JobResult]) -> dict:
    """Total per-job ``store_events`` over the *executed* results.

    Cache hits are excluded: their envelopes carry the store events of
    whichever run originally produced them, so counting those would
    double-report work no process did this run.
    """
    totals: dict = {}
    for result in results:
        if result.cached or not result.metrics:
            continue
        for name, value in (result.metrics.get("store_events") or {}).items():
            totals[name] = totals.get(name, 0) + int(value)
    return totals


@dataclasses.dataclass
class BatchReport:
    """Everything a batch run produced.

    Attributes:
        results: One :class:`JobResult` per submitted job, input order.
        telemetry: The telemetry sink the run recorded into.
        elapsed: Wall-clock seconds for the whole batch.
        cache_stats: Snapshot of the cache counters (empty dict when the
            run was uncached).
        store_stats: Artifact-store activity for this run, two sections:
            ``"process"`` — :func:`repro.store.diff_store_stats` delta of
            this process's registries and shared-memory tier across the
            run; ``"jobs"`` — summed per-job ``store_events`` from the
            executed (non-cached) results, which is the only view that
            sees activity inside pool worker processes.
    """

    results: List[JobResult]
    telemetry: Telemetry
    elapsed: float
    cache_stats: dict
    store_stats: dict = dataclasses.field(default_factory=dict)

    @property
    def ok(self) -> List[JobResult]:
        return [r for r in self.results if r.ok]

    @property
    def failed(self) -> List[JobResult]:
        return [r for r in self.results if not r.ok]

    @property
    def degraded(self) -> List[JobResult]:
        """Jobs that succeeded but only via repairs/fallbacks."""
        return [r for r in self.results if r.ok and r.warnings]

    def pass_summary(self) -> dict:
        """Per-compiler-pass latency aggregation across the batch.

        Returns ``{pass_name: {count, mean, min, max, p50, p95, p99}}``
        in milliseconds, built from the ``pass_ms.*`` histograms the
        engine feeds from every executed job's pass trace.  Cache hits
        contribute no samples (nothing was compiled).
        """
        snap = self.telemetry.snapshot()
        prefix = "pass_ms."
        return {
            name[len(prefix):]: summary
            for name, summary in snap["histograms"].items()
            if name.startswith(prefix)
        }

    def eval_summary(self) -> dict:
        """Per-evaluation-stage latency aggregation across the batch.

        Returns ``{stage: {count, mean, min, max, p50, p95, p99}}`` in
        milliseconds from the ``eval_ms.*`` histograms the engine feeds
        from every executed evaluation job's ``eval_trace`` (stages:
        ``diagonal``/``ideal``/``noisy``).  Empty for pure compile
        batches and for cache hits.
        """
        snap = self.telemetry.snapshot()
        prefix = "eval_ms."
        return {
            name[len(prefix):]: summary
            for name, summary in snap["histograms"].items()
            if name.startswith(prefix)
        }

    def optimize_summary(self) -> dict:
        """Per-optimization-stage latency aggregation across the batch.

        Returns ``{stage: {count, mean, min, max, p50, p95, p99}}`` in
        milliseconds from the ``optimize_ms.*`` histograms the engine
        feeds from every executed optimize job's ``optimize_trace``
        (stages: ``population`` — the one batched fast-path scoring
        pass — and ``search`` — the bounded local optimizer).  Empty for
        other batch flavours and for cache hits.
        """
        snap = self.telemetry.snapshot()
        prefix = "optimize_ms."
        return {
            name[len(prefix):]: summary
            for name, summary in snap["histograms"].items()
            if name.startswith(prefix)
        }

    def distinct_targets(self) -> int:
        """Distinct device+calibration fingerprints among the successful
        results — how many Target-layer analyses the batch actually paid
        for (the rest were intern-registry shares)."""
        return len(
            {
                (r.metrics or {}).get("target_fingerprint")
                for r in self.ok
                if (r.metrics or {}).get("target_fingerprint")
            }
        )

    def summary(self) -> dict:
        """Headline numbers: throughput, hit rate, latency percentiles."""
        snap = self.telemetry.snapshot()
        latency = snap["histograms"].get("job_latency_ms", {})
        job_events = self.store_stats.get("jobs", {})
        return {
            "jobs": len(self.results),
            "ok": len(self.ok),
            "failed": len(self.failed),
            "degraded": len(self.degraded),
            "warnings_total": sum(len(r.warnings) for r in self.results),
            "cached": sum(1 for r in self.results if r.cached),
            "distinct_targets": self.distinct_targets(),
            "elapsed_s": self.elapsed,
            "jobs_per_s": (
                len(self.results) / self.elapsed if self.elapsed > 0 else 0.0
            ),
            "cache_hit_rate": self.cache_stats.get("hit_rate", 0.0),
            "cache_quarantined": int(self.cache_stats.get("quarantines", 0)),
            "store_shm_hits": int(job_events.get("shm_hits", 0)),
            "store_shm_publishes": int(job_events.get("shm_publishes", 0)),
            "store_registry_hits": int(job_events.get("registry_hits", 0)),
            "latency_p50_ms": latency.get("p50", 0.0),
            "latency_p95_ms": latency.get("p95", 0.0),
            "latency_p99_ms": latency.get("p99", 0.0),
        }

    def render(self) -> str:
        """Terminal summary: headline table + full telemetry tables."""
        from ..experiments.reporting import format_table

        s = self.summary()
        rows = [
            ["jobs", s["jobs"]],
            ["ok", s["ok"]],
            ["failed", s["failed"]],
            ["degraded", f"{s['degraded']} ({s['warnings_total']} warnings)"],
            ["cached", s["cached"]],
            ["distinct targets", s["distinct_targets"]],
            ["elapsed", f"{s['elapsed_s']:.3f} s"],
            ["throughput", f"{s['jobs_per_s']:.1f} jobs/s"],
            ["cache hit rate", f"{100 * s['cache_hit_rate']:.1f}%"],
            [
                "store shm hits/publishes",
                f"{s['store_shm_hits']}/{s['store_shm_publishes']}",
            ],
            ["store registry hits", s["store_registry_hits"]],
            ["latency p50", f"{s['latency_p50_ms']:.2f} ms"],
            ["latency p95", f"{s['latency_p95_ms']:.2f} ms"],
            ["latency p99", f"{s['latency_p99_ms']:.2f} ms"],
        ]
        return (
            format_table(["batch", "value"], rows)
            + "\n\n"
            + self.telemetry.render()
        )


@dataclasses.dataclass
class _JobState:
    index: int
    job: CompileJob
    key: str
    attempts: int = 0
    enqueued_at: float = 0.0
    ready_at: float = 0.0


class BatchEngine:
    """Schedule compile jobs with caching, retries and timeouts.

    Args:
        workers: Process-pool size; ``0`` runs serially in-process.
        timeout: Per-attempt wall-clock seconds (pooled mode only — a
            serial attempt cannot be preempted).
        retries: Extra attempts after a transient failure (so a job runs
            at most ``retries + 1`` times).
        retry_base_delay: First backoff delay in seconds; doubles per
            attempt.
        retry_jitter: Relative jitter on each backoff delay (0.5 = ±50%),
            decorrelating retry bursts.
        cache: Optional result cache consulted before execution.
        telemetry: Optional sink; one is created when omitted.
        seed: Seed for the jitter rng (determinism in tests).
        execute_fn: Job executor (pooled mode requires it picklable);
            defaults to :func:`repro.service.job.execute_job`.
        sleep: Hook for every wall-clock wait the engine takes (retry
            backoff, pooled backoff coalescing); defaults to
            :func:`time.sleep`.  Tests and simulation harnesses inject
            a no-op so retry-heavy runs are deterministic and fast.
    """

    def __init__(
        self,
        workers: int = 0,
        timeout: Optional[float] = None,
        retries: int = 1,
        retry_base_delay: float = 0.05,
        retry_jitter: float = 0.5,
        cache: Optional[ResultCache] = None,
        telemetry: Optional[Telemetry] = None,
        seed: int = 0,
        execute_fn: Callable[[CompileJob], JobResult] = execute_job,
        sleep: Optional[Callable[[float], None]] = None,
    ) -> None:
        if workers < 0:
            raise ValueError("workers must be >= 0")
        if retries < 0:
            raise ValueError("retries must be >= 0")
        if timeout is not None and timeout <= 0:
            raise ValueError("timeout must be positive or None")
        self.workers = workers
        self.timeout = timeout
        self.retries = retries
        self.retry_base_delay = retry_base_delay
        self.retry_jitter = retry_jitter
        self.cache = cache
        self.telemetry = telemetry if telemetry is not None else Telemetry()
        self._rng = np.random.default_rng(seed)
        self._execute_fn = execute_fn
        self._sleep = sleep if sleep is not None else time.sleep

    # ------------------------------------------------------------------
    # public API
    # ------------------------------------------------------------------
    def run(self, jobs: Sequence[CompileJob]) -> BatchReport:
        """Run a batch; returns one result per job, input order."""
        start = time.perf_counter()
        store_before = store_stats()
        results: List[Optional[JobResult]] = [None] * len(jobs)
        states = deque()
        now = time.monotonic()
        for index, job in enumerate(jobs):
            self.telemetry.incr("jobs.submitted")
            state = _JobState(
                index=index,
                job=job,
                key=job.content_hash(),
                enqueued_at=now,
            )
            hit = self._try_cache(state)
            if hit is not None:
                results[index] = hit
            else:
                states.append(state)
        if states:
            if self.workers == 0:
                self._run_serial(states, results)
            else:
                self._run_pooled(states, results)
        elapsed = time.perf_counter() - start
        final = [r for r in results if r is not None]
        assert len(final) == len(jobs), "every job must yield a result"
        return BatchReport(
            results=final,
            telemetry=self.telemetry,
            elapsed=elapsed,
            cache_stats=(
                self.cache.stats.snapshot() if self.cache is not None else {}
            ),
            store_stats={
                "process": diff_store_stats(store_before, store_stats()),
                "jobs": _sum_store_events(final),
            },
        )

    # ------------------------------------------------------------------
    # shared bookkeeping
    # ------------------------------------------------------------------
    def _try_cache(self, state: _JobState) -> Optional[JobResult]:
        if self.cache is None:
            return None
        quarantines_before = self.cache.stats.quarantines
        payload = self.cache.get(state.key)
        quarantined = self.cache.stats.quarantines - quarantines_before
        if quarantined > 0:
            # The lookup tripped over a corrupt disk entry; the cache
            # already moved it aside — surface the event so operators see
            # quarantines in batch/fleet telemetry, not just cache stats.
            self.telemetry.incr("cache_quarantined", quarantined)
        if payload is None:
            return None
        try:
            metrics, _ = decode_envelope(payload)
        except ValueError:
            return None  # stale envelope in the memory tier — recompile
        latency = time.monotonic() - state.enqueued_at
        warnings = list(metrics.get("warnings") or []) if metrics else []
        self.telemetry.incr("jobs.ok")
        self.telemetry.incr("jobs.cached")
        if warnings:
            self.telemetry.incr("jobs.degraded")
        self.telemetry.observe("job_latency_ms", latency * 1e3)
        return JobResult(
            job=state.job,
            key=state.key,
            ok=True,
            cached=True,
            attempts=0,
            latency=latency,
            metrics=metrics,
            payload=payload,
            warnings=warnings,
            placement=metrics.get("placement") if metrics else None,
        )

    def _finish(
        self,
        state: _JobState,
        result: JobResult,
        results: List[Optional[JobResult]],
    ) -> None:
        result.attempts = state.attempts
        result.latency = time.monotonic() - state.enqueued_at
        if result.ok:
            self.telemetry.incr("jobs.ok")
            if result.warnings:
                self.telemetry.incr("jobs.degraded")
                self.telemetry.observe(
                    "job_warnings", float(len(result.warnings))
                )
            if result.metrics and result.metrics.get("compile_time"):
                self.telemetry.observe(
                    "compile_ms", result.metrics["compile_time"] * 1e3
                )
            if result.metrics:
                for record in result.metrics.get("pass_trace") or []:
                    self.telemetry.observe(
                        f"pass_ms.{record['name']}",
                        float(record["seconds"]) * 1e3,
                    )
                for record in result.metrics.get("eval_trace") or []:
                    self.telemetry.observe(
                        f"eval_ms.{record['name']}",
                        float(record["seconds"]) * 1e3,
                    )
                for record in result.metrics.get("optimize_trace") or []:
                    self.telemetry.observe(
                        f"optimize_ms.{record['name']}",
                        float(record["seconds"]) * 1e3,
                    )
                # Artifact-store activity from inside the worker (shm
                # resolves, registry interning) — only executed results
                # reach _finish, so cached envelopes never double-count.
                for name, value in (
                    result.metrics.get("store_events") or {}
                ).items():
                    self.telemetry.incr(f"store.{name}", int(value))
            if self.cache is not None and result.payload is not None:
                self.cache.put(state.key, result.payload)
        else:
            self.telemetry.incr("jobs.failed")
            self.telemetry.incr(f"jobs.failed.{result.error_kind}")
        self.telemetry.observe("job_latency_ms", result.latency * 1e3)
        results[state.index] = result

    def _should_retry(self, state: _JobState, result: JobResult) -> bool:
        return (
            result.error_kind in _RETRYABLE
            and state.attempts < self.retries + 1
        )

    def _backoff(self, attempt: int) -> float:
        base = self.retry_base_delay * (2.0 ** (attempt - 1))
        jitter = 1.0 + self.retry_jitter * float(self._rng.uniform(-1.0, 1.0))
        return max(0.0, base * jitter)

    # ------------------------------------------------------------------
    # serial mode
    # ------------------------------------------------------------------
    def _run_serial(self, states, results) -> None:
        for state in states:
            # A duplicate earlier in the batch may have populated the
            # cache since this job was enqueued.
            hit = self._try_cache(state)
            if hit is not None:
                results[state.index] = hit
                continue
            while True:
                state.attempts += 1
                exec_start = time.perf_counter()
                try:
                    result = self._execute_fn(state.job)
                except Exception as exc:  # noqa: BLE001 — degrade, don't die
                    result = JobResult(
                        job=state.job,
                        key=state.key,
                        ok=False,
                        error=f"{type(exc).__name__}: {exc}",
                        error_kind="exception",
                    )
                self.telemetry.observe(
                    "execute_ms", (time.perf_counter() - exec_start) * 1e3
                )
                if result.ok or not self._should_retry(state, result):
                    self._finish(state, result, results)
                    break
                self.telemetry.incr("jobs.retries")
                self._sleep(self._backoff(state.attempts))

    # ------------------------------------------------------------------
    # pooled mode
    # ------------------------------------------------------------------
    def _run_pooled(self, states, results) -> None:
        pool = ProcessPoolExecutor(max_workers=self.workers)
        ready = deque(states)
        waiting: List[_JobState] = []  # backoff not elapsed yet
        inflight = {}  # future -> (state, deadline, exec_start)
        abandoned = False
        try:
            while ready or waiting or inflight:
                now = time.monotonic()
                still_waiting = []
                for state in waiting:
                    if state.ready_at <= now:
                        ready.append(state)
                    else:
                        still_waiting.append(state)
                waiting = still_waiting

                while ready and len(inflight) < self.workers:
                    state = ready.popleft()
                    if state.attempts == 0:
                        # In-batch duplicates: a completed twin may have
                        # cached this key after enqueue time.
                        hit = self._try_cache(state)
                        if hit is not None:
                            results[state.index] = hit
                            continue
                    state.attempts += 1
                    exec_start = time.monotonic()
                    future = pool.submit(self._execute_fn, state.job)
                    deadline = (
                        exec_start + self.timeout
                        if self.timeout is not None
                        else None
                    )
                    inflight[future] = (state, deadline, exec_start)

                if not inflight:
                    if waiting:
                        next_ready = min(s.ready_at for s in waiting)
                        self._sleep(max(0.0, next_ready - time.monotonic()))
                    continue

                wait_for = 0.1
                deadlines = [
                    d for _, d, _ in inflight.values() if d is not None
                ]
                if waiting:
                    deadlines.append(min(s.ready_at for s in waiting))
                if deadlines:
                    wait_for = max(0.0, min(deadlines) - time.monotonic())
                done, _ = wait(
                    set(inflight),
                    timeout=min(wait_for, 0.5),
                    return_when=FIRST_COMPLETED,
                )

                now = time.monotonic()
                for future in done:
                    state, _, exec_start = inflight.pop(future)
                    self.telemetry.observe(
                        "execute_ms", (now - exec_start) * 1e3
                    )
                    try:
                        result = future.result()
                    except BrokenProcessPool:
                        result = JobResult(
                            job=state.job,
                            key=state.key,
                            ok=False,
                            error="worker pool broke during execution",
                            error_kind="pool",
                        )
                        pool = ProcessPoolExecutor(max_workers=self.workers)
                    except Exception as exc:  # noqa: BLE001
                        result = JobResult(
                            job=state.job,
                            key=state.key,
                            ok=False,
                            error=f"{type(exc).__name__}: {exc}",
                            error_kind="exception",
                        )
                    self._settle(state, result, results, waiting)

                # Expired deadlines: abandon the future, fail/retry the job.
                for future, (state, deadline, _) in list(inflight.items()):
                    if deadline is not None and now >= deadline:
                        inflight.pop(future)
                        future.cancel()
                        abandoned = True
                        self.telemetry.incr("jobs.timeouts")
                        result = JobResult(
                            job=state.job,
                            key=state.key,
                            ok=False,
                            error=(
                                f"timed out after {self.timeout:.3f}s "
                                f"(attempt {state.attempts})"
                            ),
                            error_kind="timeout",
                        )
                        self._settle(state, result, results, waiting)
        finally:
            # Abandoned workers may still be running; don't wait on them.
            pool.shutdown(wait=not abandoned, cancel_futures=True)

    def _settle(self, state, result, results, waiting) -> None:
        if result.ok or not self._should_retry(state, result):
            self._finish(state, result, results)
            return
        self.telemetry.incr("jobs.retries")
        state.ready_at = time.monotonic() + self._backoff(state.attempts)
        waiting.append(state)


def run_batch(jobs: Sequence[CompileJob], **engine_kwargs) -> BatchReport:
    """One-shot convenience: ``BatchEngine(**engine_kwargs).run(jobs)``."""
    return BatchEngine(**engine_kwargs).run(jobs)
