"""The compilation-service job model.

A :class:`CompileJob` is the unit of work the service layer schedules: one
QAOA program, one target device, one flow configuration.  Jobs are plain
data — picklable across process boundaries and serialisable to JSON lines —
so the batch engine can fan them out and the cache can address their results
by content.

**Content addressing.**  :meth:`CompileJob.content_hash` digests a canonical
form of the job.  Because a QAOA cost layer is a product of mutually
commuting CPHASE terms, two jobs whose edge lists differ only in term order
(or in the endpoint order within a term) describe the same compilation
problem; the canonical form sorts normalised ``(min, max, weight)`` triples
so they hash identically.  Everything that *does* change the output —
device, method, packing limit, router, seed, calibration, level parameters —
feeds the digest, so distinct configurations never collide.

A :class:`JobResult` carries the outcome: the cache key, the serialised
compiled circuit (the :mod:`repro.compiler.serialize` JSON format wrapped in
a small metrics envelope), headline metrics, and structured error
information when the job failed.  Failed jobs are data, not exceptions —
a batch always yields one result per job.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
from typing import Dict, List, Optional, Sequence, Union

import numpy as np

from ..compiler.pipeline import PipelineSpec
from ..hardware.calibration import Calibration, random_calibration
from ..hardware.coupling import CouplingGraph
from ..qaoa.problems import Level, QAOAProgram

__all__ = [
    "HASH_VERSION",
    "CompileJob",
    "JobResult",
    "execute_job",
    "resolve_job_environment",
    "job_from_dict",
    "job_to_dict",
    "method_label",
    "load_jobs_jsonl",
    "encode_envelope",
    "decode_envelope",
]

#: Bumped whenever the canonical form changes, so stale hashes cannot alias.
#: v2: inline devices canonicalise to their Target-layer content
#: fingerprint instead of an embedded edge list.
HASH_VERSION = 2

DeviceSpec = Union[str, CouplingGraph]
CalibrationSpec = Union[None, str, Dict, Calibration]
MethodSpec = Union[str, PipelineSpec]


def method_label(method: MethodSpec) -> str:
    """Human-readable method label for records and fleet telemetry —
    the registry name, or the flow label of an inline spec."""
    if isinstance(method, PipelineSpec):
        return method.method
    return str(method)


@dataclasses.dataclass
class CompileJob:
    """One compilation request.

    Attributes:
        program: The QAOA program to compile.
        device: Library device name (resolved via
            :func:`repro.hardware.devices.get_device`) or an inline
            :class:`CouplingGraph`.
        method: A registered method name (see
            :func:`repro.compiler.available_methods`) or an inline
            :class:`~repro.compiler.pipeline.PipelineSpec` compiled
            directly (content-addressed by its fingerprint).
        packing_limit: Layer-packing cap (None = unlimited).
        router: Backend router (``"layered"`` or ``"sabre"``).
        seed: Seed for the flow's stochastic tie-breaks.
        calibration: ``None``, ``"auto"`` (device calibration when the
            target is melbourne, else a random calibration seeded by
            ``seed``), ``{"seed": n}`` for an explicit random calibration,
            or a concrete :class:`Calibration`.
        job_id: Free-form correlation label; excluded from the content hash.
    """

    program: QAOAProgram
    device: DeviceSpec
    method: MethodSpec = "ic"
    packing_limit: Optional[int] = None
    router: str = "layered"
    seed: int = 0
    calibration: CalibrationSpec = None
    job_id: Optional[str] = None

    # ------------------------------------------------------------------
    # content addressing
    # ------------------------------------------------------------------
    def canonical(self) -> dict:
        """The hash pre-image: order-independent program terms plus every
        output-affecting knob."""
        program = self.program
        edges = sorted(
            (min(a, b), max(a, b), float(w)) for a, b, w in program.edges
        )
        return {
            "hash_version": HASH_VERSION,
            "program": {
                "num_qubits": program.num_qubits,
                "edges": [[a, b, repr(w)] for a, b, w in edges],
                "levels": [
                    [repr(lv.gamma), repr(lv.beta)] for lv in program.levels
                ],
                "linear": [
                    [q, repr(h)] for q, h in sorted(program.linear.items())
                ],
            },
            "device": _device_canonical(self.device),
            "method": (
                {"spec_fingerprint": self.method.fingerprint()}
                if isinstance(self.method, PipelineSpec)
                else self.method
            ),
            "packing_limit": self.packing_limit,
            "router": self.router,
            "seed": self.seed,
            "calibration": _calibration_canonical(self.calibration),
        }

    def content_hash(self) -> str:
        """Hex SHA-256 of the canonical form (the cache key)."""
        text = json.dumps(
            self.canonical(), sort_keys=True, separators=(",", ":")
        )
        return hashlib.sha256(text.encode("utf-8")).hexdigest()

    # ------------------------------------------------------------------
    # resolution
    # ------------------------------------------------------------------
    def resolve_device(self) -> CouplingGraph:
        """The concrete coupling graph this job targets."""
        if isinstance(self.device, CouplingGraph):
            return self.device
        from ..hardware.devices import get_device

        return get_device(self.device)

    def resolve_calibration(
        self, device: Optional[CouplingGraph] = None
    ) -> Optional[Calibration]:
        """The concrete calibration (sampling random ones as specified)."""
        spec = self.calibration
        if spec is None or isinstance(spec, Calibration):
            return spec
        device = device if device is not None else self.resolve_device()
        if spec == "auto":
            if device.name == "ibmq_16_melbourne":
                from ..hardware.devices import melbourne_calibration

                return melbourne_calibration()
            return random_calibration(
                device, rng=np.random.default_rng(self.seed)
            )
        if isinstance(spec, dict):
            if "cnot_error" in spec:
                return _calibration_from_payload(spec, device)
            if "seed" in spec:
                return random_calibration(
                    device, rng=np.random.default_rng(int(spec["seed"]))
                )
        raise ValueError(f"unsupported calibration spec {spec!r}")


def resolve_job_environment(job: CompileJob):
    """Resolve ``(device, calibration, warnings)`` for one job, repairing
    dirty calibration feeds instead of failing them.

    A calibration payload that :class:`~repro.hardware.calibration.
    Calibration` rejects (NaN entries, out-of-range rates, missing or
    unknown edges, dead couplers) is routed through
    :func:`repro.hardware.faults.repair_calibration`; the returned device
    is then the possibly-pruned coupling and ``warnings`` records every
    repair taken.  Feeds that are beyond repair re-raise as ``ValueError``
    so the engine classifies the job ``invalid``.
    """
    device = job.resolve_device()
    warnings: List[str] = []
    try:
        return device, job.resolve_calibration(device), warnings
    except ValueError as exc:
        spec = job.calibration
        if not (isinstance(spec, dict) and "cnot_error" in spec):
            raise
        from ..hardware.faults import repair_calibration

        raw = _raw_calibration_from_payload(spec, device)
        repair = repair_calibration(raw)  # CalibrationError -> ValueError
        warnings.append(
            f"calibration repaired: {repair.report.summary()} "
            f"(rejected as-is: {exc})"
        )
        warnings.extend(repair.warnings)
        return repair.coupling, repair.calibration, warnings


@dataclasses.dataclass
class JobResult:
    """Outcome of one job (success, cache hit, or structured failure).

    Attributes:
        job: The originating job.
        key: Content hash (the cache key).
        ok: Whether a compiled circuit was produced.
        cached: Whether the result came from the cache.
        attempts: Executions performed (0 for a cache hit).
        latency: Seconds from scheduling to completion of this job.
        metrics: Headline numbers (depth, gates, cnots, swaps,
            compile_time, success_probability when calibrated) plus the
            per-pass ``pass_trace`` (name/seconds/swaps/deltas per
            pipeline stage).
        payload: Envelope string (see :func:`encode_envelope`) holding the
            serialised compiled circuit; ``None`` on failure.
        error: Human-readable failure description.
        error_kind: Machine-readable category (``"timeout"``,
            ``"exception"``, ``"invalid"``, ``"pool"``).
        warnings: Degradation provenance — every calibration repair and
            compile-path fallback taken while producing this result.  A
            populated list on an ``ok`` result means the job succeeded in
            degraded mode.
        placement: Fleet placement audit trail (``device_label``,
            ``policy``, ``wait_ms``, ``promised_latency_ms``), stamped by
            :class:`repro.fleet.scheduler.Scheduler` when the job was
            fleet-scheduled; ``None`` for direct batch runs.  Also
            threaded into the result envelope's metrics so cached results
            stay auditable, without changing the envelope format.
    """

    job: CompileJob
    key: str
    ok: bool
    cached: bool = False
    attempts: int = 0
    latency: float = 0.0
    metrics: Optional[dict] = None
    payload: Optional[str] = None
    error: Optional[str] = None
    error_kind: Optional[str] = None
    warnings: List[str] = dataclasses.field(default_factory=list)
    placement: Optional[dict] = None

    @property
    def device_label(self) -> Optional[str]:
        """The fleet slot this result was placed on (``None`` unless
        fleet-scheduled)."""
        if self.placement is None:
            return None
        return self.placement.get("device_label")

    def compiled(self):
        """Deserialise the compiled circuit (raises on failed jobs)."""
        if not self.ok or self.payload is None:
            raise ValueError(
                f"job {self.job.job_id or self.key[:12]} has no compiled "
                f"result ({self.error_kind}: {self.error})"
            )
        from ..compiler.serialize import from_json

        _, compiled_json = decode_envelope(self.payload)
        return from_json(compiled_json)

    def to_record(self, include_payload: bool = False) -> dict:
        """JSONL-friendly dict (one line of ``repro batch`` output)."""
        record = {
            "id": self.job.job_id,
            "key": self.key,
            "device": _device_label(self.job.device),
            "method": method_label(self.job.method),
            "packing_limit": self.job.packing_limit,
            "seed": self.job.seed,
            "ok": self.ok,
            "cached": self.cached,
            "attempts": self.attempts,
            "latency_ms": round(self.latency * 1e3, 3),
            "metrics": self.metrics,
            "error": self.error,
            "error_kind": self.error_kind,
            "warnings": list(self.warnings),
            "placement": self.placement,
        }
        if include_payload:
            record["payload"] = self.payload
        return record


# ----------------------------------------------------------------------
# execution (runs in worker processes — keep module-level and picklable)
# ----------------------------------------------------------------------
def execute_job(job: CompileJob) -> JobResult:
    """Compile one job synchronously; never raises for job-level faults."""
    import time

    from ..compiler.flow import compile_with_method
    from ..compiler.metrics import measure_compiled
    from ..compiler.serialize import to_json
    from ..store import flatten_store_events, store_stats

    key = job.content_hash()
    start = time.perf_counter()
    store_before = store_stats()
    try:
        device, calibration, warnings = resolve_job_environment(job)
        # One interned Target per distinct device+calibration (repair
        # warnings included): every job sharing this environment reuses
        # the same memoized device analyses, within and across batches.
        from ..hardware.target import intern_target

        target = intern_target(device, calibration, warnings=tuple(warnings))
        compiled = compile_with_method(
            job.program,
            target,
            job.method,
            packing_limit=job.packing_limit,
            rng=np.random.default_rng(job.seed),
            router=job.router,
        )
        # Repair provenance rides on the compiled result so the serialised
        # document (and thus the cache) carries the full degradation story.
        compiled.warnings = warnings + compiled.warnings
        measured = measure_compiled(compiled, calibration=calibration)
        metrics = {
            "depth": measured.depth,
            "gate_count": measured.gate_count,
            "cnot_count": measured.cnot_count,
            "swap_count": measured.swap_count,
            "compile_time": measured.compile_time,
            "success_probability": measured.success_probability,
            "warnings": list(compiled.warnings),
            "pass_trace": [r.to_dict() for r in compiled.pass_trace],
            "target_fingerprint": compiled.target_fingerprint,
        }
        # Per-job artifact-store activity (shm hits/publishes, registry
        # hits) — rides in the envelope so the engine sees what happened
        # inside pool workers.
        events = flatten_store_events(store_before, store_stats())
        if events:
            metrics["store_events"] = events
        payload = encode_envelope(to_json(compiled), metrics)
    except (KeyError, ValueError) as exc:
        return JobResult(
            job=job,
            key=key,
            ok=False,
            attempts=1,
            latency=time.perf_counter() - start,
            error=str(exc),
            error_kind="invalid",
        )
    except Exception as exc:  # noqa: BLE001 — jobs degrade, batches survive
        return JobResult(
            job=job,
            key=key,
            ok=False,
            attempts=1,
            latency=time.perf_counter() - start,
            error=f"{type(exc).__name__}: {exc}",
            error_kind="exception",
        )
    return JobResult(
        job=job,
        key=key,
        ok=True,
        attempts=1,
        latency=time.perf_counter() - start,
        metrics=metrics,
        payload=payload,
        warnings=list(compiled.warnings),
    )


# ----------------------------------------------------------------------
# result envelope (what the cache stores)
# ----------------------------------------------------------------------
def encode_envelope(compiled_json: str, metrics: dict) -> str:
    """Wrap a serialised compiled circuit with its metrics.

    The envelope repeats the serialisation format version at the top level
    so a disk cache can invalidate stale entries without parsing the whole
    compiled document.
    """
    from ..compiler.serialize import FORMAT_VERSION

    return json.dumps(
        {
            "format_version": FORMAT_VERSION,
            "metrics": metrics,
            "compiled": json.loads(compiled_json),
        },
        separators=(",", ":"),
    )


def decode_envelope(text: str) -> "tuple[dict, str]":
    """Return ``(metrics, compiled_json)`` from an envelope string."""
    from ..compiler.serialize import FORMAT_VERSION

    payload = json.loads(text)
    version = payload.get("format_version")
    if version != FORMAT_VERSION:
        raise ValueError(
            f"stale result envelope: format version {version!r} "
            f"(current {FORMAT_VERSION})"
        )
    return payload["metrics"], json.dumps(payload["compiled"])


# ----------------------------------------------------------------------
# JSONL job files
# ----------------------------------------------------------------------
def job_to_dict(job: CompileJob) -> dict:
    """Serialise a job for a JSONL job file."""
    program = job.program
    spec = {
        "id": job.job_id,
        "device": _device_payload(job.device),
        "method": (
            {"spec": dataclasses.asdict(job.method)}
            if isinstance(job.method, PipelineSpec)
            else job.method
        ),
        "packing_limit": job.packing_limit,
        "router": job.router,
        "seed": job.seed,
        "program": {
            "num_qubits": program.num_qubits,
            "edges": [[a, b, w] for a, b, w in program.edges],
            "gammas": [lv.gamma for lv in program.levels],
            "betas": [lv.beta for lv in program.levels],
            "linear": {str(q): h for q, h in program.linear.items()},
        },
    }
    calibration = job.calibration
    if isinstance(calibration, Calibration):
        spec["calibration"] = _calibration_payload(calibration)
    elif calibration is not None:
        spec["calibration"] = calibration
    return spec


def job_from_dict(spec: dict) -> CompileJob:
    """Build a job from one JSONL line.

    Four program forms are accepted:

    * explicit — ``"program": {"num_qubits", "edges", "gammas", "betas"}``;
    * generated — ``"problem": {"family", "nodes", "param", "seed"}``
      sampled through :func:`repro.experiments.harness.make_problem` (with
      optional ``"gammas"``/``"betas"``, defaulting to 0.7/0.35 at p=1) so
      job files can describe workload grids without embedding edge lists;
    * ``"qubo"`` / ``"ising"`` (and ``"maxcut"``) — the unified problem
      frontend forms of :func:`repro.qaoa.frontend.problem_from_spec`,
      with optional ``"gammas"``/``"betas"`` inside the form body.  The
      content hash is taken over the resulting program's canonical form,
      so term ordering in the spec never splits the cache.
    """
    if "program" in spec:
        prog = spec["program"]
        gammas = prog.get("gammas", [0.7])
        betas = prog.get("betas", [0.35])
        if len(gammas) != len(betas):
            raise ValueError("gammas and betas must have equal length")
        program = QAOAProgram(
            num_qubits=int(prog["num_qubits"]),
            edges=[
                (int(e[0]), int(e[1]), float(e[2]) if len(e) > 2 else 1.0)
                for e in prog["edges"]
            ],
            levels=[Level(float(g), float(b)) for g, b in zip(gammas, betas)],
            linear={
                int(q): float(h)
                for q, h in prog.get("linear", {}).items()
            },
        )
    elif "problem" in spec:
        from ..experiments.harness import make_problem

        prob = spec["problem"]
        problem = make_problem(
            prob["family"],
            int(prob["nodes"]),
            float(prob["param"]),
            np.random.default_rng(int(prob.get("seed", 0))),
        )
        gammas = prob.get("gammas", [0.7])
        betas = prob.get("betas", [0.35])
        program = problem.to_program(gammas, betas)
    elif any(form in spec for form in ("qubo", "ising", "maxcut")):
        from ..qaoa.frontend import problem_from_spec

        problem = problem_from_spec(spec)
        body = next(
            spec[form]
            for form in ("qubo", "ising", "maxcut")
            if form in spec
        )
        gammas = body.get("gammas", [0.7])
        betas = body.get("betas", [0.35])
        program = problem.to_program(gammas, betas)
    else:
        raise ValueError(
            "job spec needs a 'program', 'problem', 'qubo', 'ising' or "
            "'maxcut' entry"
        )

    device = spec.get("device", "ibmq_20_tokyo")
    if isinstance(device, dict):
        # Interned: N job lines naming the same inline device share one
        # CouplingGraph (and one eager Floyd–Warshall) per batch.
        from ..hardware.target import intern_coupling

        device = intern_coupling(
            int(device["num_qubits"]),
            [tuple(e) for e in device["edges"]],
            name=device.get("name", "inline"),
        )
    method = spec.get("method", "ic")
    if isinstance(method, dict):
        if "spec" not in method:
            raise ValueError(
                "inline method must be {'spec': {...PipelineSpec fields}}"
            )
        method = PipelineSpec(**method["spec"])
    else:
        from ..compiler.registry import available_methods, unknown_method_error

        if method not in available_methods():
            raise unknown_method_error(method)
    return CompileJob(
        program=program,
        device=device,
        method=method,
        packing_limit=spec.get("packing_limit"),
        router=spec.get("router", "layered"),
        seed=int(spec.get("seed", 0)),
        calibration=spec.get("calibration"),
        job_id=spec.get("id"),
    )


def load_jobs_jsonl(lines: Sequence[str]) -> List[CompileJob]:
    """Parse a JSONL job file (blank lines and ``#`` comments skipped)."""
    jobs = []
    for lineno, line in enumerate(lines, start=1):
        line = line.strip()
        if not line or line.startswith("#"):
            continue
        try:
            jobs.append(job_from_dict(json.loads(line)))
        except (ValueError, KeyError, TypeError) as exc:
            raise ValueError(f"bad job on line {lineno}: {exc}") from exc
    return jobs


# ----------------------------------------------------------------------
# canonical helpers
# ----------------------------------------------------------------------
def _device_canonical(device: DeviceSpec):
    if isinstance(device, CouplingGraph):
        from ..hardware.target import coupling_fingerprint

        return {
            "name": device.name,
            "fingerprint": coupling_fingerprint(device),
        }
    return {"name": str(device)}


def _device_label(device: DeviceSpec) -> str:
    return device.name if isinstance(device, CouplingGraph) else str(device)


def _device_payload(device: DeviceSpec):
    if isinstance(device, CouplingGraph):
        return {
            "name": device.name,
            "num_qubits": device.num_qubits,
            "edges": sorted(list(e) for e in device.edges),
        }
    return str(device)


def _calibration_canonical(spec: CalibrationSpec):
    if spec is None or isinstance(spec, str):
        return spec
    if isinstance(spec, Calibration):
        payload = _calibration_payload(spec)
        payload.pop("timestamp", None)
        return payload
    if isinstance(spec, dict):
        return {k: spec[k] for k in sorted(spec) if k != "timestamp"}
    raise ValueError(f"unsupported calibration spec {spec!r}")


def _calibration_payload(calibration: Calibration) -> dict:
    return {
        "coupling": calibration.coupling.name,
        "cnot_error": {
            f"{a}-{b}": err
            for (a, b), err in sorted(calibration.cnot_error.items())
        },
        "single_qubit_error": {
            str(q): err
            for q, err in sorted(calibration.single_qubit_error.items())
        },
        "readout_error": {
            str(q): err
            for q, err in sorted(calibration.readout_error.items())
        },
        "timestamp": calibration.timestamp,
    }


def _maybe_float(value) -> float:
    """Parse a rate leniently: unparseable values become NaN so the fault
    layer can classify them instead of the parser crashing."""
    try:
        return float(value)
    except (TypeError, ValueError):
        return float("nan")


def _raw_calibration_from_payload(payload: dict, device: CouplingGraph):
    """Parse a calibration payload without validation (the dirty feed)."""
    from ..hardware.faults import RawCalibration

    def _edge(key: str):
        a, b = str(key).split("-")
        return (int(a), int(b))

    return RawCalibration(
        coupling=device,
        cnot_error={
            _edge(k): _maybe_float(v)
            for k, v in payload.get("cnot_error", {}).items()
        },
        single_qubit_error={
            int(q): _maybe_float(v)
            for q, v in payload.get("single_qubit_error", {}).items()
        },
        readout_error={
            int(q): _maybe_float(v)
            for q, v in payload.get("readout_error", {}).items()
        },
        timestamp=str(payload.get("timestamp", "")),
    )


def _calibration_from_payload(
    payload: dict, device: CouplingGraph
) -> Calibration:
    def _edge(key: str):
        a, b = key.split("-")
        return (int(a), int(b))

    return Calibration(
        coupling=device,
        cnot_error={
            _edge(k): float(v) for k, v in payload["cnot_error"].items()
        },
        single_qubit_error={
            int(q): float(v)
            for q, v in payload.get("single_qubit_error", {}).items()
        },
        readout_error={
            int(q): float(v)
            for q, v in payload.get("readout_error", {}).items()
        },
        timestamp=payload.get("timestamp", ""),
    )
