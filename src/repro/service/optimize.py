"""Optimization jobs: the full variational loop as a service workload.

Compile jobs ship circuits, eval jobs ship ARG numbers — but a real
QAOA deployment runs the *classical loop*: pick angles, score them on
the quantum side, iterate.  An :class:`OptimizeJob` makes that loop a
first-class, content-addressed workload: a problem (any
:class:`~repro.qaoa.frontend.Problem` — MaxCut, Ising, or QUBO) crossed
with the optimizer knobs (levels, COBYLA / Nelder-Mead, iteration bound,
restart-population size, seed), executed through
:func:`repro.qaoa.optimizer.optimize_problem` — whose restart population
is scored in one pass of the batched angle-grid fast path
(:func:`repro.sim.fastpath.expectation_batch`) — and flowed through the
same :class:`~repro.service.engine.BatchEngine` for caching, retries and
telemetry (``optimize_ms.*`` per-stage histograms next to the compiler's
``pass_ms.*`` and the evaluator's ``eval_ms.*``).

The cache key is :data:`OPTIMIZE_HASH_VERSION` over the canonical
problem form (:func:`~repro.qaoa.frontend.problem_canonical` — stable
under term reordering) × every optimizer knob; results reuse the
``compiled: null`` envelope, so format-version invalidation and the
sharded cache tiers apply unchanged.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import time
from typing import List, Optional, Sequence

from ..qaoa.frontend import problem_canonical, problem_from_spec
from .engine import BatchEngine, BatchReport
from .job import JobResult, encode_envelope

__all__ = [
    "OPTIMIZE_HASH_VERSION",
    "OptimizeJob",
    "execute_optimize_job",
    "load_optimize_jobs_jsonl",
    "optimize_job_from_dict",
    "run_optimize_batch",
]

#: Bumped whenever the optimize canonical form changes.
OPTIMIZE_HASH_VERSION = 1


@dataclasses.dataclass
class OptimizeJob:
    """One bounded variational-search request.

    Attributes:
        problem: Any :class:`~repro.qaoa.frontend.Problem`.
        p: Number of QAOA levels to optimise over.
        optimizer: Key of
            :data:`repro.qaoa.optimizer.OPTIMIZER_METHODS`
            (``"cobyla"`` or ``"nelder-mead"``).
        maxiter: Iteration bound for the local search.
        restarts: Random-population size scored through the batched fast
            path before the single local search starts.
        opt_seed: Population RNG seed.
        job_id: Free-form correlation label; excluded from the content
            hash.
    """

    problem: object
    p: int = 1
    optimizer: str = "cobyla"
    maxiter: int = 200
    restarts: int = 8
    opt_seed: int = 0
    job_id: Optional[str] = None

    # Proxies so JobResult.to_record / fleet labelling work on any job
    # flavour without caring which one they hold.  Optimization runs on
    # the exact logical fast path — there is no physical device.
    @property
    def device(self) -> str:
        return "statevector"

    @property
    def method(self) -> str:
        return self.optimizer

    @property
    def packing_limit(self) -> Optional[int]:
        return None

    @property
    def seed(self) -> int:
        return self.opt_seed

    @property
    def num_qubits(self) -> int:
        return int(self.problem.num_qubits)

    def canonical(self) -> dict:
        """The hash pre-image: the canonical problem form plus every
        optimizer knob that changes the answer."""
        return {
            "optimize_hash_version": OPTIMIZE_HASH_VERSION,
            "problem": problem_canonical(self.problem),
            "p": int(self.p),
            "optimizer": str(self.optimizer),
            "maxiter": int(self.maxiter),
            "restarts": int(self.restarts),
            "seed": int(self.opt_seed),
        }

    def content_hash(self) -> str:
        """Hex SHA-256 of the canonical form (the cache key)."""
        text = json.dumps(
            self.canonical(), sort_keys=True, separators=(",", ":")
        )
        return hashlib.sha256(text.encode("utf-8")).hexdigest()


def execute_optimize_job(job: OptimizeJob) -> JobResult:
    """Run one bounded variational loop synchronously; never raises for
    job-level faults (mirrors :func:`~repro.service.job.execute_job`)."""
    from ..qaoa.optimizer import optimize_problem
    from ..sim.fastpath import cost_diagonal
    from ..store import flatten_store_events, store_stats

    key = job.content_hash()
    start = time.perf_counter()
    store_before = store_stats()
    try:
        diagonal = cost_diagonal(job.problem)
        result = optimize_problem(
            job.problem,
            p=job.p,
            optimizer=job.optimizer,
            maxiter=job.maxiter,
            restarts=job.restarts,
            seed=job.opt_seed,
            diagonal=diagonal,
        )
        metrics = {
            "gammas": result.gammas,
            "betas": result.betas,
            "expectation": result.expectation,
            "optimum": result.optimum,
            "approximation_ratio": result.approximation_ratio,
            "evaluations": result.evaluations,
            "optimizer": result.optimizer,
            "p": job.p,
            "maxiter": job.maxiter,
            "restarts": job.restarts,
            "num_qubits": job.num_qubits,
            "optimize_trace": [
                {"name": name, "seconds": seconds}
                for name, seconds in result.timings.items()
            ],
            "problem_fingerprint": job.problem.content_fingerprint(),
            "diagonal_fingerprint": diagonal.fingerprint,
        }
        events = flatten_store_events(store_before, store_stats())
        if events:
            metrics["store_events"] = events
        payload = encode_envelope("null", metrics)
    except (KeyError, ValueError) as exc:
        return JobResult(
            job=job,
            key=key,
            ok=False,
            attempts=1,
            latency=time.perf_counter() - start,
            error=str(exc),
            error_kind="invalid",
        )
    except Exception as exc:  # noqa: BLE001 — jobs degrade, batches survive
        return JobResult(
            job=job,
            key=key,
            ok=False,
            attempts=1,
            latency=time.perf_counter() - start,
            error=f"{type(exc).__name__}: {exc}",
            error_kind="exception",
        )
    return JobResult(
        job=job,
        key=key,
        ok=True,
        attempts=1,
        latency=time.perf_counter() - start,
        metrics=metrics,
        payload=payload,
    )


def run_optimize_batch(
    jobs: Sequence[OptimizeJob], **engine_kwargs
) -> BatchReport:
    """One-shot convenience: a :class:`BatchEngine` wired to
    :func:`execute_optimize_job` (cache, retries, telemetry all apply)."""
    return BatchEngine(
        execute_fn=execute_optimize_job, **engine_kwargs
    ).run(jobs)


# ----------------------------------------------------------------------
# JSONL job files
# ----------------------------------------------------------------------
def optimize_job_from_dict(spec: dict) -> OptimizeJob:
    """Build an optimize job from one JSONL line.

    The problem comes from any unified-frontend form (``"qubo"``,
    ``"ising"``, ``"maxcut"`` — see
    :func:`repro.qaoa.frontend.problem_from_spec`) or a generated
    ``"problem"`` family; the knobs from an optional ``"optimize"``
    object::

        {"id": "mis-ring5",
         "qubo": {"matrix": [[1, -1], [-1, 1]]},
         "optimize": {"p": 1, "optimizer": "cobyla", "maxiter": 150,
                      "restarts": 8, "seed": 7}}
    """
    if "problem" in spec:
        import numpy as np

        from ..experiments.harness import make_problem

        prob = spec["problem"]
        problem = make_problem(
            prob["family"],
            int(prob["nodes"]),
            float(prob["param"]),
            np.random.default_rng(int(prob.get("seed", 0))),
        )
    else:
        problem = problem_from_spec(spec)
    knobs = spec.get("optimize", {})
    if not isinstance(knobs, dict):
        raise ValueError(
            f"'optimize' must be an object, got {type(knobs).__name__}"
        )
    return OptimizeJob(
        problem=problem,
        p=int(knobs.get("p", 1)),
        optimizer=str(knobs.get("optimizer", "cobyla")),
        maxiter=int(knobs.get("maxiter", 200)),
        restarts=int(knobs.get("restarts", 8)),
        opt_seed=int(knobs.get("seed", 0)),
        job_id=spec.get("id"),
    )


def load_optimize_jobs_jsonl(lines: Sequence[str]) -> List[OptimizeJob]:
    """Parse a JSONL optimize-job file (blank lines and ``#`` comments
    skipped)."""
    jobs = []
    for lineno, line in enumerate(lines, start=1):
        line = line.strip()
        if not line or line.startswith("#"):
            continue
        try:
            jobs.append(optimize_job_from_dict(json.loads(line)))
        except (ValueError, KeyError, TypeError) as exc:
            raise ValueError(f"bad job on line {lineno}: {exc}") from exc
    return jobs
