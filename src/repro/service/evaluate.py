"""Evaluation jobs: the ARG workload served by the batch engine.

PR 1–4 built a serving layer that only compiles.  The slowest stage of
every figure sweep, though, is *evaluation* — simulating each compiled
circuit noiselessly and noisily for ``r0``/``rh``/ARG.  An
:class:`EvalJob` makes that a first-class service workload: it wraps a
:class:`~repro.service.job.CompileJob` (what to compile) with the
evaluation knobs (shots, trajectories, noise scaling, T2, mode, seed),
executes through :func:`repro.sim.fastpath.evaluate_fast`, and flows
through the same :class:`~repro.service.engine.BatchEngine` —
content-addressed caching (keyed on the compile content × noise model ×
shots), retries, and telemetry (``eval_ms.*`` per-stage histograms next
to the compiler's ``pass_ms.*``).

Results reuse the :func:`~repro.service.job.encode_envelope` format with
``compiled: null`` — evaluations carry numbers, not circuits — so the
existing cache tiers, format-version invalidation, and corrupt-entry
quarantine apply unchanged.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import time
from typing import Optional, Sequence

import numpy as np

from .engine import BatchEngine, BatchReport
from .job import CompileJob, JobResult, encode_envelope, resolve_job_environment

__all__ = [
    "EVAL_HASH_VERSION",
    "EvalJob",
    "execute_eval_job",
    "run_eval_batch",
]

#: Bumped whenever the evaluation canonical form changes.
EVAL_HASH_VERSION = 1


@dataclasses.dataclass
class EvalJob:
    """One ARG-evaluation request.

    Attributes:
        compile_job: What to compile (program, device, method, seed,
            calibration — see :class:`~repro.service.job.CompileJob`).
            The compile seed also seeds any ``"auto"``/random calibration,
            exactly as in a plain compile job.
        shots: Samples per side in ``sampled`` mode.
        trajectories: Noise realisations averaged into ``rh``.
        noise_scale: Multiplier on every error probability (noise
            sensitivity sweeps; 1.0 = calibrated rates).
        t2_ns: Optional T2 dephasing time for the noise model.
        mode: ``"sampled"`` (paper procedure) or ``"exact"``
            (expectation values).
        eval_seed: Seed for sampling and noise draws.
        job_id: Free-form correlation label; excluded from the content
            hash.
    """

    compile_job: CompileJob
    shots: int = 4096
    trajectories: int = 32
    noise_scale: float = 1.0
    t2_ns: Optional[float] = None
    mode: str = "sampled"
    eval_seed: int = 0
    job_id: Optional[str] = None

    # Proxies so JobResult.to_record / _device_label work on either job
    # flavour without caring which one they hold.
    @property
    def device(self):
        return self.compile_job.device

    @property
    def method(self) -> str:
        return self.compile_job.method

    @property
    def packing_limit(self) -> Optional[int]:
        return self.compile_job.packing_limit

    @property
    def seed(self) -> int:
        return self.compile_job.seed

    @property
    def program(self):
        return self.compile_job.program

    def canonical(self) -> dict:
        """The hash pre-image: the wrapped compile job's canonical form
        plus every evaluation knob that changes the numbers."""
        return {
            "eval_hash_version": EVAL_HASH_VERSION,
            "compile": self.compile_job.canonical(),
            "shots": self.shots,
            "trajectories": self.trajectories,
            "noise_scale": repr(float(self.noise_scale)),
            "t2_ns": None if self.t2_ns is None else repr(float(self.t2_ns)),
            "mode": self.mode,
            "eval_seed": self.eval_seed,
        }

    def content_hash(self) -> str:
        """Hex SHA-256 of the canonical form (the cache key)."""
        text = json.dumps(
            self.canonical(), sort_keys=True, separators=(",", ":")
        )
        return hashlib.sha256(text.encode("utf-8")).hexdigest()


def execute_eval_job(job: EvalJob) -> JobResult:
    """Compile and evaluate one job synchronously; never raises for
    job-level faults (mirrors :func:`~repro.service.job.execute_job`)."""
    from ..compiler.flow import compile_with_method
    from ..compiler.metrics import success_probability
    from ..hardware.target import intern_target
    from ..sim.fastpath import cost_diagonal, evaluate_fast
    from ..sim.noise import NoiseModel
    from ..store import flatten_store_events, store_stats

    key = job.content_hash()
    start = time.perf_counter()
    store_before = store_stats()
    try:
        cjob = job.compile_job
        device, calibration, warnings = resolve_job_environment(cjob)
        target = intern_target(device, calibration, warnings=tuple(warnings))
        compiled = compile_with_method(
            cjob.program,
            target,
            cjob.method,
            packing_limit=cjob.packing_limit,
            rng=np.random.default_rng(cjob.seed),
            router=cjob.router,
        )
        compiled.warnings = warnings + compiled.warnings

        if calibration is not None:
            noise = NoiseModel.from_calibration(calibration, t2_ns=job.t2_ns)
        else:
            noise = NoiseModel.ideal(device.num_qubits)
            if job.t2_ns is not None:
                noise = dataclasses.replace(noise, t2_ns=float(job.t2_ns))
        if job.noise_scale != 1.0:
            noise = noise.scaled(job.noise_scale)

        outcome = evaluate_fast(
            compiled,
            noise=noise,
            shots=job.shots,
            trajectories=job.trajectories,
            rng=np.random.default_rng(job.eval_seed),
            mode=job.mode,
        )
        metrics = {
            "r0": outcome.r0,
            "rh": outcome.rh,
            "arg": outcome.arg,
            "shots": outcome.shots,
            "trajectories": outcome.trajectories,
            "mode": outcome.mode,
            "fastpath": outcome.fastpath,
            "fastpath_reason": outcome.reason,
            "noise_scale": job.noise_scale,
            "t2_ns": job.t2_ns,
            "swap_count": compiled.swap_count,
            "compile_time": compiled.compile_time,
            "success_probability": (
                success_probability(compiled.circuit, calibration)
                if calibration is not None
                else None
            ),
            "eval_trace": [
                {"name": name, "seconds": seconds}
                for name, seconds in outcome.timings.items()
            ],
            "pass_trace": [r.to_dict() for r in compiled.pass_trace],
            "warnings": list(compiled.warnings),
            "target_fingerprint": compiled.target_fingerprint,
            "diagonal_fingerprint": cost_diagonal(cjob.program).fingerprint,
        }
        events = flatten_store_events(store_before, store_stats())
        if events:
            metrics["store_events"] = events
        payload = encode_envelope("null", metrics)
    except (KeyError, ValueError) as exc:
        return JobResult(
            job=job,
            key=key,
            ok=False,
            attempts=1,
            latency=time.perf_counter() - start,
            error=str(exc),
            error_kind="invalid",
        )
    except Exception as exc:  # noqa: BLE001 — jobs degrade, batches survive
        return JobResult(
            job=job,
            key=key,
            ok=False,
            attempts=1,
            latency=time.perf_counter() - start,
            error=f"{type(exc).__name__}: {exc}",
            error_kind="exception",
        )
    return JobResult(
        job=job,
        key=key,
        ok=True,
        attempts=1,
        latency=time.perf_counter() - start,
        metrics=metrics,
        payload=payload,
        warnings=list(compiled.warnings),
    )


def run_eval_batch(jobs: Sequence[EvalJob], **engine_kwargs) -> BatchReport:
    """One-shot convenience: a :class:`BatchEngine` wired to
    :func:`execute_eval_job` (cache, retries, telemetry all apply)."""
    return BatchEngine(execute_fn=execute_eval_job, **engine_kwargs).run(jobs)
