"""The public compilation-method registry.

Named methods used to live in a plain module-level dict
(``repro.compiler.flow.METHOD_PRESETS``) that callers mutated ad hoc to
add flows.  This module replaces that with a small explicit API:

* :func:`register_method` — publish a named
  :class:`~repro.compiler.pipeline.PipelineSpec` so it resolves
  everywhere a method name is accepted (``repro.compile``, the service
  job parser, fleet admission, the CLI ``--method`` choices);
* :func:`available_methods` — the sorted names currently registered;
* :func:`get_method` — name → spec, raising the one canonical
  unknown-method error every entry point reports;
* :func:`unregister_method` — remove a registration (tests, plugins).

The paper's seven methodologies and the two structural methods
(``swap_network``, ``parity``) are registered here at import time, so
the registry is never empty.  ``METHOD_PRESETS`` remains importable as a
mutable mapping *view* over this registry: reads are silent (internal
code iterates it constantly), while direct mutation emits a
``DeprecationWarning`` pointing at :func:`register_method`.
"""

from __future__ import annotations

import warnings
from collections.abc import MutableMapping
from typing import Dict, Iterator, Tuple

from .pipeline import PipelineSpec

__all__ = [
    "register_method",
    "unregister_method",
    "available_methods",
    "get_method",
    "unknown_method_error",
    "method_presets_view",
]

_REGISTRY: Dict[str, PipelineSpec] = {}


def register_method(
    name: str, spec: PipelineSpec, *, overwrite: bool = False
) -> PipelineSpec:
    """Publish ``spec`` under ``name`` in the global method registry.

    Registered names resolve everywhere a method is accepted: the
    :func:`repro.compile` facade, ``compile_with_method``, service job
    parsing, fleet admission, and the CLI ``--method`` choices.

    Args:
        name: Method name (non-empty, no whitespace — it doubles as a
            CLI token and JSONL field).
        spec: The :class:`~repro.compiler.pipeline.PipelineSpec` the
            name resolves to.
        overwrite: Allow replacing an existing registration; without it
            a name collision raises ``ValueError`` so plugins cannot
            silently shadow the paper presets.

    Returns:
        The registered spec (for chaining).
    """
    if not isinstance(name, str) or not name or name != name.strip() or " " in name:
        raise ValueError(f"method name must be a non-empty token, got {name!r}")
    if not isinstance(spec, PipelineSpec):
        raise TypeError(
            f"spec must be a PipelineSpec, got {type(spec).__name__}"
        )
    if name in _REGISTRY and not overwrite:
        raise ValueError(
            f"method {name!r} is already registered; pass overwrite=True "
            f"to replace it"
        )
    _REGISTRY[name] = spec
    return spec


def unregister_method(name: str) -> PipelineSpec:
    """Remove a registration and return its spec (``ValueError`` when
    the name is unknown)."""
    try:
        return _REGISTRY.pop(name)
    except KeyError:
        raise unknown_method_error(name) from None


def available_methods() -> Tuple[str, ...]:
    """Sorted tuple of every registered method name."""
    return tuple(sorted(_REGISTRY))


def unknown_method_error(name) -> ValueError:
    """The canonical unknown-method error — every entry point (api,
    compile_with_method, service parsing, CLI) raises exactly this, so
    users see the same sorted registry listing everywhere."""
    return ValueError(
        f"unknown method {name!r}; options: {sorted(_REGISTRY)}"
    )


def get_method(name: str) -> PipelineSpec:
    """Resolve a registered method name to its spec."""
    try:
        return _REGISTRY[name]
    except KeyError:
        raise unknown_method_error(name) from None


class _MethodPresetsView(MutableMapping):
    """Backwards-compatible mapping view over the registry.

    Reads behave exactly like the old ``METHOD_PRESETS`` dict.  Writes
    still work — existing callers keep functioning — but emit a
    ``DeprecationWarning`` steering them to :func:`register_method`.
    """

    def __getitem__(self, name: str) -> PipelineSpec:
        return _REGISTRY[name]

    def __iter__(self) -> Iterator[str]:
        return iter(_REGISTRY)

    def __len__(self) -> int:
        return len(_REGISTRY)

    def __setitem__(self, name: str, spec: PipelineSpec) -> None:
        warnings.warn(
            "mutating METHOD_PRESETS directly is deprecated; use "
            "repro.compiler.register_method(name, spec)",
            DeprecationWarning,
            stacklevel=2,
        )
        register_method(name, spec, overwrite=True)

    def __delitem__(self, name: str) -> None:
        warnings.warn(
            "mutating METHOD_PRESETS directly is deprecated; use "
            "repro.compiler.unregister_method(name)",
            DeprecationWarning,
            stacklevel=2,
        )
        unregister_method(name)

    def __repr__(self) -> str:
        return f"MethodPresets({dict(_REGISTRY)!r})"


_VIEW = _MethodPresetsView()


def method_presets_view() -> _MethodPresetsView:
    """The shared ``METHOD_PRESETS`` view instance."""
    return _VIEW


# ----------------------------------------------------------------------
# built-in registrations
# ----------------------------------------------------------------------
# The paper's named methodologies (Figure 2)...
register_method("naive", PipelineSpec(placement="random", ordering="random"))
register_method("greedy_v", PipelineSpec(placement="greedy_v", ordering="random"))
register_method("greedy_e", PipelineSpec(placement="greedy_e", ordering="random"))
register_method("qaim", PipelineSpec(placement="qaim", ordering="random"))
register_method("ip", PipelineSpec(placement="qaim", ordering="ip"))
register_method("ic", PipelineSpec(placement="qaim", ordering="ic"))
register_method("vic", PipelineSpec(placement="qaim", ordering="vic"))
# ...and the structural methods: the odd/even SWAP-network on a linear
# chain embedding, and the LHZ parity encoding.
register_method(
    "swap_network", PipelineSpec(placement="linear", ordering="swap_network")
)
register_method("parity", PipelineSpec(placement="lhz", ordering="parity"))
