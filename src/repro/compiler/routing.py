"""SWAP routing: making two-qubit gates coupling-compliant.

The routing primitive the backend compiler uses: given the current
:class:`~repro.compiler.mapping.Mapping` and a two-qubit gate between logical
qubits ``(a, b)``, walk a shortest path between their physical homes and emit
SWAPs until the pair is adjacent.  The path is chosen by a distance matrix —
hop distances for the baseline/IC behaviour, reliability-weighted distances
for the variation-aware behaviour (VIC / VQM-style routing, Section III).

SWAPs are emitted from *both ends toward the middle*, which for a path of
``k`` intermediate hops needs ``k`` SWAPs but splits the movement so neither
qubit travels the whole way — the standard choice in layer-partitioning
compilers.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

import numpy as np

from ..circuits.gates import Instruction
from ..hardware.coupling import CouplingGraph
from .mapping import Mapping

__all__ = ["route_pair", "RoutingResult"]


class RoutingResult:
    """Outcome of routing one logical pair.

    Attributes:
        swaps: SWAP instructions on *physical* qubit indices, in order.
        physical_pair: The adjacent physical qubits the gate lands on.
    """

    def __init__(
        self, swaps: List[Instruction], physical_pair: Tuple[int, int]
    ) -> None:
        self.swaps = swaps
        self.physical_pair = physical_pair

    @property
    def num_swaps(self) -> int:
        """Number of SWAP gates inserted."""
        return len(self.swaps)


def route_pair(
    coupling: CouplingGraph,
    mapping: Mapping,
    logical_a: int,
    logical_b: int,
    dist: Optional[np.ndarray] = None,
    path_oracle=None,
) -> RoutingResult:
    """Insert SWAPs until ``logical_a`` and ``logical_b`` are adjacent.

    Mutates ``mapping`` in place (each emitted SWAP is applied to it) and
    returns the SWAPs plus the final adjacent physical pair.

    Args:
        coupling: Device topology.
        mapping: Current logical-to-physical mapping (mutated).
        logical_a: First logical endpoint.
        logical_b: Second logical endpoint.
        dist: Optional distance matrix steering path choice (e.g. the
            reliability-weighted matrix for variation-aware routing).
            Defaults to hop distances.
        path_oracle: Optional ``(pa, pb) -> path`` callable used instead
            of reconstructing the path from ``dist`` — e.g. the memoized
            :meth:`repro.hardware.target.Target.shortest_path` cache.
            Must agree with ``dist`` on the metric it encodes.
    """
    pa, pb = mapping.physical_pair(logical_a, logical_b)
    if coupling.has_edge(pa, pb):
        return RoutingResult([], (pa, pb))

    if path_oracle is not None:
        path = path_oracle(pa, pb)
    else:
        path = coupling.shortest_path(pa, pb, dist=dist)
    swaps: List[Instruction] = []
    # Move both endpoints inward along the path until adjacent.
    left, right = 0, len(path) - 1
    move_left = True  # alternate ends so movement is balanced
    while right - left > 1:
        if move_left:
            a, b = path[left], path[left + 1]
            left += 1
        else:
            a, b = path[right], path[right - 1]
            right -= 1
        move_left = not move_left
        swaps.append(Instruction("swap", (a, b)))
        mapping.apply_swap(a, b)
    final_pair = (path[left], path[right])
    if not coupling.has_edge(*final_pair):
        raise RuntimeError(
            f"routing bug: pair {final_pair} not adjacent after SWAPs"
        )
    return RoutingResult(swaps, final_pair)
