"""Logical-to-physical qubit mapping.

A :class:`Mapping` tracks where each logical (program) qubit currently lives
on the device.  It is the mutable state every routing step updates: inserting
a SWAP on physical qubits ``(p, q)`` exchanges whatever logical qubits sit
there.  The paper's IC/VIC methods hinge on observing exactly these dynamic
changes between layers (Section IV-C).
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

__all__ = ["Mapping"]


class Mapping:
    """A partial injection from logical qubits onto physical qubits.

    Args:
        logical_to_physical: Initial placement; logical qubits are the keys.
        num_physical: Total physical qubits on the device (placements must
            stay in range).
    """

    def __init__(
        self, logical_to_physical: Dict[int, int], num_physical: int
    ) -> None:
        self.num_physical = int(num_physical)
        self._l2p: Dict[int, int] = {}
        self._p2l: Dict[int, int] = {}
        for logical, physical in logical_to_physical.items():
            self.place(int(logical), int(physical))

    # ------------------------------------------------------------------
    # construction helpers
    # ------------------------------------------------------------------
    @classmethod
    def trivial(cls, num_logical: int, num_physical: int) -> "Mapping":
        """Identity placement: logical ``i`` on physical ``i``."""
        if num_logical > num_physical:
            raise ValueError(
                f"{num_logical} logical qubits cannot fit on "
                f"{num_physical} physical qubits"
            )
        return cls({i: i for i in range(num_logical)}, num_physical)

    @classmethod
    def random(
        cls, num_logical: int, num_physical: int, rng
    ) -> "Mapping":
        """Uniformly random placement (the NAIVE flow's initial mapping)."""
        if num_logical > num_physical:
            raise ValueError(
                f"{num_logical} logical qubits cannot fit on "
                f"{num_physical} physical qubits"
            )
        physical = rng.permutation(num_physical)[:num_logical]
        return cls(
            {i: int(p) for i, p in enumerate(physical)}, num_physical
        )

    # ------------------------------------------------------------------
    # mutation
    # ------------------------------------------------------------------
    def place(self, logical: int, physical: int) -> None:
        """Assign ``logical`` to ``physical`` (both must be free)."""
        if not 0 <= physical < self.num_physical:
            raise ValueError(f"physical qubit {physical} out of range")
        if logical in self._l2p:
            raise ValueError(f"logical qubit {logical} already placed")
        if physical in self._p2l:
            raise ValueError(f"physical qubit {physical} already occupied")
        self._l2p[logical] = physical
        self._p2l[physical] = logical

    def apply_swap(self, phys_a: int, phys_b: int) -> None:
        """Exchange the logical occupants of two physical qubits.

        Either side may be unoccupied — SWAPs routinely move a logical qubit
        through an empty physical qubit.
        """
        for p in (phys_a, phys_b):
            if not 0 <= p < self.num_physical:
                raise ValueError(f"physical qubit {p} out of range")
        la = self._p2l.pop(phys_a, None)
        lb = self._p2l.pop(phys_b, None)
        if la is not None:
            self._p2l[phys_b] = la
            self._l2p[la] = phys_b
        if lb is not None:
            self._p2l[phys_a] = lb
            self._l2p[lb] = phys_a

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def physical(self, logical: int) -> int:
        """Current physical location of a logical qubit."""
        try:
            return self._l2p[logical]
        except KeyError:
            raise KeyError(f"logical qubit {logical} is not placed") from None

    def logical_at(self, physical: int) -> Optional[int]:
        """Logical occupant of a physical qubit, or ``None`` if empty."""
        return self._p2l.get(physical)

    def is_placed(self, logical: int) -> bool:
        """Whether ``logical`` has a physical home."""
        return logical in self._l2p

    def occupied_physical(self) -> Tuple[int, ...]:
        """Sorted tuple of physical qubits hosting a logical qubit."""
        return tuple(sorted(self._p2l))

    def free_physical(self) -> Tuple[int, ...]:
        """Sorted tuple of unoccupied physical qubits."""
        occupied = set(self._p2l)
        return tuple(
            p for p in range(self.num_physical) if p not in occupied
        )

    def logical_qubits(self) -> Tuple[int, ...]:
        """Sorted tuple of placed logical qubits."""
        return tuple(sorted(self._l2p))

    def as_dict(self) -> Dict[int, int]:
        """Snapshot of the logical -> physical map."""
        return dict(self._l2p)

    def copy(self) -> "Mapping":
        """Independent copy."""
        return Mapping(self._l2p, self.num_physical)

    def physical_pair(self, logical_a: int, logical_b: int) -> Tuple[int, int]:
        """Physical endpoints of a logical pair (routing convenience)."""
        return self.physical(logical_a), self.physical(logical_b)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Mapping):
            return NotImplemented
        return (
            self.num_physical == other.num_physical
            and self._l2p == other._l2p
        )

    def __len__(self) -> int:
        return len(self._l2p)

    def __repr__(self) -> str:
        pairs = ", ".join(
            f"q{l}->p{p}" for l, p in sorted(self._l2p.items())
        )
        return f"Mapping({pairs})"
