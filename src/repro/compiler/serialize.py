"""JSON serialisation of compiled results.

A compiled circuit is only useful downstream together with its provenance —
which device it targets, where each logical qubit starts and ends, what the
flow cost.  This module persists the whole :class:`CompiledQAOA` (or
:class:`CompiledCircuit`) as a self-contained JSON document and restores it,
so compilation results can be cached, diffed, shipped to an execution
service, or inspected offline.

The circuit itself is embedded as OpenQASM 2.0 (see
:mod:`repro.circuits.qasm`), keeping the payload readable by other tools.
"""

from __future__ import annotations

import json
from typing import Union

from ..circuits.qasm import dumps as qasm_dumps
from ..circuits.qasm import loads as qasm_loads
from ..hardware.coupling import CouplingGraph
from ..qaoa.problems import Level, QAOAProgram
from .backend import CompiledCircuit
from .flow import CompiledQAOA
from .pipeline import PassRecord

__all__ = ["to_json", "from_json", "FORMAT_VERSION", "COMPAT_READ_VERSIONS"]

#: Version stamped into every payload.  Bump when the payload layout
#: changes so stale caches invalidate cleanly.
#: v2: QAOA payloads carry the per-pass ``pass_trace`` (pipeline refactor).
#: v3: QAOA payloads carry the ``target_fingerprint`` (Target layer).
#: v4: QAOA payloads carry ``encoding``/``encoding_info`` (parity method).
FORMAT_VERSION = 4

#: Versions :func:`from_json` can restore.  v2/v3 payloads are a strict
#: subset of v4 (they lack the fingerprint and/or encoding fields), so
#: they load with ``target_fingerprint=None`` / ``encoding="direct"``
#: instead of forcing a recompile.
COMPAT_READ_VERSIONS = frozenset({2, 3, 4})

# Backwards-compatible alias (pre-service-layer name).
_FORMAT_VERSION = FORMAT_VERSION


def _coupling_payload(coupling: CouplingGraph) -> dict:
    return {
        "name": coupling.name,
        "num_qubits": coupling.num_qubits,
        "edges": sorted(list(e) for e in coupling.edges),
    }


def _coupling_from(payload: dict) -> CouplingGraph:
    return CouplingGraph(
        payload["num_qubits"],
        [tuple(e) for e in payload["edges"]],
        name=payload["name"],
    )


def to_json(compiled: Union[CompiledQAOA, CompiledCircuit]) -> str:
    """Serialise a compiled result (QAOA flow or raw backend output)."""
    payload = {
        "format_version": _FORMAT_VERSION,
        "kind": "qaoa" if isinstance(compiled, CompiledQAOA) else "circuit",
        "method": compiled.method,
        "coupling": _coupling_payload(compiled.coupling),
        "qasm": qasm_dumps(compiled.circuit),
        "initial_mapping": {
            str(k): v for k, v in compiled.initial_mapping.items()
        },
        "final_mapping": {
            str(k): v for k, v in compiled.final_mapping.items()
        },
        "swap_count": compiled.swap_count,
        "compile_time": compiled.compile_time,
    }
    if isinstance(compiled, CompiledQAOA):
        payload["warnings"] = list(compiled.warnings)
        payload["pass_trace"] = [r.to_dict() for r in compiled.pass_trace]
        payload["target_fingerprint"] = compiled.target_fingerprint
        payload["encoding"] = compiled.encoding
        payload["encoding_info"] = compiled.encoding_info
        program = compiled.program
        payload["program"] = {
            "num_qubits": program.num_qubits,
            "edges": [list(e) for e in program.edges],
            "levels": [[lv.gamma, lv.beta] for lv in program.levels],
            "linear": {str(k): v for k, v in program.linear.items()},
        }
    return json.dumps(payload, indent=2)


def from_json(text: str) -> Union[CompiledQAOA, CompiledCircuit]:
    """Restore a compiled result produced by :func:`to_json`."""
    payload = json.loads(text)
    if not isinstance(payload, dict):
        raise ValueError(
            f"compiled-result payload must be a JSON object, "
            f"got {type(payload).__name__}"
        )
    version = payload.get("format_version")
    if version is None:
        raise ValueError(
            "payload carries no 'format_version' field — it was not "
            "produced by repro.compiler.serialize.to_json"
        )
    if version not in COMPAT_READ_VERSIONS:
        raise ValueError(
            f"unsupported serialisation format version {version!r} "
            f"(this build reads version {FORMAT_VERSION} and compatible "
            f"versions {sorted(COMPAT_READ_VERSIONS)}); recompile the "
            f"circuit or prune the stale cache entry"
        )
    coupling = _coupling_from(payload["coupling"])
    circuit = qasm_loads(payload["qasm"])
    circuit = circuit.remap({}, num_qubits=coupling.num_qubits)
    common = dict(
        circuit=circuit,
        coupling=coupling,
        initial_mapping={
            int(k): v for k, v in payload["initial_mapping"].items()
        },
        final_mapping={
            int(k): v for k, v in payload["final_mapping"].items()
        },
        swap_count=payload["swap_count"],
        compile_time=payload["compile_time"],
        method=payload["method"],
    )
    if payload["kind"] == "qaoa":
        prog = payload["program"]
        program = QAOAProgram(
            num_qubits=prog["num_qubits"],
            edges=[tuple(e) for e in prog["edges"]],
            levels=[Level(g, b) for g, b in prog["levels"]],
            linear={int(k): v for k, v in prog.get("linear", {}).items()},
        )
        fingerprint = payload.get("target_fingerprint")
        result = CompiledQAOA(
            program=program,
            warnings=[str(w) for w in payload.get("warnings", [])],
            pass_trace=[
                PassRecord.from_dict(r)
                for r in payload.get("pass_trace", [])
            ],
            target_fingerprint=(
                str(fingerprint) if fingerprint is not None else None
            ),
            encoding=str(payload.get("encoding", "direct")),
            encoding_info=dict(payload.get("encoding_info") or {}),
            **common,
        )
    else:
        result = CompiledCircuit(**common)
    result.validate()
    return result
