"""Portfolio compilation: run several flow configurations, keep the best.

Two of the paper's own observations motivate this:

* Section V-H: "Compiling the circuits multiple times with different packing
  limits may help to generate circuits with desired circuit depth."
* Section VI's usage directives: IP, IC and VIC have *different* sweet spots
  (depth vs gates vs reliability), so the right flow is workload-dependent.

:func:`compile_portfolio` runs a set of candidate configurations (method ×
packing limit × seed), scores each compiled circuit with a pluggable
objective, and returns the winner plus the full scoreboard.  Because every
flow is milliseconds-fast, a portfolio of dozens of configurations is still
far cheaper than one run of the planner-style compilers the paper compares
against.

The candidate grid is submitted through the service layer's
:class:`~repro.service.engine.BatchEngine`, so a portfolio gets result
caching and process-pool parallelism for free: pass ``workers`` to fan the
grid out, and/or a shared :class:`~repro.service.cache.ResultCache` so
repeated portfolios over the same program only compile new configurations.
"""

from __future__ import annotations

import dataclasses
from typing import Callable, List, Optional, Sequence, Tuple

from ..hardware.calibration import Calibration
from ..hardware.coupling import CouplingGraph
from ..qaoa.problems import QAOAProgram
from .flow import CompiledQAOA
from .metrics import success_probability

__all__ = [
    "PortfolioEntry",
    "PortfolioResult",
    "compile_portfolio",
    "depth_objective",
    "gate_count_objective",
    "reliability_objective",
]


def depth_objective(compiled: CompiledQAOA) -> float:
    """Native depth with gate-count tie-break (lower = better)."""
    return compiled.depth() * 1e6 + compiled.gate_count()


def gate_count_objective(compiled: CompiledQAOA) -> float:
    """Native gate count with depth tie-break (lower = better)."""
    return compiled.gate_count() * 1e6 + compiled.depth()


def reliability_objective(calibration: Calibration) -> Callable[[CompiledQAOA], float]:
    """Negated success probability (lower = better) under a calibration."""

    def objective(compiled: CompiledQAOA) -> float:
        return -success_probability(compiled.native(), calibration)

    return objective


@dataclasses.dataclass
class PortfolioEntry:
    """One candidate configuration's outcome.

    Attributes:
        method: Flow preset name.
        packing_limit: Layer-packing cap used (None = unlimited).
        seed: Seed of the configuration's rng.
        score: Objective value (lower = better).
        compiled: The compiled circuit.
    """

    method: str
    packing_limit: Optional[int]
    seed: int
    score: float
    compiled: CompiledQAOA


@dataclasses.dataclass
class PortfolioResult:
    """Winner plus scoreboard of a portfolio run."""

    best: PortfolioEntry
    entries: List[PortfolioEntry]

    def scoreboard(self) -> List[Tuple[str, Optional[int], int, float]]:
        """``(method, packing_limit, seed, score)`` rows, best first."""
        return [
            (e.method, e.packing_limit, e.seed, e.score)
            for e in sorted(self.entries, key=lambda e: e.score)
        ]


def compile_portfolio(
    program: QAOAProgram,
    coupling: CouplingGraph,
    methods: Sequence[str] = ("ip", "ic"),
    packing_limits: Sequence[Optional[int]] = (None,),
    seeds: Sequence[int] = (0, 1, 2),
    objective: Callable[[CompiledQAOA], float] = depth_objective,
    calibration: Optional[Calibration] = None,
    router: str = "layered",
    workers: int = 0,
    cache=None,
    engine=None,
) -> PortfolioResult:
    """Compile every (method, packing_limit, seed) combination; keep the best.

    The grid is executed through the service layer's batch engine.  Each
    candidate compiles with ``np.random.default_rng(seed)``, exactly as the
    pre-service direct loop did, so a fixed-seed portfolio is reproducible
    regardless of ``workers`` or cache state.

    Args:
        program: The QAOA program.
        coupling: Target device.
        methods: Flow presets to try (``vic`` requires ``calibration``).
        packing_limits: Layer caps to sweep (``None`` = unlimited).
        seeds: Random seeds per configuration — flows are stochastic in
            their tie-breaks, so seeds are free diversity.
        objective: Scoring function, lower = better (see the provided
            ``depth_objective`` / ``gate_count_objective`` /
            ``reliability_objective``).
        calibration: Needed when ``"vic"`` is among the methods or the
            objective is reliability-based.
        router: Backend router for every candidate.
        workers: Batch-engine process-pool size (0 = serial in-process).
        cache: Optional :class:`~repro.service.cache.ResultCache` shared
            across portfolio calls.
        engine: A pre-configured
            :class:`~repro.service.engine.BatchEngine` to submit through
            (overrides ``workers``/``cache``).

    Returns:
        A :class:`PortfolioResult`; ``result.best.compiled`` is the winner.

    Raises:
        RuntimeError: When any candidate configuration fails to compile —
            a portfolio's scoreboard must be complete to be comparable.
    """
    if not methods or not seeds or not packing_limits:
        raise ValueError("methods, packing_limits and seeds must be non-empty")
    from ..service.engine import BatchEngine
    from ..service.job import CompileJob

    grid = [
        (method, limit, seed)
        for method in methods
        for limit in packing_limits
        for seed in seeds
    ]
    jobs = [
        CompileJob(
            program=program,
            device=coupling,
            method=method,
            packing_limit=limit,
            router=router,
            seed=seed,
            calibration=calibration,
        )
        for method, limit, seed in grid
    ]
    if engine is None:
        engine = BatchEngine(workers=workers, cache=cache)
    report = engine.run(jobs)
    entries: List[PortfolioEntry] = []
    for (method, limit, seed), result in zip(grid, report.results):
        if not result.ok:
            raise RuntimeError(
                f"portfolio candidate {method}/limit={limit}/seed={seed} "
                f"failed ({result.error_kind}): {result.error}"
            )
        compiled = result.compiled()
        entries.append(
            PortfolioEntry(
                method=method,
                packing_limit=limit,
                seed=seed,
                score=float(objective(compiled)),
                compiled=compiled,
            )
        )
    best = min(entries, key=lambda e: e.score)
    return PortfolioResult(best=best, entries=entries)
