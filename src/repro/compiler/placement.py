"""Initial-placement strategies: trivial, random, GreedyV, GreedyE.

These are the baselines QAIM is evaluated against (Section III, "Initial
Mapping", and Section V-C):

* **trivial** — logical ``i`` on physical ``i``;
* **random** — uniformly random placement (the NAIVE flow);
* **GreedyV** (Murali et al., ASPLOS'19) — heaviest logical qubit (most
  operations) onto the highest-degree physical qubit, repeatedly;
* **GreedyE** (same work) — heaviest program *pair* onto the heaviest
  hardware edge.  The paper points out this is a poor fit for QAOA, where
  every pair interacts exactly once per level — we implement it so that
  observation is testable.

All strategies share the signature
``(pairs, num_logical, coupling, rng) -> Mapping`` so flows can swap them
freely; ``pairs`` is the list of logical CPHASE endpoints.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..hardware.coupling import CouplingGraph
from ..hardware.profiling import program_profile
from .mapping import Mapping

__all__ = [
    "trivial_placement",
    "random_placement",
    "greedy_v_placement",
    "greedy_e_placement",
    "PlacementFn",
]

Pair = Tuple[int, int]
PlacementFn = Callable[
    [Sequence[Pair], int, CouplingGraph, Optional[np.random.Generator]],
    Mapping,
]


def _check_fits(num_logical: int, coupling: CouplingGraph) -> None:
    if num_logical > coupling.num_qubits:
        raise ValueError(
            f"{num_logical} logical qubits do not fit on "
            f"{coupling.num_qubits}-qubit device {coupling.name}"
        )


def trivial_placement(
    pairs: Sequence[Pair],
    num_logical: int,
    coupling: CouplingGraph,
    rng: Optional[np.random.Generator] = None,
) -> Mapping:
    """Identity placement (logical ``i`` -> physical ``i``)."""
    _check_fits(num_logical, coupling)
    return Mapping.trivial(num_logical, coupling.num_qubits)


def random_placement(
    pairs: Sequence[Pair],
    num_logical: int,
    coupling: CouplingGraph,
    rng: Optional[np.random.Generator] = None,
) -> Mapping:
    """Uniformly random placement — the NAIVE flow's initial mapping."""
    _check_fits(num_logical, coupling)
    rng = rng if rng is not None else np.random.default_rng()
    return Mapping.random(num_logical, coupling.num_qubits, rng)


def _sorted_logical_by_weight(
    pairs: Sequence[Pair], num_logical: int
) -> List[int]:
    """Logical qubits heaviest-first (by CPHASE count), index-tiebroken."""
    profile = program_profile(pairs)
    return sorted(
        range(num_logical), key=lambda q: (-profile.get(q, 0), q)
    )


def greedy_v_placement(
    pairs: Sequence[Pair],
    num_logical: int,
    coupling: CouplingGraph,
    rng: Optional[np.random.Generator] = None,
) -> Mapping:
    """GreedyV: heaviest logical qubit onto highest-degree physical qubit.

    Ties on degree break toward the lower physical index (deterministic),
    matching the descending-sort formulation of the original heuristic.
    """
    _check_fits(num_logical, coupling)
    logical_order = _sorted_logical_by_weight(pairs, num_logical)
    physical_order = sorted(
        range(coupling.num_qubits), key=lambda p: (-coupling.degree(p), p)
    )
    mapping = Mapping({}, coupling.num_qubits)
    for logical, physical in zip(logical_order, physical_order):
        mapping.place(logical, physical)
    return mapping


def greedy_e_placement(
    pairs: Sequence[Pair],
    num_logical: int,
    coupling: CouplingGraph,
    rng: Optional[np.random.Generator] = None,
) -> Mapping:
    """GreedyE: heaviest program pair onto the heaviest free hardware edge.

    Pair weight is the number of CPHASE gates between the two logical qubits
    (for single-level QAOA this is 1 for every pair — the degeneracy the
    paper calls out).  Hardware-edge weight is the endpoint degree sum.
    Leftover logical qubits go onto the highest-degree free physical qubits.
    """
    _check_fits(num_logical, coupling)
    weight: Dict[Pair, int] = {}
    for a, b in pairs:
        key = (min(a, b), max(a, b))
        weight[key] = weight.get(key, 0) + 1
    ordered_pairs = sorted(weight, key=lambda e: (-weight[e], e))

    def edge_weight(edge: Pair) -> int:
        return coupling.degree(edge[0]) + coupling.degree(edge[1])

    mapping = Mapping({}, coupling.num_qubits)
    for a, b in ordered_pairs:
        placed_a, placed_b = mapping.is_placed(a), mapping.is_placed(b)
        if placed_a and placed_b:
            continue
        if not placed_a and not placed_b:
            free_edges = [
                e
                for e in coupling.edges
                if mapping.logical_at(e[0]) is None
                and mapping.logical_at(e[1]) is None
            ]
            if free_edges:
                best = max(free_edges, key=lambda e: (edge_weight(e), -e[0], -e[1]))
                mapping.place(a, best[0])
                mapping.place(b, best[1])
                continue
            # No fully free edge: fall through to per-qubit placement.
            placed_a = _place_on_best_free(mapping, coupling, a)
            placed_b = _place_on_best_free(mapping, coupling, b)
            continue
        # Exactly one endpoint placed: put the other next to it if possible.
        placed, unplaced = (a, b) if placed_a else (b, a)
        anchor = mapping.physical(placed)
        free_neighbours = [
            p for p in coupling.neighbours(anchor) if mapping.logical_at(p) is None
        ]
        if free_neighbours:
            best = max(free_neighbours, key=lambda p: (coupling.degree(p), -p))
            mapping.place(unplaced, best)
        else:
            _place_on_best_free(mapping, coupling, unplaced)

    for logical in range(num_logical):
        if not mapping.is_placed(logical):
            _place_on_best_free(mapping, coupling, logical)
    return mapping


def _place_on_best_free(
    mapping: Mapping, coupling: CouplingGraph, logical: int
) -> bool:
    """Place ``logical`` on the highest-degree free physical qubit."""
    free = mapping.free_physical()
    if not free:
        raise RuntimeError("no free physical qubits left")
    best = max(free, key=lambda p: (coupling.degree(p), -p))
    mapping.place(logical, best)
    return True
