"""A second conventional backend: SABRE-style lookahead SWAP routing.

The paper positions its methodologies as front-ends that "can be integrated
into any conventional compiler" (Figure 2's backend box).  Our default
backend (:class:`~repro.compiler.backend.ConventionalBackend`) is the
layer-partitioning style of Zulehner et al. / qiskit's swap mapper.  This
module provides the other mainstream style — the heuristic search of Li,
Ding & Xie's SABRE (ASPLOS'19), which the paper's Section III discusses —
so the front-ends can be exercised against two genuinely different routers:

* maintain a *front layer* of gates whose dependencies are satisfied;
* execute everything executable (single-qubit gates always, two-qubit gates
  when their endpoints are adjacent);
* when stuck, score every candidate SWAP (edges touching a front-layer
  qubit) by the resulting total distance of the front layer plus a
  discounted look-ahead over upcoming gates, with a decay penalty on
  recently swapped qubits to avoid thrashing; apply the best SWAP.

The class intentionally mirrors :class:`ConventionalBackend`'s interface
(``compile`` / ``continue_compile``) so IC/VIC can drive it unchanged.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Set, Tuple

import numpy as np

from ..circuits import QuantumCircuit
from ..circuits.gates import Instruction
from ..hardware.coupling import CouplingGraph
from .backend import CompiledCircuit
from .mapping import Mapping

__all__ = ["SabreBackend"]


class SabreBackend:
    """Lookahead-heuristic SWAP router with the ConventionalBackend API.

    Args:
        coupling: Target device.
        distance_matrix: Distance table steering the heuristic (hop
            distances by default; pass a reliability-weighted table for
            variation-aware routing).
        lookahead: Number of upcoming two-qubit gates included in the
            extended set.
        lookahead_weight: Relative weight of the extended set's distance.
        decay_factor: Multiplicative penalty applied to SWAPs touching
            recently swapped qubits (anti-thrashing).
        decay_reset: Number of SWAPs after which decay penalties reset.
    """

    def __init__(
        self,
        coupling: CouplingGraph,
        distance_matrix: Optional[np.ndarray] = None,
        lookahead: int = 20,
        lookahead_weight: float = 0.5,
        decay_factor: float = 0.001,
        decay_reset: int = 5,
    ) -> None:
        self.coupling = coupling
        self.distance_matrix = (
            distance_matrix
            if distance_matrix is not None
            else coupling.distance_matrix()
        )
        self.lookahead = lookahead
        self.lookahead_weight = lookahead_weight
        self.decay_factor = decay_factor
        self.decay_reset = decay_reset

    # ------------------------------------------------------------------
    # public API (mirrors ConventionalBackend)
    # ------------------------------------------------------------------
    def compile(
        self,
        circuit: QuantumCircuit,
        mapping: Mapping,
        name: Optional[str] = None,
    ) -> CompiledCircuit:
        """Route ``circuit`` starting from ``mapping`` (not mutated)."""
        working = mapping.copy()
        initial = working.as_dict()
        out = QuantumCircuit(
            self.coupling.num_qubits,
            name=name or f"{circuit.name}@{self.coupling.name}(sabre)",
        )
        swap_count = self.continue_compile(circuit, working, out)
        result = CompiledCircuit(
            circuit=out,
            coupling=self.coupling,
            initial_mapping=initial,
            final_mapping=working.as_dict(),
            swap_count=swap_count,
            method="sabre",
        )
        result.validate()
        return result

    def continue_compile(
        self,
        circuit: QuantumCircuit,
        mapping: Mapping,
        out: QuantumCircuit,
    ) -> int:
        """Append the routed ``circuit`` to ``out``; mutates ``mapping``."""
        pending: List[Instruction] = [
            inst for inst in circuit if not inst.is_directive
        ]
        # Dependency tracking: index of the next unexecuted gate per qubit.
        swap_count = 0
        executed = [False] * len(pending)
        # Predecessor structure: gate i depends on the latest earlier gate
        # sharing any qubit.
        preds: List[Set[int]] = [set() for _ in pending]
        last_on: Dict[int, int] = {}
        for i, inst in enumerate(pending):
            for q in inst.qubits:
                if q in last_on:
                    preds[i].add(last_on[q])
                last_on[q] = i

        remaining_preds = [set(p) for p in preds]
        succs: List[Set[int]] = [set() for _ in pending]
        for i, p in enumerate(preds):
            for j in p:
                succs[j].add(i)

        front: Set[int] = {
            i for i, p in enumerate(remaining_preds) if not p
        }
        decay = np.ones(self.coupling.num_qubits)
        swaps_since_reset = 0
        guard = 0
        max_iters = 10000 * (len(pending) + 1)

        def executable(i: int) -> bool:
            inst = pending[i]
            if len(inst.qubits) == 1:
                return True
            pa, pb = (
                mapping.physical(inst.qubits[0]),
                mapping.physical(inst.qubits[1]),
            )
            return self.coupling.has_edge(pa, pb)

        def emit(i: int) -> None:
            inst = pending[i]
            physical = tuple(mapping.physical(q) for q in inst.qubits)
            out.append(Instruction(inst.name, physical, inst.params))
            executed[i] = True
            front.discard(i)
            for j in succs[i]:
                remaining_preds[j].discard(i)
                if not remaining_preds[j]:
                    front.add(j)

        while front:
            guard += 1
            if guard > max_iters:
                raise RuntimeError("SABRE routing failed to converge")
            ready = [i for i in sorted(front) if executable(i)]
            if ready:
                for i in ready:
                    emit(i)
                continue
            # Stuck: every front gate is a non-adjacent two-qubit gate.
            swap = self._choose_swap(pending, front, succs, mapping, decay)
            out.append(Instruction("swap", swap))
            mapping.apply_swap(*swap)
            swap_count += 1
            decay[list(swap)] += self.decay_factor
            swaps_since_reset += 1
            if swaps_since_reset >= self.decay_reset:
                decay[:] = 1.0
                swaps_since_reset = 0
        return swap_count

    # ------------------------------------------------------------------
    def _extended_set(
        self,
        pending: Sequence[Instruction],
        front: Set[int],
        succs: Sequence[Set[int]],
    ) -> List[int]:
        """Up to ``lookahead`` upcoming two-qubit gates past the front."""
        out: List[int] = []
        frontier = sorted(front)
        seen = set(frontier)
        while frontier and len(out) < self.lookahead:
            nxt: List[int] = []
            for i in frontier:
                for j in sorted(succs[i]):
                    if j in seen:
                        continue
                    seen.add(j)
                    nxt.append(j)
                    if len(pending[j].qubits) == 2:
                        out.append(j)
                        if len(out) >= self.lookahead:
                            break
                if len(out) >= self.lookahead:
                    break
            frontier = nxt
        return out

    def _choose_swap(
        self,
        pending: Sequence[Instruction],
        front: Set[int],
        succs: Sequence[Set[int]],
        mapping: Mapping,
        decay: np.ndarray,
    ) -> Tuple[int, int]:
        """Score candidate SWAPs; return the best edge."""
        dist = self.distance_matrix
        front_gates = [
            pending[i] for i in sorted(front) if len(pending[i].qubits) == 2
        ]
        if not front_gates:
            raise RuntimeError("SABRE stuck without two-qubit front gates")
        ext_gates = [
            pending[i]
            for i in self._extended_set(pending, front, succs)
        ]
        involved_physical = {
            mapping.physical(q) for g in front_gates for q in g.qubits
        }
        candidates = [
            e
            for e in sorted(self.coupling.edges)
            if e[0] in involved_physical or e[1] in involved_physical
        ]

        def total_distance(gates, swapped: Tuple[int, int]) -> float:
            a, b = swapped

            def phys(q: int) -> int:
                p = mapping.physical(q)
                if p == a:
                    return b
                if p == b:
                    return a
                return p

            return sum(
                float(dist[phys(g.qubits[0]), phys(g.qubits[1])])
                for g in gates
            )

        best_edge = None
        best_score = None
        for edge in candidates:
            score = total_distance(front_gates, edge)
            if ext_gates:
                score += (
                    self.lookahead_weight
                    * total_distance(ext_gates, edge)
                    / len(ext_gates)
                )
            score *= max(decay[edge[0]], decay[edge[1]])
            if best_score is None or score < best_score - 1e-12:
                best_score = score
                best_edge = edge
        assert best_edge is not None
        return best_edge
