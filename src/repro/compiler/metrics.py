"""Circuit-quality metrics (Section V-A).

The four metrics the paper reports for every compiled circuit:

* **depth** — native-basis critical-path length;
* **gate count** — native-basis total gates;
* **compilation time** — captured by the flows themselves;
* **success probability** — the product of per-gate success rates under a
  calibration (Section II: "the product of the success probabilities of
  individual gates").

Plus the derived counters useful in analysis: CNOT count and SWAP count.
"""

from __future__ import annotations

import dataclasses
from typing import Optional

from ..circuits import IBM_BASIS, QuantumCircuit, decompose_to_basis
from ..hardware.calibration import Calibration

__all__ = ["CircuitMetrics", "success_probability", "measure_compiled"]


@dataclasses.dataclass
class CircuitMetrics:
    """Bundle of the paper's circuit-quality numbers for one compilation.

    Attributes:
        method: Compilation flow name.
        depth: Native circuit depth.
        gate_count: Native total gate count.
        cnot_count: Native CNOT count.
        swap_count: SWAPs inserted by routing.
        compile_time: Wall-clock compile seconds.
        success_probability: Product-of-gate-success metric, when a
            calibration was supplied.
        execution_time_ns: Estimated wall-clock circuit duration under the
            default gate-duration model (when requested).
        decoherence_factor: Estimated T2 survival factor (when requested).
    """

    method: str
    depth: int
    gate_count: int
    cnot_count: int
    swap_count: int
    compile_time: float
    success_probability: Optional[float] = None
    execution_time_ns: Optional[float] = None
    decoherence_factor: Optional[float] = None


def _ensure_native(circuit: QuantumCircuit) -> QuantumCircuit:
    if all(inst.name in IBM_BASIS for inst in circuit):
        return circuit
    return decompose_to_basis(circuit)


def success_probability(
    circuit: QuantumCircuit,
    calibration: Calibration,
    include_readout: bool = False,
    include_single_qubit: bool = True,
) -> float:
    """Product of per-gate success rates of a (native) circuit.

    Rules:

    * ``cnot`` gates multiply in the calibrated coupling success rate —
      the dominant term, and the one the paper's VIC targets;
    * ``u1`` gates are free: on IBM hardware phase gates are implemented
      *virtually* (frame update), with no physical pulse — this is also why
      the CPHASE success model is just two CNOTs (Section IV-D);
    * other single-qubit gates multiply in the per-qubit single-qubit
      success rate when ``include_single_qubit``;
    * measurements multiply in readout fidelity when ``include_readout``.

    The circuit is lowered to the native basis first if needed; it must be
    coupling-compliant for the calibration's device.
    """
    native = _ensure_native(circuit)
    prob = 1.0
    for inst in native:
        if inst.name == "cnot":
            prob *= calibration.cnot_success(*inst.qubits)
        elif inst.name == "measure":
            if include_readout:
                prob *= calibration.readout_fidelity(inst.qubits[0])
        elif inst.name == "barrier" or inst.name == "u1":
            continue
        elif include_single_qubit:
            prob *= calibration.single_qubit_success(inst.qubits[0])
    return prob


def measure_compiled(
    compiled,
    calibration: Optional[Calibration] = None,
    include_timing: bool = False,
    t2_ns: float = 70_000.0,
    **success_kwargs,
) -> CircuitMetrics:
    """Collect all metrics for a compiled result.

    Args:
        compiled: :class:`~repro.compiler.flow.CompiledQAOA` or
            :class:`~repro.compiler.backend.CompiledCircuit` (anything with
            ``circuit``, ``swap_count``, ``compile_time``, ``method``).
        calibration: When given, also compute success probability.
        include_timing: Also estimate execution time and the T2 survival
            factor under the default gate-duration model.
        t2_ns: Dephasing constant for the survival estimate.
        **success_kwargs: Forwarded to :func:`success_probability`.
    """
    native = decompose_to_basis(compiled.circuit)
    sp = (
        success_probability(native, calibration, **success_kwargs)
        if calibration is not None
        else None
    )
    exec_ns = None
    survival = None
    if include_timing:
        from ..circuits.timing import decoherence_factor, execution_time

        exec_ns = execution_time(native)
        survival = decoherence_factor(native, t2_ns=t2_ns)
    return CircuitMetrics(
        method=compiled.method,
        depth=native.depth(),
        gate_count=native.gate_count(),
        cnot_count=native.count_ops().get("cnot", 0),
        swap_count=compiled.swap_count,
        compile_time=compiled.compile_time,
        success_probability=sp,
        execution_time_ns=exec_ns,
        decoherence_factor=survival,
    )
