"""Post-compilation crosstalk sequentialisation (Section VI, "Crosstalk").

Aggressive gate parallelisation can increase crosstalk error.  Following the
paper's discussion of Murali et al. (ASPLOS'20): on real devices only a
small subset of coupling *pairs* is highly crosstalk-prone (5 of 221 on IBM
Poughkeepsie), so it suffices to re-serialise parallel operations on exactly
those pairs after compilation.

:func:`sequentialize_crosstalk` is that optional pass: given the compiled
physical circuit and the set of conflicting coupling pairs, it splits any
layer that schedules two conflicting two-qubit gates simultaneously,
inserting a barrier between the sub-groups so downstream scheduling keeps
them apart.  Everything else is left untouched — depth only grows where a
conflict actually occurs.
"""

from __future__ import annotations

from typing import FrozenSet, Iterable, List, Set, Tuple

from ..circuits import QuantumCircuit, asap_layers
from ..circuits.gates import Instruction
from ..hardware.target import normalise_conflicts

__all__ = ["ConflictSpec", "sequentialize_crosstalk", "count_conflicts"]

Edge = Tuple[int, int]
ConflictSpec = FrozenSet[Edge]


def _norm_edge(a: int, b: int) -> Edge:
    return (min(a, b), max(a, b))


def _normalise_conflicts(
    conflicts: Iterable[Tuple[Edge, Edge]]
) -> FrozenSet[ConflictSpec]:
    # Canonicalisation lives in the hardware layer now (conflict sets are
    # a device fact carried by Target); this alias keeps the local name.
    return normalise_conflicts(conflicts)


def count_conflicts(
    circuit: QuantumCircuit, conflicts: Iterable[Tuple[Edge, Edge]]
) -> int:
    """Number of layer-level conflicting co-schedules in ``circuit``."""
    conflict_set = _normalise_conflicts(conflicts)
    total = 0
    for layer in asap_layers(circuit):
        edges = [
            _norm_edge(*inst.qubits) for inst in layer if inst.is_two_qubit
        ]
        for i in range(len(edges)):
            for j in range(i + 1, len(edges)):
                if frozenset((edges[i], edges[j])) in conflict_set:
                    total += 1
    return total


def sequentialize_crosstalk(
    circuit: QuantumCircuit,
    conflicts: Iterable[Tuple[Edge, Edge]],
) -> QuantumCircuit:
    """Serialise conflicting parallel two-qubit gates.

    Args:
        circuit: A compiled *physical* circuit.
        conflicts: Pairs of couplings that must not execute simultaneously,
            e.g. ``[((0, 1), (2, 3))]``.

    Returns:
        A new circuit in which no ASAP layer co-schedules a conflicting
        coupling pair; barriers between the split groups pin the order.
    """
    conflict_set = _normalise_conflicts(conflicts)
    if not conflict_set:
        return circuit.copy()

    out = QuantumCircuit(circuit.num_qubits, name=f"{circuit.name}_xtalk")
    for layer in asap_layers(circuit):
        groups: List[List[Instruction]] = []
        group_edges: List[Set[Edge]] = []
        for inst in layer:
            edge = _norm_edge(*inst.qubits) if inst.is_two_qubit else None
            placed = False
            for group, edges in zip(groups, group_edges):
                if edge is not None and any(
                    frozenset((edge, other)) in conflict_set for other in edges
                ):
                    continue
                group.append(inst)
                if edge is not None:
                    edges.add(edge)
                placed = True
                break
            if not placed:
                groups.append([inst])
                group_edges.append({edge} if edge is not None else set())
        for i, group in enumerate(groups):
            out.extend(group)
            if i + 1 < len(groups):
                span = sorted(
                    {q for g in groups[i:] for inst in g for q in inst.qubits}
                )
                out.barrier(*span)
    return out
