"""SWAP-network compilation: depth-O(n) all-to-all ZZ coverage.

The odd/even transposition network (Kivlichan et al.; scored for QAOA by
Montañez-Barrera et al., arXiv:2505.17944) routes a fully general ZZ
interaction layer on a *linear chain* of ``n`` qubits in exactly ``n``
brick layers: layer ``t`` places SWAP bricks on chain positions
``(i, i+1)`` with ``i ≡ t (mod 2)``, every brick swaps unconditionally,
and over ``n`` layers every pair of logical qubits becomes chain-adjacent
("meets") **exactly once** — the network realises a full reversal of the
chain order, any two elements cross exactly once, and elements only
cross where they are adjacent.  This holds from *any* starting
permutation, so consecutive QAOA levels chain networks back to back
without re-placement.

When a brick's meeting pair carries a program ZZ term, the CPHASE is
emitted immediately before the brick's SWAP on the same coupler; at
lowering time the peephole pass cancels the adjacent CNOTs of the
CPHASE/SWAP seam, i.e. the interaction is *fused* into the routing SWAP
(5 CNOTs → 3).  Brick layers after the last program-edge meeting are
dropped, so sparse problems finish early; the layer count per level
never exceeds ``n``.

Two entry points:

* :func:`linear_placement` — extract a simple path of ``n`` physical
  qubits (a linear-chain embedding) from the device coupling graph and
  place logical qubit ``q`` on the ``q``-th path vertex.  Registered in
  :data:`repro.compiler.flow.PLACEMENTS` as ``"linear"``.
* :class:`SwapNetworkPass` — emit the brick network for the placed
  chain.  Runs after any placement whose image admits a spanning path in
  the coupling graph.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from ..circuits import QuantumCircuit
from ..hardware.coupling import CouplingGraph
from .mapping import Mapping

__all__ = [
    "linear_placement",
    "find_linear_chain",
    "chain_for_mapping",
    "network_meetings",
    "SwapNetworkPass",
]

#: DFS budget for chain extraction — far above what the paper devices
#: need, low enough that adversarial graphs fail fast with a clear error.
_SEARCH_LIMIT = 250_000


def _path_search(
    starts: Sequence[int],
    adjacency: Dict[int, Tuple[int, ...]],
    length: int,
) -> Optional[List[int]]:
    """Find a simple path of ``length`` vertices via iterative DFS with
    backtracking.  Neighbour order is (degree, index) so low-degree
    vertices — the natural path interior on ladder/grid devices — are
    consumed first.  Returns ``None`` when the budget is exhausted."""
    budget = _SEARCH_LIMIT
    for start in starts:
        path = [start]
        on_path = {start}
        # Per-depth iterator stack over untried neighbours.
        stack = [iter(adjacency[start])]
        while stack:
            if len(path) == length:
                return path
            budget -= 1
            if budget <= 0:
                return None
            advanced = False
            for candidate in stack[-1]:
                if candidate not in on_path:
                    path.append(candidate)
                    on_path.add(candidate)
                    stack.append(iter(adjacency[candidate]))
                    advanced = True
                    break
            if not advanced:
                stack.pop()
                on_path.discard(path.pop())
    return None


def _sorted_adjacency(
    coupling: CouplingGraph, nodes: Optional[set] = None
) -> Dict[int, Tuple[int, ...]]:
    universe = (
        sorted(nodes) if nodes is not None else range(coupling.num_qubits)
    )
    keep = set(universe)

    def degree(q: int) -> int:
        return sum(1 for nb in coupling.neighbours(q) if nb in keep)

    return {
        q: tuple(
            sorted(
                (nb for nb in coupling.neighbours(q) if nb in keep),
                key=lambda nb: (degree(nb), nb),
            )
        )
        for q in universe
    }


def find_linear_chain(coupling: CouplingGraph, length: int) -> List[int]:
    """A simple path of ``length`` physical qubits in the coupling graph
    (consecutive vertices are coupled).  Deterministic for a given
    device; raises ``ValueError`` when no chain is found."""
    if length < 1:
        raise ValueError("chain length must be positive")
    if length > coupling.num_qubits:
        raise ValueError(
            f"cannot embed a {length}-qubit chain on "
            f"{coupling.num_qubits}-qubit device {coupling.name}"
        )
    adjacency = _sorted_adjacency(coupling)
    starts = sorted(
        range(coupling.num_qubits),
        key=lambda q: (len(adjacency[q]), q),
    )
    path = _path_search(starts, adjacency, length)
    if path is None:
        raise ValueError(
            f"no linear chain of {length} qubits found in device "
            f"{coupling.name}"
        )
    return path


def chain_for_mapping(
    mapping: Dict[int, int], coupling: CouplingGraph
) -> List[int]:
    """Order the placed physical qubits into a spanning path of the
    induced subgraph (consecutive vertices coupled).  Raises
    ``ValueError`` when the placement admits no linear chain."""
    placed = sorted(mapping.values())
    if len(placed) == 1:
        return placed
    nodes = set(placed)
    adjacency = _sorted_adjacency(coupling, nodes)
    starts = sorted(placed, key=lambda q: (len(adjacency[q]), q))
    path = _path_search(starts, adjacency, len(placed))
    if path is None:
        raise ValueError(
            "placement does not form a linear chain on device "
            f"{coupling.name}; use placement='linear' with the "
            "swap_network method"
        )
    return path


def linear_placement(
    pairs, num_qubits: int, coupling: CouplingGraph, rng=None
) -> Mapping:
    """Place logical qubit ``q`` on the ``q``-th vertex of a linear-chain
    embedding.  The interaction list and rng are unused — the SWAP
    network covers *every* pair regardless of order, so any chain
    assignment is equivalent (and determinism keeps compilations
    content-addressable)."""
    chain = find_linear_chain(coupling, num_qubits)
    return Mapping(
        {q: chain[q] for q in range(num_qubits)}, coupling.num_qubits
    )


def network_meetings(order: Sequence[int]) -> List[List[Tuple[int, int, int]]]:
    """The full meeting schedule of one ``n``-layer brick network
    starting from ``order``.

    Returns one list per layer of ``(position, elem_a, elem_b)`` bricks,
    where ``elem_a``/``elem_b`` are the elements meeting at chain
    positions ``(position, position + 1)``.  Over the ``n`` layers every
    element pair appears exactly once (the property test asserts this).
    """
    current = list(order)
    n = len(current)
    layers: List[List[Tuple[int, int, int]]] = []
    for t in range(n):
        bricks = []
        for i in range(t % 2, n - 1, 2):
            bricks.append((i, current[i], current[i + 1]))
        layers.append(bricks)
        for i, _, _ in bricks:
            current[i], current[i + 1] = current[i + 1], current[i]
    return layers


class SwapNetworkPass:
    """Emit the odd/even SWAP-network circuit on the placed chain.

    Requires a placement whose physical image forms a linear chain (the
    ``"linear"`` strategy guarantees one).  Per QAOA level the pass
    emits brick layers — CPHASE on meeting program pairs, then the
    unconditional SWAP — up to the last layer containing a program-edge
    meeting, followed by linear-term RZs and the RX mixers at the
    logical qubits' current homes.  The circuit passes
    :func:`repro.sim.fastpath.fastpath_plan` unchanged: every program
    pair's CPHASE appears exactly once per level with SWAP-tracked
    ownership.
    """

    name = "route/swap_network"

    def __init__(self) -> None:
        self.info: dict = {}

    def run(self, context) -> None:
        program = context.program
        n = program.num_qubits
        if context.mapping is None:
            raise ValueError("swap network requires a placement (mapping unset)")
        mapping = context.mapping.as_dict()
        chain = chain_for_mapping(mapping, context.coupling)
        owner_of_phys = {p: q for q, p in mapping.items()}
        owners = [owner_of_phys[p] for p in chain]

        circuit = QuantumCircuit(
            context.coupling.num_qubits, name="qaoa_swapnet"
        )
        for q in range(n):
            circuit.h(mapping[q])

        swaps = 0
        fused = 0
        layer_counts: List[int] = []
        for level in range(program.p):
            pair_angles: Dict[Tuple[int, int], List[float]] = {}
            for a, b, angle in program.cphase_gates(level):
                key = (min(a, b), max(a, b))
                pair_angles.setdefault(key, []).append(angle)
            schedule = network_meetings(owners)
            last_used = -1
            for t, bricks in enumerate(schedule):
                if any(
                    (min(qa, qb), max(qa, qb)) in pair_angles
                    for _, qa, qb in bricks
                ):
                    last_used = t
            for t in range(last_used + 1):
                for i, qa, qb in schedule[t]:
                    pa, pb = chain[i], chain[i + 1]
                    angles = pair_angles.get((min(qa, qb), max(qa, qb)))
                    if angles:
                        for angle in angles:
                            circuit.cphase(angle, pa, pb)
                        fused += 1
                    circuit.swap(pa, pb)
                    swaps += 1
                    owners[i], owners[i + 1] = owners[i + 1], owners[i]
            layer_counts.append(last_used + 1)
            home = {owners[i]: chain[i] for i in range(n)}
            for q, angle in program.rz_gates(level):
                circuit.rz(angle, home[q])
            mixer = program.mixer_angle(level)
            for q in range(n):
                circuit.rx(mixer, home[q])

        final_home = {owners[i]: chain[i] for i in range(n)}
        for q in range(n):
            circuit.measure(final_home[q])

        context.circuit = circuit
        context.final_mapping = final_home
        context.swap_count += swaps
        self.info = {
            "chain": list(chain),
            "brick_layers": layer_counts,
            "swaps": swaps,
            "fused_bricks": fused,
        }
