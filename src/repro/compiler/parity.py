"""Parity (LHZ) encoding: qubits-for-depth ZZ compilation.

Lechner's parity architecture (arXiv:1802.01157) trades qubits for
locality: every quadratic term ``Z_a Z_b`` of the cost Hamiltonian gets
its **own** physical qubit whose computational basis encodes the parity
``b_e = x_a XOR x_b``.  The cost layer then needs *no* two-qubit
interactions at all — each edge weight becomes a local ``RZ`` field on
its parity qubit — and the ``m`` parity qubits are kept consistent with
an underlying ``n``-spin configuration by ``m - n + c`` cycle
constraints (``c`` connected components): around any cycle of the
problem graph the parities must multiply to ``+1``.

This module derives the constraints as the fundamental cycles of a BFS
spanning forest (3-body for triangles, longer for sparser cycle bases;
the original LHZ layout's 4-body plaquettes are the special case of a
complete graph with its square cycle basis) and decomposes each
``exp(-i θ/2 Z⊗...⊗Z)`` constraint gadget into the native gate set as a
CNOT chain onto the cycle's last parity qubit, an ``RZ``, and the
mirrored chain.  The mixer is a plain ``RX`` per parity qubit.  Sampled
parity bits decode back to a logical assignment by XOR-ing along
spanning-tree paths (the component root is gauge-fixed to 0 — a global
spin flip per component, which ZZ-only costs are invariant under).

Angle conventions match the direct encoding exactly:
``cphase(-γw)`` on a program edge equals ``RZ(-γw)`` on its parity
qubit, so :func:`parity_field_angle` mirrors
:meth:`~repro.qaoa.problems.QAOAProgram.cphase_gates` and the
phase-polynomial verifier (:func:`repro.sim.fastpath.parity_plan`) can
require exact float equality.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Optional, Tuple

import numpy as np

from ..circuits import QuantumCircuit
from .mapping import Mapping

__all__ = [
    "ParityLayout",
    "parity_field_angle",
    "parity_constraint_angle",
    "build_parity_circuit",
    "parity_decode_indices",
    "ParityEncodingPass",
]


def parity_field_angle(gamma: float, weight: float) -> float:
    """RZ angle implementing one edge's cost term on its parity qubit —
    identical to the direct encoding's CPHASE angle for that edge."""
    return -float(gamma) * float(weight)


def parity_constraint_angle(gamma: float, strength: float) -> float:
    """RZ angle of one cycle-constraint gadget (the multi-body
    ``Z⊗...⊗Z`` rotation enforcing parity consistency)."""
    return -float(gamma) * float(strength)


@dataclasses.dataclass(frozen=True)
class ParityLayout:
    """The static structure of one problem's parity encoding.

    Attributes:
        num_logical: Problem (logical) qubit count ``n``.
        slots: One ``(a, b)`` logical pair per parity qubit, sorted;
            parity qubit ``s`` encodes ``x_a XOR x_b`` for
            ``slots[s]``.  Duplicate program edges merge into one slot.
        weights: Summed edge weight per slot.
        constraints: Fundamental cycles of the BFS spanning forest, each
            a sorted tuple of slot indices whose parities must XOR to 0.
        decode_paths: Per logical qubit, the slots on the spanning-tree
            path from its component root; XOR of those parity bits (root
            gauge-fixed to 0) recovers the logical bit.
    """

    num_logical: int
    slots: Tuple[Tuple[int, int], ...]
    weights: Tuple[float, ...]
    constraints: Tuple[Tuple[int, ...], ...]
    decode_paths: Tuple[Tuple[int, ...], ...]

    @property
    def num_slots(self) -> int:
        """Parity qubit count (= number of distinct program edges)."""
        return len(self.slots)

    @classmethod
    def from_program(cls, program) -> "ParityLayout":
        """Derive the layout for a QAOA program (ZZ terms only).

        Raises ``ValueError`` for programs with linear Ising fields —
        a field ``h_q Z_q`` is not expressible on edge-parity qubits
        (it would need the LHZ gauge with ancilla lines), and for edge-
        free programs (nothing to encode).
        """
        if any(h != 0.0 for h in getattr(program, "linear", {}).values()):
            raise ValueError(
                "parity encoding supports quadratic (ZZ) programs only; "
                "this program has linear Ising fields"
            )
        n = program.num_qubits
        accum: Dict[Tuple[int, int], float] = {}
        for a, b, w in program.edges:
            key = (min(int(a), int(b)), max(int(a), int(b)))
            accum[key] = accum.get(key, 0.0) + float(w)
        if not accum:
            raise ValueError("parity encoding requires at least one edge")
        slots = tuple(sorted(accum))
        weights = tuple(accum[pair] for pair in slots)
        slot_of = {pair: s for s, pair in enumerate(slots)}

        adjacency: List[List[Tuple[int, int]]] = [[] for _ in range(n)]
        for s, (a, b) in enumerate(slots):
            adjacency[a].append((b, s))
            adjacency[b].append((a, s))
        for nbrs in adjacency:
            nbrs.sort()

        # BFS spanning forest: tree paths give the decode gauge, every
        # non-tree edge closes exactly one fundamental cycle.
        visited = [False] * n
        tree_slots: set = set()
        paths: List[Optional[Tuple[int, ...]]] = [None] * n
        for root in range(n):
            if visited[root]:
                continue
            visited[root] = True
            paths[root] = ()
            queue = [root]
            while queue:
                node = queue.pop(0)
                for other, s in adjacency[node]:
                    if visited[other]:
                        continue
                    visited[other] = True
                    tree_slots.add(s)
                    paths[other] = paths[node] + (s,)
                    queue.append(other)

        constraints = []
        for s, (a, b) in enumerate(slots):
            if s in tree_slots:
                continue
            cycle = set(paths[a]) ^ set(paths[b])
            cycle.add(s)
            constraints.append(tuple(sorted(cycle)))
        return cls(
            num_logical=n,
            slots=slots,
            weights=weights,
            constraints=tuple(sorted(constraints)),
            decode_paths=tuple(paths),
        )

    def interaction_pairs(self) -> List[Tuple[int, int]]:
        """The parity-qubit pairs the constraint gadgets' CNOT chains
        couple — what placement optimises for."""
        pairs = []
        for cycle in self.constraints:
            for i in range(len(cycle) - 1):
                pairs.append((cycle[i], cycle[i + 1]))
        return pairs

    def decode_masks(self) -> np.ndarray:
        """Per logical qubit, the slot bitmask whose parity decodes it."""
        masks = np.zeros(self.num_logical, dtype=np.int64)
        for q, path in enumerate(self.decode_paths):
            for s in path:
                masks[q] |= np.int64(1) << np.int64(s)
        return masks

    def phase_vector(self, strength: float) -> np.ndarray:
        """Per-unit-gamma diagonal ``D(y)`` over the ``2^K`` parity basis
        such that one cost+constraint block is exactly
        ``exp(-i γ D(y))`` — the parity analogue of
        :attr:`repro.sim.fastpath.CostDiagonal.phase`.

        Field slot ``s`` contributes ``-w_s s_s(y) / 2`` (from
        ``RZ(-γ w_s)``); every constraint cycle contributes
        ``-Ω ∏_{s∈C} s_s(y) / 2``.
        """
        dim = 1 << self.num_slots
        indices = np.arange(dim, dtype=np.int64)
        values = np.zeros(dim)
        signs = 1.0 - 2.0 * (
            (indices[:, None] >> np.arange(self.num_slots)) & 1
        )
        for s, w in enumerate(self.weights):
            values -= (w / 2.0) * signs[:, s]
        for cycle in self.constraints:
            prod = np.ones(dim)
            for s in cycle:
                prod *= signs[:, s]
            values -= (float(strength) / 2.0) * prod
        return values

    def to_info(self, constraint_strength: float) -> dict:
        """JSON-safe encoding metadata persisted on the compiled result."""
        return {
            "num_logical": self.num_logical,
            "num_slots": self.num_slots,
            "slots": [[a, b] for a, b in self.slots],
            "weights": list(self.weights),
            "constraints": [list(c) for c in self.constraints],
            "decode_paths": [list(p) for p in self.decode_paths],
            "constraint_strength": float(constraint_strength),
        }


def build_parity_circuit(
    program,
    layout: ParityLayout,
    constraint_strength: float,
    measure: bool = True,
) -> QuantumCircuit:
    """The abstract (pre-routing) parity-encoded QAOA circuit on
    ``layout.num_slots`` parity qubits.

    ``measure=False`` omits the terminal measurements —
    :class:`ParityEncodingPass` routes the unitary part and then measures
    at the *final* physical homes, since routing a per-qubit measurement
    as an ordinary instruction would pin it to the qubit's home at its
    ASAP layer, which later SWAPs may move.
    """
    K = layout.num_slots
    circuit = QuantumCircuit(K, name="qaoa_parity")
    for s in range(K):
        circuit.h(s)
    for level in range(program.p):
        gamma = program.levels[level].gamma
        for s, w in enumerate(layout.weights):
            circuit.rz(parity_field_angle(gamma, w), s)
        angle = parity_constraint_angle(gamma, constraint_strength)
        for cycle in layout.constraints:
            for i in range(len(cycle) - 1):
                circuit.cnot(cycle[i], cycle[i + 1])
            circuit.rz(angle, cycle[-1])
            for i in reversed(range(len(cycle) - 1)):
                circuit.cnot(cycle[i], cycle[i + 1])
        mixer = program.mixer_angle(level)
        for s in range(K):
            circuit.rx(mixer, s)
    if measure:
        circuit.measure_all()
    return circuit


def parity_decode_indices(
    slot_indices: np.ndarray, layout: ParityLayout
) -> np.ndarray:
    """Parity-basis indices (bit ``s`` = parity qubit ``s``) → logical
    basis indices, XOR-ing each logical qubit's tree path."""
    slot_indices = np.asarray(slot_indices, dtype=np.int64)
    out = np.zeros_like(slot_indices)
    for q, path in enumerate(layout.decode_paths):
        bit = np.zeros_like(slot_indices)
        for s in path:
            bit ^= (slot_indices >> s) & 1
        out |= bit << q
    return out


class ParityEncodingPass:
    """The whole parity flow as one pipeline pass: derive the layout,
    build the abstract parity circuit, place the parity qubits (GreedyE
    over the constraint-gadget interaction graph), and route with the
    configured backend.  Mappings on the resulting context are
    parity-slot→physical; the context is tagged ``encoding="parity"``
    with the decode metadata in ``encoding_info``."""

    name = "encode/parity"

    def __init__(
        self, constraint_strength: float = 2.0, router: str = "layered"
    ) -> None:
        self.constraint_strength = float(constraint_strength)
        self.router = router
        self.info: dict = {}

    def run(self, context) -> None:
        from .pipeline import make_router
        from .placement import greedy_e_placement

        program = context.program
        layout = ParityLayout.from_program(program)
        K = layout.num_slots
        coupling = context.coupling
        if K > coupling.num_qubits:
            raise ValueError(
                f"parity encoding needs {K} physical qubits (one per "
                f"program edge); device {coupling.name} has "
                f"{coupling.num_qubits}"
            )
        abstract = build_parity_circuit(
            program, layout, self.constraint_strength, measure=False
        )
        pairs = layout.interaction_pairs()
        if pairs:
            mapping = greedy_e_placement(pairs, K, coupling, context.rng)
        else:
            mapping = Mapping.trivial(K, coupling.num_qubits)
        backend = make_router(
            self.router, context.target, context.distance_metric
        )
        compiled = backend.compile(abstract, mapping)
        for s in range(K):
            compiled.circuit.measure(compiled.final_mapping[s])
        context.mapping = mapping
        context.circuit = compiled.circuit
        context.initial_mapping = compiled.initial_mapping
        context.final_mapping = compiled.final_mapping
        context.swap_count += compiled.swap_count
        context.encoding = "parity"
        context.encoding_info = layout.to_info(self.constraint_strength)
        self.info = {
            "parity_qubits": K,
            "constraints": len(layout.constraints),
            "constraint_strength": self.constraint_strength,
        }
