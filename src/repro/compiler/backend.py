"""The conventional backend compiler (Figure 2's "Backend Compiler" box).

This is our stand-in for qiskit's layer-partitioning transpiler, in the
style of Zulehner et al. / qiskit's swap mapper (Section III, "SWAP
Insertion"): the logical circuit is partitioned into layers of concurrently
executable gates, and before each two-qubit gate whose endpoints are not
adjacent on the device, SWAPs are inserted along a shortest path.

All four of the paper's methodologies drive *this same backend* — QAIM only
changes the initial mapping it starts from, IP only changes the order of the
commuting gates in the circuit handed to it, and IC/VIC call it repeatedly
on single-layer partial circuits.  That mirrors the paper's premise that the
techniques "can be integrated into any conventional compiler".
"""

from __future__ import annotations

import dataclasses
from typing import Dict, Optional

import numpy as np

from ..circuits import QuantumCircuit, asap_layers, decompose_to_basis
from ..circuits.gates import Instruction
from ..hardware.coupling import CouplingGraph
from .mapping import Mapping
from .routing import route_pair

__all__ = ["CompiledCircuit", "ConventionalBackend"]


@dataclasses.dataclass
class CompiledCircuit:
    """A hardware-compliant circuit plus its mapping provenance.

    Attributes:
        circuit: The routed circuit on *physical* qubit indices, still in
            high-level gates (cphase/swap/h/rx/...).  Every two-qubit gate
            is guaranteed coupling-compliant.
        coupling: The device it was compiled for.
        initial_mapping: logical -> physical at circuit start.
        final_mapping: logical -> physical after all SWAPs.
        swap_count: Number of SWAP gates inserted by routing.
        compile_time: Wall-clock seconds spent compiling (set by flows).
        method: Name of the compilation flow that produced it.
    """

    circuit: QuantumCircuit
    coupling: CouplingGraph
    initial_mapping: Dict[int, int]
    final_mapping: Dict[int, int]
    swap_count: int
    compile_time: float = 0.0
    method: str = "backend"

    def native(self) -> QuantumCircuit:
        """The circuit lowered to the IBM basis {u1, u2, u3, cnot}."""
        return decompose_to_basis(self.circuit)

    def depth(self) -> int:
        """Native-basis critical-path depth (the paper's depth metric)."""
        return self.native().depth()

    def gate_count(self) -> int:
        """Native-basis total gate count (the paper's gate-count metric)."""
        return self.native().gate_count()

    def validate(self) -> None:
        """Assert every two-qubit gate sits on a device coupling."""
        for inst in self.circuit:
            if inst.is_two_qubit and not self.coupling.has_edge(*inst.qubits):
                raise AssertionError(
                    f"gate {inst} violates coupling constraints of "
                    f"{self.coupling.name}"
                )


class ConventionalBackend:
    """Layer-partitioning SWAP-insertion compiler.

    Args:
        coupling: Target device topology.
        distance_matrix: Optional matrix steering SWAP paths; defaults to
            hop distances.  VIC passes the reliability-weighted matrix here.
        path_oracle: Optional ``(pa, pb) -> path`` callable replacing the
            per-call shortest-path reconstruction — routers built via
            :func:`repro.compiler.pipeline.make_router` bind the target's
            memoized path cache here, so repeated routings of the same
            physical pair are dictionary lookups.
    """

    def __init__(
        self,
        coupling: CouplingGraph,
        distance_matrix: Optional[np.ndarray] = None,
        path_oracle=None,
    ) -> None:
        self.coupling = coupling
        self.distance_matrix = distance_matrix
        self.path_oracle = path_oracle

    def compile(
        self,
        circuit: QuantumCircuit,
        mapping: Mapping,
        name: Optional[str] = None,
    ) -> CompiledCircuit:
        """Compile a logical circuit starting from ``mapping``.

        The mapping object is *not* mutated; the evolved copy is returned
        inside the result.  Every logical qubit the circuit touches must be
        placed in ``mapping``.

        Returns:
            A :class:`CompiledCircuit` on physical qubit indices.
        """
        working = mapping.copy()
        initial = working.as_dict()
        out = QuantumCircuit(
            self.coupling.num_qubits, name=name or f"{circuit.name}@{self.coupling.name}"
        )
        swap_count = 0
        for layer in asap_layers(circuit):
            for inst in layer:
                swap_count += self._emit(inst, working, out)
        result = CompiledCircuit(
            circuit=out,
            coupling=self.coupling,
            initial_mapping=initial,
            final_mapping=working.as_dict(),
            swap_count=swap_count,
        )
        result.validate()
        return result

    def continue_compile(
        self,
        circuit: QuantumCircuit,
        mapping: Mapping,
        out: QuantumCircuit,
    ) -> int:
        """Append the compilation of ``circuit`` onto an existing physical
        circuit, mutating ``mapping`` in place.

        This is the primitive IC/VIC use to compile one partial circuit at a
        time and stitch the results (Section IV-C, Step 2-3).  Returns the
        number of SWAPs inserted for this partial circuit.
        """
        swap_count = 0
        for layer in asap_layers(circuit):
            for inst in layer:
                swap_count += self._emit(inst, mapping, out)
        return swap_count

    # ------------------------------------------------------------------
    def _emit(
        self, inst: Instruction, mapping: Mapping, out: QuantumCircuit
    ) -> int:
        """Route (if needed) and append one logical instruction. Returns the
        number of SWAPs inserted."""
        if inst.is_directive:
            return 0
        if len(inst.qubits) == 1:
            out.append(inst.remap({inst.qubits[0]: mapping.physical(inst.qubits[0])}))
            return 0
        logical_a, logical_b = inst.qubits
        routing = route_pair(
            self.coupling,
            mapping,
            logical_a,
            logical_b,
            dist=self.distance_matrix,
            path_oracle=self.path_oracle,
        )
        out.extend(routing.swaps)
        out.append(
            Instruction(
                inst.name,
                (mapping.physical(logical_a), mapping.physical(logical_b)),
                inst.params,
            )
        )
        return routing.num_swaps
