"""Compilation flows: NAIVE, GreedyV/E, QAIM, IP, IC, VIC (Figure 2).

A flow is the combination of two orthogonal choices:

* **placement** — how the initial logical-to-physical mapping is chosen
  (``random`` for NAIVE, ``greedy_v``/``greedy_e`` baselines, ``qaim``);
* **ordering** — how the commuting CPHASE gates are scheduled
  (``random``, ``ip`` bin-packing, ``ic`` incremental, ``vic``
  variation-aware incremental).

The paper's named methods are presets over these knobs
(:data:`METHOD_PRESETS`): NAIVE = random+random, QAIM = qaim+random,
IP = qaim+ip, IC = qaim+ic, VIC = qaim+vic.

Every flow produces a :class:`CompiledQAOA`: a coupling-compliant physical
circuit (H prefix, routed CPHASE blocks, RX mixers at the logical qubits'
*current* physical homes, measurements at their final homes) plus the
mapping provenance needed to decode samples and the wall-clock compile time.
"""

from __future__ import annotations

import dataclasses
import time
from typing import Dict, List, Optional

import numpy as np

from ..circuits import QuantumCircuit, decompose_to_basis
from ..hardware.calibration import Calibration
from ..hardware.coupling import CouplingGraph
from ..qaoa.circuit_builder import build_qaoa_circuit
from ..qaoa.problems import QAOAProgram
from .backend import ConventionalBackend
from .ic import IncrementalCompiler
from .ip import parallelize
from .mapping import Mapping
from .placement import (
    greedy_e_placement,
    greedy_v_placement,
    random_placement,
    trivial_placement,
)
from .qaim import qaim_placement

__all__ = [
    "CompiledQAOA",
    "compile_qaoa",
    "compile_with_method",
    "run_incremental_flow",
    "METHOD_PRESETS",
    "PLACEMENTS",
    "ORDERINGS",
]

PLACEMENTS = {
    "trivial": trivial_placement,
    "random": random_placement,
    "greedy_v": greedy_v_placement,
    "greedy_e": greedy_e_placement,
    "qaim": qaim_placement,
}

ORDERINGS = ("random", "ip", "ic", "vic")

#: The paper's named methodologies as (placement, ordering) presets.
METHOD_PRESETS: Dict[str, tuple] = {
    "naive": ("random", "random"),
    "greedy_v": ("greedy_v", "random"),
    "greedy_e": ("greedy_e", "random"),
    "qaim": ("qaim", "random"),
    "ip": ("qaim", "ip"),
    "ic": ("qaim", "ic"),
    "vic": ("qaim", "vic"),
}


@dataclasses.dataclass
class CompiledQAOA:
    """A hardware-compliant QAOA circuit with full provenance.

    Attributes:
        circuit: Routed circuit on physical qubits, high-level gates
            (h/cphase/rx/swap/measure); every two-qubit gate is
            coupling-compliant.
        coupling: Target device.
        program: The QAOA program that was compiled.
        initial_mapping: logical -> physical at circuit start.
        final_mapping: logical -> physical at measurement time.
        swap_count: SWAP gates inserted by routing.
        compile_time: Wall-clock seconds for the whole flow (placement
            included), the paper's compilation-time metric.
        method: Flow description, e.g. ``"qaim+ic"``.
        warnings: Degradation provenance: every repair or fallback taken
            on the way to this circuit (e.g. a VIC→IC distance fallback,
            calibration repairs applied upstream).  Empty for a clean
            compilation.
    """

    circuit: QuantumCircuit
    coupling: CouplingGraph
    program: QAOAProgram
    initial_mapping: Dict[int, int]
    final_mapping: Dict[int, int]
    swap_count: int
    compile_time: float
    method: str
    warnings: List[str] = dataclasses.field(default_factory=list)

    @property
    def num_logical(self) -> int:
        """Number of logical (program) qubits."""
        return self.program.num_qubits

    def native(self, optimize: bool = False) -> QuantumCircuit:
        """The circuit lowered to the IBM basis.

        Args:
            optimize: Run the peephole pass (CNOT cancellation at
                CPHASE/SWAP seams, phase merging) on the lowered circuit.
        """
        lowered = decompose_to_basis(self.circuit)
        if optimize:
            from ..circuits.optimize import peephole_optimize

            lowered = peephole_optimize(lowered)
        return lowered

    def depth(self) -> int:
        """Native-basis critical-path depth."""
        return self.native().depth()

    def gate_count(self) -> int:
        """Native-basis total gate count (measurements included)."""
        return self.native().gate_count()

    def validate(self) -> None:
        """Assert coupling compliance of every two-qubit gate."""
        for inst in self.circuit:
            if inst.is_two_qubit and not self.coupling.has_edge(*inst.qubits):
                raise AssertionError(
                    f"gate {inst} violates coupling of {self.coupling.name}"
                )

    def success_probability(self, calibration: Calibration, **kwargs) -> float:
        """Product-of-gate-success-rates metric (see
        :func:`repro.compiler.metrics.success_probability`)."""
        from .metrics import success_probability

        return success_probability(self.native(), calibration, **kwargs)


def compile_qaoa(
    program: QAOAProgram,
    coupling: CouplingGraph,
    placement: str = "qaim",
    ordering: str = "random",
    calibration: Optional[Calibration] = None,
    packing_limit: Optional[int] = None,
    rng: Optional[np.random.Generator] = None,
    qaim_radius: int = 2,
    router: str = "layered",
    crosstalk_conflicts=None,
) -> CompiledQAOA:
    """Compile a QAOA program with the chosen placement and ordering.

    Args:
        program: Logical QAOA program (edges + per-level angles).
        coupling: Target device topology.
        placement: One of :data:`PLACEMENTS`.
        ordering: One of :data:`ORDERINGS`.
        calibration: Required for ``ordering="vic"``; must cover
            ``coupling``.
        packing_limit: Optional max CPHASE gates per formed layer
            (applies to ``ip``/``ic``/``vic``; Figure 12's knob).
        rng: Random generator driving every stochastic tie-break.
        qaim_radius: Connectivity-strength radius when placement is QAIM.
        router: Backend SWAP router — ``"layered"`` (the qiskit-style
            layer-partitioning backend) or ``"sabre"`` (lookahead search).
            The paper's methodologies are front-ends to either.
        crosstalk_conflicts: Optional iterable of conflicting coupling
            pairs; when given, the Section VI crosstalk sequentialisation
            pass runs post-compilation (see
            :func:`repro.compiler.crosstalk.sequentialize_crosstalk`).

    Returns:
        A :class:`CompiledQAOA`.
    """
    if placement not in PLACEMENTS:
        raise ValueError(
            f"unknown placement {placement!r}; options: {sorted(PLACEMENTS)}"
        )
    if ordering not in ORDERINGS:
        raise ValueError(
            f"unknown ordering {ordering!r}; options: {ORDERINGS}"
        )
    if ordering == "vic":
        if calibration is None:
            raise ValueError("VIC ordering requires calibration data")
        if calibration.coupling.name != coupling.name:
            raise ValueError(
                "calibration device does not match target coupling"
            )
    if router not in ("layered", "sabre"):
        raise ValueError(
            f"unknown router {router!r}; options: ('layered', 'sabre')"
        )
    rng = rng if rng is not None else np.random.default_rng()

    start = time.perf_counter()
    pairs = program.pairs()
    if placement == "qaim":
        from .qaim import QAIMConfig

        mapping = qaim_placement(
            pairs,
            program.num_qubits,
            coupling,
            rng=rng,
            config=QAIMConfig(radius=qaim_radius),
        )
    else:
        mapping = PLACEMENTS[placement](
            pairs, program.num_qubits, coupling, rng
        )
    initial = mapping.as_dict()

    flow_warnings: List[str] = []
    if ordering in ("random", "ip"):
        compiled = _compile_monolithic(
            program, coupling, mapping, ordering, packing_limit, rng, router
        )
    else:
        compiled, flow_warnings = _compile_incremental(
            program, coupling, mapping, ordering, calibration,
            packing_limit, rng, router,
        )
    circuit, final_mapping, swap_count = compiled
    if crosstalk_conflicts is not None:
        from .crosstalk import sequentialize_crosstalk

        circuit = sequentialize_crosstalk(circuit, crosstalk_conflicts)
    elapsed = time.perf_counter() - start

    result = CompiledQAOA(
        circuit=circuit,
        coupling=coupling,
        program=program,
        initial_mapping=initial,
        final_mapping=final_mapping,
        swap_count=swap_count,
        compile_time=elapsed,
        method=f"{placement}+{ordering}",
        warnings=flow_warnings,
    )
    result.validate()
    return result


def _make_router(
    router: str,
    coupling: CouplingGraph,
    distance_matrix=None,
):
    """Instantiate the chosen backend router."""
    if router == "sabre":
        from .sabre import SabreBackend

        return SabreBackend(coupling, distance_matrix=distance_matrix)
    return ConventionalBackend(coupling, distance_matrix=distance_matrix)


def _compile_monolithic(
    program: QAOAProgram,
    coupling: CouplingGraph,
    mapping: Mapping,
    ordering: str,
    packing_limit: Optional[int],
    rng: np.random.Generator,
    router: str = "layered",
):
    """random/IP orderings: build the full logical circuit, compile once."""
    if ordering == "ip":
        ip_result = parallelize(
            program.pairs(), rng=rng, packing_limit=packing_limit
        )
        edge_orders = [ip_result.ordered_pairs] * program.p
        logical = build_qaoa_circuit(program, edge_orders=edge_orders)
    else:
        logical = build_qaoa_circuit(program, rng=rng)
    backend = _make_router(router, coupling)
    compiled = backend.compile(logical, mapping)
    return compiled.circuit, compiled.final_mapping, compiled.swap_count


def _compile_incremental(
    program: QAOAProgram,
    coupling: CouplingGraph,
    mapping: Mapping,
    ordering: str,
    calibration: Optional[Calibration],
    packing_limit: Optional[int],
    rng: np.random.Generator,
    router: str = "layered",
):
    """IC/VIC orderings: layer-at-a-time compilation with stitching.

    Returns ``(compiled_triple, warnings)``; the warnings record a VIC→IC
    distance fallback when the calibration is unusable.
    """
    warnings: List[str] = []
    distance_matrix = None
    if ordering == "vic":
        from .vic import resolve_vic_distances

        distance_matrix, warnings = resolve_vic_distances(calibration)
    compiler = IncrementalCompiler(
        coupling,
        distance_matrix=distance_matrix,
        packing_limit=packing_limit,
        rng=rng,
        backend=_make_router(router, coupling, distance_matrix),
    )
    return run_incremental_flow(program, mapping, compiler), warnings


def run_incremental_flow(
    program: QAOAProgram,
    mapping: Mapping,
    compiler: IncrementalCompiler,
):
    """Drive a (possibly custom) incremental compiler through a full QAOA
    program: H prefix, per-level CPHASE blocks and mixers, measurements.

    Exposed so ablation studies can plug in IncrementalCompiler variants
    (frozen-distance ordering, alternative edge weights, ...) and still get
    a complete circuit.  Mutates ``mapping``; returns
    ``(circuit, final_mapping_dict, swap_count)``.
    """
    coupling = compiler.coupling
    out = QuantumCircuit(coupling.num_qubits, name="qaoa_ic")
    n = program.num_qubits
    for q in range(n):
        out.h(mapping.physical(q))
    swap_count = 0
    for level in range(program.p):
        block = compiler.compile_block(
            program.cphase_gates(level), mapping, out
        )
        swap_count += block.swap_count
        # Linear Ising terms: virtual RZs, diagonal, commute with the block.
        for q, angle in program.rz_gates(level):
            out.rz(angle, mapping.physical(q))
        mixer = program.mixer_angle(level)
        for q in range(n):
            out.rx(mixer, mapping.physical(q))
    for q in range(n):
        out.measure(mapping.physical(q))
    return out, mapping.as_dict(), swap_count


def compile_with_method(
    program: QAOAProgram,
    coupling: CouplingGraph,
    method: str,
    calibration: Optional[Calibration] = None,
    packing_limit: Optional[int] = None,
    rng: Optional[np.random.Generator] = None,
    router: str = "layered",
) -> CompiledQAOA:
    """Compile using one of the paper's named methods.

    ``method`` is one of :data:`METHOD_PRESETS`:
    ``naive``, ``greedy_v``, ``greedy_e``, ``qaim``, ``ip``, ``ic``,
    ``vic``.  ``router`` selects the backend (``"layered"``/``"sabre"``).
    """
    try:
        placement, ordering = METHOD_PRESETS[method]
    except KeyError:
        raise ValueError(
            f"unknown method {method!r}; options: {sorted(METHOD_PRESETS)}"
        ) from None
    return compile_qaoa(
        program,
        coupling,
        placement=placement,
        ordering=ordering,
        calibration=calibration,
        packing_limit=packing_limit,
        rng=rng,
        router=router,
    )
