"""Compilation flows: NAIVE, GreedyV/E, QAIM, IP, IC, VIC (Figure 2).

A flow is the combination of two orthogonal choices:

* **placement** — how the initial logical-to-physical mapping is chosen
  (``random`` for NAIVE, ``greedy_v``/``greedy_e`` baselines, ``qaim``);
* **ordering** — how the commuting CPHASE gates are scheduled
  (``random``, ``ip`` bin-packing, ``ic`` incremental, ``vic``
  variation-aware incremental).

The paper's named methods are presets over these knobs
(:data:`METHOD_PRESETS`): NAIVE = random+random, QAIM = qaim+random,
IP = qaim+ip, IC = qaim+ic, VIC = qaim+vic.

Since the pass-pipeline refactor this module is a thin wrapper: a preset
is a declarative :class:`~repro.compiler.pipeline.PipelineSpec`,
:func:`compile_qaoa`/:func:`compile_spec` assemble the concrete pass list
via :func:`~repro.compiler.pipeline.build_pipeline` and run it, and the
per-pass instrumentation lands on the result as
:attr:`CompiledQAOA.pass_trace`.

Every flow produces a :class:`CompiledQAOA`: a coupling-compliant physical
circuit (H prefix, routed CPHASE blocks, RX mixers at the logical qubits'
*current* physical homes, measurements at their final homes) plus the
mapping provenance needed to decode samples and the wall-clock compile time.
"""

from __future__ import annotations

import dataclasses
import time
from typing import Dict, List, Optional, Union

import numpy as np

from ..circuits import QuantumCircuit, decompose_to_basis
from ..hardware.calibration import Calibration
from ..hardware.coupling import CouplingGraph
from ..hardware.target import Target, intern_target
from ..qaoa.problems import QAOAProgram
from .ic import IncrementalCompiler
from .mapping import Mapping
from .pipeline import PassContext, PassRecord, PipelineSpec, build_pipeline
from .placement import (
    greedy_e_placement,
    greedy_v_placement,
    random_placement,
    trivial_placement,
)
from .qaim import qaim_placement
from .registry import get_method, method_presets_view
from .swap_network import linear_placement

__all__ = [
    "CompiledQAOA",
    "compile_qaoa",
    "compile_spec",
    "compile_with_method",
    "run_incremental_flow",
    "METHOD_PRESETS",
    "PLACEMENTS",
    "ORDERINGS",
    "ROUTERS",
]

PLACEMENTS = {
    "trivial": trivial_placement,
    "random": random_placement,
    "greedy_v": greedy_v_placement,
    "greedy_e": greedy_e_placement,
    "qaim": qaim_placement,
    "linear": linear_placement,
}

ORDERINGS = ("random", "ip", "ic", "vic", "swap_network", "parity")

ROUTERS = ("layered", "sabre")

#: Named methodologies as declarative pipeline specs.  Since the
#: registry redesign this is a live *view* over
#: :mod:`repro.compiler.registry` — reads behave like the old dict
#: (each entry still unpacks as ``(placement, ordering)`` for
#: pre-pipeline callers), direct mutation warns and forwards to
#: :func:`~repro.compiler.registry.register_method`.
METHOD_PRESETS: Dict[str, PipelineSpec] = method_presets_view()


@dataclasses.dataclass
class CompiledQAOA:
    """A hardware-compliant QAOA circuit with full provenance.

    Attributes:
        circuit: Routed circuit on physical qubits, high-level gates
            (h/cphase/rx/swap/measure); every two-qubit gate is
            coupling-compliant.
        coupling: Target device.
        program: The QAOA program that was compiled.
        initial_mapping: logical -> physical at circuit start.
        final_mapping: logical -> physical at measurement time.
        swap_count: SWAP gates inserted by routing.
        compile_time: Wall-clock seconds for the whole flow (placement
            included), the paper's compilation-time metric.
        method: Flow description, e.g. ``"qaim+ic"``.
        warnings: Degradation provenance: every repair or fallback taken
            on the way to this circuit (e.g. a VIC→IC distance fallback,
            calibration repairs applied upstream).  Empty for a clean
            compilation.
        pass_trace: Per-pass instrumentation (one
            :class:`~repro.compiler.pipeline.PassRecord` per pipeline
            stage: wall time, SWAPs inserted, depth/gate deltas).  Empty
            for results built outside the pipeline (e.g. deserialised
            pre-pipeline payloads).
        target_fingerprint: Content fingerprint of the
            :class:`~repro.hardware.target.Target` compiled against
            (``None`` for un-fingerprintable calibrations or legacy
            payloads) — the device+calibration identity downstream caches
            and telemetry key on.
        encoding: How the circuit's register relates to the program —
            ``"direct"`` (mappings are logical→physical; every paper
            method and the SWAP network) or ``"parity"`` (mappings are
            parity-slot→physical; see :mod:`repro.compiler.parity`).
        encoding_info: Encoding-specific decode metadata (slot pairs,
            constraints, decode paths for ``"parity"``; empty for
            ``"direct"``).
    """

    circuit: QuantumCircuit
    coupling: CouplingGraph
    program: QAOAProgram
    initial_mapping: Dict[int, int]
    final_mapping: Dict[int, int]
    swap_count: int
    compile_time: float
    method: str
    warnings: List[str] = dataclasses.field(default_factory=list)
    pass_trace: List[PassRecord] = dataclasses.field(default_factory=list)
    target_fingerprint: Optional[str] = None
    encoding: str = "direct"
    encoding_info: dict = dataclasses.field(default_factory=dict)
    _native_cache: Dict[bool, QuantumCircuit] = dataclasses.field(
        default_factory=dict, repr=False, compare=False
    )

    @property
    def num_logical(self) -> int:
        """Number of logical (program) qubits."""
        return self.program.num_qubits

    def native(self, optimize: bool = False) -> QuantumCircuit:
        """The circuit lowered to the IBM basis.

        The lowering is memoized per ``optimize`` flag — a compiled result
        is effectively frozen, and ``depth()``/``gate_count()``/
        ``success_probability()`` all need the same lowered circuit, so
        the basis decomposition runs at most once per flag.

        Args:
            optimize: Run the peephole pass (CNOT cancellation at
                CPHASE/SWAP seams, phase merging) on the lowered circuit.
        """
        key = bool(optimize)
        cached = self._native_cache.get(key)
        if cached is not None:
            return cached
        lowered = decompose_to_basis(self.circuit)
        if optimize:
            from ..circuits.optimize import peephole_optimize

            lowered = peephole_optimize(lowered)
        self._native_cache[key] = lowered
        return lowered

    def depth(self) -> int:
        """Native-basis critical-path depth."""
        return self.native().depth()

    def gate_count(self) -> int:
        """Native-basis total gate count (measurements included)."""
        return self.native().gate_count()

    def validate(self) -> None:
        """Assert coupling compliance of every two-qubit gate."""
        for inst in self.circuit:
            if inst.is_two_qubit and not self.coupling.has_edge(*inst.qubits):
                raise AssertionError(
                    f"gate {inst} violates coupling of {self.coupling.name}"
                )

    def success_probability(self, calibration: Calibration, **kwargs) -> float:
        """Product-of-gate-success-rates metric (see
        :func:`repro.compiler.metrics.success_probability`)."""
        from .metrics import success_probability

        return success_probability(self.native(), calibration, **kwargs)


def _validate_spec(
    spec: PipelineSpec,
    coupling: CouplingGraph,
    calibration: Optional[Calibration],
) -> None:
    """Reject bad knob combinations with the historical error messages."""
    if spec.ordering == "parity":
        # The parity pass re-encodes the problem and places the parity
        # qubits itself; "lhz" marks that there is no logical placement.
        if spec.placement != "lhz":
            raise ValueError(
                "parity ordering requires placement 'lhz' (the pass "
                "places its own parity qubits)"
            )
    elif spec.placement not in PLACEMENTS:
        raise ValueError(
            f"unknown placement {spec.placement!r}; "
            f"options: {sorted(PLACEMENTS)}"
        )
    if spec.ordering not in ORDERINGS:
        raise ValueError(
            f"unknown ordering {spec.ordering!r}; options: {ORDERINGS}"
        )
    if spec.ordering == "vic":
        if calibration is None:
            raise ValueError("VIC ordering requires calibration data")
        if calibration.coupling.name != coupling.name:
            raise ValueError(
                "calibration device does not match target coupling"
            )
    if spec.router not in ROUTERS:
        raise ValueError(
            f"unknown router {spec.router!r}; options: {ROUTERS}"
        )


def _resolve_target(
    coupling,
    calibration: Optional[Calibration],
    target: Optional[Target],
) -> Target:
    """Normalise the (coupling, calibration, target) entry-point triple.

    Callers either pass the loose objects (interned into a shared
    :class:`~repro.hardware.target.Target` here) or a prebuilt target —
    possibly *as* the ``coupling`` argument, so call sites read
    ``compile_with_method(program, target, method)``.
    """
    if isinstance(coupling, Target):
        if target is not None and target is not coupling:
            raise ValueError("got two different targets")
        target = coupling
    if target is None:
        if coupling is None:
            raise ValueError("a coupling graph or Target is required")
        return intern_target(coupling, calibration)
    if calibration is not None and calibration is not target.calibration:
        raise ValueError(
            "calibration argument conflicts with the target's calibration; "
            "build the target from the calibration you want"
        )
    return target


def compile_spec(
    program: QAOAProgram,
    coupling=None,
    spec: PipelineSpec = None,
    calibration: Optional[Calibration] = None,
    rng: Optional[np.random.Generator] = None,
    crosstalk_conflicts=None,
    target: Optional[Target] = None,
) -> CompiledQAOA:
    """Compile a QAOA program through the pipeline a spec describes.

    This is the single seam every compilation takes: it resolves the
    device view into a shared :class:`~repro.hardware.target.Target`,
    validates the spec, assembles the pass list with
    :func:`~repro.compiler.pipeline.build_pipeline`, runs it, and wraps
    the evolved context into a :class:`CompiledQAOA` (pass trace and
    target fingerprint included).

    Args:
        program: Logical QAOA program (edges + per-level angles).
        coupling: Target device topology, or a prebuilt
            :class:`~repro.hardware.target.Target`.
        spec: Declarative flow description (placement, ordering, router,
            knobs).
        calibration: Required for ``ordering="vic"``; must cover
            ``coupling``.  Ignored in favour of ``target.calibration``
            when a target is passed (passing both is an error unless they
            are the same object).
        rng: Random generator driving every stochastic tie-break.
        crosstalk_conflicts: Optional iterable of conflicting coupling
            pairs; when given, a crosstalk sequentialisation pass runs
            post-routing.  Defaults to the target's own conflict sets.
    target: Prebuilt device view; batches/sweeps pass one interned
            target so the O(n³) device analyses run once per device.
    """
    if spec is None:
        raise ValueError("compile_spec requires a PipelineSpec")
    resolved = _resolve_target(coupling, calibration, target)
    _validate_spec(spec, resolved.coupling, resolved.calibration)
    rng = rng if rng is not None else np.random.default_rng()

    if crosstalk_conflicts is None and resolved.conflict_sets():
        crosstalk_conflicts = resolved.conflict_sets()
    pipeline = build_pipeline(spec, crosstalk_conflicts=crosstalk_conflicts)
    context = PassContext(
        program=program,
        target=resolved,
        rng=rng,
    )
    start = time.perf_counter()
    pipeline.run(context)
    elapsed = time.perf_counter() - start

    result = CompiledQAOA(
        circuit=context.circuit,
        # Preserve the caller's coupling instance when one was passed
        # loose (interning may have matched a content-equal device).
        coupling=coupling if isinstance(coupling, CouplingGraph) else resolved.coupling,
        program=program,
        initial_mapping=context.initial_mapping,
        final_mapping=context.final_mapping,
        swap_count=context.swap_count,
        compile_time=elapsed,
        method=spec.method,
        warnings=context.warnings,
        pass_trace=context.trace,
        target_fingerprint=resolved.fingerprint,
        encoding=context.encoding,
        encoding_info=context.encoding_info,
    )
    result.validate()
    return result


def compile_qaoa(
    program: QAOAProgram,
    coupling=None,
    placement: str = "qaim",
    ordering: str = "random",
    calibration: Optional[Calibration] = None,
    packing_limit: Optional[int] = None,
    rng: Optional[np.random.Generator] = None,
    qaim_radius: int = 2,
    router: str = "layered",
    crosstalk_conflicts=None,
    target: Optional[Target] = None,
) -> CompiledQAOA:
    """Compile a QAOA program with the chosen placement and ordering.

    Thin wrapper over :func:`compile_spec` — the knobs are packed into a
    :class:`~repro.compiler.pipeline.PipelineSpec` and run through the
    pass pipeline.

    Args:
        program: Logical QAOA program (edges + per-level angles).
        coupling: Target device topology (or a prebuilt
            :class:`~repro.hardware.target.Target`).
        placement: One of :data:`PLACEMENTS`.
        ordering: One of :data:`ORDERINGS`.
        calibration: Required for ``ordering="vic"``; must cover
            ``coupling``.
        packing_limit: Optional max CPHASE gates per formed layer
            (applies to ``ip``/``ic``/``vic``; Figure 12's knob).
        rng: Random generator driving every stochastic tie-break.
        qaim_radius: Connectivity-strength radius when placement is QAIM.
        router: Backend SWAP router — ``"layered"`` (the qiskit-style
            layer-partitioning backend) or ``"sabre"`` (lookahead search).
            The paper's methodologies are front-ends to either.
        crosstalk_conflicts: Optional iterable of conflicting coupling
            pairs; when given, the Section VI crosstalk sequentialisation
            pass runs post-compilation (see
            :func:`repro.compiler.crosstalk.sequentialize_crosstalk`).
        target: Prebuilt :class:`~repro.hardware.target.Target` carrying
            coupling + calibration + memoized oracles.

    Returns:
        A :class:`CompiledQAOA`.
    """
    spec = PipelineSpec(
        placement=placement,
        ordering=ordering,
        router=router,
        qaim_radius=qaim_radius,
        packing_limit=packing_limit,
    )
    return compile_spec(
        program,
        coupling,
        spec,
        calibration=calibration,
        rng=rng,
        crosstalk_conflicts=crosstalk_conflicts,
        target=target,
    )


def run_incremental_flow(
    program: QAOAProgram,
    mapping: Mapping,
    compiler: IncrementalCompiler,
):
    """Drive a (possibly custom) incremental compiler through a full QAOA
    program: H prefix, per-level CPHASE blocks and mixers, measurements.

    Exposed so ablation studies can plug in IncrementalCompiler variants
    (frozen-distance ordering, alternative edge weights, ...) and still get
    a complete circuit.  Mutates ``mapping``; returns
    ``(circuit, final_mapping_dict, swap_count)``.
    """
    coupling = compiler.coupling
    out = QuantumCircuit(coupling.num_qubits, name="qaoa_ic")
    n = program.num_qubits
    for q in range(n):
        out.h(mapping.physical(q))
    swap_count = 0
    for level in range(program.p):
        block = compiler.compile_block(
            program.cphase_gates(level), mapping, out
        )
        swap_count += block.swap_count
        # Linear Ising terms: virtual RZs, diagonal, commute with the block.
        for q, angle in program.rz_gates(level):
            out.rz(angle, mapping.physical(q))
        mixer = program.mixer_angle(level)
        for q in range(n):
            out.rx(mixer, mapping.physical(q))
    for q in range(n):
        out.measure(mapping.physical(q))
    return out, mapping.as_dict(), swap_count


def compile_with_method(
    program: QAOAProgram,
    coupling=None,
    method: Union[str, PipelineSpec] = "ic",
    calibration: Optional[Calibration] = None,
    packing_limit: Optional[int] = None,
    rng: Optional[np.random.Generator] = None,
    router: str = "layered",
    qaim_radius: int = 2,
    crosstalk_conflicts=None,
    target: Optional[Target] = None,
) -> CompiledQAOA:
    """Compile using a named method or an explicit pipeline spec.

    ``method`` is either a name in the method registry (the paper's
    ``naive``, ``greedy_v``, ``greedy_e``, ``qaim``, ``ip``, ``ic``,
    ``vic``, the structural ``swap_network``/``parity``, plus anything
    added via :func:`repro.compiler.register_method`) or a
    :class:`~repro.compiler.pipeline.PipelineSpec` instance used as-is.
    ``coupling`` accepts either a device topology or a prebuilt
    :class:`~repro.hardware.target.Target` (equivalently pass ``target=``).
    ``router`` selects the backend (``"layered"``/``"sabre"``),
    ``qaim_radius`` tunes QAIM's connectivity-strength radius, and
    ``crosstalk_conflicts`` appends the Section VI sequentialisation pass
    — all forwarded to :func:`compile_spec`.  When ``method`` is a spec,
    those knobs live *inside* the spec; passing them here too raises.
    """
    if isinstance(method, PipelineSpec):
        if (
            router != "layered"
            or qaim_radius != 2
            or packing_limit is not None
        ):
            raise ValueError(
                "router/qaim_radius/packing_limit are fields of the "
                "PipelineSpec when compiling from a spec; set them there"
            )
        spec = method
    else:
        preset = get_method(method)
        spec = preset.replace(
            router=router,
            qaim_radius=qaim_radius,
            packing_limit=packing_limit,
        )
    return compile_spec(
        program,
        coupling,
        spec,
        calibration=calibration,
        rng=rng,
        crosstalk_conflicts=crosstalk_conflicts,
        target=target,
    )
