"""IP: Instruction Parallelization via greedy bin packing (Section IV-B).

IP re-orders the commuting CPHASE gates of a QAOA level so that as many as
possible execute concurrently, before the whole circuit is handed to the
backend once.  The paper formulates layer formation as binary bin packing
solved with first-fit-decreasing (Figure 4):

1. Create ``MOQ`` empty layers, where ``MOQ`` is the maximum number of
   CPHASEs on any one qubit — a lower bound on the achievable layer count.
2. Rank gates by cumulative endpoint activity (descending; ties random) and
   first-fit each into the earliest layer where both its qubits are free.
3. Gates that fit nowhere go to an unassigned list; when the pass ends, the
   procedure restarts on that list with fresh layers.

:func:`fill_single_layer` exposes the one-layer greedy fill that IC/VIC
reuse ("a greedy approach similar to the one used in IP", Section IV-C),
including the packing-limit knob studied in Figure 12.
"""

from __future__ import annotations

import dataclasses
from typing import List, Optional, Sequence, Tuple

import numpy as np

from ..hardware.profiling import max_operations_per_qubit, program_profile

__all__ = ["IPResult", "parallelize", "fill_single_layer"]

Pair = Tuple[int, int]


@dataclasses.dataclass
class IPResult:
    """Outcome of instruction parallelization.

    Attributes:
        layers: CPHASE pairs grouped into concurrently executable layers;
            within a layer no qubit repeats.
        rounds: Number of Step-1 restarts needed (1 when everything fit in
            the first MOQ layers).
    """

    layers: List[List[Pair]]
    rounds: int

    @property
    def ordered_pairs(self) -> List[Pair]:
        """Flattened gate order (layer by layer) to feed the backend."""
        return [pair for layer in self.layers for pair in layer]

    @property
    def num_layers(self) -> int:
        """Number of CPHASE layers after parallelization."""
        return len(self.layers)

    def validate(self) -> None:
        """Assert no layer reuses a qubit."""
        for i, layer in enumerate(self.layers):
            seen = set()
            for a, b in layer:
                if a in seen or b in seen:
                    raise AssertionError(f"layer {i} reuses a qubit: {layer}")
                seen.update((a, b))


def _ranked_pairs(
    pairs: Sequence[Pair], rng: Optional[np.random.Generator]
) -> List[Pair]:
    """Pairs sorted by descending cumulative rank, ties shuffled randomly."""
    profile = program_profile(pairs)
    indexed = list(pairs)
    if rng is not None:
        # Shuffle first, then stable-sort: equal-rank gates end up in random
        # relative order, exactly the paper's tie-breaking rule.
        perm = rng.permutation(len(indexed))
        indexed = [indexed[i] for i in perm]
    indexed.sort(key=lambda p: -(profile[p[0]] + profile[p[1]]))
    return indexed


def parallelize(
    pairs: Sequence[Pair],
    rng: Optional[np.random.Generator] = None,
    packing_limit: Optional[int] = None,
    max_rounds: int = 1000,
) -> IPResult:
    """Pack CPHASE gates into concurrency layers (the IP procedure).

    Args:
        pairs: Logical endpoints of the level's CPHASE gates.
        rng: Random generator for rank tie-breaking (None = deterministic).
        packing_limit: Optional cap on gates per layer (Figure 12's knob).
        max_rounds: Safety bound on Step-4 restarts.

    Returns:
        An :class:`IPResult`; ``result.ordered_pairs`` is the gate sequence
        the backend should receive.
    """
    if packing_limit is not None and packing_limit < 1:
        raise ValueError(f"packing_limit must be >= 1, got {packing_limit}")
    remaining = list(pairs)
    all_layers: List[List[Pair]] = []
    rounds = 0
    while remaining:
        rounds += 1
        if rounds > max_rounds:
            raise RuntimeError("IP failed to converge (max_rounds exceeded)")
        moq = max_operations_per_qubit(remaining)
        layers: List[List[Pair]] = [[] for _ in range(max(moq, 1))]
        occupied: List[set] = [set() for _ in range(max(moq, 1))]
        unassigned: List[Pair] = []
        for pair in _ranked_pairs(remaining, rng):
            a, b = pair
            for layer, used in zip(layers, occupied):
                if a in used or b in used:
                    continue
                if packing_limit is not None and len(layer) >= packing_limit:
                    continue
                layer.append(pair)
                used.update((a, b))
                break
            else:
                unassigned.append(pair)
        all_layers.extend(layer for layer in layers if layer)
        remaining = unassigned
    result = IPResult(layers=all_layers, rounds=max(rounds, 1))
    result.validate()
    return result


def fill_single_layer(
    sorted_pairs: Sequence[Pair],
    packing_limit: Optional[int] = None,
) -> Tuple[List[Pair], List[Pair]]:
    """Greedily fill one layer from an already-sorted pair list.

    Walks ``sorted_pairs`` in order, taking each gate whose qubits are both
    still free in the layer (first-fit), up to ``packing_limit`` gates.

    Returns:
        ``(layer, remaining)`` — the chosen gates and everything left over,
        in their original order.
    """
    if packing_limit is not None and packing_limit < 1:
        raise ValueError(f"packing_limit must be >= 1, got {packing_limit}")
    layer: List[Pair] = []
    used: set = set()
    remaining: List[Pair] = []
    for pair in sorted_pairs:
        a, b = pair
        full = packing_limit is not None and len(layer) >= packing_limit
        if full or a in used or b in used:
            remaining.append(pair)
            continue
        layer.append(pair)
        used.update((a, b))
    return layer, remaining
