"""VIC: Variation-aware Incremental Compilation (Section IV-D).

VIC is IC with one change: qubit-to-qubit "distance" reflects gate
reliability.  Each coupling's edge weight becomes ``1 / success_rate`` of a
CPHASE on it (two consecutive CNOTs, since the RZ is virtual on IBM
hardware), and Floyd–Warshall over these weights yields the distance table
of Figure 6(d).  Consequently:

* layer formation prioritises gates whose endpoints sit on *reliable*
  couplings (Figure 6(e): Op1 at weighted distance 1.11 beats Op2 at 1.22,
  although both are one hop away);
* SWAP routing prefers reliable paths even when they are longer in hops
  (the VQM idea, Section III).

Gates that cannot run reliably under the current mapping are pushed to later
layers, by which time the drifting mapping may have moved them onto better
couplings.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..hardware.calibration import Calibration
from .ic import IncrementalCompiler

__all__ = ["VariationAwareCompiler", "vic_compiler"]


class VariationAwareCompiler(IncrementalCompiler):
    """An :class:`~repro.compiler.ic.IncrementalCompiler` whose distances
    come from calibration data.

    Args:
        calibration: Device calibration; must match the coupling graph the
            circuit targets.
        packing_limit: Optional max CPHASE gates per layer.
        rng: Random generator for tie-breaking.
    """

    def __init__(
        self,
        calibration: Calibration,
        packing_limit: Optional[int] = None,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        super().__init__(
            coupling=calibration.coupling,
            distance_matrix=calibration.vic_distance_matrix(),
            packing_limit=packing_limit,
            rng=rng,
        )
        self.calibration = calibration


def vic_compiler(
    calibration: Calibration,
    packing_limit: Optional[int] = None,
    rng: Optional[np.random.Generator] = None,
) -> VariationAwareCompiler:
    """Factory mirroring :class:`VariationAwareCompiler` for symmetry with
    the functional placement API."""
    return VariationAwareCompiler(
        calibration, packing_limit=packing_limit, rng=rng
    )
