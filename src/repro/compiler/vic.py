"""VIC: Variation-aware Incremental Compilation (Section IV-D).

VIC is IC with one change: qubit-to-qubit "distance" reflects gate
reliability.  Each coupling's edge weight becomes ``1 / success_rate`` of a
CPHASE on it (two consecutive CNOTs, since the RZ is virtual on IBM
hardware), and Floyd–Warshall over these weights yields the distance table
of Figure 6(d).  Consequently:

* layer formation prioritises gates whose endpoints sit on *reliable*
  couplings (Figure 6(e): Op1 at weighted distance 1.11 beats Op2 at 1.22,
  although both are one hop away);
* SWAP routing prefers reliable paths even when they are longer in hops
  (the VQM idea, Section III).

Gates that cannot run reliably under the current mapping are pushed to later
layers, by which time the drifting mapping may have moved them onto better
couplings.

**Degradation.**  Calibration feeds are not always usable — a repaired feed
may still yield a distance table with non-finite entries for physically
reachable qubit pairs (e.g. hand-built calibrations with pathological
weights).  :func:`resolve_vic_distances` detects this and falls back to
plain hop distances (IC behaviour) with a recorded warning instead of
producing unroutable circuits; :class:`VariationAwareCompiler` exposes the
warnings it accumulated as ``.warnings``.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

import numpy as np

from ..hardware.calibration import Calibration
from ..hardware.faults import CalibrationError
from .ic import IncrementalCompiler

__all__ = [
    "VariationAwareCompiler",
    "vic_compiler",
    "resolve_vic_distances",
]


def resolve_vic_distances(
    calibration: Calibration,
) -> Tuple[Optional[np.ndarray], List[str]]:
    """Reliability-weighted distances, or ``(None, warnings)`` on fallback.

    A usable VIC distance table must be finite wherever the hop-distance
    table is finite: a non-finite entry for a reachable pair would make
    layer formation and routing undefined.  Any failure to build such a
    table (exceptions from the calibration, NaN/inf weights) degrades to
    hop distances — the compiler then behaves exactly like IC, which is
    the correct semantics for "no reliable variation data".
    """
    warnings: List[str] = []
    coupling = calibration.coupling
    try:
        dist = calibration.vic_distance_matrix()
    except (CalibrationError, ValueError, KeyError, ZeroDivisionError,
            FloatingPointError, OverflowError) as exc:
        warnings.append(
            f"VIC distance table unavailable ({exc}); "
            f"falling back to hop distances"
        )
        return None, warnings
    hop = coupling.distance_matrix()
    reachable = np.isfinite(hop)
    if not np.all(np.isfinite(dist[reachable])):
        bad = int(np.count_nonzero(~np.isfinite(dist[reachable])))
        warnings.append(
            f"VIC distance table has {bad} non-finite entries for "
            f"reachable qubit pairs; falling back to hop distances"
        )
        return None, warnings
    return dist, warnings


class VariationAwareCompiler(IncrementalCompiler):
    """An :class:`~repro.compiler.ic.IncrementalCompiler` whose distances
    come from calibration data.

    When the calibration cannot produce a usable distance table, the
    compiler degrades to plain hop distances (IC semantics) and records
    why in ``self.warnings`` instead of raising.

    Args:
        calibration: Device calibration; must match the coupling graph the
            circuit targets.
        packing_limit: Optional max CPHASE gates per layer.
        rng: Random generator for tie-breaking.
    """

    def __init__(
        self,
        calibration: Calibration,
        packing_limit: Optional[int] = None,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        distance_matrix, warnings = resolve_vic_distances(calibration)
        super().__init__(
            coupling=calibration.coupling,
            distance_matrix=distance_matrix,
            packing_limit=packing_limit,
            rng=rng,
        )
        self.calibration = calibration
        self.warnings = warnings


def vic_compiler(
    calibration: Calibration,
    packing_limit: Optional[int] = None,
    rng: Optional[np.random.Generator] = None,
) -> VariationAwareCompiler:
    """Factory mirroring :class:`VariationAwareCompiler` for symmetry with
    the functional placement API."""
    return VariationAwareCompiler(
        calibration, packing_limit=packing_limit, rng=rng
    )
